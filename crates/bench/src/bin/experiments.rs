//! Regenerates every table and figure of the reproduction (see
//! `EXPERIMENTS.md`).
//!
//! ```sh
//! cargo run -p dgr-bench --release --bin experiments            # all
//! cargo run -p dgr-bench --release --bin experiments -- --only T11
//! cargo run -p dgr-bench --release --bin experiments -- --list
//! ```

use std::time::Instant;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--list") {
        for id in dgr_bench::ALL_EXPERIMENTS {
            println!("{id}");
        }
        return;
    }
    let only: Vec<&str> = args
        .iter()
        .position(|a| a == "--only")
        .map(|i| args[i + 1..].iter().map(String::as_str).collect())
        .unwrap_or_default();
    let ids: Vec<&str> = if only.is_empty() {
        dgr_bench::ALL_EXPERIMENTS.to_vec()
    } else {
        only
    };

    println!("# Distributed Graph Realizations — experiment tables\n");
    let mut failures = 0;
    for id in ids {
        let start = Instant::now();
        let tables = dgr_bench::run(id);
        let elapsed = start.elapsed();
        println!("## Experiment {id} ({elapsed:.2?})\n");
        for t in &tables {
            println!("{}", t.to_markdown());
            if !t.passed() {
                failures += 1;
            }
        }
    }
    if failures > 0 {
        eprintln!("{failures} experiment table(s) FAILED");
        std::process::exit(1);
    }
    println!("\nAll experiment verdicts passed.");
}
