//! Engine round-throughput benchmark: batched step-function executor vs
//! the thread-per-node oracle, on the NCC₀ path-to-clique warm-up.
//!
//! Writes `BENCH_engine.json` (rounds/sec per engine per size, plus the
//! batched/threaded speedup at n = 10k) so the performance trajectory is
//! recorded in-repo across PRs.
//!
//! Usage: `cargo run --release -p bench --bin engine_bench [--quick] [OUT.json]`
//! `--quick` caps the batched sweep at n = 100k (CI smoke); the default
//! sweep ends at one million nodes.

use dgr_ncc::{Config, Network};
use dgr_primitives::proto::PathToClique;
use std::fmt::Write as _;
use std::time::Instant;

/// One measured configuration.
struct Entry {
    engine: &'static str,
    n: usize,
    rounds: u64,
    messages: u64,
    seconds: f64,
}

impl Entry {
    fn rounds_per_sec(&self) -> f64 {
        self.rounds as f64 / self.seconds
    }
}

/// Benchmark config: tracking off (KT0 legality is proven in the tests;
/// the hash-set tracker is a verification instrument, not an engine cost
/// both engines should pay in a throughput figure).
fn bench_config(seed: u64) -> Config {
    let mut config = Config::ncc0(seed);
    config.track_knowledge = false;
    config
}

fn run_batched(n: usize, repeats: u32) -> Entry {
    let net = Network::new(n, bench_config(42));
    // Warm-up run (fills allocator arenas, page-faults the slabs).
    let warm = net.run_protocol(PathToClique::new).unwrap();
    let start = Instant::now();
    for _ in 0..repeats {
        let result = net.run_protocol(PathToClique::new).unwrap();
        assert_eq!(result.metrics.rounds, warm.metrics.rounds);
    }
    Entry {
        engine: "batched",
        n,
        rounds: warm.metrics.rounds * repeats as u64,
        messages: warm.metrics.messages * repeats as u64,
        seconds: start.elapsed().as_secs_f64(),
    }
}

fn run_threaded(n: usize, repeats: u32) -> Entry {
    let net = Network::new(n, bench_config(42));
    let warm = net.run_protocol_threaded(PathToClique::new).unwrap();
    let start = Instant::now();
    for _ in 0..repeats {
        let result = net.run_protocol_threaded(PathToClique::new).unwrap();
        assert_eq!(result.metrics.rounds, warm.metrics.rounds);
    }
    Entry {
        engine: "threaded",
        n,
        rounds: warm.metrics.rounds * repeats as u64,
        messages: warm.metrics.messages * repeats as u64,
        seconds: start.elapsed().as_secs_f64(),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out_path = args
        .iter()
        .find(|a| !a.starts_with('-'))
        .cloned()
        .unwrap_or_else(|| "BENCH_engine.json".to_string());

    let mut entries: Vec<Entry> = Vec::new();
    // The threaded oracle tops out near 10^4 nodes (one OS thread each).
    for &(n, repeats) in &[(1_000usize, 5u32), (10_000, 2)] {
        eprintln!("threaded n={n} ...");
        entries.push(run_threaded(n, repeats));
    }
    let batched_sizes: &[(usize, u32)] = if quick {
        &[(1_000, 20), (10_000, 10), (100_000, 3)]
    } else {
        &[(1_000, 20), (10_000, 10), (100_000, 3), (1_000_000, 1)]
    };
    for &(n, repeats) in batched_sizes {
        eprintln!("batched n={n} ...");
        entries.push(run_batched(n, repeats));
    }

    let rps = |engine: &str, n: usize| {
        entries
            .iter()
            .find(|e| e.engine == engine && e.n == n)
            .map(Entry::rounds_per_sec)
    };
    let speedup_10k = match (rps("batched", 10_000), rps("threaded", 10_000)) {
        (Some(b), Some(t)) => b / t,
        _ => f64::NAN,
    };

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str(
        "  \"workload\": \"ncc0 path-to-clique warm-up (undirect + pointer-doubling contacts)\",\n",
    );
    json.push_str("  \"note\": \"rounds/sec per engine; track_knowledge off; release build\",\n");
    json.push_str("  \"entries\": [\n");
    for (i, e) in entries.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{\"engine\": \"{}\", \"n\": {}, \"rounds\": {}, \"messages\": {}, \
             \"seconds\": {:.4}, \"rounds_per_sec\": {:.1}}}{}",
            e.engine,
            e.n,
            e.rounds,
            e.messages,
            e.seconds,
            e.rounds_per_sec(),
            if i + 1 < entries.len() { "," } else { "" },
        );
    }
    json.push_str("  ],\n");
    let _ = write!(
        json,
        "  \"batched_over_threaded_at_10k\": {speedup_10k:.1}\n}}\n"
    );

    std::fs::write(&out_path, &json).expect("write benchmark json");
    println!("{json}");
    eprintln!("wrote {out_path}");
    assert!(
        speedup_10k.is_nan() || speedup_10k >= 10.0,
        "regression: batched engine is only {speedup_10k:.1}x the threaded \
         oracle at n=10k (target: >=10x)"
    );
}
