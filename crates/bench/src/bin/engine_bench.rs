//! Engine round-throughput benchmark: batched step-function executor vs
//! the thread-per-node oracle, across the ported workload stack —
//! the NCC₀ warm-up, full context establishment, the distributed sort,
//! and the end-to-end realization drivers (degrees + trees).
//!
//! Writes `BENCH_engine.json` (rounds/sec per engine per workload per
//! size, plus batched/threaded speedups) so the performance trajectory is
//! recorded in-repo across PRs.
//!
//! Usage: `cargo run --release -p bench --bin engine_bench [--quick] [OUT.json]`
//! `--quick` caps the sweep for CI smoke; the default sweep ends at one
//! million nodes for the warm-up and 100k for the drivers.

use dgr_core::{realize_implicit, realize_implicit_batched};
use dgr_graphgen as graphgen;
use dgr_ncc::{Config, Network, RunMetrics};
use dgr_primitives::proto::sort::SortStep;
use dgr_primitives::proto::{EstablishCtx, PathToClique, StepProtocol, WithCtx};
use dgr_primitives::sort::{self, Order};
use dgr_primitives::PathCtx;
use dgr_trees::{realize_tree, realize_tree_batched, TreeAlgo};
use std::fmt::Write as _;
use std::time::Instant;

/// One measured configuration.
struct Entry {
    workload: &'static str,
    engine: &'static str,
    n: usize,
    rounds: u64,
    messages: u64,
    seconds: f64,
}

impl Entry {
    fn rounds_per_sec(&self) -> f64 {
        self.rounds as f64 / self.seconds
    }
}

/// Benchmark config: tracking off (KT0 legality is proven in the tests;
/// the hash-set tracker is a verification instrument, not an engine cost
/// both engines should pay in a throughput figure).
fn bench_config(seed: u64) -> Config {
    let mut config = Config::ncc0(seed);
    config.track_knowledge = false;
    config
}

/// Times `repeats` runs of `run` (after one warm-up) and records an entry.
fn measure(
    workload: &'static str,
    engine: &'static str,
    n: usize,
    repeats: u32,
    run: impl Fn() -> RunMetrics,
) -> Entry {
    let warm = run();
    let start = Instant::now();
    for _ in 0..repeats {
        let metrics = run();
        assert_eq!(metrics.rounds, warm.rounds, "non-deterministic workload");
    }
    Entry {
        workload,
        engine,
        n,
        rounds: warm.rounds * repeats as u64,
        messages: warm.messages * repeats as u64,
        seconds: start.elapsed().as_secs_f64(),
    }
}

fn warmup(n: usize, repeats: u32, batched: bool) -> Entry {
    let net = Network::new(n, bench_config(42));
    measure("warmup", engine_name(batched), n, repeats, || {
        if batched {
            net.run_protocol(PathToClique::new).unwrap().metrics
        } else {
            net.run_protocol_threaded(PathToClique::new)
                .unwrap()
                .metrics
        }
    })
}

fn establish(n: usize, repeats: u32, batched: bool) -> Entry {
    let net = Network::new(n, bench_config(43));
    measure("establish", engine_name(batched), n, repeats, || {
        if batched {
            net.run_protocol(|_| StepProtocol::new(EstablishCtx::new()))
                .unwrap()
                .metrics
        } else {
            net.run(|h| PathCtx::establish(h).position).unwrap().metrics
        }
    })
}

fn dist_sort(n: usize, repeats: u32, batched: bool) -> Entry {
    let net = Network::new(n, bench_config(44));
    measure("sort", engine_name(batched), n, repeats, || {
        if batched {
            net.run_protocol(|_| {
                WithCtx::new(|ctx: &PathCtx, rctx: &mut dgr_ncc::RoundCtx<'_>| {
                    SortStep::new(
                        ctx.vp.clone(),
                        ctx.contacts.clone(),
                        ctx.position,
                        rctx.id() % 1000,
                        Order::Descending,
                        rctx.id(),
                    )
                })
            })
            .unwrap()
            .metrics
        } else {
            net.run(|h| {
                let ctx = PathCtx::establish(h);
                sort::sort_at(
                    h,
                    &ctx.vp,
                    &ctx.contacts,
                    ctx.position,
                    h.id() % 1000,
                    Order::Descending,
                )
                .rank
            })
            .unwrap()
            .metrics
        }
    })
}

fn degrees(n: usize, repeats: u32, batched: bool) -> Entry {
    let degrees = graphgen::near_regular_sequence(n, 4, 9);
    measure("degrees-implicit", engine_name(batched), n, repeats, || {
        let out = if batched {
            realize_implicit_batched(&degrees, bench_config(45)).unwrap()
        } else {
            realize_implicit(&degrees, bench_config(45)).unwrap()
        };
        out.metrics().clone()
    })
}

fn tree(n: usize, repeats: u32, batched: bool) -> Entry {
    let degrees = graphgen::random_tree_sequence(n, 11);
    measure("tree-greedy", engine_name(batched), n, repeats, || {
        let out = if batched {
            realize_tree_batched(&degrees, bench_config(46), TreeAlgo::Greedy).unwrap()
        } else {
            realize_tree(&degrees, bench_config(46), TreeAlgo::Greedy).unwrap()
        };
        match out {
            dgr_trees::TreeRealization::Realized(t) => t.metrics,
            dgr_trees::TreeRealization::Unrealizable { metrics } => metrics,
        }
    })
}

fn engine_name(batched: bool) -> &'static str {
    if batched {
        "batched"
    } else {
        "threaded"
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out_path = args
        .iter()
        .find(|a| !a.starts_with('-'))
        .cloned()
        .unwrap_or_else(|| "BENCH_engine.json".to_string());

    let mut entries: Vec<Entry> = Vec::new();

    // The threaded oracle tops out near 10^4 nodes (one OS thread each);
    // the driver workloads run it at 10^3 (hundreds of barrier rounds).
    eprintln!("threaded baselines ...");
    entries.push(warmup(1_000, 5, false));
    entries.push(warmup(10_000, 2, false));
    entries.push(establish(1_000, 3, false));
    entries.push(dist_sort(1_000, 2, false));
    entries.push(degrees(1_000, 1, false));
    entries.push(tree(1_000, 1, false));

    let warmup_sizes: &[(usize, u32)] = if quick {
        &[(1_000, 20), (10_000, 10), (100_000, 3)]
    } else {
        &[(1_000, 20), (10_000, 10), (100_000, 3), (1_000_000, 1)]
    };
    for &(n, repeats) in warmup_sizes {
        eprintln!("batched warmup n={n} ...");
        entries.push(warmup(n, repeats, true));
    }
    let driver_sizes: &[(usize, u32)] = if quick {
        &[(1_000, 5), (10_000, 2)]
    } else {
        &[(1_000, 5), (10_000, 2), (100_000, 1)]
    };
    for &(n, repeats) in driver_sizes {
        eprintln!("batched primitives + drivers n={n} ...");
        entries.push(establish(n, repeats, true));
        entries.push(dist_sort(n, repeats, true));
        entries.push(degrees(n, repeats, true));
        entries.push(tree(n, repeats, true));
    }

    let rps = |workload: &str, engine: &str, n: usize| {
        entries
            .iter()
            .find(|e| e.workload == workload && e.engine == engine && e.n == n)
            .map(Entry::rounds_per_sec)
    };
    let speedup = |workload: &str, n: usize| match (
        rps(workload, "batched", n),
        rps(workload, "threaded", n),
    ) {
        (Some(b), Some(t)) => b / t,
        _ => f64::NAN,
    };
    let speedup_10k = speedup("warmup", 10_000);

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str(
        "  \"workloads\": \"warmup = ncc0 path-to-clique; establish = undirect + contacts + \
         BBST + positions; sort = establish + Theorem 3; degrees-implicit / tree-greedy = \
         full realization drivers\",\n",
    );
    json.push_str("  \"note\": \"rounds/sec per engine; track_knowledge off; release build\",\n");
    json.push_str("  \"entries\": [\n");
    for (i, e) in entries.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{\"workload\": \"{}\", \"engine\": \"{}\", \"n\": {}, \"rounds\": {}, \
             \"messages\": {}, \"seconds\": {:.4}, \"rounds_per_sec\": {:.1}}}{}",
            e.workload,
            e.engine,
            e.n,
            e.rounds,
            e.messages,
            e.seconds,
            e.rounds_per_sec(),
            if i + 1 < entries.len() { "," } else { "" },
        );
    }
    json.push_str("  ],\n");
    json.push_str("  \"batched_over_threaded_at_1k\": {\n");
    let per_workload = [
        "warmup",
        "establish",
        "sort",
        "degrees-implicit",
        "tree-greedy",
    ];
    for (i, w) in per_workload.iter().enumerate() {
        let _ = writeln!(
            json,
            "    \"{w}\": {:.1}{}",
            speedup(w, 1_000),
            if i + 1 < per_workload.len() { "," } else { "" }
        );
    }
    json.push_str("  },\n");
    let _ = write!(
        json,
        "  \"batched_over_threaded_at_10k\": {speedup_10k:.1}\n}}\n"
    );

    std::fs::write(&out_path, &json).expect("write benchmark json");
    println!("{json}");
    eprintln!("wrote {out_path}");
    assert!(
        speedup_10k.is_nan() || speedup_10k >= 10.0,
        "regression: batched engine is only {speedup_10k:.1}x the threaded \
         oracle at n=10k (target: >=10x)"
    );
}
