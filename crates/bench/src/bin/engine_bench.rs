//! Engine round-throughput benchmark: batched step-function executor vs
//! the thread-per-node oracle, across the ported workload stack —
//! the NCC₀ warm-up, full context establishment, the distributed sort,
//! and the end-to-end realization drivers (degrees + trees).
//!
//! Writes `BENCH_engine.json` (rounds/sec per engine per workload per
//! size, plus batched/threaded speedups) so the performance trajectory is
//! recorded in-repo across PRs.
//!
//! Usage: `cargo run --release -p bench --bin engine_bench [--quick]
//! [--history HISTORY.jsonl] [OUT.json]`
//!
//! `--quick` caps the sweep for CI smoke; the default sweep ends at one
//! million nodes for the warm-up and 100k for the drivers.
//!
//! `--history` maintains an **append-only** per-PR trend file: each run
//! appends one JSONL record of batched rounds/sec per `workload@n`, and —
//! before appending — compares against the most recent record, failing
//! (exit 1) if any shared workload regressed by more than 2x. This is the
//! per-workload regression gate CI runs, a much tighter net than the
//! single 10k warm-up speedup ratio.

use dgr_bench::drive::{CapacityPolicy, Engine, Kt0, Realization, SortBackend, Workload};
use dgr_graphgen as graphgen;
use dgr_ncc::{Config, EngineKind, EngineStats, Network, NullSink, RunMetrics, Scenario};
use dgr_primitives::proto::sort::SortStep;
use dgr_primitives::proto::{EstablishCtx, PathToClique, StepProtocol, WithCtx};
use dgr_primitives::sort::{self, Order};
use dgr_primitives::PathCtx;
use dgr_trees::TreeAlgo;
use std::fmt::Write as _;
use std::time::Instant;

/// One measured configuration. Besides the whole-run rows, `measure`
/// derives `{workload}/{phase}` rows (step / route / deliver / learn)
/// from the batched executor's phase timers, so the history gate tracks
/// where inside the round loop a regression landed.
struct Entry {
    workload: String,
    engine: &'static str,
    n: usize,
    rounds: u64,
    messages: u64,
    seconds: f64,
}

impl Entry {
    fn rounds_per_sec(&self) -> f64 {
        self.rounds as f64 / self.seconds
    }
}

/// Benchmark config: tracking off (KT0 legality is proven in the tests;
/// the hash-set tracker is a verification instrument, not an engine cost
/// both engines should pay in a throughput figure).
fn bench_config(seed: u64) -> Config {
    let mut config = Config::ncc0(seed);
    config.track_knowledge = false;
    config
}

/// FNV-1a over a byte string — a *stable* hash (std's `DefaultHasher`
/// may change across Rust releases, which would silently re-key every
/// fingerprint and disarm the history gate on each toolchain upgrade).
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// A coarse hardware fingerprint — architecture, logical core count, and
/// a hash of the CPU model string — so the history gate only compares
/// runs from matching machines (throughput is meaningless across
/// hardware classes; see ROADMAP).
fn hardware_fingerprint() -> String {
    let cores = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(0);
    let model = std::fs::read_to_string("/proc/cpuinfo")
        .ok()
        .and_then(|info| {
            info.lines()
                .find(|l| l.starts_with("model name"))
                .and_then(|l| l.split(':').nth(1))
                .map(|m| m.trim().to_string())
        })
        .unwrap_or_else(|| "unknown-cpu".to_string());
    format!(
        "{}-{}c-{:08x}",
        std::env::consts::ARCH,
        cores,
        fnv1a(model.as_bytes()) as u32
    )
}

/// The builder request shared by every driver row.
fn request(workload: Workload, seed: u64, batched: bool, sort: SortBackend) -> Realization {
    let policy = match sort {
        SortBackend::RandomizedLogN { .. } => CapacityPolicy::Queue,
        SortBackend::Bitonic => CapacityPolicy::Strict,
    };
    Realization::new(workload)
        .engine(if batched {
            Engine::Batched
        } else {
            Engine::Threaded
        })
        .policy(policy)
        .tracking(Kt0::Untracked)
        .sort(sort)
        .seed(seed)
}

/// Phase rows below this accumulated wall time are dropped: their
/// rounds/sec is timer noise, and a noisy denominator would flap the 2x
/// history gate (the gate only compares keys present in both records, so
/// a dropped row simply never gates).
const PHASE_FLOOR_NANOS: u64 = 10_000_000;

/// Times `repeats` runs of `run` (after one warm-up) and records the
/// whole-run entry plus, for the batched executor, one `{workload}/phase`
/// entry per round-loop phase (step / route / exchange / deliver / learn
/// — exchange is only non-zero on ownership-sharded rows) summed over
/// the timed repeats. The threaded oracle reports all-zero phase timers
/// and contributes no phase rows.
fn measure(
    workload: &str,
    engine: &'static str,
    n: usize,
    repeats: u32,
    run: impl Fn() -> (RunMetrics, EngineStats),
) -> Vec<Entry> {
    let (warm, _) = run();
    let mut phase_nanos = [0u64; 5];
    let start = Instant::now();
    for _ in 0..repeats {
        let (metrics, stats) = run();
        assert_eq!(metrics.rounds, warm.rounds, "non-deterministic workload");
        phase_nanos[0] += stats.step_nanos;
        phase_nanos[1] += stats.route_nanos;
        phase_nanos[2] += stats.exchange_nanos;
        phase_nanos[3] += stats.deliver_nanos;
        phase_nanos[4] += stats.learn_nanos;
    }
    let rounds = warm.rounds * repeats as u64;
    let mut entries = vec![Entry {
        workload: workload.to_string(),
        engine,
        n,
        rounds,
        messages: warm.messages * repeats as u64,
        seconds: start.elapsed().as_secs_f64(),
    }];
    for (phase, nanos) in ["step", "route", "exchange", "deliver", "learn"]
        .into_iter()
        .zip(phase_nanos)
    {
        if nanos >= PHASE_FLOOR_NANOS {
            entries.push(Entry {
                workload: format!("{workload}/{phase}"),
                engine,
                n,
                rounds,
                messages: 0,
                seconds: nanos as f64 / 1e9,
            });
        }
    }
    entries
}

fn warmup(n: usize, repeats: u32, batched: bool) -> Vec<Entry> {
    let net = Network::new(n, bench_config(42));
    measure("warmup", engine_name(batched), n, repeats, || {
        let r = if batched {
            net.run_protocol(PathToClique::new).unwrap()
        } else {
            net.run_protocol_threaded(PathToClique::new).unwrap()
        };
        (r.metrics, r.engine)
    })
}

/// The ownership-sharded sweep rows: the batched warm-up split across
/// `shards` per-shard arenas joined by the boundary-exchange phase.
/// Transcripts are bit-identical to the unsharded `warmup` row (the
/// shard-matrix differential suite proves it), so the `warmup+shardsS`
/// history keys track the pure layout cost/benefit per shard count —
/// and the `/exchange` phase row under them isolates the all-to-all
/// splice itself.
fn warmup_sharded(n: usize, repeats: u32, shards: usize) -> Vec<Entry> {
    let net = Network::new(n, bench_config(42).with_shards(shards));
    let workload = format!("warmup+shards{shards}");
    measure(&workload, "batched", n, repeats, || {
        let r = net.run_protocol(PathToClique::new).unwrap();
        (r.metrics, r.engine)
    })
}

/// The adversarial row: the batched warm-up under a seeded full-window
/// 1% message drop. Every round the scenario engine rebuilds the sealed
/// arena through its swap buffer (drawing per-message drop decisions in
/// dense source order), so this history key prices the live fault pass
/// itself against the unperturbed `warmup` row. The warm-up floods
/// knowledge, so lost envelopes thin traffic without stalling anyone —
/// the round count stays fixed and the run completes.
fn warmup_drop(n: usize, repeats: u32) -> Vec<Entry> {
    let scenario = Scenario::new(7).drop_messages(0..=u64::MAX, 0.01);
    let net = Network::new(n, bench_config(42).with_scenario(scenario));
    measure("warmup+drop1%", "batched", n, repeats, || {
        let r = net.run_protocol(PathToClique::new).unwrap();
        assert!(r.engine.faults_dropped > 0, "drop schedule never fired");
        (r.metrics, r.engine)
    })
}

/// The churn-carrying driver row. The realization protocols are
/// retransmission-free — any fired fault or churn op is fatal by design
/// (the facade surfaces a clean error; the scenario suite pins that
/// contract) — so this row arms the full churn machinery instead: a
/// compiled crash / crash-recovery timeline consulted at the top and
/// bottom of **every round of every internal protocol run** the degrees
/// driver performs, scheduled beyond any run's horizon. Its throughput
/// against the plain `degrees-implicit` row is the quiescent cost of
/// carrying an armed scenario through the deepest workload, which the
/// history gate holds near zero.
fn degrees_churn(n: usize, repeats: u32) -> Vec<Entry> {
    let horizon = 1 << 30;
    let degrees = graphgen::near_regular_sequence(n, 4, 9);
    let scenario = Scenario::new(11)
        .crash(0, horizon)
        .crash_recover(1, horizon, horizon + 4)
        .crash_recover(2, horizon + 1, horizon + 3);
    measure("degrees+churn", "batched", n, repeats, || {
        let out = request(
            Workload::Implicit(degrees.clone()),
            45,
            true,
            SortBackend::Bitonic,
        )
        .scenario(scenario.clone())
        .run()
        .unwrap();
        (out.metrics().clone(), out.engine_stats.clone())
    })
}

/// The streaming row: the same batched warm-up with a `NullSink`
/// observing every round through the event plumbing. Its throughput
/// against the unobserved `warmup` row is the round-loop cost of the
/// observability layer, which `main` gates at ≤ 2%; as a batched entry
/// it also lands in the fingerprint-scoped `BENCH_history` trend.
fn warmup_streaming(n: usize, repeats: u32) -> Vec<Entry> {
    let net = Network::new(n, bench_config(42));
    measure("warmup+nullsink", "batched", n, repeats, || {
        let mut sink = NullSink;
        let r = net
            .run_protocol_on(
                EngineKind::Batched,
                None,
                Some(&mut sink),
                PathToClique::new,
            )
            .unwrap();
        (r.metrics, r.engine)
    })
}

/// Paired NullSink-overhead measurement for the ≤2% gate: alternates
/// unobserved and observed warm-up runs on one network and reports the
/// **median per-pair ratio** — robust to a single noisy pair in either
/// direction (a slow neighbor landing on the observed run would fail the
/// gate spuriously; one landing on the plain run would pass it
/// spuriously), where comparing two independently timed whole windows
/// would let scheduler noise eat the entire 2% tolerance.
fn nullsink_overhead_pct(n: usize, pairs: u32) -> f64 {
    let net = Network::new(n, bench_config(42));
    let plain = || {
        let start = Instant::now();
        net.run_protocol(PathToClique::new).unwrap();
        start.elapsed().as_secs_f64()
    };
    let observed = || {
        let mut sink = NullSink;
        let start = Instant::now();
        net.run_protocol_on(
            EngineKind::Batched,
            None,
            Some(&mut sink),
            PathToClique::new,
        )
        .unwrap();
        start.elapsed().as_secs_f64()
    };
    plain();
    observed();
    let mut ratios: Vec<f64> = (0..pairs).map(|_| observed() / plain()).collect();
    ratios.sort_by(|a, b| a.total_cmp(b));
    (ratios[ratios.len() / 2] - 1.0) * 100.0
}

fn establish(n: usize, repeats: u32, batched: bool) -> Vec<Entry> {
    let net = Network::new(n, bench_config(43));
    measure("establish", engine_name(batched), n, repeats, || {
        if batched {
            let r = net
                .run_protocol(|_| StepProtocol::new(EstablishCtx::new()))
                .unwrap();
            (r.metrics, r.engine)
        } else {
            let r = net.run(|h| PathCtx::establish(h).position).unwrap();
            (r.metrics, r.engine)
        }
    })
}

/// The sort workload (establish + Theorem 3) with a selectable backend.
/// The randomized backend's scatter fan-in needs queueing; the bitonic
/// rows stay strict so their history keys remain comparable.
fn dist_sort_with(
    workload: &'static str,
    n: usize,
    repeats: u32,
    batched: bool,
    backend: SortBackend,
) -> Vec<Entry> {
    let mut config = bench_config(44);
    if matches!(backend, SortBackend::RandomizedLogN { .. }) {
        config = config.with_queueing();
    }
    let net = Network::new(n, config);
    measure(workload, engine_name(batched), n, repeats, || {
        if batched {
            let r = net
                .run_protocol(|_| {
                    WithCtx::new(move |ctx: &PathCtx, rctx: &mut dgr_ncc::RoundCtx<'_>| {
                        SortStep::on_ctx(
                            ctx,
                            rctx.id() % 1000,
                            Order::Descending,
                            rctx.id(),
                            backend,
                        )
                    })
                })
                .unwrap();
            (r.metrics, r.engine)
        } else {
            let r = net
                .run(|h| {
                    let ctx = PathCtx::establish(h);
                    sort::sort_at(
                        h,
                        &ctx.vp,
                        &ctx.contacts,
                        ctx.position,
                        h.id() % 1000,
                        Order::Descending,
                    )
                    .rank
                })
                .unwrap();
            (r.metrics, r.engine)
        }
    })
}

fn dist_sort(n: usize, repeats: u32, batched: bool) -> Vec<Entry> {
    dist_sort_with("sort", n, repeats, batched, SortBackend::Bitonic)
}

fn dist_sort_rand(n: usize, repeats: u32) -> Vec<Entry> {
    dist_sort_with(
        "sort+rand",
        n,
        repeats,
        true,
        SortBackend::RandomizedLogN { seed: 9 },
    )
}

fn degrees_with(
    workload: &'static str,
    n: usize,
    repeats: u32,
    batched: bool,
    sort: SortBackend,
) -> Vec<Entry> {
    let degrees = graphgen::near_regular_sequence(n, 4, 9);
    measure(workload, engine_name(batched), n, repeats, || {
        let out = request(Workload::Implicit(degrees.clone()), 45, batched, sort)
            .run()
            .unwrap();
        (out.metrics().clone(), out.engine_stats.clone())
    })
}

fn degrees(n: usize, repeats: u32, batched: bool) -> Vec<Entry> {
    degrees_with(
        "degrees-implicit",
        n,
        repeats,
        batched,
        SortBackend::Bitonic,
    )
}

fn degrees_rand(n: usize, repeats: u32) -> Vec<Entry> {
    degrees_with(
        "degrees-implicit+rand",
        n,
        repeats,
        true,
        SortBackend::RandomizedLogN { seed: 9 },
    )
}

fn tree_with(
    workload: &'static str,
    n: usize,
    repeats: u32,
    batched: bool,
    sort: SortBackend,
) -> Vec<Entry> {
    let degrees = graphgen::random_tree_sequence(n, 11);
    measure(workload, engine_name(batched), n, repeats, || {
        let out = request(
            Workload::Tree {
                degrees: degrees.clone(),
                algo: TreeAlgo::Greedy,
            },
            46,
            batched,
            sort,
        )
        .run()
        .unwrap();
        (out.metrics().clone(), out.engine_stats.clone())
    })
}

fn tree(n: usize, repeats: u32, batched: bool) -> Vec<Entry> {
    tree_with("tree-greedy", n, repeats, batched, SortBackend::Bitonic)
}

fn tree_rand(n: usize, repeats: u32) -> Vec<Entry> {
    tree_with(
        "tree-greedy+rand",
        n,
        repeats,
        true,
        SortBackend::RandomizedLogN { seed: 9 },
    )
}

fn engine_name(batched: bool) -> &'static str {
    if batched {
        "batched"
    } else {
        "threaded"
    }
}

/// Parses a history JSONL record written by [`history_record`]: a flat
/// `"entries"` object of `"workload@n": rounds_per_sec` pairs. Hand-rolled
/// because the workspace is offline (no serde); the format is our own, so
/// the parser only has to read what the writer writes.
fn parse_history_entries(line: &str) -> Vec<(String, f64)> {
    let Some(start) = line.find("\"entries\":{") else {
        return Vec::new();
    };
    let body = &line[start + "\"entries\":{".len()..];
    let Some(end) = body.find('}') else {
        return Vec::new();
    };
    body[..end]
        .split(',')
        .filter_map(|pair| {
            let (k, v) = pair.split_once(':')?;
            let key = k.trim().trim_matches('"').to_string();
            let value: f64 = v.trim().parse().ok()?;
            Some((key, value))
        })
        .collect()
}

/// Formats one append-only history record: batched throughput per
/// `workload@n`, stamped with the wall clock, the sweep mode, and the
/// hardware fingerprint the regression gate scopes to.
fn history_record(entries: &[Entry], quick: bool, fingerprint: &str) -> String {
    // detlint: allow(ambient-entropy) — wall-clock stamp for the append-only BENCH_history entry; benchmarking is the one place wall time is the point
    let unix_secs = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    let mut pairs: Vec<String> = entries
        .iter()
        .filter(|e| e.engine == "batched")
        .map(|e| format!("\"{}@{}\": {:.1}", e.workload, e.n, e.rounds_per_sec()))
        .collect();
    pairs.sort();
    format!(
        "{{\"unix_secs\": {unix_secs}, \"mode\": \"{}\", \"fingerprint\": \"{fingerprint}\", \"entries\":{{{}}}}}",
        if quick { "quick" } else { "full" },
        pairs.join(", ")
    )
}

/// Appends this run to the history file (a true append — the existing
/// records are never rewritten, so an interrupted run cannot truncate the
/// trend), first failing on any >2x per-workload regression against the
/// most recent record of the same sweep mode **and the same hardware
/// fingerprint** (quick and full sweeps measure different repeat counts,
/// and throughput across hardware classes is incomparable; records
/// predating the fingerprint field never gate). `BENCH_HISTORY_NO_GATE=1`
/// downgrades the gate to a report for one-off runs on odd hardware.
/// Returns the regressions found (empty = gate passed or disarmed).
fn check_and_append_history(
    path: &str,
    entries: &[Entry],
    quick: bool,
    fingerprint: &str,
) -> Vec<String> {
    use std::io::Write as _;
    let record = history_record(entries, quick, fingerprint);
    let mode_tag = format!("\"mode\": \"{}\"", if quick { "quick" } else { "full" });
    let fp_tag = format!("\"fingerprint\": \"{fingerprint}\"");
    let previous = std::fs::read_to_string(path).unwrap_or_default();
    let last = previous
        .lines()
        .rev()
        .find(|l| !l.trim().is_empty() && l.contains(&mode_tag) && l.contains(&fp_tag));
    let mut regressions = Vec::new();
    if let Some(last) = last {
        let old = parse_history_entries(last);
        let new = parse_history_entries(&record);
        for (key, old_rps) in &old {
            if let Some((_, new_rps)) = new.iter().find(|(k, _)| k == key) {
                if *new_rps * 2.0 < *old_rps {
                    regressions.push(format!(
                        "{key}: {old_rps:.1} -> {new_rps:.1} rounds/sec \
                         ({:.2}x slowdown, gate is 2x)",
                        old_rps / new_rps
                    ));
                }
            }
        }
    }
    let mut file = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)
        .expect("open benchmark history");
    writeln!(file, "{record}").expect("append benchmark history");
    eprintln!("appended run to {path}");
    if std::env::var_os("BENCH_HISTORY_NO_GATE").is_some() && !regressions.is_empty() {
        eprintln!(
            "BENCH_HISTORY_NO_GATE set — reporting without failing:\n  {}",
            regressions.join("\n  ")
        );
        return Vec::new();
    }
    regressions
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let history_path = args
        .iter()
        .position(|a| a == "--history")
        .and_then(|i| args.get(i + 1))
        .cloned();
    let out_path = args
        .iter()
        .enumerate()
        .filter(|&(i, a)| {
            !a.starts_with('-')
                && !matches!(args.get(i.wrapping_sub(1)), Some(p) if p == "--history")
        })
        .map(|(_, a)| a.clone())
        .next()
        .unwrap_or_else(|| "BENCH_engine.json".to_string());

    let mut entries: Vec<Entry> = Vec::new();

    // The threaded oracle tops out near 10^4 nodes (one OS thread each);
    // the driver workloads run it at 10^3 (hundreds of barrier rounds).
    eprintln!("threaded baselines ...");
    entries.extend(warmup(1_000, 5, false));
    entries.extend(warmup(10_000, 2, false));
    entries.extend(establish(1_000, 3, false));
    entries.extend(dist_sort(1_000, 2, false));
    entries.extend(degrees(1_000, 1, false));
    entries.extend(tree(1_000, 1, false));

    let warmup_sizes: &[(usize, u32)] = if quick {
        &[(1_000, 20), (10_000, 10), (100_000, 3)]
    } else {
        &[(1_000, 20), (10_000, 10), (100_000, 3), (1_000_000, 1)]
    };
    for &(n, repeats) in warmup_sizes {
        eprintln!("batched warmup n={n} ...");
        entries.extend(warmup(n, repeats, true));
        entries.extend(warmup_drop(n, repeats));
        entries.extend(warmup_streaming(n, repeats));
        for shards in [2, 4, 8] {
            eprintln!("batched warmup n={n} shards={shards} ...");
            entries.extend(warmup_sharded(n, repeats, shards));
        }
    }
    // 16384 = 2^14 sits in both sweeps: it is the crossover point where
    // the Theorem 3 randomized backend must undercut the bitonic round
    // count, so the history gate tracks it from day one.
    let driver_sizes: &[(usize, u32)] = if quick {
        &[(1_000, 5), (10_000, 2), (16_384, 2)]
    } else {
        &[(1_000, 5), (10_000, 2), (16_384, 2), (100_000, 1)]
    };
    for &(n, repeats) in driver_sizes {
        eprintln!("batched primitives + drivers n={n} ...");
        entries.extend(establish(n, repeats, true));
        entries.extend(dist_sort(n, repeats, true));
        entries.extend(degrees(n, repeats, true));
        entries.extend(tree(n, repeats, true));
        // The Theorem 3 randomized backend, one row per sorting workload
        // (warmup/establish never sort).
        entries.extend(dist_sort_rand(n, repeats));
        entries.extend(degrees_rand(n, repeats));
        entries.extend(degrees_churn(n, repeats));
        entries.extend(tree_rand(n, repeats));
    }
    // The acceptance line for the randomized backend: strictly fewer
    // rounds than the bitonic network from n = 2^14 up.
    for &(n, _) in driver_sizes.iter().filter(|&&(n, _)| n >= 1 << 14) {
        let rounds_of = |workload: &str| {
            entries
                .iter()
                .find(|e| e.workload == workload && e.engine == "batched" && e.n == n)
                .map(|e| e.rounds)
                .unwrap()
        };
        let (bitonic, rand) = (rounds_of("sort"), rounds_of("sort+rand"));
        assert!(
            rand < bitonic,
            "randomized sort did not beat bitonic at n={n}: {rand} >= {bitonic} rounds"
        );
        eprintln!(
            "sort rounds at n={n}: bitonic {bitonic}, randomized {rand}              ({}% of bitonic)",
            rand * 100 / bitonic
        );
    }

    let rps = |workload: &str, engine: &str, n: usize| {
        entries
            .iter()
            .find(|e| e.workload == workload && e.engine == engine && e.n == n)
            .map(Entry::rounds_per_sec)
    };
    let speedup = |workload: &str, n: usize| match (
        rps(workload, "batched", n),
        rps(workload, "threaded", n),
    ) {
        (Some(b), Some(t)) => b / t,
        _ => f64::NAN,
    };
    let speedup_10k = speedup("warmup", 10_000);

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str(
        "  \"workloads\": \"warmup = ncc0 path-to-clique; establish = undirect + contacts + \
         BBST + positions; sort = establish + Theorem 3; degrees-implicit / tree-greedy = \
         full realization drivers\",\n",
    );
    json.push_str("  \"note\": \"rounds/sec per engine; track_knowledge off; release build\",\n");
    json.push_str("  \"entries\": [\n");
    for (i, e) in entries.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{\"workload\": \"{}\", \"engine\": \"{}\", \"n\": {}, \"rounds\": {}, \
             \"messages\": {}, \"seconds\": {:.4}, \"rounds_per_sec\": {:.1}}}{}",
            e.workload,
            e.engine,
            e.n,
            e.rounds,
            e.messages,
            e.seconds,
            e.rounds_per_sec(),
            if i + 1 < entries.len() { "," } else { "" },
        );
    }
    json.push_str("  ],\n");
    json.push_str("  \"batched_over_threaded_at_1k\": {\n");
    let per_workload = [
        "warmup",
        "establish",
        "sort",
        "degrees-implicit",
        "tree-greedy",
    ];
    for (i, w) in per_workload.iter().enumerate() {
        let _ = writeln!(
            json,
            "    \"{w}\": {:.1}{}",
            speedup(w, 1_000),
            if i + 1 < per_workload.len() { "," } else { "" }
        );
    }
    json.push_str("  },\n");
    let _ = write!(
        json,
        "  \"batched_over_threaded_at_10k\": {speedup_10k:.1}\n}}\n"
    );

    std::fs::write(&out_path, &json).expect("write benchmark json");
    println!("{json}");
    eprintln!("wrote {out_path}");

    // Per-workload trend gate: append this run to the (append-only)
    // history and fail on any >2x regression against the previous record
    // from matching hardware.
    let fingerprint = hardware_fingerprint();
    eprintln!("hardware fingerprint: {fingerprint}");
    let regressions = history_path
        .map(|p| check_and_append_history(&p, &entries, quick, &fingerprint))
        .unwrap_or_default();

    assert!(
        speedup_10k.is_nan() || speedup_10k >= 10.0,
        "regression: batched engine is only {speedup_10k:.1}x the threaded \
         oracle at n=10k (target: >=10x)"
    );
    // The observability acceptance line: a NullSink observing every round
    // must cost at most 2% of round-loop throughput, measured at the
    // largest (longest-running, least noisy) warm-up size of the sweep.
    // The gate uses its own paired, interleaved, best-of-k measurement —
    // comparing two independently timed entry rows would let scheduler
    // noise between the measurement windows eat the whole tolerance.
    let overhead_n = warmup_sizes.last().unwrap().0;
    let overhead = nullsink_overhead_pct(overhead_n, 3);
    eprintln!("nullsink overhead at n={overhead_n}: {overhead:.2}% (paired median-of-3)");
    if std::env::var_os("BENCH_HISTORY_NO_GATE").is_some() {
        if overhead > 2.0 {
            eprintln!("BENCH_HISTORY_NO_GATE set — reporting without failing");
        }
    } else {
        assert!(
            overhead <= 2.0,
            "streaming regression: NullSink observation costs {overhead:.2}% of \
             round-loop throughput at n={overhead_n} (gate is 2%)"
        );
    }
    assert!(
        regressions.is_empty(),
        "per-workload regressions against the previous history record:\n  {}",
        regressions.join("\n  ")
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(workload: &str, n: usize, rounds: u64, seconds: f64) -> Entry {
        Entry {
            workload: workload.to_string(),
            engine: "batched",
            n,
            rounds,
            messages: 0,
            seconds,
        }
    }

    #[test]
    fn history_record_round_trips_through_the_parser() {
        let entries = vec![
            entry("warmup", 1000, 500, 0.5),
            entry("sort", 1000, 300, 3.0),
        ];
        let record = history_record(&entries, true, "fp-test");
        let parsed = parse_history_entries(&record);
        assert_eq!(parsed.len(), 2);
        assert!(parsed
            .iter()
            .any(|(k, v)| k == "warmup@1000" && (*v - 1000.0).abs() < 0.1));
        assert!(parsed
            .iter()
            .any(|(k, v)| k == "sort@1000" && (*v - 100.0).abs() < 0.1));
    }

    #[test]
    fn history_gate_flags_two_x_regressions_only() {
        // Per-process path: concurrent test runs on one host must not
        // race on a shared history file.
        let dir =
            std::env::temp_dir().join(format!("engine_bench_history_test_{}", std::process::id()));
        let _ = std::fs::remove_file(&dir);
        let path = dir.to_str().unwrap();
        // First run: no previous record, nothing to flag.
        let fast = vec![entry("warmup", 1000, 1000, 1.0)];
        assert!(check_and_append_history(path, &fast, true, "fp-a").is_empty());
        // 1.5x slower: within the gate.
        let slower = vec![entry("warmup", 1000, 1000, 1.5)];
        assert!(check_and_append_history(path, &slower, true, "fp-a").is_empty());
        // A *full*-mode record must not gate against quick-mode history.
        let full_mode = vec![entry("warmup", 1000, 1000, 9.0)];
        assert!(check_and_append_history(path, &full_mode, false, "fp-a").is_empty());
        // Different hardware: 10x slower but a different fingerprint —
        // never gated against fp-a's records.
        let other_hw = vec![entry("warmup", 1000, 1000, 15.0)];
        assert!(check_and_append_history(path, &other_hw, true, "fp-b").is_empty());
        // >2x slower than the previous same-mode, same-fingerprint
        // (quick, fp-a) record: flagged.
        let regressed = vec![entry("warmup", 1000, 1000, 4.0)];
        let flags = check_and_append_history(path, &regressed, true, "fp-a");
        assert_eq!(flags.len(), 1, "{flags:?}");
        assert!(flags[0].contains("warmup@1000"));
        // The file is append-only: all five records are retained.
        let contents = std::fs::read_to_string(path).unwrap();
        assert_eq!(contents.lines().count(), 5);
        let _ = std::fs::remove_file(&dir);
    }

    #[test]
    fn unknown_lines_parse_to_nothing() {
        assert!(parse_history_entries("not json at all").is_empty());
        assert!(parse_history_entries("{\"entries\":{}}").is_empty());
    }
}
