//! Experiment harness: one table per paper claim (see `DESIGN.md` §5 and
//! `EXPERIMENTS.md`). The `experiments` binary renders the tables; this
//! library holds the runners so Criterion benches and tests can reuse
//! them.

pub mod drive;
pub mod experiments;
pub mod table;

pub use table::Table;

/// All experiment IDs, in presentation order.
pub const ALL_EXPERIMENTS: &[&str] = &[
    "F1", "F2", "T1", "C2", "T3", "T4", "T5", "T11", "T12", "T13", "T14", "T16", "T17", "T18",
    "T19", "T20", "A1", "A2",
];

/// Runs one experiment by ID, returning its tables.
///
/// # Panics
///
/// Panics on an unknown ID.
pub fn run(id: &str) -> Vec<Table> {
    match id {
        "F1" => experiments::figures::fig1(),
        "F2" => experiments::figures::fig2(),
        "T1" => experiments::primitives::t1_bbst(),
        "C2" => experiments::primitives::c2_positions(),
        "T3" => experiments::primitives::t3_sort(),
        "T4" => experiments::primitives::t4_aggregate(),
        "T5" => experiments::primitives::t5_collect(),
        "T11" => experiments::degrees::t11_implicit(),
        "T12" => experiments::degrees::t12_explicit(),
        "T13" => experiments::degrees::t13_envelope(),
        "T14" => experiments::trees::t14_chain(),
        "T16" => experiments::trees::t16_greedy(),
        "T17" => experiments::connectivity::t17_ncc1(),
        "T18" => experiments::connectivity::t18_ncc0(),
        "T19" => experiments::lower_bounds::t19_explicit(),
        "T20" => experiments::lower_bounds::t20_implicit(),
        "A1" => experiments::ablations::a1_capacity(),
        "A2" => experiments::ablations::a2_policy(),
        other => panic!("unknown experiment id {other:?}"),
    }
}
