//! Builder-backed driver shorthands for the benches and experiments:
//! every realization in this crate is constructed through the
//! `dgr::Realization` facade, with the handful of knobs the experiment
//! tables sweep (seed, engine, capacity factor, policy, sorting backend)
//! exposed as plain arguments.

pub use dgr::{CapacityPolicy, Engine, Kt0, Realization, SortBackend, Workload};
use dgr_connectivity::ThresholdRealization;
use dgr_core::DriverOutput;
use dgr_trees::{TreeAlgo, TreeRealization};
use distributed_graph_realizations as dgr;

/// One fully-knobbed degree realization through the builder.
pub fn degrees(
    workload: Workload,
    seed: u64,
    engine: Engine,
    capacity_factor: Option<f64>,
) -> DriverOutput {
    let mut b = Realization::new(workload).seed(seed).engine(engine);
    if let Some(factor) = capacity_factor {
        b = b.capacity_factor(factor);
    }
    b.run().expect("realization failed").degrees().clone()
}

/// Implicit realization (Algorithm 3) at the given seed.
pub fn implicit(d: &[usize], seed: u64, engine: Engine) -> DriverOutput {
    degrees(Workload::Implicit(d.to_vec()), seed, engine, None)
}

/// Explicit realization (Theorem 12; queueing policy by default).
pub fn explicit(d: &[usize], seed: u64, engine: Engine) -> DriverOutput {
    degrees(Workload::Explicit(d.to_vec()), seed, engine, None)
}

/// Upper-envelope realization (Theorem 13).
pub fn envelope(d: &[usize], seed: u64, engine: Engine) -> DriverOutput {
    degrees(Workload::Envelope(d.to_vec()), seed, engine, None)
}

/// Tree realization (Algorithms 4/5).
pub fn tree(d: &[usize], algo: TreeAlgo, seed: u64, engine: Engine) -> TreeRealization {
    Realization::new(Workload::Tree {
        degrees: d.to_vec(),
        algo,
    })
    .seed(seed)
    .engine(engine)
    .run()
    .expect("tree realization failed")
    .tree()
    .clone()
}

/// NCC1 star threshold realization (Theorem 17).
pub fn ncc1(rho: &[usize], seed: u64, engine: Engine) -> ThresholdRealization {
    Realization::new(Workload::Ncc1(rho.to_vec()))
        .seed(seed)
        .engine(engine)
        .run()
        .expect("NCC1 realization failed")
        .threshold()
        .clone()
}

/// NCC0 explicit threshold realization (Algorithm 6, pipeline phase 1).
pub fn ncc0(rho: &[usize], seed: u64, engine: Engine) -> ThresholdRealization {
    Realization::new(Workload::Ncc0Threshold(rho.to_vec()))
        .seed(seed)
        .engine(engine)
        .run()
        .expect("NCC0 realization failed")
        .threshold()
        .clone()
}
