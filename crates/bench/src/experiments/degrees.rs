//! Degree-realization experiments (Theorems 11, 12, 13): the paper's
//! headline results.

use crate::drive::{self, Engine};
use crate::experiments::ratios_flat;
use crate::table::{f2, Table};
use dgr_core::DegreeSequence;
use dgr_graphgen as graphgen;

fn lg(n: usize) -> f64 {
    (n as f64).log2()
}

/// Theorem 11: implicit realization in `O~(min{√m, Δ})` rounds. Swept two
/// ways: Δ growing at fixed shape (regular graphs — the Δ side of the
/// min), and the √m-concentrated family (the √m side).
pub fn t11_implicit() -> Vec<Table> {
    // --- Δ sweep: k-regular on fixed n. ---
    let n = 256;
    let mut t1 = Table::new(
        format!("Theorem 11a — implicit realization, Δ sweep (regular, n = {n})"),
        &[
            "Δ",
            "m",
            "phases",
            "rounds",
            "min(√m,Δ)",
            "phases/bound",
            "degrees",
        ],
    );
    let mut ratios = Vec::new();
    let mut exact = true;
    for &k in &[2usize, 4, 8, 16, 32] {
        let degrees = graphgen::near_regular_sequence(n, k, 7);
        let seq = DegreeSequence::new(degrees.clone());
        let out = drive::implicit(&degrees, 7, Engine::Batched);
        let r = out.expect_realized();
        let ok = dgr_core::verify::degrees_match(&r.graph, &r.requested).is_ok();
        exact &= ok && r.metrics.is_clean();
        let bound = dgr_core::distributed::implicit::phase_bound(&seq);
        ratios.push(r.phases as f64 / bound);
        t1.row(vec![
            seq.max_degree().to_string(),
            seq.edge_count().to_string(),
            r.phases.to_string(),
            r.metrics.rounds.to_string(),
            f2(bound),
            f2(r.phases as f64 / bound),
            if ok {
                "exact".into()
            } else {
                "MISMATCH".into()
            },
        ]);
    }
    t1.verdict(
        exact && ratios_flat(&ratios, 3.0),
        "phases/min(√m,Δ) stays flat as Δ grows 16x; all realizations \
         exact under strict KT0",
    );

    // --- √m sweep: the concentrated D* family (Δ ≈ √m ≈ k). ---
    let mut t2 = Table::new(
        "Theorem 11b — implicit realization, √m sweep (K_k-profile, n = 300)",
        &[
            "m",
            "√m",
            "phases",
            "rounds",
            "rounds/(√m·log²n)",
            "degrees",
        ],
    );
    let mut ratios = Vec::new();
    let mut exact = true;
    for &m in &[25usize, 100, 400, 1600, 6400] {
        let n = 300;
        let degrees = graphgen::sqrt_m_family(n, m);
        let seq = DegreeSequence::new(degrees.clone());
        let out = drive::implicit(&degrees, 8, Engine::Batched);
        let r = out.expect_realized();
        let ok = dgr_core::verify::degrees_match(&r.graph, &r.requested).is_ok();
        exact &= ok && r.metrics.is_clean();
        let m_real = seq.edge_count();
        let sqrt_m = (m_real as f64).sqrt();
        let ratio = r.metrics.rounds as f64 / (sqrt_m * lg(n) * lg(n));
        ratios.push(ratio);
        t2.row(vec![
            m_real.to_string(),
            f2(sqrt_m),
            r.phases.to_string(),
            r.metrics.rounds.to_string(),
            f2(ratio),
            if ok {
                "exact".into()
            } else {
                "MISMATCH".into()
            },
        ]);
    }
    t2.verdict(
        exact && ratios_flat(&ratios, 4.0),
        "rounds/(√m · polylog) stays flat while m grows 256x — the O~(√m) \
         side of the bound",
    );
    vec![t1, t2]
}

/// Theorem 12: explicit realization — the hand-off adds
/// `O(Δ/log n + log n)` rounds on top of the implicit realization.
pub fn t12_explicit() -> Vec<Table> {
    let n = 256;
    let mut t = Table::new(
        format!("Theorem 12 — explicit realization hand-off (star-heavy, n = {n})"),
        &[
            "Δ",
            "implicit rounds",
            "explicit rounds",
            "extra",
            "Δ/cap + log n",
            "extra/budget",
        ],
    );
    let mut ratios = Vec::new();
    let mut ok_all = true;
    for &delta in &[16usize, 32, 64, 128, 255] {
        let mut degrees = vec![2usize; n];
        degrees[0] = delta;
        graphgen::repair_to_graphic(&mut degrees);
        let seq = DegreeSequence::new(degrees.clone());
        let imp = drive::implicit(&degrees, 9, Engine::Batched);
        let exp = drive::explicit(&degrees, 9, Engine::Batched);
        let (ri, re) = (imp.expect_realized(), exp.expect_realized());
        ok_all &= dgr_core::verify::degrees_match(&re.graph, &re.requested).is_ok()
            && re.metrics.undelivered == 0;
        let extra = re.metrics.rounds.saturating_sub(ri.metrics.rounds);
        let cap = re.metrics.capacity as f64;
        let budget = seq.max_degree() as f64 / cap + lg(n);
        ratios.push(extra as f64 / budget);
        t.row(vec![
            seq.max_degree().to_string(),
            ri.metrics.rounds.to_string(),
            re.metrics.rounds.to_string(),
            extra.to_string(),
            f2(budget),
            f2(extra as f64 / budget),
        ]);
    }
    t.verdict(
        ok_all && ratios_flat(&ratios, 4.0),
        "hand-off cost tracks Δ/cap + log n while Δ grows 16x; every edge \
         known at both endpoints, zero undelivered messages",
    );
    vec![t]
}

/// Theorem 13: non-graphic sequences get upper envelopes with
/// `d'ᵢ ≥ dᵢ` and `Σd' ≤ 2Σd`.
pub fn t13_envelope() -> Vec<Table> {
    let mut t = Table::new(
        "Theorem 13 — upper-envelope realization of non-graphic sequences",
        &[
            "family",
            "n",
            "Σd",
            "Σd'",
            "Σd'/Σd",
            "d'≥d everywhere",
            "duplicates",
        ],
    );
    let mut ok_all = true;
    let families: Vec<(&str, Vec<usize>)> = vec![
        ("odd sum", {
            let mut d = graphgen::random_graphic_sequence(60, 12, 21);
            d[0] += 1;
            d
        }),
        ("EG violation", {
            let mut d = vec![2usize; 50];
            d[0] = 49;
            d[1] = 49;
            d[2] = 49;
            d
        }),
        ("random + noise", {
            let mut d = graphgen::random_graphic_sequence(80, 20, 22);
            for (i, v) in d.iter_mut().enumerate() {
                if i % 7 == 0 {
                    *v += 3;
                }
            }
            d
        }),
        (
            "already graphic",
            graphgen::random_graphic_sequence(64, 10, 23),
        ),
    ];
    for (name, degrees) in families {
        let n = degrees.len();
        let sum: usize = degrees.iter().sum();
        let out = drive::envelope(&degrees, 24, Engine::Batched);
        let r = out.expect_realized();
        let mut env_sum = 0usize;
        let mut dominates = true;
        for (i, &id) in r.path_order.iter().enumerate() {
            let d_prime = r.multi_degrees[&id];
            dominates &= d_prime >= degrees[i];
            env_sum += d_prime;
        }
        let ok = dominates && env_sum <= 2 * sum;
        ok_all &= ok;
        t.row(vec![
            name.into(),
            n.to_string(),
            sum.to_string(),
            env_sum.to_string(),
            f2(env_sum as f64 / sum as f64),
            dominates.to_string(),
            r.duplicate_edges.to_string(),
        ]);
    }
    t.verdict(
        ok_all,
        "every envelope dominates its input with Σd' ≤ 2Σd (and graphic \
         inputs realize exactly, ratio 1.00)",
    );
    vec![t]
}
