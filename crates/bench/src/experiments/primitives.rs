//! Primitive round-complexity experiments (Theorems 1, 3, 4, 5 and
//! Corollary 2): measured rounds vs. the predicted growth along `n`
//! sweeps. Rounds here are *exact model quantities* reported by the
//! simulator, not wall-clock.

use crate::experiments::ratios_flat;
use crate::table::{f2, Table};
use dgr_ncc::{Config, Network};
use dgr_primitives::sort::{self, Order};
use dgr_primitives::{bbst, contacts, ops, traversal, vpath, PathCtx};

const SWEEP: &[usize] = &[16, 32, 64, 128, 256, 512, 1024];

fn lg(n: usize) -> f64 {
    (n as f64).log2()
}

/// Theorem 1: BBST height ≤ ⌈log n⌉+1, construction rounds `O(log n)`.
pub fn t1_bbst() -> Vec<Table> {
    let mut t = Table::new(
        "Theorem 1 — balanced binary search tree construction",
        &[
            "n",
            "rounds",
            "log2(n)",
            "rounds/log2(n)",
            "max depth",
            "bound",
        ],
    );
    let mut ratios = Vec::new();
    let mut heights_ok = true;
    for &n in SWEEP {
        let net = Network::new(n, Config::ncc0(1));
        let result = net
            .run(|h| {
                let vp = vpath::undirect(h);
                let ct = contacts::build(h, &vp);
                bbst::build(h, &vp, &ct).depth
            })
            .unwrap();
        assert!(result.metrics.is_clean());
        let rounds = result.metrics.rounds;
        let depth = result.outputs.iter().map(|(_, d)| *d).max().unwrap();
        let bound = bbst::Bbst::depth_bound(n);
        heights_ok &= depth <= bound;
        let ratio = rounds as f64 / lg(n);
        ratios.push(ratio);
        t.row(vec![
            n.to_string(),
            rounds.to_string(),
            f2(lg(n)),
            f2(ratio),
            depth.to_string(),
            bound.to_string(),
        ]);
    }
    t.verdict(
        heights_ok && ratios_flat(&ratios, 2.0),
        "height within ⌈log n⌉+1 at every n; rounds/log n flat \
         (construction is Θ(log n) rounds)",
    );
    vec![t]
}

/// Corollary 2: positions + median in `O(log n)` rounds.
pub fn c2_positions() -> Vec<Table> {
    let mut t = Table::new(
        "Corollary 2 — path positions and median in O(log n) rounds",
        &[
            "n",
            "pos rounds",
            "median rounds",
            "total/log2(n)",
            "all correct",
        ],
    );
    let mut ratios = Vec::new();
    let mut correct = true;
    for &n in SWEEP {
        let net = Network::new(n, Config::ncc0(2));
        let order = net.ids_in_path_order().to_vec();
        let result = net
            .run(|h| {
                let vp = vpath::undirect(h);
                let ct = contacts::build(h, &vp);
                let tree = bbst::build(h, &vp, &ct);
                let r0 = h.round();
                let trav = traversal::positions(h, &vp, &tree);
                let r1 = h.round();
                let med = ops::median(h, &vp, &tree, trav.position);
                let r2 = h.round();
                (trav.position, med, r1 - r0, r2 - r1)
            })
            .unwrap();
        let (pos_rounds, med_rounds) = {
            let (_, (_, _, a, b)) = &result.outputs[0];
            (*a, *b)
        };
        for (i, (_, (pos, med, ..))) in result.outputs.iter().enumerate() {
            correct &= *pos == i && *med == order[(n - 1) / 2];
        }
        let total = (pos_rounds + med_rounds) as f64;
        ratios.push(total / lg(n));
        t.row(vec![
            n.to_string(),
            pos_rounds.to_string(),
            med_rounds.to_string(),
            f2(total / lg(n)),
            correct.to_string(),
        ]);
    }
    t.verdict(
        correct && ratios_flat(&ratios, 2.0),
        "every node learns its exact position and the median ID; \
         rounds/log n flat",
    );
    vec![t]
}

/// Theorem 3: sorting into a sorted path — paper `O(log³ n)`, ours
/// `O(log² n)` via the odd-even network.
pub fn t3_sort() -> Vec<Table> {
    let mut t = Table::new(
        "Theorem 3 — distributed sorting into a sorted path",
        &[
            "n",
            "rounds",
            "log2²(n)",
            "rounds/log²",
            "paper budget log³",
        ],
    );
    let mut ratios = Vec::new();
    let mut sorted_ok = true;
    for &n in SWEEP {
        let net = Network::new(n, Config::ncc0(3));
        let result = net
            .run(|h| {
                let c = PathCtx::establish(h);
                let key = h.id() % 97;
                let r0 = h.round();
                let sp = sort::sort_at(h, &c.vp, &c.contacts, c.position, key, Order::Ascending);
                (h.round() - r0, key, sp.rank)
            })
            .unwrap();
        assert!(result.metrics.is_clean());
        let rounds = result.outputs[0].1 .0;
        let mut by_rank: Vec<(usize, u64)> = result
            .outputs
            .iter()
            .map(|(_, (_, k, r))| (*r, *k))
            .collect();
        by_rank.sort_unstable();
        sorted_ok &= by_rank.windows(2).all(|w| w[0].1 <= w[1].1);
        let ratio = rounds as f64 / (lg(n) * lg(n));
        ratios.push(ratio);
        t.row(vec![
            n.to_string(),
            rounds.to_string(),
            f2(lg(n) * lg(n)),
            f2(ratio),
            f2(lg(n).powi(3)),
        ]);
    }
    t.verdict(
        sorted_ok && ratios_flat(&ratios, 2.5),
        "keys sorted at every n; rounds/log² n flat — comfortably inside \
         the paper's O(log³ n) budget",
    );
    vec![t]
}

/// Theorem 4: global broadcast + aggregation in `O(log n)` rounds.
pub fn t4_aggregate() -> Vec<Table> {
    let mut t = Table::new(
        "Theorem 4 — global aggregation + broadcast",
        &["n", "rounds", "log2(n)", "rounds/log2(n)", "sum correct"],
    );
    let mut ratios = Vec::new();
    let mut correct = true;
    for &n in SWEEP {
        let net = Network::new(n, Config::ncc0(4));
        let want: u64 = net.ids_in_path_order().iter().map(|i| i % 64).sum();
        let result = net
            .run(|h| {
                let c = PathCtx::establish(h);
                let r0 = h.round();
                let sum = ops::aggregate_broadcast(h, &c.vp, &c.tree, h.id() % 64, |a, b| a + b);
                (h.round() - r0, sum)
            })
            .unwrap();
        let rounds = result.outputs[0].1 .0;
        correct &= result.outputs.iter().all(|(_, (_, s))| *s == want);
        ratios.push(rounds as f64 / lg(n));
        t.row(vec![
            n.to_string(),
            rounds.to_string(),
            f2(lg(n)),
            f2(rounds as f64 / lg(n)),
            correct.to_string(),
        ]);
    }
    t.verdict(
        correct && ratios_flat(&ratios, 2.0),
        "every node learns the global aggregate; rounds/log n flat",
    );
    vec![t]
}

/// Theorem 5: global collection in `O(k + log n)` rounds — linear in `k`
/// at fixed `n`.
pub fn t5_collect() -> Vec<Table> {
    let n = 256;
    let mut t = Table::new(
        format!("Theorem 5 — global collection of k tokens (n = {n})"),
        &["k", "rounds", "k/cap + log2(n)", "ratio", "tokens at root"],
    );
    let mut ratios = Vec::new();
    let mut complete = true;
    for &k in &[8usize, 32, 64, 128, 255] {
        let net = Network::new(n, Config::ncc0(5));
        let cap = net.capacity();
        let result = net
            .run(move |h| {
                let c = PathCtx::establish(h);
                let token = (c.position > 0 && c.position <= k).then_some(c.position as u64);
                let r0 = h.round();
                let got = ops::collect(h, &c.vp, &c.tree, token, k);
                (h.round() - r0, c.tree.is_root, got.len())
            })
            .unwrap();
        assert!(result.metrics.is_clean());
        let rounds = result.outputs[0].1 .0;
        let at_root = result
            .outputs
            .iter()
            .find(|(_, (_, root, _))| *root)
            .map(|(_, (_, _, l))| *l)
            .unwrap();
        complete &= at_root == k;
        let budget = k as f64 / cap as f64 + lg(n);
        ratios.push(rounds as f64 / budget);
        t.row(vec![
            k.to_string(),
            rounds.to_string(),
            f2(budget),
            f2(rounds as f64 / budget),
            at_root.to_string(),
        ]);
    }
    t.verdict(
        complete && ratios_flat(&ratios, 3.0),
        "root receives all k tokens; rounds track k/cap + log n \
         (linear in k, as Theorem 5 predicts)",
    );
    vec![t]
}
