//! Connectivity-threshold experiments (Theorems 17 and 18).

use crate::drive::{self, Engine};
use crate::experiments::ratios_flat;
use crate::table::{f2, Table};
use dgr_connectivity::{edge_lower_bound, ThresholdInstance};
use dgr_graphgen as graphgen;

fn lg(n: usize) -> f64 {
    (n as f64).log2()
}

/// Theorem 17: NCC1 implicit realization in `O~(1)` rounds, ≤ 2·OPT edges.
pub fn t17_ncc1() -> Vec<Table> {
    let n = 128;
    let mut t = Table::new(
        format!("Theorem 17 — NCC1 implicit threshold realization (n = {n})"),
        &["Δρ", "rounds", "edges", "⌈Σρ/2⌉", "edges/LB", "satisfied"],
    );
    let mut ok_all = true;
    let mut rounds_seen = Vec::new();
    for &dmax in &[2usize, 8, 32, 127] {
        let rho = graphgen::uniform_thresholds(n, 1, dmax, 41);
        let inst = ThresholdInstance::new(rho);
        let out = drive::ncc1(&inst.rho, 41, Engine::Batched);
        let lb = edge_lower_bound(&inst);
        let approx = out.graph.edge_count() as f64 / lb as f64;
        ok_all &= out.report.satisfied && approx <= 2.0;
        rounds_seen.push(out.metrics.rounds);
        t.row(vec![
            dmax.to_string(),
            out.metrics.rounds.to_string(),
            out.graph.edge_count().to_string(),
            lb.to_string(),
            f2(approx),
            out.report.satisfied.to_string(),
        ]);
    }
    // O~(1): rounds must be identical across the entire Δ sweep (they
    // depend only on n) and polylog in n.
    let flat = rounds_seen.windows(2).all(|w| w[0] == w[1]);
    let polylog = (rounds_seen[0] as f64) <= 12.0 * lg(n);
    t.verdict(
        ok_all && flat && polylog,
        "round count identical across a 64x Δ sweep (O~(1), i.e. \
         independent of Δ); every realization flow-certified at ≤ 2·OPT \
         edges",
    );
    vec![t]
}

/// Theorem 18: NCC0 explicit realization in `O~(Δ)` rounds, ≤ 2·OPT edges.
pub fn t18_ncc0() -> Vec<Table> {
    let n = 128;
    let mut t = Table::new(
        format!("Theorem 18 — NCC0 explicit threshold realization (n = {n})"),
        &[
            "Δρ",
            "rounds",
            "Δ + log²n",
            "rounds/budget",
            "edges/LB",
            "satisfied",
        ],
    );
    let mut ok_all = true;
    let mut ratios = Vec::new();
    for &dmax in &[4usize, 8, 16, 32, 64] {
        let rho = graphgen::uniform_thresholds(n, 1, dmax, 42);
        let inst = ThresholdInstance::new(rho);
        let out = drive::ncc0(&inst.rho, 42, Engine::Batched);
        let lb = edge_lower_bound(&inst);
        let approx = out.graph.edge_count() as f64 / lb as f64;
        ok_all &= out.report.satisfied && approx <= 2.0 && out.metrics.undelivered == 0;
        let budget = inst.max_rho() as f64 + lg(n) * lg(n);
        ratios.push(out.metrics.rounds as f64 / budget);
        t.row(vec![
            inst.max_rho().to_string(),
            out.metrics.rounds.to_string(),
            f2(budget),
            f2(out.metrics.rounds as f64 / budget),
            f2(approx),
            out.report.satisfied.to_string(),
        ]);
    }
    t.verdict(
        ok_all && ratios_flat(&ratios, 3.0),
        "rounds track Δ + polylog while Δ grows 16x (O~(Δ)); all \
         realizations explicit, flow-certified, ≤ 2·OPT edges",
    );

    // Workload-shape table: the approximation quality across profiles.
    let mut t2 = Table::new(
        "Theorem 18 (quality) — approximation factor across workload shapes",
        &["workload", "n", "Σρ", "edges", "edges/LB", "satisfied"],
    );
    let shapes: Vec<(&str, Vec<usize>)> = vec![
        ("uniform [1,6]", graphgen::uniform_thresholds(96, 1, 6, 5)),
        ("tiered core-8", graphgen::tiered_thresholds(96, 6, 8)),
        ("single hub 24", graphgen::single_hub_thresholds(96, 24)),
        ("all equal 5", vec![5; 96]),
    ];
    let mut ok2 = true;
    for (name, rho) in shapes {
        let inst = ThresholdInstance::new(rho);
        let out = drive::ncc0(&inst.rho, 43, Engine::Batched);
        let lb = edge_lower_bound(&inst);
        let approx = out.graph.edge_count() as f64 / lb as f64;
        ok2 &= out.report.satisfied && approx <= 2.0;
        t2.row(vec![
            name.into(),
            inst.len().to_string(),
            inst.sum().to_string(),
            out.graph.edge_count().to_string(),
            f2(approx),
            out.report.satisfied.to_string(),
        ]);
    }
    t2.verdict(ok2, "2-approximation holds on every workload shape");
    vec![t, t2]
}
