//! Lower-bound experiments (Theorems 19 and 20): the upper-bound
//! algorithms measured on the adversarial families, showing the measured
//! cost scales *with* the lower bound — i.e. the algorithms are tight up
//! to polylog factors, which is the paper's tightness claim.
//!
//! The simulator also reports `max_knowledge`: the largest set of IDs any
//! node learned. Theorem 20's argument is information-theoretic — the
//! heavy nodes of `D*` must jointly learn Ω(m) IDs, so someone learns
//! Ω(√m) — and the measurement makes that visible directly.

use crate::drive::{self, Engine};
use crate::experiments::ratios_flat;
use crate::table::{f2, Table};
use dgr_core::DegreeSequence;
use dgr_graphgen as graphgen;

fn lg(n: usize) -> f64 {
    (n as f64).log2()
}

/// Theorem 19: explicit realization needs `Ω(Δ/log n)` rounds — the
/// explicit algorithm's measured rounds scale linearly with that bound.
pub fn t19_explicit() -> Vec<Table> {
    let n = 256;
    let mut t = Table::new(
        format!("Theorem 19 — explicit realization vs the Ω(Δ/log n) bound (n = {n})"),
        &["Δ", "rounds", "Δ/log2(n)", "rounds/(Δ/log n + log²n)"],
    );
    let mut ratios = Vec::new();
    for &delta in &[32usize, 64, 128, 255] {
        let mut degrees = vec![2usize; n];
        degrees[0] = delta;
        graphgen::repair_to_graphic(&mut degrees);
        let seq = DegreeSequence::new(degrees.clone());
        let out = drive::explicit(&degrees, 51, Engine::Batched);
        let r = out.expect_realized();
        let d = seq.max_degree() as f64;
        let budget = d / lg(n) + lg(n) * lg(n);
        ratios.push(r.metrics.rounds as f64 / budget);
        t.row(vec![
            seq.max_degree().to_string(),
            r.metrics.rounds.to_string(),
            f2(d / lg(n)),
            f2(r.metrics.rounds as f64 / budget),
        ]);
    }
    t.verdict(
        ratios_flat(&ratios, 3.0),
        "measured rounds grow in step with Δ/log n — the algorithm meets \
         the lower bound's growth rate (tight up to polylog factors)",
    );
    vec![t]
}

/// Theorem 20: the `Ω̃(√m)` family `D*` and the `Ω̃(Δ)` regular family.
pub fn t20_implicit() -> Vec<Table> {
    // --- √m family: K_k profile, m grows, knowledge must concentrate. ---
    let n = 300;
    let mut t1 = Table::new(
        format!("Theorem 20a — implicit realization on D* (√m family, n = {n})"),
        &[
            "m",
            "√m",
            "rounds",
            "rounds/(√m·log²n)",
            "max knowledge",
            "≥ √m?",
        ],
    );
    let mut ratios = Vec::new();
    let mut knowledge_ok = true;
    for &m in &[100usize, 400, 1600, 6400] {
        let degrees = graphgen::sqrt_m_family(n, m);
        let seq = DegreeSequence::new(degrees.clone());
        let out = drive::implicit(&degrees, 52, Engine::Batched);
        let r = out.expect_realized();
        let m_real = seq.edge_count() as f64;
        let sqrt_m = m_real.sqrt();
        ratios.push(r.metrics.rounds as f64 / (sqrt_m * lg(n) * lg(n)));
        // The information-theoretic core of the bound: some node must
        // learn ≥ √m IDs (its final degree alone forces that).
        let learned = r.metrics.max_knowledge;
        knowledge_ok &= (learned as f64) >= sqrt_m - 1.0;
        t1.row(vec![
            (m_real as usize).to_string(),
            f2(sqrt_m),
            r.metrics.rounds.to_string(),
            f2(r.metrics.rounds as f64 / (sqrt_m * lg(n) * lg(n))),
            learned.to_string(),
            ((learned as f64) >= sqrt_m - 1.0).to_string(),
        ]);
    }
    t1.verdict(
        knowledge_ok && ratios_flat(&ratios, 4.0),
        "rounds scale with √m·polylog and some node provably learns ≥ √m \
         IDs — the measured cost sits right on the Ω̃(√m) bound",
    );

    // --- Δ-regular family. ---
    let n = 200;
    let mut t2 = Table::new(
        format!("Theorem 20b — implicit realization on Δ-regular (n = {n})"),
        &["Δ", "rounds", "rounds/(Δ·log²n)", "max knowledge", "≥ Δ?"],
    );
    let mut ratios = Vec::new();
    let mut knowledge_ok = true;
    for &delta in &[4usize, 8, 16, 32, 64] {
        let degrees = graphgen::delta_regular_family(n, delta);
        let out = drive::implicit(&degrees, 53, Engine::Batched);
        let r = out.expect_realized();
        ratios.push(r.metrics.rounds as f64 / (delta as f64 * lg(n) * lg(n)));
        let learned = r.metrics.max_knowledge;
        knowledge_ok &= learned >= delta;
        t2.row(vec![
            delta.to_string(),
            r.metrics.rounds.to_string(),
            f2(r.metrics.rounds as f64 / (delta as f64 * lg(n) * lg(n))),
            learned.to_string(),
            (learned >= delta).to_string(),
        ]);
    }
    t2.verdict(
        knowledge_ok && ratios_flat(&ratios, 4.0),
        "rounds scale with Δ·polylog on Δ-regular inputs and every run \
         forces ≥ Δ learned IDs somewhere — matching Ω̃(Δ)",
    );
    vec![t1, t2]
}
