//! Ablations for the design choices `DESIGN.md` calls out: how the
//! capacity constant and the receive-side policy affect the algorithms.
//! (These are *our* knobs — the paper's `O(log n)` hides them — so the
//! ablation quantifies what the asymptotics abstract away.)

use crate::drive::{self, Engine, Workload};
use crate::table::{f2, Table};
use dgr_graphgen as graphgen;
use dgr_ncc::{tags, CapacityPolicy, Config, Msg, Network};

/// A1: capacity-factor sweep. The per-round budget is
/// `cap = max(4, ⌈c·log₂ n⌉)`; the implicit realization uses O(1)
/// messages per node per round (insensitive to `c`), while the explicit
/// hand-off is bandwidth-bound: its cost is an additive latency term plus
/// a `Θ(Δ/cap)` transfer term that shrinks as `c` grows.
pub fn a1_capacity() -> Vec<Table> {
    let n = 192;
    let mut degrees = vec![2usize; n];
    degrees[0] = n - 1;
    graphgen::repair_to_graphic(&mut degrees);

    let mut t = Table::new(
        format!(
            "Ablation A1 — capacity factor c (n = {n}, star-heavy Δ = {})",
            n - 1
        ),
        &["c", "cap", "implicit rounds", "explicit rounds", "hand-off"],
    );
    let mut handoffs = Vec::new();
    let mut implicit_rounds = Vec::new();
    for &factor in &[0.5f64, 1.0, 2.0, 4.0, 8.0] {
        let imp = drive::degrees(
            Workload::Implicit(degrees.clone()),
            61,
            Engine::Batched,
            Some(factor),
        );
        let exp = drive::degrees(
            Workload::Explicit(degrees.clone()),
            61,
            Engine::Batched,
            Some(factor),
        );
        let (ri, re) = (imp.expect_realized(), exp.expect_realized());
        let cap = re.metrics.capacity;
        let handoff = re.metrics.rounds.saturating_sub(ri.metrics.rounds);
        handoffs.push(handoff as f64);
        implicit_rounds.push(ri.metrics.rounds as f64);
        t.row(vec![
            f2(factor),
            cap.to_string(),
            ri.metrics.rounds.to_string(),
            re.metrics.rounds.to_string(),
            handoff.to_string(),
        ]);
    }
    // Bandwidth-bound: 16x more capacity should cut the hand-off by at
    // least 3x (the Θ(Δ/cap) term dominates at small cap); latency-bound:
    // implicit rounds move by < 30% across the whole sweep.
    let handoff_scales = handoffs.first().unwrap() / handoffs.last().unwrap() >= 3.0
        && handoffs.windows(2).all(|w| w[0] >= w[1]);
    let implicit_flat = {
        let lo = implicit_rounds.iter().cloned().fold(f64::MAX, f64::min);
        let hi = implicit_rounds.iter().cloned().fold(0.0, f64::max);
        hi / lo <= 1.3
    };
    t.verdict(
        handoff_scales && implicit_flat,
        "hand-off shrinks monotonically with capacity (bandwidth-bound, \
         ≥3x over the sweep) while implicit rounds stay within 30% \
         (latency-bound) — the split the O~ notation hides",
    );
    vec![t]
}

/// A2: receive-policy ablation on a raw burst. Everyone sends one message
/// to the head in the same round — the fan-in the NCC model forbids.
/// Under `Record` the head receives the whole burst at once (violations
/// counted); under `Queue` delivery is paced to the capacity and paid for
/// in rounds. This is the micro-benchmark behind every "staggered"
/// design decision in the explicit realizations.
pub fn a2_policy() -> Vec<Table> {
    let n = 128;
    let mut t = Table::new(
        format!("Ablation A2 — receive policy under an n-to-1 burst (n = {n})"),
        &[
            "policy",
            "rounds to drain",
            "max recv/round",
            "cap",
            "recv violations",
            "delivered",
        ],
    );
    let mut rows = Vec::new();
    for (name, policy) in [
        ("Queue", CapacityPolicy::Queue),
        ("Record", CapacityPolicy::Record),
    ] {
        let mut cfg = Config::ncc0(62);
        cfg.capacity_policy = policy;
        cfg.track_knowledge = false; // everyone addresses the head directly
        let net = Network::new(n, cfg);
        let cap = net.capacity();
        let head = net.ids_in_path_order()[0];
        let wait = (n as u64).div_ceil(cap as u64) + 2;
        let result = net
            .run(move |h| {
                let out = if h.id() == head {
                    vec![]
                } else {
                    vec![(head, Msg::signal(tags::GENERIC))]
                };
                let mut got = h.step(out).len();
                for _ in 0..wait {
                    got += h.idle().len();
                }
                got
            })
            .unwrap();
        let delivered = *result.output_of(head).unwrap();
        rows.push((
            name,
            result.metrics.max_received_per_round,
            cap,
            result.metrics.violations.receive_capacity,
            delivered,
        ));
        t.row(vec![
            name.into(),
            result.metrics.rounds.to_string(),
            result.metrics.max_received_per_round.to_string(),
            cap.to_string(),
            result.metrics.violations.receive_capacity.to_string(),
            delivered.to_string(),
        ]);
    }
    let (queue, record) = (&rows[0], &rows[1]);
    let ok = queue.1 <= queue.2               // Queue pacing holds
        && queue.3 == 0
        && queue.4 == n - 1                   // and everything arrives
        && record.1 == n - 1                  // Record shows the raw burst
        && record.3 >= 1;
    t.verdict(
        ok,
        "Record exposes the raw n-1 burst (capacity breached in one \
         round); Queue delivers the same messages within capacity, paying \
         in rounds — the trade the staggered hand-off is built around",
    );
    vec![t]
}
