//! Tree-realization experiments (Theorems 14 and 16).

use crate::drive::{self, Engine};
use crate::experiments::ratios_flat;
use crate::table::{f2, Table};
use dgr_core::DegreeSequence;
use dgr_graphgen as graphgen;
use dgr_trees::{greedy, TreeAlgo};

fn lg(n: usize) -> f64 {
    (n as f64).log2()
}

/// Theorem 14: implicit tree realization in polylog rounds.
pub fn t14_chain() -> Vec<Table> {
    let mut t = Table::new(
        "Theorem 14 — tree realization (Algorithm 4), n sweep",
        &[
            "n",
            "rounds",
            "log2²(n)",
            "rounds/log²",
            "is tree",
            "degrees",
        ],
    );
    let mut ratios = Vec::new();
    let mut ok_all = true;
    for &n in &[32usize, 64, 128, 256, 512, 1024] {
        let degrees = graphgen::random_tree_sequence(n, n as u64);
        let out = drive::tree(&degrees, TreeAlgo::Chain, 31, Engine::Batched);
        let r = out.expect_realized();
        let deg_ok = dgr_core::verify::degrees_match(&r.graph, &r.requested).is_ok();
        ok_all &= r.graph.is_tree() && deg_ok && r.metrics.is_clean();
        let ratio = r.metrics.rounds as f64 / (lg(n) * lg(n));
        ratios.push(ratio);
        t.row(vec![
            n.to_string(),
            r.metrics.rounds.to_string(),
            f2(lg(n) * lg(n)),
            f2(ratio),
            r.graph.is_tree().to_string(),
            if deg_ok {
                "exact".into()
            } else {
                "MISMATCH".into()
            },
        ]);
    }
    t.verdict(
        ok_all && ratios_flat(&ratios, 2.5),
        "valid trees with exact degrees at every n; rounds/log² n flat \
         (polylog, independent of Δ)",
    );
    vec![t]
}

/// Theorem 16 (+ Lemma 15): Algorithm 5's tree has minimum diameter.
pub fn t16_greedy() -> Vec<Table> {
    let mut t = Table::new(
        "Theorem 16 — minimum-diameter tree realization (Algorithm 5)",
        &[
            "profile",
            "n",
            "Alg.4 diameter",
            "Alg.5 diameter",
            "greedy T_G",
            "brute min",
        ],
    );
    let mut ok_all = true;
    let profiles: Vec<(&str, Vec<usize>)> = vec![
        ("star", graphgen::star_tree_sequence(64)),
        (
            "caterpillar",
            graphgen::caterpillar_tree_sequence(64, 20, 3),
        ),
        ("random", graphgen::random_tree_sequence(64, 4)),
        ("binary-ish", {
            let mut d = vec![3usize; 31];
            d.extend(vec![1usize; 33]);
            d[0] = 2;
            // fix sum to 2(n-1) = 126: current 3*31-1+33 = 125 → bump one.
            d[1] = 4;
            d
        }),
        (
            "tiny (brute-checkable)",
            graphgen::random_tree_sequence(8, 5),
        ),
    ];
    for (name, degrees) in profiles {
        let n = degrees.len();
        let seq = DegreeSequence::new(degrees.clone());
        if !seq.is_tree_realizable() {
            panic!("profile {name} is not tree-realizable");
        }
        let chain = drive::tree(&degrees, TreeAlgo::Chain, 32, Engine::Batched);
        let greedy_t = drive::tree(&degrees, TreeAlgo::Greedy, 32, Engine::Batched);
        let (c, g) = (chain.expect_realized(), greedy_t.expect_realized());
        let reference = greedy::greedy_tree(&seq).unwrap();
        let ref_dia = greedy::diameter_of(&reference, n);
        let brute = if n <= 8 {
            greedy::min_diameter_brute(&seq)
                .map(|d| d.to_string())
                .unwrap_or_default()
        } else {
            "-".into()
        };
        ok_all &= g.diameter == ref_dia && g.diameter <= c.diameter;
        if n <= 8 {
            ok_all &= brute == g.diameter.to_string();
        }
        t.row(vec![
            name.into(),
            n.to_string(),
            c.diameter.to_string(),
            g.diameter.to_string(),
            ref_dia.to_string(),
            brute,
        ]);
    }
    t.verdict(
        ok_all,
        "Algorithm 5 always matches the sequential greedy T_G (provably \
         minimal, Lemma 15; brute-force-confirmed at small n) and never \
         loses to Algorithm 4",
    );
    vec![t]
}
