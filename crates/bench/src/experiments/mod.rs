//! The experiment implementations, one module per paper section.

pub mod ablations;
pub mod connectivity;
pub mod degrees;
pub mod figures;
pub mod lower_bounds;
pub mod primitives;
pub mod trees;

/// "Shape" check for asymptotic claims: the measured/bound ratios along a
/// sweep must stay within a bounded band (no systematic growth), i.e.
/// `max_ratio / min_ratio ≤ slack`. This is the paper-reproduction notion
/// of success — constants are ours, growth rates are the paper's.
pub fn ratios_flat(ratios: &[f64], slack: f64) -> bool {
    let (mut lo, mut hi) = (f64::INFINITY, 0.0f64);
    for &r in ratios {
        if !r.is_finite() || r <= 0.0 {
            return false;
        }
        lo = lo.min(r);
        hi = hi.max(r);
    }
    hi / lo <= slack
}

#[cfg(test)]
mod tests {
    use super::ratios_flat;

    #[test]
    fn flat_bands_pass() {
        assert!(ratios_flat(&[1.0, 1.5, 1.2, 0.9], 2.0));
        assert!(!ratios_flat(&[1.0, 5.0], 2.0));
        assert!(!ratios_flat(&[1.0, f64::NAN], 10.0));
        assert!(!ratios_flat(&[0.0, 1.0], 10.0));
    }
}
