//! Figures 1 and 2: exact reproduction of the paper's two construction
//! illustrations on the path `1‥8`.

use crate::table::Table;
use dgr_ncc::{Config, Network, NodeId};
use dgr_primitives::{bbst, contacts, vpath, warmup};
use std::collections::HashMap;

fn tree_rows<T>(
    nodes: &[(NodeId, T)],
    fmt: impl Fn(&T) -> (String, String, String),
) -> Vec<Vec<String>> {
    let mut rows: Vec<(NodeId, Vec<String>)> = nodes
        .iter()
        .map(|(id, t)| {
            let (parent, left, right) = fmt(t);
            (*id, vec![id.to_string(), parent, left, right])
        })
        .collect();
    rows.sort_by_key(|(id, _)| *id);
    rows.into_iter().map(|(_, r)| r).collect()
}

/// Figure 1: the warm-up balanced binary tree on the 8-node path.
pub fn fig1() -> Vec<Table> {
    let net = Network::new(8, Config::ncc0(0).with_sequential_ids());
    let result = net
        .run(|h| {
            let vp = vpath::undirect(h);
            warmup::build(h, &vp)
        })
        .unwrap();
    let mut t = Table::new(
        "Figure 1 — warm-up balanced binary tree on G_k = 1‥8",
        &["node", "parent", "left", "right"],
    );
    let opt = |o: Option<NodeId>| o.map_or("-".into(), |x| x.to_string());
    for row in tree_rows(&result.outputs, |w: &warmup::WarmupTree| {
        (opt(w.parent), opt(w.left), opt(w.right))
    }) {
        t.row(row);
    }
    let view: HashMap<NodeId, &warmup::WarmupTree> =
        result.outputs.iter().map(|(id, w)| (*id, w)).collect();
    let expected = view[&1].is_root
        && view[&1].left == Some(2)
        && view[&1].right == Some(3)
        && view[&2].left == Some(4)
        && view[&2].right == Some(6)
        && view[&3].left == Some(5)
        && view[&3].right == Some(7)
        && view[&4].left == Some(8);
    t.verdict(
        expected,
        "tree shape matches the paper's recursive construction; \
         height O(log n)",
    );
    vec![t]
}

/// Figure 2: the balanced binary *search* tree (Algorithm 1) on 1‥8.
pub fn fig2() -> Vec<Table> {
    let net = Network::new(8, Config::ncc0(0).with_sequential_ids());
    let result = net
        .run(|h| {
            let vp = vpath::undirect(h);
            let ct = contacts::build(h, &vp);
            bbst::build(h, &vp, &ct)
        })
        .unwrap();
    let mut t = Table::new(
        "Figure 2 — balanced binary search tree (Algorithm 1) on G_k = 1‥8",
        &["node", "parent", "left", "right"],
    );
    let opt = |o: Option<NodeId>| o.map_or("-".into(), |x| x.to_string());
    for row in tree_rows(&result.outputs, |b: &bbst::Bbst| {
        (opt(b.parent), opt(b.left), opt(b.right))
    }) {
        t.row(row);
    }
    let view: HashMap<NodeId, &bbst::Bbst> =
        result.outputs.iter().map(|(id, b)| (*id, b)).collect();
    let expected = view[&1].is_root
        && view[&1].right == Some(5)
        && view[&5].left == Some(3)
        && view[&5].right == Some(7)
        && view[&3].left == Some(2)
        && view[&3].right == Some(4)
        && view[&7].left == Some(6)
        && view[&7].right == Some(8);
    t.verdict(
        expected,
        "matches the figure exactly (root 1 → 5 → {3,7} → leaves); \
         inorder = G_k; height = ⌈log 8⌉ + 1",
    );
    vec![t]
}
