//! Minimal markdown-table rendering for experiment output.

use std::fmt::Write as _;

/// A titled table with aligned markdown rendering.
#[derive(Clone, Debug)]
pub struct Table {
    /// Table title (the claim being tested).
    pub title: String,
    /// What "success" means and whether it held.
    pub verdict: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Rows of cells.
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates an empty table.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Table {
            title: title.into(),
            verdict: String::new(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (stringifies each cell).
    pub fn row(&mut self, cells: Vec<String>) {
        debug_assert_eq!(cells.len(), self.headers.len());
        self.rows.push(cells);
    }

    /// Sets the verdict line.
    pub fn verdict(&mut self, ok: bool, claim: impl Into<String>) {
        let mark = if ok { "PASS" } else { "FAIL" };
        self.verdict = format!("[{mark}] {}", claim.into());
    }

    /// Renders as a markdown table.
    pub fn to_markdown(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "### {}\n", self.title);
        let fmt_row = |cells: &[String]| -> String {
            let inner: Vec<String> = cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:w$}", c, w = widths[i]))
                .collect();
            format!("| {} |", inner.join(" | "))
        };
        let _ = writeln!(out, "{}", fmt_row(&self.headers));
        let sep: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
        let _ = writeln!(out, "{}", fmt_row(&sep));
        for row in &self.rows {
            let _ = writeln!(out, "{}", fmt_row(row));
        }
        if !self.verdict.is_empty() {
            let _ = writeln!(out, "\n{}", self.verdict);
        }
        out
    }

    /// Did the verdict pass (empty verdict counts as pass)?
    pub fn passed(&self) -> bool {
        !self.verdict.starts_with("[FAIL]")
    }
}

/// Formats a float with 2 decimals.
pub fn f2(x: f64) -> String {
    format!("{x:.2}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_markdown() {
        let mut t = Table::new("demo", &["n", "rounds"]);
        t.row(vec!["8".into(), "12".into()]);
        t.row(vec!["1024".into(), "40".into()]);
        t.verdict(true, "rounds grow like log n");
        let md = t.to_markdown();
        assert!(md.contains("### demo"));
        assert!(md.contains("| n    | rounds |"));
        assert!(md.contains("[PASS]"));
        assert!(t.passed());
    }

    #[test]
    fn fail_verdicts_are_detected() {
        let mut t = Table::new("demo", &["x"]);
        t.verdict(false, "nope");
        assert!(!t.passed());
    }
}
