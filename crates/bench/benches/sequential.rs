//! Wall-clock benches of the sequential layer: Erdős–Gallai, the two
//! Havel–Hakimi implementations, and the greedy tree — the centralized
//! baselines the distributed algorithms are compared against.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dgr_core::{erdos_gallai, havel_hakimi, DegreeSequence};
use dgr_graphgen as graphgen;
use dgr_trees::greedy;

fn bench_erdos_gallai(c: &mut Criterion) {
    let mut g = c.benchmark_group("erdos_gallai");
    for &n in &[1_000usize, 10_000, 100_000] {
        let d = graphgen::random_graphic_sequence(n, 64, 10);
        g.bench_with_input(BenchmarkId::from_parameter(n), &d, |b, d| {
            b.iter(|| erdos_gallai::is_graphic(d))
        });
    }
    g.finish();
}

fn bench_havel_hakimi(c: &mut Criterion) {
    let mut g = c.benchmark_group("havel_hakimi");
    for &n in &[1_000usize, 10_000] {
        let d = DegreeSequence::new(graphgen::random_graphic_sequence(n, 32, 11));
        g.bench_with_input(BenchmarkId::new("heap", n), &d, |b, d| {
            b.iter(|| havel_hakimi::realize(d).unwrap())
        });
    }
    // The naive oracle is O(n² log n) — bench it small to show the gap.
    let d = DegreeSequence::new(graphgen::random_graphic_sequence(1_000, 32, 11));
    g.bench_function("naive/1000", |b| {
        b.iter(|| havel_hakimi::realize_naive(&d).unwrap())
    });
    g.finish();
}

fn bench_greedy_tree(c: &mut Criterion) {
    let mut g = c.benchmark_group("greedy_tree");
    for &n in &[1_000usize, 10_000, 100_000] {
        let d = DegreeSequence::new(graphgen::random_tree_sequence(n, 12));
        g.bench_with_input(BenchmarkId::from_parameter(n), &d, |b, d| {
            b.iter(|| greedy::greedy_tree(d).unwrap())
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_erdos_gallai,
    bench_havel_hakimi,
    bench_greedy_tree
);
criterion_main!(benches);
