//! Wall-clock benches of the threshold realizations (Theorems 17/18).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dgr_bench::drive::{self, Engine};
use dgr_connectivity::ThresholdInstance;
use dgr_graphgen as graphgen;

fn bench_ncc1(c: &mut Criterion) {
    let mut g = c.benchmark_group("threshold_ncc1");
    g.sample_size(10);
    for &n in &[64usize, 128, 256] {
        let inst = ThresholdInstance::new(graphgen::uniform_thresholds(n, 1, 8, 8));
        g.bench_with_input(BenchmarkId::from_parameter(n), &inst, |b, i| {
            b.iter(|| drive::ncc1(&i.rho, 8, Engine::Threaded))
        });
    }
    g.finish();
}

fn bench_ncc0(c: &mut Criterion) {
    let mut g = c.benchmark_group("threshold_ncc0");
    g.sample_size(10);
    for &n in &[64usize, 128] {
        let inst = ThresholdInstance::new(graphgen::uniform_thresholds(n, 1, 8, 9));
        g.bench_with_input(BenchmarkId::from_parameter(n), &inst, |b, i| {
            b.iter(|| drive::ncc0(&i.rho, 9, Engine::Threaded))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_ncc1, bench_ncc0);
criterion_main!(benches);
