//! Wall-clock benches of the threshold realizations (Theorems 17/18).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dgr_connectivity::{realize_ncc0, realize_ncc1, ThresholdInstance};
use dgr_graphgen as graphgen;
use dgr_ncc::Config;

fn bench_ncc1(c: &mut Criterion) {
    let mut g = c.benchmark_group("threshold_ncc1");
    g.sample_size(10);
    for &n in &[64usize, 128, 256] {
        let inst = ThresholdInstance::new(graphgen::uniform_thresholds(n, 1, 8, 8));
        g.bench_with_input(BenchmarkId::from_parameter(n), &inst, |b, i| {
            b.iter(|| realize_ncc1(i, Config::ncc1(8)).unwrap())
        });
    }
    g.finish();
}

fn bench_ncc0(c: &mut Criterion) {
    let mut g = c.benchmark_group("threshold_ncc0");
    g.sample_size(10);
    for &n in &[64usize, 128] {
        let inst = ThresholdInstance::new(graphgen::uniform_thresholds(n, 1, 8, 9));
        g.bench_with_input(BenchmarkId::from_parameter(n), &inst, |b, i| {
            b.iter(|| realize_ncc0(i, Config::ncc0(9).with_queueing()).unwrap())
        });
    }
    g.finish();
}

criterion_group!(benches, bench_ncc1, bench_ncc0);
criterion_main!(benches);
