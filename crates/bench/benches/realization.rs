//! Wall-clock benches of the degree realizations (Theorems 11-13):
//! implicit vs explicit, across workload shapes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dgr_bench::drive::{self, Engine};
use dgr_graphgen as graphgen;

fn bench_implicit(c: &mut Criterion) {
    let mut g = c.benchmark_group("implicit_realization");
    g.sample_size(10);
    for &n in &[64usize, 128, 256] {
        let degrees = graphgen::near_regular_sequence(n, 6, 3);
        g.bench_with_input(BenchmarkId::new("regular6", n), &degrees, |b, d| {
            b.iter(|| drive::implicit(d, 3, Engine::Threaded))
        });
        let degrees = graphgen::power_law_sequence(n, n / 5, 2.5, 4);
        g.bench_with_input(BenchmarkId::new("powerlaw", n), &degrees, |b, d| {
            b.iter(|| drive::implicit(d, 4, Engine::Threaded))
        });
    }
    g.finish();
}

fn bench_explicit(c: &mut Criterion) {
    let mut g = c.benchmark_group("explicit_realization");
    g.sample_size(10);
    for &n in &[64usize, 128, 256] {
        let degrees = graphgen::near_regular_sequence(n, 6, 5);
        g.bench_with_input(BenchmarkId::from_parameter(n), &degrees, |b, d| {
            b.iter(|| drive::explicit(d, 5, Engine::Threaded))
        });
    }
    g.finish();
}

fn bench_envelope(c: &mut Criterion) {
    let mut g = c.benchmark_group("envelope_realization");
    g.sample_size(10);
    let n = 128;
    let mut degrees = graphgen::random_graphic_sequence(n, 16, 6);
    degrees[0] += 1; // break graphicness
    g.bench_with_input(BenchmarkId::from_parameter(n), &degrees, |b, d| {
        b.iter(|| drive::envelope(d, 6, Engine::Threaded))
    });
    g.finish();
}

fn bench_implicit_batched(c: &mut Criterion) {
    let mut g = c.benchmark_group("implicit_realization_batched");
    g.sample_size(10);
    for &n in &[256usize, 1024, 4096] {
        let degrees = graphgen::near_regular_sequence(n, 6, 3);
        g.bench_with_input(BenchmarkId::new("regular6", n), &degrees, |b, d| {
            b.iter(|| drive::implicit(d, 3, Engine::Batched))
        });
    }
    g.finish();
}

fn bench_explicit_batched(c: &mut Criterion) {
    let mut g = c.benchmark_group("explicit_realization_batched");
    g.sample_size(10);
    for &n in &[256usize, 1024, 4096] {
        let degrees = graphgen::near_regular_sequence(n, 6, 5);
        g.bench_with_input(BenchmarkId::from_parameter(n), &degrees, |b, d| {
            b.iter(|| drive::explicit(d, 5, Engine::Batched))
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_implicit,
    bench_explicit,
    bench_envelope,
    bench_implicit_batched,
    bench_explicit_batched
);
criterion_main!(benches);
