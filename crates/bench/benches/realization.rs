//! Wall-clock benches of the degree realizations (Theorems 11-13):
//! implicit vs explicit, across workload shapes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dgr_core::{
    realize_approx, realize_explicit, realize_explicit_batched, realize_implicit,
    realize_implicit_batched,
};
use dgr_graphgen as graphgen;
use dgr_ncc::Config;

fn bench_implicit(c: &mut Criterion) {
    let mut g = c.benchmark_group("implicit_realization");
    g.sample_size(10);
    for &n in &[64usize, 128, 256] {
        let degrees = graphgen::near_regular_sequence(n, 6, 3);
        g.bench_with_input(BenchmarkId::new("regular6", n), &degrees, |b, d| {
            b.iter(|| realize_implicit(d, Config::ncc0(3)).unwrap())
        });
        let degrees = graphgen::power_law_sequence(n, n / 5, 2.5, 4);
        g.bench_with_input(BenchmarkId::new("powerlaw", n), &degrees, |b, d| {
            b.iter(|| realize_implicit(d, Config::ncc0(4)).unwrap())
        });
    }
    g.finish();
}

fn bench_explicit(c: &mut Criterion) {
    let mut g = c.benchmark_group("explicit_realization");
    g.sample_size(10);
    for &n in &[64usize, 128, 256] {
        let degrees = graphgen::near_regular_sequence(n, 6, 5);
        g.bench_with_input(BenchmarkId::from_parameter(n), &degrees, |b, d| {
            b.iter(|| realize_explicit(d, Config::ncc0(5).with_queueing()).unwrap())
        });
    }
    g.finish();
}

fn bench_envelope(c: &mut Criterion) {
    let mut g = c.benchmark_group("envelope_realization");
    g.sample_size(10);
    let n = 128;
    let mut degrees = graphgen::random_graphic_sequence(n, 16, 6);
    degrees[0] += 1; // break graphicness
    g.bench_with_input(BenchmarkId::from_parameter(n), &degrees, |b, d| {
        b.iter(|| realize_approx(d, Config::ncc0(6)).unwrap())
    });
    g.finish();
}

fn bench_implicit_batched(c: &mut Criterion) {
    let mut g = c.benchmark_group("implicit_realization_batched");
    g.sample_size(10);
    for &n in &[256usize, 1024, 4096] {
        let degrees = graphgen::near_regular_sequence(n, 6, 3);
        g.bench_with_input(BenchmarkId::new("regular6", n), &degrees, |b, d| {
            b.iter(|| realize_implicit_batched(d, Config::ncc0(3)).unwrap())
        });
    }
    g.finish();
}

fn bench_explicit_batched(c: &mut Criterion) {
    let mut g = c.benchmark_group("explicit_realization_batched");
    g.sample_size(10);
    for &n in &[256usize, 1024, 4096] {
        let degrees = graphgen::near_regular_sequence(n, 6, 5);
        g.bench_with_input(BenchmarkId::from_parameter(n), &degrees, |b, d| {
            b.iter(|| realize_explicit_batched(d, Config::ncc0(5).with_queueing()).unwrap())
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_implicit,
    bench_explicit,
    bench_envelope,
    bench_implicit_batched,
    bench_explicit_batched
);
criterion_main!(benches);
