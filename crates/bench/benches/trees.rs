//! Wall-clock benches of the tree realizations (Theorems 14/16), plus the
//! Algorithm 4 vs Algorithm 5 head-to-head.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dgr_bench::drive::{self, Engine};
use dgr_graphgen as graphgen;
use dgr_trees::TreeAlgo;

fn bench_tree_algos(c: &mut Criterion) {
    let mut g = c.benchmark_group("tree_realization");
    g.sample_size(10);
    for &n in &[64usize, 256, 1024] {
        let degrees = graphgen::random_tree_sequence(n, 7);
        g.bench_with_input(BenchmarkId::new("alg4_chain", n), &degrees, |b, d| {
            b.iter(|| drive::tree(d, TreeAlgo::Chain, 7, Engine::Threaded))
        });
        g.bench_with_input(BenchmarkId::new("alg5_greedy", n), &degrees, |b, d| {
            b.iter(|| drive::tree(d, TreeAlgo::Greedy, 7, Engine::Threaded))
        });
    }
    g.finish();
}

fn bench_tree_algos_batched(c: &mut Criterion) {
    let mut g = c.benchmark_group("tree_realization_batched");
    g.sample_size(10);
    for &n in &[1024usize, 4096, 16384] {
        let degrees = graphgen::random_tree_sequence(n, 7);
        g.bench_with_input(BenchmarkId::new("alg4_chain", n), &degrees, |b, d| {
            b.iter(|| drive::tree(d, TreeAlgo::Chain, 7, Engine::Batched))
        });
        g.bench_with_input(BenchmarkId::new("alg5_greedy", n), &degrees, |b, d| {
            b.iter(|| drive::tree(d, TreeAlgo::Greedy, 7, Engine::Batched))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_tree_algos, bench_tree_algos_batched);
criterion_main!(benches);
