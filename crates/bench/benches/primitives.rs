//! Wall-clock benches of the NCC primitives (simulator throughput):
//! context establishment (undirect + contacts + BBST + positions) and the
//! distributed sort, across network sizes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dgr_ncc::{Config, Network, RoundCtx};
use dgr_primitives::proto::sort::SortStep;
use dgr_primitives::proto::{EstablishCtx, StepProtocol, WithCtx};
use dgr_primitives::sort::{self, Order};
use dgr_primitives::PathCtx;

fn bench_establish(c: &mut Criterion) {
    let mut g = c.benchmark_group("establish_path_ctx");
    g.sample_size(10);
    for &n in &[64usize, 256, 1024] {
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| {
                let net = Network::new(n, Config::ncc0(1));
                net.run(|h| PathCtx::establish(h).position).unwrap()
            })
        });
    }
    g.finish();
}

fn bench_sort(c: &mut Criterion) {
    let mut g = c.benchmark_group("distributed_sort");
    g.sample_size(10);
    for &n in &[64usize, 256, 1024] {
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| {
                let net = Network::new(n, Config::ncc0(2));
                net.run(|h| {
                    let ctx = PathCtx::establish(h);
                    sort::sort_at(
                        h,
                        &ctx.vp,
                        &ctx.contacts,
                        ctx.position,
                        h.id() % 1000,
                        Order::Descending,
                    )
                    .rank
                })
                .unwrap()
            })
        });
    }
    g.finish();
}

fn bench_establish_batched(c: &mut Criterion) {
    let mut g = c.benchmark_group("establish_path_ctx_batched");
    g.sample_size(10);
    for &n in &[1024usize, 4096, 16384] {
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| {
                let net = Network::new(n, Config::ncc0(1));
                net.run_protocol(|_| StepProtocol::new(EstablishCtx::new()))
                    .unwrap()
            })
        });
    }
    g.finish();
}

fn bench_sort_batched(c: &mut Criterion) {
    let mut g = c.benchmark_group("distributed_sort_batched");
    g.sample_size(10);
    for &n in &[1024usize, 4096, 16384] {
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| {
                let net = Network::new(n, Config::ncc0(2));
                net.run_protocol(|_| {
                    WithCtx::new(|ctx: &PathCtx, rctx: &mut RoundCtx<'_>| {
                        SortStep::new(
                            ctx.vp,
                            ctx.contacts.clone(),
                            ctx.position,
                            rctx.id() % 1000,
                            Order::Descending,
                            rctx.id(),
                        )
                    })
                })
                .unwrap()
            })
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_establish,
    bench_sort,
    bench_establish_batched,
    bench_sort_batched
);
criterion_main!(benches);
