//! Wall-clock benches of the NCC primitives (simulator throughput):
//! context establishment (undirect + contacts + BBST + positions) and the
//! distributed sort, across network sizes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dgr_ncc::{Config, Network};
use dgr_primitives::sort::{self, Order};
use dgr_primitives::PathCtx;

fn bench_establish(c: &mut Criterion) {
    let mut g = c.benchmark_group("establish_path_ctx");
    g.sample_size(10);
    for &n in &[64usize, 256, 1024] {
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| {
                let net = Network::new(n, Config::ncc0(1));
                net.run(|h| PathCtx::establish(h).position).unwrap()
            })
        });
    }
    g.finish();
}

fn bench_sort(c: &mut Criterion) {
    let mut g = c.benchmark_group("distributed_sort");
    g.sample_size(10);
    for &n in &[64usize, 256, 1024] {
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| {
                let net = Network::new(n, Config::ncc0(2));
                net.run(|h| {
                    let ctx = PathCtx::establish(h);
                    sort::sort_at(
                        h,
                        &ctx.vp,
                        &ctx.contacts,
                        ctx.position,
                        h.id() % 1000,
                        Order::Descending,
                    )
                    .rank
                })
                .unwrap()
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_establish, bench_sort);
criterion_main!(benches);
