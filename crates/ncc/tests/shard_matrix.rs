//! Shard-matrix differential tests: the ownership-sharded layout must be
//! unobservable except through [`EngineStats`]. Every configuration runs
//! at shard counts 1/2/4 × worker counts 1/2/8 and the RAW event streams
//! (route-mode narration included), outputs, and bit-identical
//! [`RunMetrics`] are held equal to the 1-shard/1-worker baseline — which
//! exercises the monolithic single-arena engine, so this suite pins the
//! sharded path to the unsharded one, not merely to itself.

mod common;

use common::Gossip;
use dgr_ncc::{CapacityPolicy, Config, EngineKind, Network, Recording, RunResult, SimError};

const SHARDS: [usize; 2] = [2, 4];
const WORKERS: [usize; 3] = [1, 2, 8];

/// Runs the batched engine once per (shards × workers) cell and asserts
/// outputs, metrics, and the raw event stream are bit-identical to the
/// unsharded single-worker baseline.
fn assert_shard_matrix(n: usize, config: &Config, base: u64, stagger: u64, fan: usize) {
    let run = |shards: usize, workers: usize| {
        let net = Network::new(
            n,
            config
                .clone()
                .with_shards(shards)
                .with_worker_threads(workers),
        );
        let mut events = Recording::new();
        let result: RunResult<u64> = net
            .run_protocol_on(EngineKind::Batched, None, Some(&mut events), |s| {
                Gossip::new(s, base, stagger, fan)
            })
            .unwrap();
        (result, events.events().to_vec())
    };
    let (result_1, events_1) = run(1, 1);
    assert_eq!(
        result_1.engine.shards, 1,
        "baseline is the unsharded engine"
    );
    assert!(result_1.engine.shard_windows.is_empty());
    assert_eq!(result_1.engine.cross_shard_messages, 0);
    for shards in SHARDS {
        for workers in WORKERS {
            let (result_s, events_s) = run(shards, workers);
            assert_eq!(
                result_1.outputs, result_s.outputs,
                "transcripts diverge at {shards} shards × {workers} workers (n={n})"
            );
            assert_eq!(
                result_1.metrics, result_s.metrics,
                "metrics diverge at {shards} shards × {workers} workers (n={n})"
            );
            assert_eq!(
                events_1, events_s,
                "raw event streams diverge at {shards} shards × {workers} workers (n={n})"
            );
            // The layout itself must be reported faithfully: the full
            // ownership map partitions the dense index space.
            assert_eq!(result_s.engine.shards, shards);
            assert_eq!(result_s.engine.shard_windows.len(), shards);
            assert_eq!(
                result_s.engine.shard_windows.iter().sum::<usize>(),
                result_s.engine.dense_index_space,
                "shard windows must partition the dense index space"
            );
            assert!(
                result_s.engine.cross_shard_messages > 0,
                "gossip traffic crosses ownership boundaries (n={n}, {shards} shards)"
            );
        }
    }
}

#[test]
fn shard_matrix_queue_mode_tracked() {
    // Queue pacing + knowledge tracking: FIFO backlog contents depend on
    // exact bucket order, so the exchange splice is what's under test.
    let mut config = Config::ncc0(71);
    config.capacity_policy = CapacityPolicy::Queue;
    assert_shard_matrix(6_000, &config, 10, 0, 3);
}

#[test]
fn shard_matrix_compacting_record_tracked() {
    // Staggered lifetimes drive per-shard compactions mid-run; the
    // Compaction narration (global trigger, one event) is part of the raw
    // stream being compared.
    let mut config = Config::ncc0(72);
    config.capacity_policy = CapacityPolicy::Record;
    assert_shard_matrix(6_000, &config, 8, 6, 3);
}

#[test]
fn shard_matrix_strict_kt0_clean() {
    // Strict KT0 over the successor chain: clean tracked traffic, and the
    // per-shard capacity checks must find nothing at every cell.
    let config = Config::ncc0(73);
    assert_shard_matrix(6_000, &config, 10, 0, 1);
}

#[test]
fn strict_abort_blames_the_same_violation_at_every_shard_count() {
    // Overloaded fan-in under Strict: each shard journals violations in
    // slot order and the coordinator replays the journals in shard order,
    // so the aborting violation must be the canonical first one no matter
    // how ownership was partitioned.
    let run = |shards: usize, workers: usize| {
        let config = Config::ncc0(74)
            .with_capacity_factor(0.5)
            .with_shards(shards)
            .with_worker_threads(workers);
        let net = Network::new(6_000, config);
        match net.run_protocol(|s| Gossip::new(s, 10, 0, 6)) {
            Err(SimError::Violation(v)) => v,
            other => panic!(
                "expected a strict violation, got {:?}",
                other.map(|r| r.metrics.rounds)
            ),
        }
    };
    let first = run(1, 1);
    for shards in SHARDS {
        for workers in WORKERS {
            assert_eq!(
                first,
                run(shards, workers),
                "canonical first violation diverges at {shards} shards × {workers} workers"
            );
        }
    }
}

#[test]
fn masked_sharded_runs_agree_with_masked_unsharded() {
    // Ownership shards split the *dense* participant space, so the masked
    // remap composes with sharding: same sub-network transcript, same
    // dense-index accounting, windows partition k (not n).
    let mut config = Config::ncc0(17);
    config.capacity_policy = CapacityPolicy::Record;
    let run = |shards: usize| {
        let net = Network::new(96, config.clone().with_shards(shards));
        let mask: Vec<bool> = (0..96).map(|i| i % 3 != 1).collect();
        net.run_protocol_masked(&mask, |s| Gossip::new(s, 8, 0, 2))
            .unwrap()
    };
    let flat = run(1);
    let sharded = run(4);
    assert_eq!(flat.outputs, sharded.outputs);
    assert_eq!(flat.metrics, sharded.metrics);
    assert_eq!(sharded.engine.dense_index_space, 64);
    assert_eq!(sharded.engine.shard_windows, vec![16; 4]);
}

#[test]
fn shard_count_clamps_to_the_participant_space() {
    // More shards than participants degrades gracefully to one node per
    // shard (and stays bit-identical, like every other cell).
    let config = Config::ncc0(19);
    let run = |shards: usize| {
        let net = Network::new(8, config.clone().with_shards(shards));
        net.run_protocol(|s| Gossip::new(s, 6, 0, 1)).unwrap()
    };
    let flat = run(1);
    let clamped = run(64);
    assert_eq!(flat.outputs, clamped.outputs);
    assert_eq!(flat.metrics, clamped.metrics);
    assert_eq!(clamped.engine.shards, 8);
    assert_eq!(clamped.engine.shard_windows, vec![1; 8]);
}

/// The ISSUE-scale matrix: 10^5 nodes through the same three configs.
/// Release-mode only (`--ignored`); the in-tree 6k matrix above covers
/// the same paths on every `cargo test`.
#[test]
#[ignore = "release-scale shard matrix; run with --ignored"]
fn shard_matrix_at_n_100k() {
    let mut queue = Config::ncc0(81);
    queue.capacity_policy = CapacityPolicy::Queue;
    assert_shard_matrix(100_000, &queue, 8, 0, 3);

    let mut compacting = Config::ncc0(82);
    compacting.capacity_policy = CapacityPolicy::Record;
    assert_shard_matrix(100_000, &compacting, 6, 5, 3);

    let strict = Config::ncc0(83);
    assert_shard_matrix(100_000, &strict, 8, 0, 1);
}
