//! Determinism of the batched executor: a run is a pure function of
//! `(n, Config)` — the worker-thread count must not influence transcripts,
//! outputs or metrics, and replays must be bit-identical.

mod common;

use common::Gossip;
use dgr_ncc::{CapacityPolicy, Config, Network};

fn run_with_workers(workers: usize) -> (Vec<(u64, u64)>, dgr_ncc::RunMetrics) {
    let mut config = Config::ncc0(404).with_worker_threads(workers);
    config.capacity_policy = CapacityPolicy::Record;
    let net = Network::new(96, config);
    let result = net.run_protocol(|s| Gossip::new(s, 10, 6, 2)).unwrap();
    (result.outputs, result.metrics)
}

#[test]
fn worker_count_does_not_change_the_transcript() {
    let (outputs_1, metrics_1) = run_with_workers(1);
    for workers in [2, 3, 4, 8] {
        let (outputs_w, metrics_w) = run_with_workers(workers);
        assert_eq!(outputs_1, outputs_w, "outputs diverge at {workers} workers");
        assert_eq!(metrics_1, metrics_w, "metrics diverge at {workers} workers");
    }
}

#[test]
fn replays_are_bit_identical() {
    let (outputs_a, metrics_a) = run_with_workers(0);
    let (outputs_b, metrics_b) = run_with_workers(0);
    assert_eq!(outputs_a, outputs_b);
    assert_eq!(metrics_a, metrics_b);
}

/// Dense traffic past the adaptive threshold: multi-worker runs must take
/// the parallel routing path (per-worker counts, destination-range fold,
/// disjoint-region scatter) and still produce the single-worker
/// transcript bit-for-bit.
#[test]
fn dense_rounds_route_parallel_and_stay_deterministic() {
    let run = |workers: usize| {
        let mut config = Config::ncc0(808).with_worker_threads(workers);
        config.capacity_policy = CapacityPolicy::Record;
        let net = Network::new(768, config);
        let result = net.run_protocol(|s| Gossip::new(s, 12, 5, 6)).unwrap();
        (result.outputs, result.metrics, result.engine)
    };
    let (outputs_1, metrics_1, engine_1) = run(1);
    // The dense/sparse classification is a pure function of the transcript,
    // so even the single-worker run narrates its dense rounds (it still
    // executes them inline — parallelism is gated separately on workers).
    assert!(
        engine_1.parallel_route_rounds > 0,
        "768 nodes x fan-out 6 must clear the dense-round threshold"
    );
    for workers in [2, 4, 7] {
        let (outputs_w, metrics_w, engine_w) = run(workers);
        assert_eq!(outputs_1, outputs_w, "outputs diverge at {workers} workers");
        assert_eq!(metrics_1, metrics_w, "metrics diverge at {workers} workers");
        assert_eq!(
            engine_w.parallel_route_rounds, engine_1.parallel_route_rounds,
            "classification must be worker-count-invariant at {workers} workers"
        );
        // Round 0 has no previous-volume signal and stays inline.
        assert!(engine_w.inline_route_rounds > 0);
    }
}

#[test]
fn different_seeds_differ() {
    let run = |seed| {
        let mut config = Config::ncc0(seed);
        config.capacity_policy = CapacityPolicy::Record;
        let net = Network::new(64, config);
        net.run_protocol(|s| Gossip::new(s, 10, 0, 2))
            .unwrap()
            .outputs
    };
    assert_ne!(run(1), run(2), "seeds must drive distinct transcripts");
}
