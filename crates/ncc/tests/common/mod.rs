//! Shared protocol fixtures for the engine test suites.
// Each test binary compiles this module separately and uses a subset.
#![allow(dead_code)]

use dgr_ncc::{NodeId, NodeProtocol, NodeSeed, RoundCtx, Status, WireMsg};
use rand::Rng;

/// FNV-1a fold of one `u64` into a transcript hash.
pub fn fnv(h: u64, x: u64) -> u64 {
    (h ^ x).wrapping_mul(0x100_0000_01b3)
}

/// A randomized gossip protocol that exercises most of the engine surface:
/// random fan-out to learned addresses, address-carrying payloads (KT0
/// knowledge spreading), per-node lifetimes (staggered `Done`), and a
/// per-node transcript hash over everything received.
///
/// The protocol is deterministic given the engine-provided RNG stream, so
/// two engines (or two worker counts) running it must produce identical
/// outputs and metrics.
pub struct Gossip {
    /// Rounds this node participates in before retiring.
    lifetime: u64,
    /// Messages staged per round (possibly exceeding capacity, to
    /// exercise violation accounting under lenient policies).
    fan_out: usize,
    /// Learned addresses (bounded; initial successor first).
    known: Vec<NodeId>,
    /// FNV transcript hash over all received envelopes.
    hash: u64,
}

/// Bound on the gossip knowledge list (keeps steps allocation-free).
const KNOWN_LIMIT: usize = 64;

impl Gossip {
    /// Base lifetime + per-node stagger derived from the ID.
    pub fn new(seed: &NodeSeed<'_>, base_rounds: u64, stagger: u64, fan_out: usize) -> Self {
        let lifetime = base_rounds + if stagger == 0 { 0 } else { seed.id % stagger };
        let mut known = Vec::with_capacity(KNOWN_LIMIT);
        known.extend(seed.initial_successor);
        Gossip {
            lifetime,
            fan_out,
            known,
            hash: 0xcbf2_9ce4_8422_2325,
        }
    }

    fn learn(&mut self, id: NodeId) {
        if self.known.len() < KNOWN_LIMIT && !self.known.contains(&id) {
            self.known.push(id);
        }
    }
}

impl NodeProtocol for Gossip {
    type Output = u64;

    fn step(&mut self, ctx: &mut RoundCtx<'_>) -> Status<u64> {
        // Fold the inbox into the transcript hash, in delivery order, and
        // learn every visible address.
        let round = ctx.round();
        for i in 0..ctx.inbox().len() {
            let env = ctx.inbox()[i];
            let mut h = self.hash;
            h = fnv(h, round);
            h = fnv(h, env.src);
            h = fnv(h, env.msg.tag as u64);
            for &w in env.msg.words_slice() {
                h = fnv(h, w);
            }
            for &a in env.msg.addrs_slice() {
                h = fnv(h, a);
            }
            self.hash = h;
            self.learn(env.src);
            for k in 0..env.msg.addrs_slice().len() {
                self.learn(env.msg.addrs_slice()[k]);
            }
        }
        if round >= self.lifetime {
            return Status::Done(self.hash);
        }
        // Random fan-out to learned addresses, sometimes carrying another
        // learned address (all KT0-legal by construction).
        if !self.known.is_empty() {
            for _ in 0..self.fan_out {
                let pick = ctx.rng().gen_range(0..self.known.len() as u64) as usize;
                let dst = self.known[pick];
                let word: u64 = ctx.rng().gen_range(0..1_000_000);
                let mut msg = WireMsg::word(7, word);
                if self.known.len() > 1 && word.is_multiple_of(3) {
                    let carry = ctx.rng().gen_range(0..self.known.len() as u64) as usize;
                    msg = msg.with_addr(self.known[carry]);
                }
                ctx.send(dst, msg);
            }
        }
        Status::Continue
    }
}

/// A minimal fixed-duration protocol: ping the initial successor every
/// round with a constant word. Its steps perform no allocation at all,
/// which makes it the fixture for the zero-allocation probe.
pub struct Ping {
    rounds: u64,
    received: u64,
}

impl Ping {
    pub fn new(_seed: &NodeSeed<'_>, rounds: u64) -> Self {
        Ping {
            rounds,
            received: 0,
        }
    }
}

impl NodeProtocol for Ping {
    type Output = u64;

    fn step(&mut self, ctx: &mut RoundCtx<'_>) -> Status<u64> {
        self.received += ctx.inbox().len() as u64;
        if ctx.round() >= self.rounds {
            return Status::Done(self.received);
        }
        if let Some(succ) = ctx.initial_successor() {
            ctx.send(succ, WireMsg::word(1, 42));
        }
        Status::Continue
    }
}
