//! Allocation probe: at steady state, the batched executor's round loop —
//! protocol steps, validation, counting-sort routing, delivery — must not
//! touch the heap. A `#[global_allocator]` counter proves it: two runs
//! that differ only in round count (10 vs 510 rounds) must perform the
//! *same number* of allocations, i.e. every allocation is setup/teardown,
//! none is per-round.
//!
//! The probe pins `worker_threads = 1` (the dispatch-free inline path;
//! worker dispatch itself allocates in the thread spawner, which is
//! outside the routing hot path) and disables KT0 tracking (the knowledge
//! sets are a verification instrument backed by hash sets, not part of
//! the production routing path).

mod common;

use common::Ping;
use dgr_ncc::{Config, Network};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

struct CountingAllocator;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAllocator = CountingAllocator;

/// Allocation count of one n-node Ping run over `rounds` rounds.
fn allocations_for(rounds: u64) -> u64 {
    let mut config = Config::ncc0(99).with_worker_threads(1);
    config.track_knowledge = false;
    let net = Network::new(512, config);
    let before = ALLOCATIONS.load(Ordering::Relaxed);
    let result = net.run_protocol(|s| Ping::new(s, rounds)).unwrap();
    assert_eq!(result.metrics.rounds, rounds);
    assert!(result.metrics.is_clean());
    ALLOCATIONS.load(Ordering::Relaxed) - before
}

#[test]
fn routing_hot_path_does_not_allocate_per_round() {
    // Warm the allocator's own internals (arenas, thread caches).
    let _ = allocations_for(5);
    let short = allocations_for(10);
    let long = allocations_for(510);
    assert_eq!(
        long, short,
        "round loop allocates: {short} allocations over 10 rounds vs \
         {long} over 510 — every per-round allocation is a regression"
    );
    // Past the per-round trace cap (ROUND_TRACE_LIMIT = 4096): the capped
    // trace must not reintroduce growth allocations either.
    let past_cap = allocations_for(dgr_ncc::ROUND_TRACE_LIMIT as u64 + 500);
    let far_past_cap = allocations_for(2 * dgr_ncc::ROUND_TRACE_LIMIT as u64);
    assert_eq!(
        past_cap, far_past_cap,
        "round loop allocates beyond the trace cap"
    );
}
