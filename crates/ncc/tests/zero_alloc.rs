//! Allocation probe: at steady state, the batched executor's round loop —
//! protocol steps, validation, counting-sort routing, delivery — must not
//! touch the heap. A `#[global_allocator]` counter proves it: two runs
//! that differ only in round count (10 vs 510 rounds) must perform the
//! *same number* of allocations, i.e. every allocation is setup/teardown,
//! none is per-round.
//!
//! The probe pins `worker_threads = 1` (the dispatch-free inline path;
//! worker dispatch itself allocates in the thread spawner, which is
//! outside the routing hot path) and disables KT0 tracking (the knowledge
//! sets are a verification instrument backed by hash sets, not part of
//! the production routing path).
//!
//! Counting is gated on a thread-local flag so only the *measuring*
//! thread's allocations register: the libtest harness thread performs a
//! couple of lazy one-off allocations (parker, thread handle) at a
//! scheduling-dependent moment, which would otherwise race into the
//! measured window and flake the exact-equality assertion.

mod common;

use common::Ping;
use dgr_ncc::{Config, Network, Scenario};
use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::sync::atomic::{AtomicU64, Ordering};

struct CountingAllocator;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

thread_local! {
    /// True while this thread is inside a measured window (const-init, so
    /// reading it never allocates — safe inside the allocator).
    static MEASURING: Cell<bool> = const { Cell::new(false) };
}

fn count_if_measuring() {
    // Thread teardown can query TLS after destruction; treat that as
    // "not measuring" rather than panicking inside the allocator.
    let _ = MEASURING.try_with(|m| {
        if m.get() {
            ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        }
    });
}

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        count_if_measuring();
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        count_if_measuring();
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAllocator = CountingAllocator;

/// Allocation count of one n-node Ping run over `rounds` rounds. The
/// whole run executes inline on this thread (`worker_threads = 1`), so
/// thread-scoped counting sees every engine allocation. `tracked` turns
/// strict KT0 knowledge tracking on — the sorted-arena tracker's learns
/// and lookups must also be allocation-free at steady state.
fn allocations_for_config(rounds: u64, tracked: bool) -> u64 {
    allocations_for_layout(rounds, tracked, 1)
}

/// Like [`allocations_for_config`] with an ownership-shard count: the
/// sharded engine's per-`(src, dst)` exchange cells are cleared with
/// capacity retained, so steady-state rounds must be just as silent as
/// the single-arena layout's.
fn allocations_for_layout(rounds: u64, tracked: bool, shards: usize) -> u64 {
    let mut config = Config::ncc0(99).with_worker_threads(1).with_shards(shards);
    config.track_knowledge = tracked;
    let net = Network::new(512, config);
    let before = ALLOCATIONS.load(Ordering::Relaxed);
    MEASURING.with(|m| m.set(true));
    let result = net.run_protocol(|s| Ping::new(s, rounds)).unwrap();
    MEASURING.with(|m| m.set(false));
    assert_eq!(result.metrics.rounds, rounds);
    assert!(result.metrics.is_clean());
    if tracked {
        // Ping talks only along the seeded path; each node's knowledge is
        // its own ID, its successor, and (after one delivery) its
        // predecessor.
        assert!(result.metrics.max_knowledge <= 3);
    }
    ALLOCATIONS.load(Ordering::Relaxed) - before
}

fn allocations_for(rounds: u64) -> u64 {
    allocations_for_config(rounds, false)
}

#[test]
fn routing_hot_path_does_not_allocate_per_round() {
    // Warm the allocator's own internals (arenas, thread caches).
    let _ = allocations_for(5);
    let short = allocations_for(10);
    let long = allocations_for(510);
    assert_eq!(
        long, short,
        "round loop allocates: {short} allocations over 10 rounds vs \
         {long} over 510 — every per-round allocation is a regression"
    );
    // Past the per-round trace cap (ROUND_TRACE_LIMIT = 4096): the capped
    // trace must not reintroduce growth allocations either.
    let past_cap = allocations_for(dgr_ncc::ROUND_TRACE_LIMIT as u64 + 500);
    let far_past_cap = allocations_for(2 * dgr_ncc::ROUND_TRACE_LIMIT as u64);
    assert_eq!(
        past_cap, far_past_cap,
        "round loop allocates beyond the trace cap"
    );
}

/// Strict-KT0 tracked runs: the per-node sorted-arena knowledge tracker
/// must be zero-alloc at steady state — every validation lookup is a
/// binary search, and learning an already-known ID touches nothing. All
/// arena growth happens while knowledge is still spreading (here: the
/// first delivery round), which both run lengths share.
#[test]
fn strict_kt0_tracking_does_not_allocate_per_round() {
    let _ = allocations_for_config(5, true);
    let short = allocations_for_config(10, true);
    let long = allocations_for_config(510, true);
    assert_eq!(
        long, short,
        "tracked round loop allocates: {short} allocations over 10 rounds \
         vs {long} over 510 — the knowledge tracker must be quiescent once \
         knowledge stops spreading"
    );
}

/// Allocation count of a Ping run under an always-on drop + duplicate
/// scenario. The fault pass rebuilds every bucket through the scenario's
/// swap arena each round; that arena (and the pre-compiled churn
/// timelines, and the stack-seeded per-round RNG) must be round-reused —
/// after the first faulted round, nothing about injection may touch the
/// heap.
fn allocations_for_scenario(rounds: u64, shards: usize) -> u64 {
    let scenario = Scenario::new(5)
        .drop_messages(1..=u64::MAX, 0.02)
        .duplicate_messages(1..=u64::MAX, 0.01);
    let config = Config::ncc0(99)
        .with_worker_threads(1)
        .with_shards(shards)
        .with_scenario(scenario);
    let net = Network::new(512, config);
    let before = ALLOCATIONS.load(Ordering::Relaxed);
    MEASURING.with(|m| m.set(true));
    let result = net.run_protocol(|s| Ping::new(s, rounds)).unwrap();
    MEASURING.with(|m| m.set(false));
    assert_eq!(result.metrics.rounds, rounds);
    assert!(
        result.engine.faults_dropped > 0,
        "the drop window never fired — the probe is not measuring the fault pass"
    );
    ALLOCATIONS.load(Ordering::Relaxed) - before
}

/// Fault injection must be allocation-free at steady state, in both the
/// single-arena and the ownership-sharded layouts (where the swap arena
/// rotates through the shards' bucket arenas).
#[test]
fn scenario_fault_pass_does_not_allocate_per_round() {
    // Fault volume is random per round, so high-water convergence takes a
    // few dozen rounds (the rarest realloc observed lands before round
    // 60). Both run lengths replay the identical seeded prefix, so
    // comparing 110 vs 510 rounds asserts exactly: no allocation after
    // convergence, for 400 further faulted rounds.
    for shards in [1usize, 4] {
        let _ = allocations_for_scenario(5, shards);
        let short = allocations_for_scenario(110, shards);
        let long = allocations_for_scenario(510, shards);
        assert_eq!(
            long, short,
            "scenario round loop allocates ({shards} shard(s)): {short} \
             allocations over 110 rounds vs {long} over 510 — the fault \
             pass's scratch buffers must be round-reused"
        );
    }
}

/// The sharded round loop — per-shard step/seal/deliver/learn plus the
/// boundary-exchange phase — must also be allocation-free at steady
/// state. Ping's successor sends cross each of the three ownership
/// boundaries every round, so the exchange cells are exercised (filled,
/// drained, and reused) on every measured round, tracked KT0 included.
#[test]
fn sharded_exchange_does_not_allocate_per_round() {
    for tracked in [false, true] {
        let _ = allocations_for_layout(5, tracked, 4);
        let short = allocations_for_layout(10, tracked, 4);
        let long = allocations_for_layout(510, tracked, 4);
        assert_eq!(
            long, short,
            "sharded round loop allocates (tracked={tracked}): {short} \
             allocations over 10 rounds vs {long} over 510 — exchange \
             cells must be round-reused, not reallocated"
        );
    }
}
