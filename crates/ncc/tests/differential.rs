//! Differential tests: the batched executor and the threaded oracle must
//! be observationally identical — same per-round deliveries (captured as
//! per-node transcript hashes over every received envelope), same
//! outputs, and bit-identical [`RunMetrics`] — across models, capacity
//! policies, ID assignments and staggered node lifetimes.
#![cfg(feature = "threaded")]

mod common;

use common::Gossip;
use dgr_ncc::event::semantic_stream;
use dgr_ncc::{CapacityPolicy, Config, EngineKind, Network, Recording, RunResult, SimError};

/// Runs the same gossip configuration on both engines and asserts full
/// observational equality — transcripts, metrics, and the semantic
/// projection of the event streams.
fn assert_engines_agree(n: usize, config: Config, base: u64, stagger: u64, fan: usize) {
    let net = Network::new(n, config);
    let mut batched_events = Recording::new();
    let batched: RunResult<u64> = net
        .run_protocol_on(EngineKind::Batched, None, Some(&mut batched_events), |s| {
            Gossip::new(s, base, stagger, fan)
        })
        .unwrap();
    let mut threaded_events = Recording::new();
    let threaded: RunResult<u64> = net
        .run_protocol_on(
            EngineKind::Threaded,
            None,
            Some(&mut threaded_events),
            |s| Gossip::new(s, base, stagger, fan),
        )
        .unwrap();
    assert_eq!(
        batched.outputs, threaded.outputs,
        "per-node transcripts diverge (n={n})"
    );
    assert_eq!(batched.metrics, threaded.metrics, "metrics diverge (n={n})");
    assert_eq!(
        semantic_stream(&batched_events.events()),
        semantic_stream(&threaded_events.events()),
        "event streams diverge (n={n})"
    );
}

#[test]
fn uniform_lifetimes_strict_clean() {
    // Fan-out 1 to the successor chain only: strict-legal traffic.
    for seed in 0..4 {
        let mut config = Config::ncc0(seed);
        config.capacity_policy = CapacityPolicy::Record; // random targets may collide
        assert_engines_agree(48, config, 12, 0, 1);
    }
}

#[test]
fn staggered_lifetimes_record_policy() {
    // Nodes retire at different rounds; late sends to dead nodes must be
    // counted identically (DeadRecipient under Record).
    for seed in [7, 8, 9] {
        let mut config = Config::ncc0(seed);
        config.capacity_policy = CapacityPolicy::Record;
        assert_engines_agree(64, config, 6, 9, 2);
    }
}

#[test]
fn overloaded_fan_out_counts_violations_identically() {
    // Fan-out 6 with capacity 4-ish: send and receive capacity violations
    // fire; the two engines must count and sample them identically.
    let mut config = Config::ncc0(21);
    config.capacity_policy = CapacityPolicy::Record;
    config.capacity_factor = 0.5;
    config.min_capacity = 3;
    assert_engines_agree(40, config, 8, 5, 6);
}

#[test]
fn queue_policy_paces_identically() {
    let mut config = Config::ncc0(33);
    config.capacity_policy = CapacityPolicy::Queue;
    config.track_knowledge = false;
    assert_engines_agree(56, config, 10, 7, 3);
}

#[test]
fn ncc1_and_sequential_ids_agree() {
    let mut config = Config::ncc1(5).with_sequential_ids();
    config.capacity_policy = CapacityPolicy::Record;
    assert_engines_agree(32, config, 9, 4, 2);
}

#[test]
fn strict_violations_abort_both_engines_identically() {
    // Heavy fan-in under Strict: both engines must abort with a
    // Violation (the specific violation record must match).
    let config = Config::ncc0(11).with_capacity_factor(0.5);
    let net = Network::new(48, config);
    let run_b = net.run_protocol(|s| Gossip::new(s, 10, 0, 6));
    let run_t = net.run_protocol_threaded(|s| Gossip::new(s, 10, 0, 6));
    match (run_b, run_t) {
        (Err(SimError::Violation(a)), Err(SimError::Violation(b))) => {
            assert_eq!(a, b, "engines blame different violations");
        }
        (b, t) => panic!(
            "expected strict violations from both engines, got batched={:?} threaded={:?}",
            b.map(|r| r.metrics.rounds),
            t.map(|r| r.metrics.rounds),
        ),
    }
}

/// Runs the batched engine once per worker count and asserts outputs,
/// metrics, and the RAW event stream — `route_mode` narration included,
/// no semantic projection — are bit-identical. This is the worker-count
/// half of the differential story: the parallel routing/receive/learn
/// sweeps must be unobservable except through wall clock.
fn assert_worker_matrix(n: usize, config: &Config, base: u64, stagger: u64, fan: usize) {
    let run = |workers: usize| {
        let net = Network::new(n, config.clone().with_worker_threads(workers));
        let mut events = Recording::new();
        let result: RunResult<u64> = net
            .run_protocol_on(EngineKind::Batched, None, Some(&mut events), |s| {
                Gossip::new(s, base, stagger, fan)
            })
            .unwrap();
        (result, events.events().to_vec())
    };
    let (result_1, events_1) = run(1);
    for workers in [2, 8] {
        let (result_w, events_w) = run(workers);
        assert_eq!(
            result_1.outputs, result_w.outputs,
            "transcripts diverge at {workers} workers (n={n})"
        );
        assert_eq!(
            result_1.metrics, result_w.metrics,
            "metrics diverge at {workers} workers (n={n})"
        );
        assert_eq!(
            events_1, events_w,
            "raw event streams diverge at {workers} workers (n={n})"
        );
        assert_eq!(
            result_1.engine.parallel_route_rounds, result_w.engine.parallel_route_rounds,
            "dense/sparse classification must be worker-count-invariant"
        );
        assert!(
            result_w.engine.parallel_sweep_rounds > 0,
            "matrix sizes are chosen to engage the parallel sweeps (n={n})"
        );
    }
}

#[test]
fn worker_matrix_queue_mode_tracked() {
    // Queue pacing + knowledge tracking: the two-phase parallel deliver
    // pass must reproduce the sequential FIFO layout bit-for-bit.
    let mut config = Config::ncc0(71);
    config.capacity_policy = CapacityPolicy::Queue;
    assert_worker_matrix(6_000, &config, 10, 0, 3);
}

#[test]
fn worker_matrix_compacting_record_tracked() {
    // Staggered lifetimes drive live-slot compactions mid-run; the sweeps
    // must stay sound across slot re-homing, and the compaction narration
    // itself is part of the raw stream being compared.
    let mut config = Config::ncc0(72);
    config.capacity_policy = CapacityPolicy::Record;
    assert_worker_matrix(6_000, &config, 8, 6, 3);
}

#[test]
fn worker_matrix_strict_kt0_clean() {
    // Strict KT0 over the successor chain: clean traffic, tracked, and the
    // parallel capacity-check pass must find nothing at every pool size.
    let config = Config::ncc0(73);
    assert_worker_matrix(6_000, &config, 10, 0, 1);
}

#[test]
fn strict_abort_blames_the_same_violation_at_every_worker_count() {
    // Overloaded fan-in under Strict: the parallel capacity check journals
    // violations per worker and replays them in dense slot order, so the
    // aborting violation must be the canonical first one regardless of
    // how the pass was partitioned.
    let run = |workers: usize| {
        let config = Config::ncc0(74)
            .with_capacity_factor(0.5)
            .with_worker_threads(workers);
        let net = Network::new(6_000, config);
        match net.run_protocol(|s| Gossip::new(s, 10, 0, 6)) {
            Err(SimError::Violation(v)) => v,
            other => panic!(
                "expected a strict violation, got {:?}",
                other.map(|r| r.metrics.rounds)
            ),
        }
    };
    let first = run(1);
    for workers in [2, 8] {
        assert_eq!(
            first,
            run(workers),
            "canonical first violation diverges at {workers} workers"
        );
    }
}

/// The ISSUE-scale matrix: 10^5 nodes through the same three configs.
/// Release-mode only (`--ignored`); the in-tree 6k matrix above covers
/// the same paths on every `cargo test`.
#[test]
#[ignore = "release-scale worker matrix; run with --ignored"]
fn worker_matrix_at_n_100k() {
    let mut queue = Config::ncc0(81);
    queue.capacity_policy = CapacityPolicy::Queue;
    assert_worker_matrix(100_000, &queue, 8, 0, 3);

    let mut compacting = Config::ncc0(82);
    compacting.capacity_policy = CapacityPolicy::Record;
    assert_worker_matrix(100_000, &compacting, 6, 5, 3);

    let strict = Config::ncc0(83);
    assert_worker_matrix(100_000, &strict, 8, 0, 1);
}

#[test]
fn masked_participants_agree_with_full_run_shape() {
    // A masked batched run must produce a clean sub-network transcript;
    // the threaded engine has no masked protocol entry, so check the
    // batched run against the structural expectations instead.
    let mut config = Config::ncc0(17);
    config.capacity_policy = CapacityPolicy::Record;
    let net = Network::new(30, config);
    let mask: Vec<bool> = (0..30).map(|i| i % 3 != 1).collect();
    let result = net
        .run_protocol_masked(&mask, |s| Gossip::new(s, 8, 0, 1))
        .unwrap();
    assert_eq!(result.outputs.len(), 20);
    // All traffic stayed within the participating sub-network.
    assert!(result.metrics.violations.bad_recipient == 0);
    // The dense masked remap sizes every engine array for the k=20
    // participants, not the 30-node network.
    assert_eq!(result.engine.dense_index_space, 20);
}

#[test]
fn masked_runs_size_state_with_participants_not_network() {
    // The dense-remap memory claim, differentially: the same 256-node
    // sub-network embedded in networks of growing size must report the
    // same dense index space and the same knowledge-arena footprint —
    // masked state scales with k, not n.
    let run = |n: usize| {
        let mut config = Config::ncc0(55).with_sequential_ids();
        config.capacity_policy = CapacityPolicy::Record;
        let net = Network::new(n, config);
        let mask: Vec<bool> = (0..n).map(|i| i < 256).collect();
        net.run_protocol_masked(&mask, |s| Gossip::new(s, 8, 0, 2))
            .unwrap()
    };
    let small = run(512);
    let large = run(8_192);
    assert_eq!(small.engine.dense_index_space, 256);
    assert_eq!(large.engine.dense_index_space, 256);
    assert_eq!(
        small.engine.knowledge_arena, large.engine.knowledge_arena,
        "knowledge arena must not grow with the masked-out remainder"
    );
    assert!(small.engine.knowledge_arena > 0, "tracking was on");
    assert_eq!(
        small.outputs, large.outputs,
        "sequential IDs: the embedded sub-network's transcript is n-invariant"
    );
}
