//! Differential tests: the batched executor and the threaded oracle must
//! be observationally identical — same per-round deliveries (captured as
//! per-node transcript hashes over every received envelope), same
//! outputs, and bit-identical [`RunMetrics`] — across models, capacity
//! policies, ID assignments and staggered node lifetimes.
#![cfg(feature = "threaded")]

mod common;

use common::Gossip;
use dgr_ncc::event::semantic_stream;
use dgr_ncc::{CapacityPolicy, Config, EngineKind, Network, Recording, RunResult, SimError};

/// Runs the same gossip configuration on both engines and asserts full
/// observational equality — transcripts, metrics, and the semantic
/// projection of the event streams.
fn assert_engines_agree(n: usize, config: Config, base: u64, stagger: u64, fan: usize) {
    let net = Network::new(n, config);
    let mut batched_events = Recording::new();
    let batched: RunResult<u64> = net
        .run_protocol_on(EngineKind::Batched, None, Some(&mut batched_events), |s| {
            Gossip::new(s, base, stagger, fan)
        })
        .unwrap();
    let mut threaded_events = Recording::new();
    let threaded: RunResult<u64> = net
        .run_protocol_on(
            EngineKind::Threaded,
            None,
            Some(&mut threaded_events),
            |s| Gossip::new(s, base, stagger, fan),
        )
        .unwrap();
    assert_eq!(
        batched.outputs, threaded.outputs,
        "per-node transcripts diverge (n={n})"
    );
    assert_eq!(batched.metrics, threaded.metrics, "metrics diverge (n={n})");
    assert_eq!(
        semantic_stream(&batched_events.events()),
        semantic_stream(&threaded_events.events()),
        "event streams diverge (n={n})"
    );
}

#[test]
fn uniform_lifetimes_strict_clean() {
    // Fan-out 1 to the successor chain only: strict-legal traffic.
    for seed in 0..4 {
        let mut config = Config::ncc0(seed);
        config.capacity_policy = CapacityPolicy::Record; // random targets may collide
        assert_engines_agree(48, config, 12, 0, 1);
    }
}

#[test]
fn staggered_lifetimes_record_policy() {
    // Nodes retire at different rounds; late sends to dead nodes must be
    // counted identically (DeadRecipient under Record).
    for seed in [7, 8, 9] {
        let mut config = Config::ncc0(seed);
        config.capacity_policy = CapacityPolicy::Record;
        assert_engines_agree(64, config, 6, 9, 2);
    }
}

#[test]
fn overloaded_fan_out_counts_violations_identically() {
    // Fan-out 6 with capacity 4-ish: send and receive capacity violations
    // fire; the two engines must count and sample them identically.
    let mut config = Config::ncc0(21);
    config.capacity_policy = CapacityPolicy::Record;
    config.capacity_factor = 0.5;
    config.min_capacity = 3;
    assert_engines_agree(40, config, 8, 5, 6);
}

#[test]
fn queue_policy_paces_identically() {
    let mut config = Config::ncc0(33);
    config.capacity_policy = CapacityPolicy::Queue;
    config.track_knowledge = false;
    assert_engines_agree(56, config, 10, 7, 3);
}

#[test]
fn ncc1_and_sequential_ids_agree() {
    let mut config = Config::ncc1(5).with_sequential_ids();
    config.capacity_policy = CapacityPolicy::Record;
    assert_engines_agree(32, config, 9, 4, 2);
}

#[test]
fn strict_violations_abort_both_engines_identically() {
    // Heavy fan-in under Strict: both engines must abort with a
    // Violation (the specific violation record must match).
    let config = Config::ncc0(11).with_capacity_factor(0.5);
    let net = Network::new(48, config);
    let run_b = net.run_protocol(|s| Gossip::new(s, 10, 0, 6));
    let run_t = net.run_protocol_threaded(|s| Gossip::new(s, 10, 0, 6));
    match (run_b, run_t) {
        (Err(SimError::Violation(a)), Err(SimError::Violation(b))) => {
            assert_eq!(a, b, "engines blame different violations");
        }
        (b, t) => panic!(
            "expected strict violations from both engines, got batched={:?} threaded={:?}",
            b.map(|r| r.metrics.rounds),
            t.map(|r| r.metrics.rounds),
        ),
    }
}

#[test]
fn masked_participants_agree_with_full_run_shape() {
    // A masked batched run must produce a clean sub-network transcript;
    // the threaded engine has no masked protocol entry, so check the
    // batched run against the structural expectations instead.
    let mut config = Config::ncc0(17);
    config.capacity_policy = CapacityPolicy::Record;
    let net = Network::new(30, config);
    let mask: Vec<bool> = (0..30).map(|i| i % 3 != 1).collect();
    let result = net
        .run_protocol_masked(&mask, |s| Gossip::new(s, 8, 0, 1))
        .unwrap();
    assert_eq!(result.outputs.len(), 20);
    // All traffic stayed within the participating sub-network.
    assert!(result.metrics.violations.bad_recipient == 0);
}
