//! Live-slot compaction: a staggered-death long-tail run must (a) keep
//! transcripts and metrics bit-identical to the uncompacted oracles —
//! compaction is a memory-layout decision, not a semantic one — and (b)
//! actually compact, with a monotonically shrinking live-slot count
//! across compactions (the halving rule guarantees strict decrease).

mod common;

use common::Gossip;
use dgr_ncc::{CapacityPolicy, Config, Network, RunResult};

/// A long-tailed population: lifetimes staggered over [3, 3 + n) rounds,
/// so the live count decays roughly linearly while a few nodes survive
/// far past the median — the workload slot compaction exists for.
fn long_tail_run(workers: usize, queue: bool) -> RunResult<u64> {
    let mut config = Config::ncc0(2026).with_worker_threads(workers);
    config.capacity_policy = if queue {
        CapacityPolicy::Queue
    } else {
        CapacityPolicy::Record
    };
    let net = Network::new(192, config);
    net.run_protocol(|s| Gossip::new(s, 3, 192, 2)).unwrap()
}

#[test]
fn long_tail_compacts_with_monotonically_shrinking_live_count() {
    let result = long_tail_run(1, false);
    let stats = &result.engine;
    assert!(
        stats.compactions >= 2,
        "staggered-death run should compact repeatedly, got {}",
        stats.compactions
    );
    assert_eq!(stats.compaction_live.len(), stats.compactions as usize);
    // The halving rule: each compaction fires only once the live
    // population has at least halved since the previous one (which also
    // implies the counts are strictly decreasing).
    for pair in stats.compaction_live.windows(2) {
        assert!(
            pair[1] * 2 <= pair[0],
            "halving rule violated: {:?}",
            stats.compaction_live
        );
    }
    assert!(*stats.compaction_live.first().unwrap() <= 192 / 2);
}

#[test]
fn compaction_is_transcript_invariant_across_worker_counts() {
    let (outputs_1, metrics_1) = {
        let r = long_tail_run(1, false);
        (r.outputs, r.metrics)
    };
    for workers in [2, 3, 5, 8] {
        let r = long_tail_run(workers, false);
        assert_eq!(outputs_1, r.outputs, "outputs diverge at {workers} workers");
        assert_eq!(metrics_1, r.metrics, "metrics diverge at {workers} workers");
        assert!(r.engine.compactions >= 2);
    }
}

/// Queue policy: retiring nodes leave backlog behind; the compacted
/// engine must keep draining those queues (undelivered accounting,
/// max-queue/max-received metrics) exactly as if the slots still existed.
#[cfg(feature = "threaded")]
#[test]
fn queued_long_tail_compacts_and_matches_the_threaded_oracle() {
    let batched = long_tail_run(1, true);
    assert!(
        batched.engine.compactions >= 2,
        "queued long tail should compact, got {}",
        batched.engine.compactions
    );
    let mut config = Config::ncc0(2026).with_worker_threads(1);
    config.capacity_policy = CapacityPolicy::Queue;
    let net = Network::new(192, config);
    let threaded = net
        .run_protocol_threaded(|s| Gossip::new(s, 3, 192, 2))
        .unwrap();
    assert_eq!(batched.outputs, threaded.outputs, "transcripts diverge");
    assert_eq!(batched.metrics, threaded.metrics, "metrics diverge");
    // The oracle never compacts; the field must stay engine-specific.
    assert_eq!(threaded.engine.compactions, 0);
}

#[cfg(feature = "threaded")]
#[test]
fn record_long_tail_matches_the_threaded_oracle() {
    let batched = long_tail_run(1, false);
    let mut config = Config::ncc0(2026).with_worker_threads(1);
    config.capacity_policy = CapacityPolicy::Record;
    let net = Network::new(192, config);
    let threaded = net
        .run_protocol_threaded(|s| Gossip::new(s, 3, 192, 2))
        .unwrap();
    assert_eq!(batched.outputs, threaded.outputs, "transcripts diverge");
    assert_eq!(batched.metrics, threaded.metrics, "metrics diverge");
}

/// The adaptive router must pick the inline path on sparse rounds even
/// with a multi-worker pool: a gossip round at n=192 never clears the
/// parallel-route threshold, so every round of this run is inline.
#[test]
fn sparse_rounds_route_inline_even_with_workers() {
    let result = long_tail_run(4, false);
    assert_eq!(
        result.engine.parallel_route_rounds, 0,
        "sparse rounds must not pay the parallel routing setup"
    );
    assert!(result.engine.inline_route_rounds > 0);
}
