//! Live-slot compaction: a staggered-death long-tail run must (a) keep
//! transcripts and metrics bit-identical to the uncompacted oracles —
//! compaction is a memory-layout decision, not a semantic one — and (b)
//! actually compact, with a monotonically shrinking live-slot count
//! across compactions (the halving rule guarantees strict decrease).

mod common;

use common::Gossip;
use dgr_ncc::event::semantic_stream;
use dgr_ncc::{CapacityPolicy, Config, EngineKind, Network, Recording, RunEvent, RunResult};

/// A long-tailed population: lifetimes staggered over [3, 3 + n) rounds,
/// so the live count decays roughly linearly while a few nodes survive
/// far past the median — the workload slot compaction exists for.
fn long_tail_run(workers: usize, queue: bool) -> RunResult<u64> {
    let (result, _) = long_tail_run_observed(EngineKind::Batched, workers, queue);
    result
}

/// The same run with its event stream recorded, on either engine.
fn long_tail_run_observed(
    engine: EngineKind,
    workers: usize,
    queue: bool,
) -> (RunResult<u64>, Recording) {
    let mut config = Config::ncc0(2026).with_worker_threads(workers);
    config.capacity_policy = if queue {
        CapacityPolicy::Queue
    } else {
        CapacityPolicy::Record
    };
    let net = Network::new(192, config);
    let mut events = Recording::new();
    let result = net
        .run_protocol_on(engine, None, Some(&mut events), |s| {
            Gossip::new(s, 3, 192, 2)
        })
        .unwrap();
    (result, events)
}

#[test]
fn long_tail_compacts_with_monotonically_shrinking_live_count() {
    let result = long_tail_run(1, false);
    let stats = &result.engine;
    assert!(
        stats.compactions >= 2,
        "staggered-death run should compact repeatedly, got {}",
        stats.compactions
    );
    assert_eq!(stats.compaction_live.len(), stats.compactions as usize);
    // The halving rule: each compaction fires only once the live
    // population has at least halved since the previous one (which also
    // implies the counts are strictly decreasing).
    for pair in stats.compaction_live.windows(2) {
        assert!(
            pair[1] * 2 <= pair[0],
            "halving rule violated: {:?}",
            stats.compaction_live
        );
    }
    assert!(*stats.compaction_live.first().unwrap() <= 192 / 2);
}

#[test]
fn compaction_is_transcript_invariant_across_worker_counts() {
    let (outputs_1, metrics_1) = {
        let r = long_tail_run(1, false);
        (r.outputs, r.metrics)
    };
    for workers in [2, 3, 5, 8] {
        let r = long_tail_run(workers, false);
        assert_eq!(outputs_1, r.outputs, "outputs diverge at {workers} workers");
        assert_eq!(metrics_1, r.metrics, "metrics diverge at {workers} workers");
        assert!(r.engine.compactions >= 2);
    }
}

/// Queue policy: retiring nodes leave backlog behind; the compacted
/// engine must keep draining those queues (undelivered accounting,
/// max-queue/max-received metrics) exactly as if the slots still existed.
#[cfg(feature = "threaded")]
#[test]
fn queued_long_tail_compacts_and_matches_the_threaded_oracle() {
    let batched = long_tail_run(1, true);
    assert!(
        batched.engine.compactions >= 2,
        "queued long tail should compact, got {}",
        batched.engine.compactions
    );
    let mut config = Config::ncc0(2026).with_worker_threads(1);
    config.capacity_policy = CapacityPolicy::Queue;
    let net = Network::new(192, config);
    let threaded = net
        .run_protocol_threaded(|s| Gossip::new(s, 3, 192, 2))
        .unwrap();
    assert_eq!(batched.outputs, threaded.outputs, "transcripts diverge");
    assert_eq!(batched.metrics, threaded.metrics, "metrics diverge");
    // The oracle never compacts; the field must stay engine-specific.
    assert_eq!(threaded.engine.compactions, 0);
}

#[cfg(feature = "threaded")]
#[test]
fn record_long_tail_matches_the_threaded_oracle() {
    let batched = long_tail_run(1, false);
    let mut config = Config::ncc0(2026).with_worker_threads(1);
    config.capacity_policy = CapacityPolicy::Record;
    let net = Network::new(192, config);
    let threaded = net
        .run_protocol_threaded(|s| Gossip::new(s, 3, 192, 2))
        .unwrap();
    assert_eq!(batched.outputs, threaded.outputs, "transcripts diverge");
    assert_eq!(batched.metrics, threaded.metrics, "metrics diverge");
}

/// The adaptive router must pick the inline path on sparse rounds even
/// with a multi-worker pool: a gossip round at n=192 never clears the
/// parallel-route threshold, so every round of this run is inline.
#[test]
fn sparse_rounds_route_inline_even_with_workers() {
    let result = long_tail_run(4, false);
    assert_eq!(
        result.engine.parallel_route_rounds, 0,
        "sparse rounds must not pay the parallel routing setup"
    );
    assert!(result.engine.inline_route_rounds > 0);
}

/// The event stream of a compacting run is bit-identical across worker
/// counts, and its `Compaction` events are exactly what `EngineStats`
/// reports — the stats are a pure stream derivation, so they cannot
/// drift from the narrated compactions.
#[test]
fn event_stream_is_identical_across_worker_counts_and_narrates_compactions() {
    let (result_1, events_1) = long_tail_run_observed(EngineKind::Batched, 1, false);
    let events_1 = events_1.events();
    let compactions: Vec<(u64, usize)> = events_1
        .iter()
        .filter_map(|e| match e {
            RunEvent::Compaction { round, live } => Some((*round, *live)),
            _ => None,
        })
        .collect();
    assert!(
        compactions.len() >= 2,
        "long tail should compact repeatedly"
    );
    assert_eq!(compactions.len() as u64, result_1.engine.compactions);
    assert_eq!(
        compactions
            .iter()
            .map(|&(_, live)| live)
            .collect::<Vec<_>>(),
        result_1.engine.compaction_live
    );
    // Every round is narrated, in order, ending with Done.
    let rounds: Vec<u64> = events_1
        .iter()
        .filter_map(|e| match e {
            RunEvent::RoundCompleted { round, .. } => Some(*round),
            _ => None,
        })
        .collect();
    assert_eq!(rounds, (0..result_1.metrics.rounds).collect::<Vec<_>>());
    assert!(matches!(events_1.last(), Some(RunEvent::Done { .. })));
    for workers in [2, 3, 5, 8] {
        let (_, events_w) = long_tail_run_observed(EngineKind::Batched, workers, false);
        assert_eq!(
            events_1,
            events_w.events(),
            "event stream diverges at {workers} workers"
        );
    }
}

/// Batched (compacting) vs threaded (never compacting): the semantic
/// projections of the streams must agree exactly — compaction is a
/// memory-layout narration, not a semantic event — under both the
/// record and queue policies.
#[cfg(feature = "threaded")]
#[test]
fn event_streams_semantically_identical_across_engines_with_and_without_compaction() {
    for queue in [false, true] {
        let (batched, batched_events) = long_tail_run_observed(EngineKind::Batched, 1, queue);
        let (threaded, threaded_events) = long_tail_run_observed(EngineKind::Threaded, 1, queue);
        assert!(batched.engine.compactions >= 2, "run must compact");
        assert_eq!(threaded.engine.compactions, 0, "oracle never compacts");
        let batched_events = batched_events.events();
        assert!(
            batched_events
                .iter()
                .any(|e| matches!(e, RunEvent::Compaction { .. })),
            "batched stream must narrate its compactions"
        );
        assert!(
            !threaded_events
                .events()
                .iter()
                .any(|e| matches!(e, RunEvent::Compaction { .. })),
            "threaded stream must not invent compactions"
        );
        assert_eq!(
            semantic_stream(&batched_events),
            semantic_stream(&threaded_events.events()),
            "semantic streams diverge (queue={queue})"
        );
    }
}
