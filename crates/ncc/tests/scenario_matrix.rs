//! Scenario-matrix differential tests: seeded fault injection must be a
//! pure function of `(run seed, scenario seed, schedule)` — invisible to
//! the execution layout. A fixed schedule runs at shard counts 1/2/4 ×
//! worker counts 1/2/8 and the outputs, bit-identical [`RunMetrics`], and
//! RAW event streams (fault and churn narration included) are held equal
//! to the 1-shard/1-worker baseline. The suite also pins the two identity
//! contracts: an empty schedule is bit-identical to a scenario-free run,
//! and a scheduled crash-stop is transcript-identical to the same node
//! dying voluntarily in the same round.

mod common;

use common::Gossip;
use dgr_ncc::{
    CapacityPolicy, Config, EngineKind, Network, Recording, RunEvent, RunResult, Scenario, SimError,
};

const SHARDS: [usize; 2] = [2, 4];
const WORKERS: [usize; 3] = [1, 2, 8];

/// Runs the batched engine once per (shards × workers) cell under the
/// given scenario and asserts outputs, metrics, and the raw event stream
/// are bit-identical to the unsharded single-worker baseline.
fn assert_scenario_matrix(
    n: usize,
    config: &Config,
    scenario: &Scenario,
    base: u64,
    stagger: u64,
    fan: usize,
) -> (RunResult<u64>, Vec<RunEvent>) {
    let run = |shards: usize, workers: usize| {
        let net = Network::new(
            n,
            config
                .clone()
                .with_shards(shards)
                .with_worker_threads(workers)
                .with_scenario(scenario.clone()),
        );
        let mut events = Recording::new();
        let result: RunResult<u64> = net
            .run_protocol_on(EngineKind::Batched, None, Some(&mut events), |s| {
                Gossip::new(s, base, stagger, fan)
            })
            .unwrap();
        (result, events.events().to_vec())
    };
    let (result_1, events_1) = run(1, 1);
    for shards in SHARDS {
        for workers in WORKERS {
            let (result_s, events_s) = run(shards, workers);
            assert_eq!(
                result_1.outputs, result_s.outputs,
                "transcripts diverge at {shards} shards × {workers} workers (n={n})"
            );
            assert_eq!(
                result_1.metrics, result_s.metrics,
                "metrics diverge at {shards} shards × {workers} workers (n={n})"
            );
            assert_eq!(
                events_1, events_s,
                "raw event streams diverge at {shards} shards × {workers} workers (n={n})"
            );
        }
    }
    (result_1, events_1)
}

#[test]
fn scenario_matrix_full_schedule_queue_tracked() {
    // Every fault family at once, under the policy that makes delivery
    // order observable (FIFO backlog) and with KT0 tracking folding the
    // delivered envelopes into per-node knowledge: drop and duplicate
    // windows overlap, a reorder window permutes fresh prefixes, two
    // nodes crash (one recovers), and one node joins late.
    let mut config = Config::ncc0(91);
    config.capacity_policy = CapacityPolicy::Queue;
    let scenario = Scenario::new(4242)
        .drop_messages(2..=9, 0.02)
        .duplicate_messages(4..=12, 0.01)
        .reorder(3..=10)
        .crash(17, 6)
        .crash_recover(23, 4, 8)
        .join(41, 5);
    let (result, events) = assert_scenario_matrix(4_000, &config, &scenario, 14, 0, 3);

    // The schedule actually fired, and the narration reached the stats.
    let stats = &result.engine;
    assert!(stats.faults_dropped > 0, "drop window never fired");
    assert!(stats.faults_duplicated > 0, "duplicate window never fired");
    assert!(stats.faults_reordered > 0, "reorder window never fired");
    assert_eq!(stats.crashes, 2, "crash-stop + crash-pause narration");
    assert_eq!(stats.recoveries, 1);
    assert_eq!(stats.joins, 1);
    let narrated: u64 = events
        .iter()
        .filter_map(|e| match e {
            RunEvent::FaultInjected { dropped, .. } => Some(*dropped),
            _ => None,
        })
        .sum();
    assert_eq!(narrated, stats.faults_dropped);
    // The crash-stopped node produces no output; everyone else retires
    // normally (the run completes under fire — Gossip is lifetime-driven
    // and tolerates lost traffic).
    assert_eq!(result.outputs.len(), 3_999);
}

#[test]
fn empty_schedule_is_bit_identical_to_scenario_free() {
    let mut config = Config::ncc0(92);
    config.capacity_policy = CapacityPolicy::Queue;
    let run = |scenario: Option<Scenario>| {
        let mut c = config.clone();
        if let Some(s) = scenario {
            c = c.with_scenario(s);
        }
        let net = Network::new(2_000, c);
        let mut events = Recording::new();
        let result: RunResult<u64> = net
            .run_protocol_on(EngineKind::Batched, None, Some(&mut events), |s| {
                Gossip::new(s, 10, 6, 3)
            })
            .unwrap();
        (result, events.events().to_vec())
    };
    let (base_result, base_events) = run(None);
    let (empty_result, empty_events) = run(Some(Scenario::new(777)));
    assert_eq!(base_result.outputs, empty_result.outputs);
    assert_eq!(base_result.metrics, empty_result.metrics);
    assert_eq!(base_events, empty_events, "empty schedule must be inert");

    // Same for a schedule whose windows can never fire: quiet rounds
    // consume no randomness and never touch the arena.
    let (far_result, far_events) = run(Some(
        Scenario::new(778).drop_messages(1_000_000..=u64::MAX, 0.5),
    ));
    assert_eq!(base_result.outputs, far_result.outputs);
    assert_eq!(base_result.metrics, far_result.metrics);
    assert_eq!(
        base_events, far_events,
        "never-firing windows must be inert"
    );
}

#[test]
fn crash_stop_matches_the_voluntary_death_transcript() {
    // Run A: every node dies voluntarily at its staggered lifetime.
    // Run B: immortal protocols, and a schedule that crash-stops each
    // node at exactly the round its twin would have retired. The wire
    // footprint of a crash is designed to be *exactly* a voluntary
    // `Done` (the node steps in its final round, its staged sends are
    // discarded, senders see DeadRecipient from the same round on) — so
    // events (minus the NodeCrashed narration) and metrics must match
    // bit for bit; only the outputs differ (a crashed node never gets
    // to return one).
    let n = 1_500;
    let (base, stagger, fan) = (8u64, 6u64, 2usize);
    let mut config = Config::ncc0(93);
    config.capacity_policy = CapacityPolicy::Queue;

    let net = Network::new(n, config.clone());
    let mut voluntary_events = Recording::new();
    let voluntary: RunResult<u64> = net
        .run_protocol_on(
            EngineKind::Batched,
            None,
            Some(&mut voluntary_events),
            |s| Gossip::new(s, base, stagger, fan),
        )
        .unwrap();

    let mut scenario = Scenario::new(0);
    for (pos, &id) in net.ids_in_path_order().iter().enumerate() {
        scenario = scenario.crash(pos, base + id % stagger);
    }
    let net = Network::new(n, config.with_scenario(scenario));
    let mut crashed_events = Recording::new();
    let crashed: RunResult<u64> = net
        .run_protocol_on(EngineKind::Batched, None, Some(&mut crashed_events), |s| {
            Gossip::new(s, u64::MAX, 0, fan)
        })
        .unwrap();

    assert_eq!(voluntary.metrics, crashed.metrics);
    let without_churn: Vec<RunEvent> = crashed_events
        .events()
        .iter()
        .filter(|e| !matches!(e, RunEvent::NodeCrashed { .. }))
        .cloned()
        .collect();
    assert_eq!(
        voluntary_events.events(),
        &without_churn[..],
        "crash-stop must be wire-identical to voluntary death"
    );
    assert_eq!(voluntary.outputs.len(), n);
    assert!(crashed.outputs.is_empty());
    assert_eq!(crashed.engine.crashes, n as u64);
}

#[test]
fn scenarios_reject_the_threaded_oracle() {
    let config = Config::ncc0(94).with_scenario(Scenario::new(1).drop_messages(0..=5, 0.1));
    let net = Network::new(64, config);
    match net.run_protocol_threaded(|s| Gossip::new(s, 5, 0, 1)) {
        Err(SimError::InvalidScenario(why)) => {
            assert!(why.contains("threaded oracle"), "unhelpful message: {why}")
        }
        other => panic!(
            "expected InvalidScenario, got {:?}",
            other.map(|r| r.metrics.rounds)
        ),
    }
}

#[test]
fn invalid_schedules_are_rejected_before_setup() {
    // Reorder without a FIFO queue to permute.
    let config = Config::ncc0(95).with_scenario(Scenario::new(1).reorder(0..=5));
    let net = Network::new(64, config);
    match net.run_protocol(|s| Gossip::new(s, 5, 0, 1)) {
        Err(SimError::InvalidScenario(why)) => {
            assert!(why.contains("CapacityPolicy::Queue"), "message: {why}")
        }
        other => panic!(
            "expected InvalidScenario, got {:?}",
            other.map(|r| r.metrics.rounds)
        ),
    }
    // Node outside the network.
    let config = Config::ncc0(96).with_scenario(Scenario::new(1).crash(64, 3));
    let net = Network::new(64, config);
    match net.run_protocol(|s| Gossip::new(s, 5, 0, 1)) {
        Err(SimError::InvalidScenario(why)) => {
            assert!(why.contains("not a participant"), "message: {why}")
        }
        other => panic!(
            "expected InvalidScenario, got {:?}",
            other.map(|r| r.metrics.rounds)
        ),
    }
}

/// The certified-under-drops contract: a lossy network degrades the
/// transcript, never the engine. The run completes, every surviving node
/// retires with an output, and the post-fault accounting balances — the
/// per-round delivered counts the engine narrates equal the sealed
/// volume minus drops plus duplicates, which the stats counters must
/// reproduce exactly.
#[test]
fn gossip_certifies_under_one_percent_drop() {
    let mut config = Config::ncc0(97);
    config.capacity_policy = CapacityPolicy::Queue;
    let scenario = Scenario::new(29)
        .drop_messages(0..=u64::MAX, 0.01)
        .duplicate_messages(0..=u64::MAX, 0.005);
    let net = Network::new(4_000, config.with_scenario(scenario));
    let mut events = Recording::new();
    let result: RunResult<u64> = net
        .run_protocol_on(EngineKind::Batched, None, Some(&mut events), |s| {
            Gossip::new(s, 12, 5, 3)
        })
        .unwrap();
    assert_eq!(result.outputs.len(), 4_000, "every node must still retire");
    let stats = &result.engine;
    assert!(stats.faults_dropped > 0);
    assert!(stats.faults_duplicated > 0);
    // Conservation: sum of narrated per-round deliveries == total
    // delivered messages in the metrics, fault adjustments included.
    let narrated: u64 = events
        .events()
        .iter()
        .filter_map(|e| match e {
            RunEvent::RoundCompleted { delivered, .. } => Some(*delivered),
            _ => None,
        })
        .sum();
    assert_eq!(narrated, result.metrics.messages);
}
