//! Engine edge cases: every violation class fires when it should, and
//! model misuse fails loudly rather than silently.

use dgr_ncc::{tags, CapacityPolicy, Config, Msg, Network, SimError, Violation, ViolationKind};

fn strict_violation(err: SimError) -> Violation {
    match err {
        SimError::Violation(v) => v,
        other => panic!("expected a violation, got {other}"),
    }
}

#[test]
fn oversized_messages_are_rejected() {
    let net = Network::new(2, Config::ncc0(1));
    let err = net
        .run(|h| {
            let out = h
                .initial_successor()
                .map(|s| (s, Msg::words(tags::GENERIC, vec![0; 32])))
                .into_iter()
                .collect();
            h.step(out);
        })
        .unwrap_err();
    assert!(matches!(
        strict_violation(err).kind,
        ViolationKind::MessageTooLarge { words: 32, .. }
    ));
}

#[test]
fn too_many_addresses_are_rejected() {
    let net = Network::new(2, Config::ncc0(2));
    let err = net
        .run(|h| {
            let me = h.id();
            let out = h
                .initial_successor()
                .map(|s| {
                    let mut m = Msg::signal(tags::GENERIC);
                    for _ in 0..8 {
                        m = m.with_addr(me);
                    }
                    (s, m)
                })
                .into_iter()
                .collect();
            h.step(out);
        })
        .unwrap_err();
    assert!(matches!(
        strict_violation(err).kind,
        ViolationKind::MessageTooLarge { addrs: 8, .. }
    ));
}

#[test]
fn sending_to_nonexistent_node_is_caught() {
    let mut config = Config::ncc0(3);
    config.track_knowledge = false; // get past the KT0 check to the routing check
    let net = Network::new(2, config);
    let err = net
        .run(|h| {
            let out = vec![(u64::MAX, Msg::signal(tags::GENERIC))];
            h.step(out);
        })
        .unwrap_err();
    assert!(matches!(
        strict_violation(err).kind,
        ViolationKind::NoSuchNode { .. }
    ));
}

#[test]
fn sending_to_terminated_node_is_caught() {
    let mut config = Config::ncc0(4);
    config.capacity_policy = CapacityPolicy::Record;
    let net = Network::new(2, config);
    let head = net.ids_in_path_order()[0];
    let result = net
        .run(move |h| {
            if h.id() == head {
                // Head terminates immediately.
                return 0;
            }
            // The tail waits a round (head sends Done), then messages it.
            h.idle();
            h.step(vec![(head, Msg::signal(tags::GENERIC))]);
            1
        })
        .unwrap();
    assert_eq!(result.metrics.violations.bad_recipient, 1);
}

#[test]
#[should_panic(expected = "NCC1")]
fn all_ids_panics_under_ncc0() {
    let net = Network::new(2, Config::ncc0(5));
    // The panic inside the node surfaces as a NodePanic error; unwrap it
    // to propagate the message for should_panic.
    let err = net.run(|h| h.all_ids().len()).unwrap_err();
    match err {
        SimError::NodePanic { message, .. } => panic!("{message}"),
        other => panic!("unexpected error {other}"),
    }
}

#[test]
fn send_capacity_overflow_is_fatal_under_strict() {
    let mut config = Config::ncc0(6);
    config.track_knowledge = false;
    let net = Network::new(64, config);
    let targets: Vec<u64> = net.ids_in_path_order()[1..].to_vec();
    let head = net.ids_in_path_order()[0];
    let err = net
        .run(move |h| {
            let out = if h.id() == head {
                targets
                    .iter()
                    .map(|&t| (t, Msg::signal(tags::GENERIC)))
                    .collect()
            } else {
                vec![]
            };
            h.step(out);
        })
        .unwrap_err();
    assert!(matches!(
        strict_violation(err).kind,
        ViolationKind::SendCapacity { sent: 63, .. }
    ));
}

#[test]
fn receive_capacity_overflow_is_fatal_under_strict() {
    let mut config = Config::ncc0(7);
    config.track_knowledge = false;
    let net = Network::new(64, config);
    let head = net.ids_in_path_order()[0];
    let err = net
        .run(move |h| {
            let out = if h.id() == head {
                vec![]
            } else {
                vec![(head, Msg::signal(tags::GENERIC))]
            };
            h.step(out);
        })
        .unwrap_err();
    let v = strict_violation(err);
    assert_eq!(v.node, head, "violation must blame the receiver");
    assert!(matches!(
        v.kind,
        ViolationKind::ReceiveCapacity { received: 63, .. }
    ));
}

#[test]
fn knowledge_spreads_through_carried_addresses() {
    // a -> b carries c's address; b may then message c even though b never
    // heard from c directly.
    let net = Network::new(3, Config::ncc0(8));
    let order = net.ids_in_path_order().to_vec();
    let (a, b, c) = (order[0], order[1], order[2]);
    let result = net
        .run(move |h| {
            // Round 1: a tells b about c (a knows c? a's successor is b —
            // a does NOT know c!). So instead: b (who knows c as its
            // successor) tells a about c; then a messages c.
            let me = h.id();
            let out = if me == b {
                vec![(a, Msg::addr(tags::GENERIC, c))]
            } else {
                vec![]
            };
            // b must first learn a's ID: undirect round.
            let undirect = if me == a || me == b {
                h.initial_successor()
                    .map(|s| (s, Msg::signal(tags::UNDIRECT)))
                    .into_iter()
                    .collect()
            } else {
                vec![]
            };
            h.step(undirect);
            h.step(out);
            // Round 3: a messages c directly — legal only because of the
            // carried address.
            let out = if me == a {
                vec![(c, Msg::word(tags::GENERIC, 7))]
            } else {
                vec![]
            };
            let inbox = h.step(out);
            inbox.first().map(|e| e.word())
        })
        .unwrap();
    assert!(result.metrics.is_clean());
    assert_eq!(result.output_of(c).unwrap(), &Some(7));
}
