//! The node-side API: what a simulated node can see and do.

use crate::config::Model;
use crate::engine::{Delivery, Submission};
use crate::message::{Envelope, Msg, NodeId};
use crossbeam::channel::{Receiver, Sender};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::sync::Arc;

/// Handle through which a node's protocol function interacts with the
/// network. One round = one call to [`NodeHandle::step`].
///
/// The handle exposes exactly the information the NCC model grants a node:
/// its own ID, `n`, its out-neighbor on the initial knowledge path (NCC0),
/// or the full ID list (NCC1) — plus a seeded local RNG for Las Vegas
/// protocols. A node's *position* on the knowledge path is deliberately not
/// exposed; protocols must compute it (Corollary 2 of the paper).
pub struct NodeHandle {
    pub(crate) id: NodeId,
    pub(crate) index: usize,
    pub(crate) n: usize,
    pub(crate) participants: usize,
    pub(crate) capacity: usize,
    pub(crate) model: Model,
    pub(crate) initial_successor: Option<NodeId>,
    pub(crate) all_ids: Option<Arc<Vec<NodeId>>>,
    pub(crate) round: u64,
    pub(crate) to_coord: Sender<Submission>,
    pub(crate) from_coord: Receiver<Delivery>,
    pub(crate) rng: SmallRng,
    /// Phase/stage marks to ride along with the next step submission
    /// (set by the step-function wrapper; always empty for direct-style
    /// protocols, which have no marking API).
    pub(crate) marks: (Option<&'static str>, Option<&'static str>),
}

/// Panic payload used to unwind a node thread when the engine poisons it.
pub(crate) const POISON_PANIC: &str = "__ncc_poison__";

impl NodeHandle {
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn new(
        id: NodeId,
        index: usize,
        n: usize,
        participants: usize,
        capacity: usize,
        model: Model,
        initial_successor: Option<NodeId>,
        all_ids: Option<Arc<Vec<NodeId>>>,
        seed: u64,
        to_coord: Sender<Submission>,
        from_coord: Receiver<Delivery>,
    ) -> Self {
        // Derive a per-node RNG stream from the master seed and the node ID.
        let mix = seed
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(id.wrapping_mul(0xBF58_476D_1CE4_E5B9));
        NodeHandle {
            id,
            index,
            n,
            participants,
            capacity,
            model,
            initial_successor,
            all_ids,
            round: 0,
            to_coord,
            from_coord,
            rng: SmallRng::seed_from_u64(mix),
            marks: (None, None),
        }
    }

    /// This node's ID (its "address").
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// Network size. The paper assumes `n` (or a good upper bound) is common
    /// knowledge.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of participating nodes — the knowledge-path length. Equals
    /// [`NodeHandle::n`] except on masked sub-network runs, where it is the
    /// sub-network size (common knowledge, like `n`).
    pub fn participants(&self) -> usize {
        self.participants
    }

    /// The per-round send/receive capacity enforced by the engine
    /// (`Θ(log n)`); a model constant every node knows.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// The model variant this network runs under.
    pub fn model(&self) -> Model {
        self.model
    }

    /// Rounds completed so far by this node.
    pub fn round(&self) -> u64 {
        self.round
    }

    /// NCC0 initial knowledge: the ID of this node's out-neighbor (successor)
    /// on the directed knowledge path `G_k`, or `None` for the path's tail.
    ///
    /// Under NCC1 this is also populated (NCC1 strictly dominates NCC0), so
    /// path-based primitives run unchanged in either model.
    pub fn initial_successor(&self) -> Option<NodeId> {
        self.initial_successor
    }

    /// NCC1 initial knowledge: every node's ID, sorted by ID (so the list
    /// leaks no information about the path order).
    ///
    /// # Panics
    ///
    /// Panics under NCC0 — asking for it there is a model violation in the
    /// protocol's *code*, which we want to fail loudly.
    pub fn all_ids(&self) -> &[NodeId] {
        self.all_ids
            .as_deref()
            .map(|v| v.as_slice())
            .expect("all_ids() requires the NCC1 model")
    }

    /// This node's local randomness (deterministically seeded).
    pub fn rng(&mut self) -> &mut SmallRng {
        &mut self.rng
    }

    /// Executes one synchronous round: submits `out` and blocks until the
    /// coordinator delivers this node's inbox for the round.
    ///
    /// # Panics
    ///
    /// Panics (with an internal payload) if the engine aborted the run; the
    /// panic is caught by the runner and surfaced as the engine's error.
    pub fn step(&mut self, out: Vec<(NodeId, Msg)>) -> Vec<Envelope> {
        let marks = std::mem::take(&mut self.marks);
        self.to_coord
            .send(Submission::Step {
                index: self.index,
                out,
                marks,
            })
            .unwrap_or_else(|_| panic!("{POISON_PANIC}"));
        match self.from_coord.recv() {
            Ok(Delivery::Inbox(inbox)) => {
                self.round += 1;
                inbox
            }
            Ok(Delivery::Poison) | Err(_) => panic!("{POISON_PANIC}"),
        }
    }

    /// A round in which this node sends nothing.
    pub fn idle(&mut self) -> Vec<Envelope> {
        self.step(Vec::new())
    }

    /// Runs `rounds` idle rounds, asserting nothing arrives. Used to keep a
    /// node in lockstep through a collective operation it does not
    /// participate in.
    pub fn idle_quiet(&mut self, rounds: u64) {
        for _ in 0..rounds {
            let inbox = self.idle();
            debug_assert!(
                inbox.is_empty(),
                "node {} expected quiet rounds but received {} messages",
                self.id,
                inbox.len()
            );
        }
    }

    /// Sends a single message and returns the round's inbox.
    pub fn exchange(&mut self, dst: NodeId, msg: Msg) -> Vec<Envelope> {
        self.step(vec![(dst, msg)])
    }
}
