//! The ownership-sharded batched executor.
//!
//! [`Config::shards`] > 1 splits the dense participant space `0..k` into
//! contiguous ranges, one **shard** per range. Each shard owns a private
//! copy of every piece of per-node engine state — slot arena, routing
//! buffers, queue arenas, knowledge-tracker arena — sized to its own
//! span, so the step phase, seal, capacity checks, queue delivery and the
//! learn sweep are purely shard-local: no cross-shard `&mut` aliasing, no
//! whole-pool prefix sums, and a shard is a self-contained unit that
//! could later become a NUMA domain or a TCP-backend process.
//!
//! **The exchange phase.** A node may of course address any participant,
//! so sends whose destination lives in another shard are diverted during
//! the (per-source-shard) seal into per-`(src-shard, dst-shard)` cells.
//! A second, explicitly separate **exchange** pass then runs per
//! *destination* shard: it counts the incoming cells into the shard's
//! local destination counts, prefix-sums the shard's buckets, and splices
//! sources in **canonical shard order** — cells from shards `0..s` first,
//! then the shard's own retained outbox envelopes, then cells from shards
//! `s+1..S`. Because shard ranges partition the dense index space in
//! ascending order and every per-shard walk visits slots in slot order,
//! the spliced bucket contents are in exactly the global dense source
//! order the unsharded engine produces — so FIFO queue contents,
//! violation blame and raw [`RunEvent`] streams are bit-identical to the
//! single-arena layout at any shard×worker combination (the shard-matrix
//! differential suite holds it to that).
//!
//! **Determinism discipline.** The shard is the unit of parallelism: each
//! phase fans the shards out over the worker pool (or walks them inline
//! under a single worker — results are identical), every shard journals
//! its violations in slot order, and the coordinator replays the journals
//! in shard order — which *is* canonical dense order — so a strict abort
//! blames the same first violation as the unsharded path. Round-level
//! folds (message counts, max sends/receives/queues) are sums and maxes,
//! commutative by construction. Compaction keeps the unsharded trigger
//! (global `newly_done > 0 && live * 2 <= window`): when it fires, every
//! shard compacts its own slot window by the same stable `retain` and a
//! single [`RunEvent::Compaction`] is emitted, so the event stream keeps
//! the unsharded shape while each shard's dense-index remap stays
//! entirely local to its own arena.

use crate::config::{CapacityPolicy, Config, Model};
use crate::error::{SimError, Violation, ViolationKind};
use crate::event::{Emitter, RouteMode, RunEvent, Sink};
use crate::knowledge::KnowledgeTracker;
use crate::message::NodeId;
use crate::metrics::RunMetrics;
use crate::network::{Network, RunResult};
use crate::protocol::{NodeProtocol, NodeSeed};
use crate::route::{QueueBuffers, RawRows, RouteBuffers};
use crate::wire::{WireEnvelope, DEAD_INDEX, NO_INDEX, WIRE_ADDRS, WIRE_WORDS};
use rayon::prelude::*;
use std::sync::Arc;
use std::time::Instant;

use crate::batch::{
    step_slot, validate, Slot, StepOutcome, StepShared, PARALLEL_ROUTE_MIN_MSGS,
    PARALLEL_SWEEP_MIN_LIVE,
};
use crate::scenario::ChurnKind;

/// One ownership shard: every piece of per-node engine state for one
/// contiguous dense-index range, plus the shard's per-round journals and
/// fold accumulators (replayed/folded by the coordinator in shard order).
struct ShardState<P: NodeProtocol> {
    /// First dense index this shard owns.
    base: u32,
    /// Width of the owned dense-index span (fixed for the whole run —
    /// compaction shrinks the slot *window*, never the ownership range).
    width: usize,
    /// The shard's slots, in dense-index order within the shard.
    slots: Vec<Slot<P>>,
    /// Outputs of retired-and-compacted slots (global dense index key).
    done: Vec<(u32, NodeId, P::Output)>,
    /// Routing buffers over **local** indices `0..width`.
    buffers: RouteBuffers,
    /// Queue arenas over local indices (zero-sized off the Queue policy).
    queues: QueueBuffers,
    /// This shard's rows of the KT0 tracker, indexed locally.
    knowledge: KnowledgeTracker,
    /// Retired local indices whose receive queues still hold backlog.
    dead_backlog: Vec<u32>,
    /// Violation journal for the current phase, in slot order; drained by
    /// the coordinator's shard-order replay.
    violations: Vec<Violation>,
    // Per-round outputs of the step phase.
    finished: usize,
    panicked: bool,
    marked: bool,
    /// Deliverable messages this round (reset each round).
    round_messages: u64,
    // Cumulative folds, harvested once at the end of the run.
    words: u64,
    max_sent: usize,
    max_received: usize,
    max_queue: usize,
    undelivered: u64,
    cross_shard: u64,
}

/// Applies `f` to every shard — fanned out over the worker pool, or
/// walked inline under a single worker (the zero-alloc path). Each call
/// sees exactly one shard mutably, so results cannot depend on the
/// dispatch choice.
fn for_each_shard<P, F>(shards: &mut [ShardState<P>], parallel: bool, f: F)
where
    P: NodeProtocol,
    F: Fn(usize, &mut ShardState<P>) + Sync,
{
    if parallel {
        shards
            .par_chunks_mut(1)
            .enumerate()
            .for_each(|(s, chunk)| f(s, &mut chunk[0]));
    } else {
        for (s, sh) in shards.iter_mut().enumerate() {
            f(s, sh);
        }
    }
}

/// Runs `factory`-built protocols under the ownership-sharded layout.
/// Semantics (transcripts, metrics, raw event streams, abort errors) are
/// bit-identical to [`crate::batch::run`]; only memory layout and
/// scheduling differ. Called by `batch::run` when `config.shards > 1`;
/// the shard count is clamped to the participant space.
pub(crate) fn run<P, F>(
    net: &Network,
    participants: Option<&[bool]>,
    sink: Option<&mut dyn Sink>,
    factory: F,
) -> Result<RunResult<P::Output>, SimError>
where
    P: NodeProtocol,
    F: Fn(&NodeSeed<'_>) -> P + Sync,
{
    let config: &Config = net.config();
    let ids = net.ids_in_path_order();
    let n = ids.len();
    let cap = config.capacity(n);
    assert!(
        config.max_words <= WIRE_WORDS && config.max_addrs <= WIRE_ADDRS,
        "batched engine: configured message budget ({} words, {} addrs) \
         exceeds the inline wire budget ({WIRE_WORDS} words, {WIRE_ADDRS} addrs)",
        config.max_words,
        config.max_addrs,
    );
    if let Some(mask) = participants {
        assert_eq!(mask.len(), n, "participant mask length must equal n");
    }
    let participating = |i: usize| participants.is_none_or(|m| m[i]);
    let participant_count = (0..n).filter(|&i| participating(i)).count();
    let k = participant_count;

    // Ownership map: shard `s` owns dense indices `s*k/S .. (s+1)*k/S` —
    // contiguous, ascending, balanced to within one node.
    let shard_count = config.shards.clamp(1, k.max(1));
    let bases: Vec<usize> = (0..shard_count).map(|s| s * k / shard_count).collect();
    let width_of = |s: usize| {
        let end = if s + 1 < shard_count { bases[s + 1] } else { k };
        end - bases[s]
    };
    // Owner of a dense index (bases are ascending; sends carry global
    // dense indices, rebased to shard-local only at the owning shard).
    let shard_of = |d: usize| bases.partition_point(|&b| b <= d) - 1;

    let all_ids: Option<Arc<Vec<NodeId>>> = match config.model {
        Model::Ncc1 => {
            let mut sorted: Vec<NodeId> = (0..n)
                .filter(|&i| participating(i))
                .map(|i| ids[i])
                .collect();
            sorted.sort_unstable();
            Some(Arc::new(sorted))
        }
        Model::Ncc0 => None,
    };
    let all_ids_slice: Option<&[NodeId]> = all_ids.as_deref().map(Vec::as_slice);

    let dense_of: Option<Vec<u32>> = participants.map(|mask| {
        let mut map = vec![DEAD_INDEX; n];
        let mut next = 0u32;
        for (i, &p) in mask.iter().enumerate() {
            if p {
                map[i] = next;
                next += 1;
            }
        }
        map
    });
    let dense_of_slice: Option<&[u32]> = dense_of.as_deref();

    // Scenario schedule: validated against this run's participant set
    // and policy, then compiled to dense-index timelines. The runtime
    // lives at the coordinator — churn and fault passes are coordinator
    // phases, exactly like violation replay.
    let mut scenario_rt = match &config.scenario {
        Some(s) => {
            s.validate(n, participants, config.capacity_policy)
                .map_err(SimError::InvalidScenario)?;
            let compiled = s.compile(|node| dense_of_slice.map_or(node as u32, |map| map[node]));
            Some(crate::scenario::ScenarioRt::new(compiled))
        }
        None => None,
    };

    // Per-shard KT0 trackers, seeded along the participant path (the
    // path link crossing a shard boundary lands in the predecessor's
    // shard — see `seed_path_sharded`).
    let track = config.track_knowledge && config.model == Model::Ncc0;
    let mut trackers: Vec<KnowledgeTracker> = (0..shard_count)
        .map(|s| KnowledgeTracker::new(width_of(s), track))
        .collect();
    crate::knowledge::seed_path_sharded(&mut trackers, &bases, ids, participating);

    // Build the slots directly into their owning shards, walking the
    // participant path once in dense order.
    let mut shard_slots: Vec<Vec<Slot<P>>> = (0..shard_count)
        .map(|s| Vec::with_capacity(width_of(s)))
        .collect();
    let mut dense = 0usize;
    let mut cur = 0usize;
    for i in 0..n {
        if !participating(i) {
            continue;
        }
        while cur + 1 < shard_count && dense >= bases[cur + 1] {
            cur += 1;
        }
        let succ = (i + 1..n).find(|&j| participating(j)).map(|j| ids[j]);
        let seed = NodeSeed {
            id: ids[i],
            n,
            participants: participant_count,
            capacity: cap,
            model: config.model,
            initial_successor: succ,
            all_ids: all_ids.as_ref(),
        };
        shard_slots[cur].push(Slot::new(
            dense as u32,
            ids[i],
            succ,
            config.seed,
            factory(&seed),
        ));
        dense += 1;
    }

    let queue_mode = config.capacity_policy == CapacityPolicy::Queue;
    let strict = config.capacity_policy == CapacityPolicy::Strict;
    let mut shards: Vec<ShardState<P>> = shard_slots
        .into_iter()
        .zip(trackers)
        .enumerate()
        .map(|(s, (slots, knowledge))| {
            let width = width_of(s);
            debug_assert_eq!(slots.len(), width);
            ShardState {
                base: bases[s] as u32,
                width,
                slots,
                done: Vec::with_capacity(width),
                buffers: RouteBuffers::new(width),
                queues: QueueBuffers::new(if queue_mode { width } else { 0 }),
                knowledge,
                dead_backlog: Vec::new(),
                violations: Vec::new(),
                finished: 0,
                panicked: false,
                marked: false,
                round_messages: 0,
                words: 0,
                max_sent: 0,
                max_received: 0,
                max_queue: 0,
                undelivered: 0,
                cross_shard: 0,
            }
        })
        .collect();
    let mut live = k;

    // Global aliveness over the full dense space: validation must see
    // destinations in *other* shards, and it is read-only during the
    // parallel phases (the coordinator updates it between them).
    let mut alive_now: Vec<bool> = vec![true; k];

    // Scheduled joiners start parked: alive (the run waits for them)
    // but invisible to senders and skipped by every sweep until their
    // join round un-parks them.
    if let Some(rt) = &scenario_rt {
        for sh in shards.iter_mut() {
            for slot in sh.slots.iter_mut() {
                if rt.starts_parked(slot.idx) {
                    slot.paused = true;
                    alive_now[slot.idx as usize] = false;
                }
            }
        }
    }

    // The exchange cells: row `src * S + dst` holds the envelopes shard
    // `src` diverted toward shard `dst` this round, in shard-`src` slot
    // order. Cleared (capacity retained) by the source at the start of
    // its seal, so steady-state rounds never allocate through them.
    let mut cells: Vec<Vec<WireEnvelope>> =
        (0..shard_count * shard_count).map(|_| Vec::new()).collect();

    let mut metrics = RunMetrics {
        capacity: cap,
        ..RunMetrics::default()
    };
    let mut emitter = Emitter::new(sink);
    metrics
        .messages_per_round
        .reserve(crate::metrics::ROUND_TRACE_LIMIT);

    let workers = match config.worker_threads {
        0 => rayon::current_num_threads(),
        w => w,
    }
    .clamp(1, k.max(1));
    let parallel = workers > 1;
    let resolver = net.resolver();
    let step_shared = StepShared {
        n,
        participants: participant_count,
        cap,
        model: config.model,
        all_ids: all_ids_slice,
        resolver,
        dense_of: dense_of_slice,
    };
    let mut prev_round_messages: u64 = 0;
    let (mut step_nanos, mut route_nanos) = (0u64, 0u64);
    let (mut exchange_nanos, mut deliver_nanos, mut learn_nanos) = (0u64, 0u64, 0u64);
    let (mut parallel_sweep_rounds, mut inline_sweep_rounds) = (0u64, 0u64);

    let (mut fault_words_added, mut fault_words_removed) = (0u64, 0u64);

    while live > 0 {
        let window: usize = shards.iter().map(|sh| sh.slots.len()).sum();

        // --- Scenario churn (pre-step): recoveries and joins un-park
        // their slots before anyone steps; the round's fault rates (and,
        // when any could fire, the coordinator RNG) are resolved here. ---
        if let Some(rt) = scenario_rt.as_mut() {
            let round = metrics.rounds;
            rt.begin_round(round);
            for &op in rt.pre_step_ops(round) {
                let sh = &mut shards[shard_of(op.dense as usize)];
                let Ok(pos) = sh.slots.binary_search_by_key(&op.dense, |sl| sl.idx) else {
                    continue;
                };
                let slot = &mut sh.slots[pos];
                if !slot.alive || !slot.paused {
                    continue;
                }
                slot.paused = false;
                alive_now[op.dense as usize] = true;
                emitter.emit(match op.kind {
                    ChurnKind::Recover => RunEvent::NodeRecovered {
                        round,
                        node: op.node,
                    },
                    ChurnKind::Join => RunEvent::NodeJoined {
                        round,
                        node: op.node,
                    },
                    ChurnKind::CrashStop | ChurnKind::CrashPause => continue,
                });
            }
        }

        // --- Step phase: each shard polls its own slots over its own
        // inbox arena. ---
        // detlint: allow(ambient-entropy) — per-phase wall-clock timer: the elapsed nanos feed EngineStats::*_nanos (observability only) and never a transcript, round count, or message
        let t_phase = Instant::now();
        for_each_shard(&mut shards, parallel, |_, sh| {
            let ShardState {
                slots,
                buffers,
                queues,
                finished,
                panicked,
                marked,
                ..
            } = sh;
            *finished = 0;
            *panicked = false;
            *marked = false;
            let arena: &[WireEnvelope] = if queue_mode {
                &queues.inbox
            } else {
                &buffers.arena
            };
            for slot in slots.iter_mut() {
                match step_slot(slot, arena, &step_shared) {
                    StepOutcome::Skipped | StepOutcome::Running { marked: false } => {}
                    StepOutcome::Running { marked: true } => *marked = true,
                    StepOutcome::Finished { panicked: p } => {
                        *panicked |= p;
                        *finished += 1;
                    }
                }
            }
        });
        step_nanos += t_phase.elapsed().as_nanos() as u64;
        if shards.iter().any(|sh| sh.panicked) {
            // Deterministic attribution: blame the lowest dense index —
            // shards ascend by base, slots ascend within a shard.
            let (node, message) = shards
                .iter_mut()
                .flat_map(|sh| sh.slots.iter_mut())
                .find_map(|s| s.panic.take().map(|m| (s.id, m)))
                .expect("panic flag set without a panic record");
            return Err(SimError::NodePanic { node, message });
        }
        let mut newly_done: usize = shards.iter().map(|sh| sh.finished).sum();
        if newly_done > 0 {
            live -= newly_done;
            for sh in shards.iter_mut() {
                let base = sh.base;
                for slot in sh.slots.iter() {
                    let g = slot.idx as usize;
                    if alive_now[g] && !slot.alive {
                        alive_now[g] = false;
                        let local = slot.idx - base;
                        if queue_mode && sh.queues.backlog_len(local as usize) > 0 {
                            sh.dead_backlog.push(local);
                        }
                    }
                }
            }
        }
        if live == 0 {
            break;
        }
        // --- Protocol marks: dense order = shard order × slot order. ---
        if shards.iter().any(|sh| sh.marked) {
            for sh in shards.iter_mut() {
                for slot in sh.slots.iter_mut() {
                    let (phase, stage) = (slot.phase_mark.take(), slot.stage_mark.take());
                    if phase.is_some() || stage.is_some() {
                        emitter.emit_marks(metrics.rounds, phase, stage);
                    }
                }
            }
        }
        // --- Scenario churn (post-step): crash-stops and crash-pauses
        // take effect after the step, mirroring the unsharded engine —
        // the crashed node stepped this round but its sends are
        // discarded, and its backlog joins the shard's dead-drain. ---
        if let Some(rt) = scenario_rt.as_mut() {
            let round = metrics.rounds;
            for &op in rt.post_step_ops(round) {
                let sh = &mut shards[shard_of(op.dense as usize)];
                let Ok(pos) = sh.slots.binary_search_by_key(&op.dense, |sl| sl.idx) else {
                    continue;
                };
                let slot = &mut sh.slots[pos];
                if !slot.alive || slot.paused {
                    continue;
                }
                match op.kind {
                    ChurnKind::CrashStop => {
                        slot.alive = false;
                        slot.proto = None;
                        live -= 1;
                        newly_done += 1;
                        let local = op.dense - sh.base;
                        if queue_mode && sh.queues.backlog_len(local as usize) > 0 {
                            sh.dead_backlog.push(local);
                        }
                    }
                    ChurnKind::CrashPause => slot.paused = true,
                    ChurnKind::Recover | ChurnKind::Join => continue,
                }
                let slot = &mut sh.slots[pos];
                slot.out.clear();
                slot.inbox_len = 0;
                slot.phase_mark = None;
                slot.stage_mark = None;
                alive_now[op.dense as usize] = false;
                emitter.emit(RunEvent::NodeCrashed {
                    round,
                    node: op.node,
                });
            }
            // Killing the last live node ends the run exactly as the
            // last voluntary retirement would.
            if live == 0 {
                break;
            }
        }
        // --- Compaction: the unsharded (global) trigger; each shard
        // compacts its own window, one event narrates the round. ---
        if newly_done > 0 && live * 2 <= window {
            for sh in shards.iter_mut() {
                let done = &mut sh.done;
                sh.slots.retain_mut(|s| {
                    if s.alive {
                        return true;
                    }
                    if let Some(out) = s.output.take() {
                        done.push((s.idx, s.id, out));
                    }
                    false
                });
            }
            debug_assert_eq!(shards.iter().map(|sh| sh.slots.len()).sum::<usize>(), live);
            emitter.emit(RunEvent::Compaction {
                round: metrics.rounds,
                live,
            });
        }
        let window: usize = shards.iter().map(|sh| sh.slots.len()).sum();

        // --- Seal (per source shard): validate in slot order, count
        // local destinations, divert cross-shard sends into the exchange
        // cells. The dense/sparse narration keeps the unsharded formula —
        // a pure function of the transcript, so the event stream matches
        // the single-arena layout bit for bit. ---
        let round = metrics.rounds;
        // detlint: allow(ambient-entropy) — per-phase wall-clock timer: the elapsed nanos feed EngineStats::*_nanos (observability only) and never a transcript, round count, or message
        let t_phase = Instant::now();
        let dense_round = prev_round_messages >= PARALLEL_ROUTE_MIN_MSGS
            && prev_round_messages >= (window as u64) / 4;
        let route_mode = if dense_round {
            RouteMode::Parallel
        } else {
            RouteMode::Inline
        };
        {
            let cells_ptr = RawRows(cells.as_mut_ptr());
            let alive_now = &alive_now;
            for_each_shard(&mut shards, parallel, |s, sh| {
                let ShardState {
                    base,
                    width,
                    slots,
                    buffers,
                    knowledge,
                    violations,
                    round_messages,
                    words,
                    max_sent,
                    cross_shard,
                    ..
                } = sh;
                let lo = *base as usize;
                let hi = lo + *width;
                *round_messages = 0;
                debug_assert!(violations.is_empty());
                for d in 0..shard_count {
                    if d != s {
                        // Sound: source shard `s` exclusively owns cell
                        // rows `s * S..(s + 1) * S`.
                        unsafe { cells_ptr.row(s * shard_count + d) }.clear();
                    }
                }
                for slot in slots.iter() {
                    buffers.counts[(slot.idx as usize) - lo] = 0;
                }
                for slot in slots.iter_mut() {
                    let src_local = (slot.idx as usize) - lo;
                    let attempted = slot.out.len();
                    for env in slot.out.iter_mut() {
                        let deliver =
                            match validate(env, src_local, config, knowledge, alive_now, round) {
                                Ok(()) => true,
                                Err(v) => {
                                    violations.push(v);
                                    env.dst_idx != NO_INDEX
                                        && env.dst_idx != DEAD_INDEX
                                        && alive_now[env.dst_idx as usize]
                                }
                            };
                        if deliver {
                            *round_messages += 1;
                            *words += env.msg.size_words() as u64;
                            let dst = env.dst_idx as usize;
                            if (lo..hi).contains(&dst) {
                                buffers.counts[dst - lo] += 1;
                            } else {
                                let owner = shard_of(dst);
                                // Sound: still within rows `s * S..`.
                                unsafe { cells_ptr.row(s * shard_count + owner) }.push(*env);
                                *cross_shard += 1;
                                // Moved into the cell: the local splice
                                // must skip it.
                                env.dst_idx = NO_INDEX;
                            }
                        } else {
                            env.dst_idx = NO_INDEX;
                        }
                    }
                    if attempted > cap {
                        violations.push(Violation {
                            round,
                            node: slot.id,
                            kind: ViolationKind::SendCapacity {
                                sent: attempted,
                                cap,
                            },
                        });
                    }
                    *max_sent = (*max_sent).max(attempted);
                }
            });
        }
        // Replay the seal journals in shard order (= canonical dense
        // source order): identical counts, samples and strict abort.
        let mut round_messages: u64 = 0;
        for sh in shards.iter_mut() {
            for v in sh.violations.drain(..) {
                metrics.record_violation(strict, v)?;
            }
            round_messages += sh.round_messages;
        }
        route_nanos += t_phase.elapsed().as_nanos() as u64;

        // --- Exchange (per destination shard): count the incoming cells
        // into the local buckets, seal the shard's prefix sums, and
        // splice sources in canonical shard order — cells from shards
        // `< s`, then the shard's own outboxes, then cells from shards
        // `> s`; ascending shard ranges make that exactly the global
        // dense source order, so bucket contents (and with them FIFO
        // queues) are bit-identical to the unsharded scatter. ---
        // detlint: allow(ambient-entropy) — per-phase wall-clock timer: the elapsed nanos feed EngineStats::*_nanos (observability only) and never a transcript, round count, or message
        let t_phase = Instant::now();
        {
            let cells_ref: &[Vec<WireEnvelope>] = &cells;
            for_each_shard(&mut shards, parallel, |d, sh| {
                let ShardState {
                    base,
                    slots,
                    buffers,
                    ..
                } = sh;
                let b = *base;
                for src in 0..shard_count {
                    if src == d {
                        continue;
                    }
                    for env in &cells_ref[src * shard_count + d] {
                        buffers.counts[(env.dst_idx - b) as usize] += 1;
                    }
                }
                buffers.seal_counts_live(slots.iter().map(|sl| (sl.idx - b) as usize));
                for src in 0..shard_count {
                    if src == d {
                        for slot in slots.iter_mut() {
                            for env in slot.out.iter() {
                                if env.dst_idx != NO_INDEX {
                                    buffers.push(env.localize(b));
                                }
                            }
                            slot.out.clear();
                        }
                    } else {
                        for env in &cells_ref[src * shard_count + d] {
                            buffers.push(env.localize(b));
                        }
                    }
                }
            });
        }
        exchange_nanos += t_phase.elapsed().as_nanos() as u64;

        // --- Scenario fault pass: perturb each shard's sealed buckets
        // in shard order — shard ranges ascend, so this is exactly the
        // global dense destination walk of the unsharded engine and the
        // coordinator RNG is consumed identically at any shard count.
        // The swap arena rotates through the shards' arenas, converging
        // on the largest high-water mark (no steady-state allocation).
        if let Some(rt) = scenario_rt.as_mut() {
            if rt.faults_active() {
                for sh in shards.iter_mut() {
                    let ShardState {
                        base,
                        slots,
                        buffers,
                        ..
                    } = sh;
                    let b = *base;
                    rt.perturb(buffers, slots.iter().map(|sl| (sl.idx - b) as usize));
                }
                let tally = rt.tally();
                if tally.any() {
                    round_messages = round_messages - tally.dropped + tally.duplicated;
                    fault_words_added += tally.words_added;
                    fault_words_removed += tally.words_removed;
                    emitter.emit(RunEvent::FaultInjected {
                        round,
                        dropped: tally.dropped,
                        duplicated: tally.duplicated,
                        reordered: tally.reordered,
                    });
                }
            }
        }

        // --- Receive side: shard-local queue delivery or capacity
        // checks (journaled, replayed in shard order below). ---
        // detlint: allow(ambient-entropy) — per-phase wall-clock timer: the elapsed nanos feed EngineStats::*_nanos (observability only) and never a transcript, round count, or message
        let t_phase = Instant::now();
        let parallel_sweep = workers > 1
            && (round_messages >= PARALLEL_ROUTE_MIN_MSGS || window >= PARALLEL_SWEEP_MIN_LIVE);
        if parallel_sweep {
            parallel_sweep_rounds += 1;
        } else {
            inline_sweep_rounds += 1;
        }
        for_each_shard(&mut shards, parallel, |_, sh| {
            let ShardState {
                base,
                slots,
                buffers,
                queues,
                knowledge,
                dead_backlog,
                violations,
                max_received,
                max_queue,
                undelivered,
                ..
            } = sh;
            let lo = *base as usize;
            if queue_mode {
                queues.begin_round();
                for slot in slots.iter_mut() {
                    if !slot.alive {
                        continue;
                    }
                    let i = (slot.idx as usize) - lo;
                    // A parked slot receives nothing, but its backlog
                    // must still ride the double-buffer swap (cap 0 =
                    // re-queue everything, FIFO intact for recovery).
                    let cap_i = if slot.paused { 0 } else { cap };
                    let (start, take, queued) = queues.deliver(i, buffers.bucket(i), cap_i);
                    *max_queue = (*max_queue).max(queued);
                    slot.inbox_start = start;
                    slot.inbox_len = take;
                }
                let mut drained_any = false;
                for &li in dead_backlog.iter() {
                    let i = li as usize;
                    let (start, take, queued) = queues.deliver(i, &[], cap);
                    *max_queue = (*max_queue).max(queued);
                    let delivered = take as usize;
                    *max_received = (*max_received).max(delivered);
                    if knowledge.enabled() {
                        let inbox = &queues.inbox[start as usize..][..delivered];
                        for env in inbox {
                            knowledge.learn(i, env.src);
                            for &a in env.msg.addrs_slice() {
                                knowledge.learn(i, a);
                            }
                        }
                    }
                    *undelivered += take as u64;
                    drained_any |= queued == 0;
                }
                if drained_any {
                    let queues = &*queues;
                    dead_backlog.retain(|&li| queues.backlog_len(li as usize) > 0);
                }
                queues.end_round();
            } else {
                for slot in slots.iter_mut() {
                    if !slot.alive {
                        continue;
                    }
                    let i = (slot.idx as usize) - lo;
                    let received = buffers.counts[i] as usize;
                    if received > cap {
                        violations.push(Violation {
                            round,
                            node: slot.id,
                            kind: ViolationKind::ReceiveCapacity { received, cap },
                        });
                    }
                    let (start, len) = buffers.span(i);
                    slot.inbox_start = start;
                    slot.inbox_len = len;
                }
            }
        });
        if !queue_mode {
            for sh in shards.iter_mut() {
                for v in sh.violations.drain(..) {
                    metrics.record_violation(strict, v)?;
                }
            }
        }
        deliver_nanos += t_phase.elapsed().as_nanos() as u64;

        // --- Learn sweep: each shard's tracker is private, so learns
        // apply in place — no journals, no re-home replay. ---
        // detlint: allow(ambient-entropy) — per-phase wall-clock timer: the elapsed nanos feed EngineStats::*_nanos (observability only) and never a transcript, round count, or message
        let t_phase = Instant::now();
        for_each_shard(&mut shards, parallel, |_, sh| {
            let ShardState {
                base,
                slots,
                buffers,
                queues,
                knowledge,
                max_received,
                ..
            } = sh;
            let lo = *base as usize;
            let delivery_arena: &[WireEnvelope] = if queue_mode {
                &queues.inbox
            } else {
                &buffers.arena
            };
            for slot in slots.iter() {
                if !slot.alive {
                    continue;
                }
                let delivered = slot.inbox_len as usize;
                *max_received = (*max_received).max(delivered);
                if knowledge.enabled() {
                    let i = (slot.idx as usize) - lo;
                    let inbox = &delivery_arena[slot.inbox_start as usize..][..delivered];
                    for env in inbox {
                        knowledge.learn(i, env.src);
                        for &a in env.msg.addrs_slice() {
                            knowledge.learn(i, a);
                        }
                    }
                }
            }
        });
        learn_nanos += t_phase.elapsed().as_nanos() as u64;

        metrics.record_round(round_messages);
        emitter.emit(RunEvent::RoundCompleted {
            round,
            delivered: round_messages,
            live,
            route_mode,
        });
        prev_round_messages = round_messages;
        if metrics.rounds > config.max_rounds {
            return Err(SimError::RoundLimitExceeded {
                limit: config.max_rounds,
            });
        }
    }

    // Harvest the cumulative per-shard folds. Sums and maxes over the
    // per-round values the unsharded path folds incrementally — the same
    // final numbers, fold order notwithstanding.
    for sh in shards.iter() {
        metrics.words += sh.words;
        metrics.max_sent_per_round = metrics.max_sent_per_round.max(sh.max_sent);
        metrics.max_received_per_round = metrics.max_received_per_round.max(sh.max_received);
        metrics.max_queue_len = metrics.max_queue_len.max(sh.max_queue);
        metrics.undelivered += sh.undelivered + sh.queues.backlog_total();
    }
    // Scenario faults adjust the word fold the same way the unsharded
    // engine adjusts it in-round (folded here because the per-shard word
    // counters are only harvested at the end of the run).
    metrics.words = metrics.words + fault_words_added - fault_words_removed;
    if track {
        metrics.max_knowledge = shards
            .iter()
            .map(|sh| {
                (0..sh.width)
                    .map(|i| sh.knowledge.knowledge_size(i))
                    .max()
                    .unwrap_or(0)
            })
            .max()
            .unwrap_or(0);
    }
    emitter.emit(RunEvent::Done {
        rounds: metrics.rounds,
        messages: metrics.messages,
    });
    metrics.phase_rounds = emitter.recorder.phase_rounds();
    let mut stats = emitter.recorder.engine_stats();
    stats.shards = shard_count;
    stats.shard_windows = (0..shard_count).map(width_of).collect();
    stats.cross_shard_messages = shards.iter().map(|sh| sh.cross_shard).sum();
    stats.dense_index_space = k;
    stats.knowledge_arena = shards.iter().map(|sh| sh.knowledge.arena_len()).sum();
    stats.parallel_sweep_rounds = parallel_sweep_rounds;
    stats.inline_sweep_rounds = inline_sweep_rounds;
    stats.step_nanos = step_nanos;
    stats.route_nanos = route_nanos;
    stats.exchange_nanos = exchange_nanos;
    stats.deliver_nanos = deliver_nanos;
    stats.learn_nanos = learn_nanos;

    // Merge every shard's compacted-away outputs with its final window,
    // restoring knowledge-path order by global dense index.
    let mut done: Vec<(u32, NodeId, P::Output)> = Vec::with_capacity(k);
    for sh in shards.into_iter() {
        done.extend(sh.done);
        for s in sh.slots.into_iter() {
            if let Some(out) = s.output {
                done.push((s.idx, s.id, out));
            }
        }
    }
    done.sort_unstable_by_key(|&(idx, _, _)| idx);
    let outputs: Vec<(NodeId, P::Output)> =
        done.into_iter().map(|(_, id, out)| (id, out)).collect();
    Ok(RunResult {
        outputs,
        metrics,
        engine: stats,
    })
}
