//! Fixed-size wire representation of messages for the batched engine.
//!
//! The NCC model bounds every message to `O(log n)` bits — concretely, a
//! tag plus at most [`WIRE_WORDS`] data words and [`WIRE_ADDRS`] addresses
//! (the defaults in [`Config`](crate::Config)). The batched executor
//! exploits this: a [`WireMsg`] stores its payload *inline* in a `Copy`
//! struct, so outboxes, the routing arena and inboxes are flat `Vec`s of
//! POD values that are reused across rounds — the routing hot path never
//! touches the allocator. The heap-backed [`Msg`](crate::Msg) remains the
//! lingua franca of the direct-style (threaded-oracle) API; the two convert
//! losslessly for payloads within the wire budget.

use crate::message::{Envelope, Msg, NodeId};

/// Maximum data words a [`WireMsg`] can carry inline.
pub const WIRE_WORDS: usize = 4;

/// Maximum addresses a [`WireMsg`] can carry inline.
pub const WIRE_ADDRS: usize = 2;

/// Sentinel for an unresolved destination index.
pub(crate) const NO_INDEX: u32 = u32::MAX;

/// Sentinel for a destination that resolved to a real node which is not
/// part of the current (masked) run. Distinct from [`NO_INDEX`] so the
/// batched engine can keep the oracle's violation taxonomy — an unknown ID
/// is `NoSuchNode`, a known-but-masked-out one is `DeadRecipient` — after
/// remapping participants to a dense 0..k index space.
pub(crate) const DEAD_INDEX: u32 = u32::MAX - 1;

/// A message with inline payload: tag + up to [`WIRE_WORDS`] words + up to
/// [`WIRE_ADDRS`] addresses.
///
/// Constructors panic when the inline budget is exceeded — that is a
/// protocol *bug* (the model's message size is a compile-time-style
/// constant), distinct from a
/// [`MessageTooLarge`](crate::ViolationKind::MessageTooLarge) *violation*,
/// which fires when a
/// message exceeds the (possibly smaller) configured budget at run time.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WireMsg {
    /// Protocol tag for inbox demultiplexing.
    pub tag: u16,
    nw: u8,
    na: u8,
    words: [u64; WIRE_WORDS],
    addrs: [NodeId; WIRE_ADDRS],
}

impl WireMsg {
    /// An empty message carrying only a tag (a pure signal).
    pub const fn signal(tag: u16) -> Self {
        WireMsg {
            tag,
            nw: 0,
            na: 0,
            words: [0; WIRE_WORDS],
            addrs: [0; WIRE_ADDRS],
        }
    }

    /// A message carrying a single data word.
    pub const fn word(tag: u16, w: u64) -> Self {
        let mut m = WireMsg::signal(tag);
        m.words[0] = w;
        m.nw = 1;
        m
    }

    /// A message carrying the given data words.
    ///
    /// # Panics
    ///
    /// Panics if more than [`WIRE_WORDS`] words are given.
    pub fn words(tag: u16, words: &[u64]) -> Self {
        let mut m = WireMsg::signal(tag);
        for &w in words {
            m = m.with_word(w);
        }
        m
    }

    /// A message carrying a single address.
    pub const fn addr(tag: u16, a: NodeId) -> Self {
        let mut m = WireMsg::signal(tag);
        m.addrs[0] = a;
        m.na = 1;
        m
    }

    /// A message carrying one address and one data word.
    pub const fn addr_word(tag: u16, a: NodeId, w: u64) -> Self {
        let mut m = WireMsg::addr(tag, a);
        m.words[0] = w;
        m.nw = 1;
        m
    }

    /// Adds a data word (builder style).
    ///
    /// # Panics
    ///
    /// Panics when the inline word budget is full.
    pub fn with_word(mut self, w: u64) -> Self {
        assert!(
            (self.nw as usize) < WIRE_WORDS,
            "wire message word budget exceeded"
        );
        self.words[self.nw as usize] = w;
        self.nw += 1;
        self
    }

    /// Adds an address (builder style).
    ///
    /// # Panics
    ///
    /// Panics when the inline address budget is full.
    pub fn with_addr(mut self, a: NodeId) -> Self {
        assert!(
            (self.na as usize) < WIRE_ADDRS,
            "wire message address budget exceeded"
        );
        self.addrs[self.na as usize] = a;
        self.na += 1;
        self
    }

    /// The data words carried by this message.
    pub fn words_slice(&self) -> &[u64] {
        &self.words[..self.nw as usize]
    }

    /// The addresses carried by this message.
    pub fn addrs_slice(&self) -> &[NodeId] {
        &self.addrs[..self.na as usize]
    }

    /// Number of data words.
    pub fn word_count(&self) -> usize {
        self.nw as usize
    }

    /// Number of addresses.
    pub fn addr_count(&self) -> usize {
        self.na as usize
    }

    /// Size in machine words (tag counts as one), for bandwidth metrics.
    pub fn size_words(&self) -> usize {
        1 + self.nw as usize + self.na as usize
    }

    /// Converts to the heap-backed [`Msg`] (threaded-oracle interop).
    pub fn to_msg(&self) -> Msg {
        Msg {
            tag: self.tag,
            words: self.words_slice().to_vec(),
            addrs: self.addrs_slice().to_vec(),
        }
    }

    /// Converts from a heap-backed [`Msg`].
    ///
    /// # Panics
    ///
    /// Panics if the message exceeds the inline wire budget.
    pub fn from_msg(msg: &Msg) -> Self {
        let mut m = WireMsg::signal(msg.tag);
        for &w in &msg.words {
            m = m.with_word(w);
        }
        for &a in &msg.addrs {
            m = m.with_addr(a);
        }
        m
    }
}

/// A routed wire message: what a node finds in its inbox under the batched
/// engine. The sender's ID is visible (that is how knowledge spreads in
/// KT0); the destination fields are engine bookkeeping.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WireEnvelope {
    /// ID of the sending node.
    pub src: NodeId,
    /// The message itself.
    pub msg: WireMsg,
    /// Destination ID as addressed by the sender.
    pub(crate) dst: NodeId,
    /// Dense destination index, resolved at send time: a `0..k` slot
    /// index in the run's (possibly masked) participant space.
    /// [`NO_INDEX`] = unresolved, [`DEAD_INDEX`] = a real node outside
    /// the masked participant set.
    pub(crate) dst_idx: u32,
}

impl WireEnvelope {
    /// A zeroed placeholder used to size the routing arena.
    pub(crate) const EMPTY: WireEnvelope = WireEnvelope {
        src: 0,
        msg: WireMsg::signal(0),
        dst: 0,
        dst_idx: NO_INDEX,
    };

    /// Rebases the dense destination index into a shard-local index
    /// space (the ownership-sharded engine stores each shard's routing
    /// buckets and queue spans under local indices). Copy-semantics: the
    /// caller's envelope is unchanged.
    pub(crate) fn localize(mut self, base: u32) -> Self {
        debug_assert!(self.dst_idx >= base, "localize below the shard base");
        self.dst_idx -= base;
        self
    }

    /// First data word, panicking with a protocol-bug message if absent.
    pub fn word(&self) -> u64 {
        *self
            .msg
            .words_slice()
            .first()
            .expect("protocol bug: expected a data word")
    }

    /// First address, panicking with a protocol-bug message if absent.
    pub fn addr(&self) -> NodeId {
        *self
            .msg
            .addrs_slice()
            .first()
            .expect("protocol bug: expected an address")
    }

    /// Converts to the heap-backed [`Envelope`] (threaded-oracle interop).
    pub fn to_envelope(&self) -> Envelope {
        Envelope {
            src: self.src,
            msg: self.msg.to_msg(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builders_compose() {
        let m = WireMsg::signal(3).with_word(7).with_addr(42);
        assert_eq!(m.words_slice(), &[7]);
        assert_eq!(m.addrs_slice(), &[42]);
        assert_eq!(m.size_words(), 3);
    }

    #[test]
    fn msg_roundtrip() {
        let m = Msg::addr_words(5, 9, vec![1, 2, 3]);
        let w = WireMsg::from_msg(&m);
        assert_eq!(w.to_msg(), m);
        assert_eq!(w.size_words(), m.size_words());
    }

    #[test]
    #[should_panic(expected = "word budget")]
    fn word_budget_is_enforced() {
        let _ = WireMsg::words(0, &[0; 5]);
    }

    #[test]
    fn envelope_accessors() {
        let env = WireEnvelope {
            src: 5,
            msg: WireMsg::addr_word(1, 10, 99),
            dst: 10,
            dst_idx: 0,
        };
        assert_eq!(env.word(), 99);
        assert_eq!(env.addr(), 10);
        let e = env.to_envelope();
        assert_eq!(e.src, 5);
        assert_eq!(e.word(), 99);
    }
}
