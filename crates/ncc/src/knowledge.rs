//! KT0 knowledge tracking.
//!
//! In NCC0 a node may address only IDs it has *learned*. Knowledge spreads in
//! exactly two ways: receiving a message reveals the sender's ID, and a
//! message payload may carry explicit addresses. The engine maintains each
//! node's knowledge set and checks every outgoing message against it, so a
//! clean strict run is a machine-checked proof that the protocol is a legal
//! NCC0 algorithm.
//!
//! ## Storage: per-node sorted arenas
//!
//! The tracker is engine-native rather than collection-backed: all learned
//! IDs live in **one** flat arena, and node `i` owns a contiguous region of
//! it, kept sorted. `knows` is a binary search over the node's region (no
//! hashing, cache-linear); `learn` of an already-known ID is the same
//! search and touches no memory. A new ID is inserted in place (one
//! `copy_within` inside the region) while the region has spare capacity;
//! when it is full, the region is re-homed to the arena tail with twice
//! the capacity. Region capacities are powers of two, so the total arena —
//! live regions plus abandoned predecessors — is bounded by ~3x the live
//! knowledge, and once every node's knowledge has stopped growing (the
//! steady state of every bounded-knowledge protocol) the tracker performs
//! **zero allocations**: the strict-KT0 probe in
//! `crates/ncc/tests/zero_alloc.rs` locks that in.

use crate::message::NodeId;

/// Smallest region capacity handed to a node on its first learned ID.
const MIN_REGION: usize = 4;

/// Seeds the initial NCC0 knowledge along the directed path `G_k`, but
/// only for *participating* nodes: each participating node learns its own
/// ID and the ID of the **next participating** node on the path (dead or
/// filtered indices are skipped entirely, consistent with the engines'
/// `alive` masks — they are not on the path, so nobody's initial knowledge
/// may point at them).
pub(crate) fn seed_path(
    tracker: &mut KnowledgeTracker,
    ids: &[NodeId],
    participating: impl Fn(usize) -> bool,
) {
    if !tracker.enabled() {
        return;
    }
    let mut prev: Option<usize> = None;
    for (i, &id) in ids.iter().enumerate() {
        if !participating(i) {
            continue;
        }
        tracker.learn(i, id);
        if let Some(p) = prev {
            // Node p's out-neighbor on the filtered path is node i.
            tracker.learn(p, id);
        }
        prev = Some(i);
    }
}

/// [`seed_path`] for a tracker indexed by the batched engine's **dense**
/// 0..k participant space: the j-th participating index of `ids` (in path
/// order) owns tracker row j. Used by the batched engine, whose per-node
/// arrays are sized to the participant count k on masked runs; the
/// threaded oracle keeps full-width rows and seeds with [`seed_path`].
pub(crate) fn seed_path_dense(
    tracker: &mut KnowledgeTracker,
    ids: &[NodeId],
    participating: impl Fn(usize) -> bool,
) {
    if !tracker.enabled() {
        return;
    }
    let mut dense = 0usize;
    for (i, &id) in ids.iter().enumerate() {
        if !participating(i) {
            continue;
        }
        tracker.learn(dense, id);
        if dense > 0 {
            // The previous participant's out-neighbor on the path is this
            // node.
            tracker.learn(dense - 1, id);
        }
        dense += 1;
    }
}

/// [`seed_path_dense`] for the ownership-sharded engine, where the dense
/// 0..k participant space is split across per-shard trackers: shard `s`
/// owns dense indices `bases[s]..bases[s + 1]` (with an implicit final
/// bound of k) and its tracker rows are indexed shard-locally. The one
/// boundary case the per-shard view crosses is the path link itself: the
/// last participant of shard `s` learns the ID of the first participant
/// of shard `s + 1`, written into shard `s`'s tracker.
pub(crate) fn seed_path_sharded(
    trackers: &mut [KnowledgeTracker],
    bases: &[usize],
    ids: &[NodeId],
    participating: impl Fn(usize) -> bool,
) {
    if trackers.first().is_none_or(|t| !t.enabled()) {
        return;
    }
    debug_assert_eq!(trackers.len(), bases.len());
    let owner = |d: usize| {
        let s = bases.partition_point(|&b| b <= d) - 1;
        (s, d - bases[s])
    };
    let mut dense = 0usize;
    for (i, &id) in ids.iter().enumerate() {
        if !participating(i) {
            continue;
        }
        let (s, local) = owner(dense);
        trackers[s].learn(local, id);
        if dense > 0 {
            // The previous participant's out-neighbor on the path is this
            // node — it may be owned by the previous shard.
            let (ps, plocal) = owner(dense - 1);
            trackers[ps].learn(plocal, id);
        }
        dense += 1;
    }
}

/// One node's region of the knowledge arena.
#[derive(Clone, Copy, Debug, Default)]
struct Region {
    /// Arena offset of the region.
    start: usize,
    /// IDs currently stored (sorted ascending).
    len: usize,
    /// Region capacity (power of two; 0 before the first learn).
    cap: usize,
}

/// Per-node knowledge sets, indexed by the engine's dense node index,
/// stored as sorted regions of a single shared arena (see module docs).
#[derive(Debug)]
pub struct KnowledgeTracker {
    regions: Vec<Region>,
    arena: Vec<NodeId>,
    enabled: bool,
}

impl KnowledgeTracker {
    /// Creates a tracker for `n` nodes. When `enabled` is false all queries
    /// answer "known" and no memory is spent.
    pub fn new(n: usize, enabled: bool) -> Self {
        KnowledgeTracker {
            regions: if enabled {
                vec![Region::default(); n]
            } else {
                Vec::new()
            },
            // Path seeding gives most nodes 2-3 IDs; pre-sizing for one
            // MIN_REGION block per node makes the seeding phase a single
            // allocation.
            arena: Vec::with_capacity(if enabled { MIN_REGION * n } else { 0 }),
            enabled,
        }
    }

    /// Whether tracking is active.
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Node `node`'s sorted learned IDs.
    #[inline]
    fn region_slice(&self, node: usize) -> &[NodeId] {
        let r = self.regions[node];
        &self.arena[r.start..r.start + r.len]
    }

    /// Grants `node` knowledge of `id` (initial knowledge or learning).
    pub fn learn(&mut self, node: usize, id: NodeId) {
        if !self.enabled {
            return;
        }
        let r = self.regions[node];
        let pos = match self.arena[r.start..r.start + r.len].binary_search(&id) {
            Ok(_) => return, // already known: no writes, no allocation
            Err(pos) => pos,
        };
        let r = if r.len == r.cap {
            // Region full: re-home to the arena tail with double capacity
            // (the abandoned predecessor is never reclaimed — the geometric
            // growth bounds total waste by the live size).
            let cap = (r.cap * 2).max(MIN_REGION);
            let start = self.arena.len();
            self.arena.resize(start + cap, 0);
            self.arena.copy_within(r.start..r.start + r.len, start);
            let moved = Region {
                start,
                len: r.len,
                cap,
            };
            self.regions[node] = moved;
            moved
        } else {
            r
        };
        // Sorted insert: shift the tail of the region right by one.
        let at = r.start + pos;
        self.arena.copy_within(at..r.start + r.len, at + 1);
        self.arena[at] = id;
        self.regions[node].len += 1;
    }

    /// Does `node` know `id`?
    pub fn knows(&self, node: usize, id: NodeId) -> bool {
        !self.enabled || self.region_slice(node).binary_search(&id).is_ok()
    }

    /// Number of IDs `node` has learned (0 when tracking is off).
    pub fn knowledge_size(&self, node: usize) -> usize {
        if self.enabled {
            self.regions[node].len
        } else {
            0
        }
    }

    /// Current arena length — live regions plus abandoned predecessors.
    /// Surfaced through [`EngineStats`](crate::EngineStats) so tests can
    /// assert that masked runs size knowledge storage by participant
    /// count, not network size.
    pub(crate) fn arena_len(&self) -> usize {
        self.arena.len()
    }

    /// A raw view over the regions and the arena for the batched engine's
    /// parallel learn sweep. Valid only while the tracker is not otherwise
    /// borrowed; see [`TrackerShard::try_learn`] for the aliasing contract.
    pub(crate) fn shard(&mut self) -> TrackerShard {
        TrackerShard {
            regions: self.regions.as_mut_ptr(),
            arena: self.arena.as_mut_ptr(),
        }
    }
}

/// Shared-arena view for the parallel learn sweep.
///
/// The sweep partitions slots into contiguous chunks, one worker per
/// chunk, so no two workers ever touch the same node's region — and
/// regions of distinct nodes occupy disjoint arena spans by construction,
/// so in-place inserts from different workers never alias. The one
/// operation that moves memory *between* regions (re-homing a full region
/// to the arena tail) is excluded: [`TrackerShard::try_learn`] refuses it
/// and the engine journals the learn for a sequential replay after the
/// pass. Region contents are sorted **sets**, so the replay order cannot
/// change what any node knows — only the (unobservable) arena layout.
pub(crate) struct TrackerShard {
    regions: *mut Region,
    arena: *mut NodeId,
}

// SAFETY: workers operate on disjoint node regions (see struct docs); the
// pointers themselves are plain addresses.
unsafe impl Send for TrackerShard {}
unsafe impl Sync for TrackerShard {}

impl TrackerShard {
    /// Learns `id` for `node` in place when the node's region has spare
    /// capacity; returns `false` when the region is full and the learn
    /// must be replayed through [`KnowledgeTracker::learn`] (the only
    /// path that re-homes regions and grows the arena).
    ///
    /// # Safety
    ///
    /// `node` must be in bounds and the caller must hold exclusive access
    /// to `node`'s region for the duration of the call.
    pub(crate) unsafe fn try_learn(&self, node: usize, id: NodeId) -> bool {
        let region = &mut *self.regions.add(node);
        let slice = std::slice::from_raw_parts(self.arena.add(region.start), region.len);
        let pos = match slice.binary_search(&id) {
            Ok(_) => return true, // already known: no writes
            Err(pos) => pos,
        };
        if region.len == region.cap {
            return false; // needs re-homing: defer to the sequential replay
        }
        // Sorted insert inside the region: shift the tail right by one.
        let at = self.arena.add(region.start + pos);
        std::ptr::copy(at, at.add(1), region.len - pos);
        at.write(id);
        region.len += 1;
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeding_skips_filtered_indices() {
        let ids: Vec<NodeId> = vec![10, 20, 30, 40, 50];
        let mut t = KnowledgeTracker::new(5, true);
        // Nodes 1 and 3 are filtered out of the network.
        seed_path(&mut t, &ids, |i| i != 1 && i != 3);
        // Participants know themselves and their next *participating*
        // successor.
        assert!(t.knows(0, 10) && t.knows(0, 30));
        assert!(t.knows(2, 30) && t.knows(2, 50));
        assert!(t.knows(4, 50));
        // Nobody is seeded with a filtered node's ID, and filtered nodes
        // learn nothing.
        assert!(!t.knows(0, 20));
        assert!(!t.knows(2, 40));
        assert_eq!(t.knowledge_size(1), 0);
        assert_eq!(t.knowledge_size(3), 0);
        // The tail learns only itself.
        assert_eq!(t.knowledge_size(4), 1);
    }

    #[test]
    fn dense_seeding_renumbers_participants_in_path_order() {
        let ids: Vec<NodeId> = vec![10, 20, 30, 40, 50];
        // Participants 0, 2, 4 own dense rows 0, 1, 2 — the tracker is
        // sized to the participant count, as in a masked batched run.
        let mut t = KnowledgeTracker::new(3, true);
        seed_path_dense(&mut t, &ids, |i| i != 1 && i != 3);
        assert!(t.knows(0, 10) && t.knows(0, 30));
        assert!(t.knows(1, 30) && t.knows(1, 50));
        // The tail learns only itself, and nobody learns a filtered ID.
        assert_eq!(t.knowledge_size(2), 1);
        assert!(t.knows(2, 50));
        assert!(!t.knows(0, 20) && !t.knows(1, 40));
    }

    #[test]
    fn sharded_seeding_matches_dense_across_the_boundary() {
        let ids: Vec<NodeId> = vec![10, 20, 30, 40, 50, 60];
        // Participants 0, 2, 3, 5 own dense rows 0..4, split 2/2 across
        // two shards — the path link 1 -> 2 crosses the shard boundary.
        let participating = |i: usize| i != 1 && i != 4;
        let mut dense = KnowledgeTracker::new(4, true);
        seed_path_dense(&mut dense, &ids, participating);
        let mut shards = vec![
            KnowledgeTracker::new(2, true),
            KnowledgeTracker::new(2, true),
        ];
        seed_path_sharded(&mut shards, &[0, 2], &ids, participating);
        for d in 0..4usize {
            let (s, local) = (d / 2, d % 2);
            assert_eq!(
                dense.knowledge_size(d),
                shards[s].knowledge_size(local),
                "row {d}"
            );
            for &id in &ids {
                assert_eq!(
                    dense.knows(d, id),
                    shards[s].knows(local, id),
                    "row {d} id {id}"
                );
            }
        }
    }

    #[test]
    fn dense_seeding_all_alive_matches_full_seeding() {
        let ids: Vec<NodeId> = vec![7, 8, 9];
        let mut full = KnowledgeTracker::new(3, true);
        let mut dense = KnowledgeTracker::new(3, true);
        seed_path(&mut full, &ids, |_| true);
        seed_path_dense(&mut dense, &ids, |_| true);
        for node in 0..3 {
            assert_eq!(full.knowledge_size(node), dense.knowledge_size(node));
            for &id in &ids {
                assert_eq!(full.knows(node, id), dense.knows(node, id));
            }
        }
    }

    #[test]
    fn shard_learns_in_place_and_defers_rehoming() {
        let mut t = KnowledgeTracker::new(2, true);
        t.learn(0, 10); // first learn grants node 0 a MIN_REGION block
        let shard = t.shard();
        unsafe {
            assert!(shard.try_learn(0, 5));
            assert!(shard.try_learn(0, 7));
            assert!(shard.try_learn(0, 7)); // idempotent, still in place
            assert!(shard.try_learn(0, 12));
            // Region now full: the next insert needs a re-home, which the
            // shard refuses.
            assert!(!shard.try_learn(0, 99));
            // A never-learned node has a zero-capacity region: defers too.
            assert!(!shard.try_learn(1, 1));
        }
        // The deferred learn replays through the owning tracker.
        t.learn(0, 99);
        for id in [5, 7, 10, 12, 99] {
            assert!(t.knows(0, id), "lost id {id}");
        }
        assert_eq!(t.knowledge_size(0), 5);
        assert_eq!(t.knowledge_size(1), 0);
    }

    #[test]
    fn seeding_all_alive_matches_plain_path() {
        let ids: Vec<NodeId> = vec![7, 8, 9];
        let mut t = KnowledgeTracker::new(3, true);
        seed_path(&mut t, &ids, |_| true);
        assert!(t.knows(0, 7) && t.knows(0, 8) && !t.knows(0, 9));
        assert!(t.knows(1, 8) && t.knows(1, 9));
        assert_eq!(t.knowledge_size(2), 1);
    }

    #[test]
    fn disabled_tracker_knows_everything() {
        let t = KnowledgeTracker::new(4, false);
        assert!(t.knows(0, 999));
        assert_eq!(t.knowledge_size(0), 0);
    }

    #[test]
    fn learning_is_per_node() {
        let mut t = KnowledgeTracker::new(2, true);
        t.learn(0, 7);
        assert!(t.knows(0, 7));
        assert!(!t.knows(1, 7));
        assert_eq!(t.knowledge_size(0), 1);
        assert_eq!(t.knowledge_size(1), 0);
    }

    #[test]
    fn learning_is_idempotent() {
        let mut t = KnowledgeTracker::new(1, true);
        t.learn(0, 7);
        t.learn(0, 7);
        assert_eq!(t.knowledge_size(0), 1);
    }

    #[test]
    fn regions_grow_and_stay_sorted_under_interleaved_learning() {
        // Interleave learning across nodes so regions are re-homed while
        // other regions sit between them in the arena.
        let mut t = KnowledgeTracker::new(3, true);
        for k in 0..64u64 {
            // Descending and alternating inserts exercise every insert
            // position.
            t.learn((k % 3) as usize, 1_000 - k);
            t.learn(((k + 1) % 3) as usize, 500 + (k % 7) * 13);
        }
        for node in 0..3 {
            let mut seen = Vec::new();
            for k in 0..64u64 {
                if (k % 3) as usize == node {
                    seen.push(1_000 - k);
                }
                if ((k + 1) % 3) as usize == node {
                    seen.push(500 + (k % 7) * 13);
                }
            }
            seen.sort_unstable();
            seen.dedup();
            assert_eq!(t.knowledge_size(node), seen.len(), "node {node}");
            for &id in &seen {
                assert!(t.knows(node, id), "node {node} lost id {id}");
            }
            assert!(!t.knows(node, 2), "node {node} knows an unlearned id");
        }
    }
}
