//! KT0 knowledge tracking.
//!
//! In NCC0 a node may address only IDs it has *learned*. Knowledge spreads in
//! exactly two ways: receiving a message reveals the sender's ID, and a
//! message payload may carry explicit addresses. The engine maintains each
//! node's knowledge set and checks every outgoing message against it, so a
//! clean strict run is a machine-checked proof that the protocol is a legal
//! NCC0 algorithm.

use crate::message::NodeId;
use std::collections::HashSet;

/// Per-node knowledge sets, indexed by the engine's dense node index.
#[derive(Debug)]
pub struct KnowledgeTracker {
    sets: Vec<HashSet<NodeId>>,
    enabled: bool,
}

impl KnowledgeTracker {
    /// Creates a tracker for `n` nodes. When `enabled` is false all queries
    /// answer "known" and no memory is spent.
    pub fn new(n: usize, enabled: bool) -> Self {
        KnowledgeTracker {
            sets: if enabled { vec![HashSet::new(); n] } else { Vec::new() },
            enabled,
        }
    }

    /// Whether tracking is active.
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Grants `node` knowledge of `id` (initial knowledge or learning).
    pub fn learn(&mut self, node: usize, id: NodeId) {
        if self.enabled {
            self.sets[node].insert(id);
        }
    }

    /// Does `node` know `id`?
    pub fn knows(&self, node: usize, id: NodeId) -> bool {
        !self.enabled || self.sets[node].contains(&id)
    }

    /// Number of IDs `node` has learned (0 when tracking is off).
    pub fn knowledge_size(&self, node: usize) -> usize {
        if self.enabled {
            self.sets[node].len()
        } else {
            0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_tracker_knows_everything() {
        let t = KnowledgeTracker::new(4, false);
        assert!(t.knows(0, 999));
        assert_eq!(t.knowledge_size(0), 0);
    }

    #[test]
    fn learning_is_per_node() {
        let mut t = KnowledgeTracker::new(2, true);
        t.learn(0, 7);
        assert!(t.knows(0, 7));
        assert!(!t.knows(1, 7));
        assert_eq!(t.knowledge_size(0), 1);
        assert_eq!(t.knowledge_size(1), 0);
    }

    #[test]
    fn learning_is_idempotent() {
        let mut t = KnowledgeTracker::new(1, true);
        t.learn(0, 7);
        t.learn(0, 7);
        assert_eq!(t.knowledge_size(0), 1);
    }
}
