//! KT0 knowledge tracking.
//!
//! In NCC0 a node may address only IDs it has *learned*. Knowledge spreads in
//! exactly two ways: receiving a message reveals the sender's ID, and a
//! message payload may carry explicit addresses. The engine maintains each
//! node's knowledge set and checks every outgoing message against it, so a
//! clean strict run is a machine-checked proof that the protocol is a legal
//! NCC0 algorithm.

use crate::message::NodeId;
use std::collections::HashSet;

/// Seeds the initial NCC0 knowledge along the directed path `G_k`, but
/// only for *participating* nodes: each participating node learns its own
/// ID and the ID of the **next participating** node on the path (dead or
/// filtered indices are skipped entirely, consistent with the engines'
/// `alive` masks — they are not on the path, so nobody's initial knowledge
/// may point at them).
pub(crate) fn seed_path(
    tracker: &mut KnowledgeTracker,
    ids: &[NodeId],
    participating: impl Fn(usize) -> bool,
) {
    if !tracker.enabled() {
        return;
    }
    let mut prev: Option<usize> = None;
    for (i, &id) in ids.iter().enumerate() {
        if !participating(i) {
            continue;
        }
        tracker.learn(i, id);
        if let Some(p) = prev {
            // Node p's out-neighbor on the filtered path is node i.
            tracker.learn(p, id);
        }
        prev = Some(i);
    }
}

/// Per-node knowledge sets, indexed by the engine's dense node index.
#[derive(Debug)]
pub struct KnowledgeTracker {
    sets: Vec<HashSet<NodeId>>,
    enabled: bool,
}

impl KnowledgeTracker {
    /// Creates a tracker for `n` nodes. When `enabled` is false all queries
    /// answer "known" and no memory is spent.
    pub fn new(n: usize, enabled: bool) -> Self {
        KnowledgeTracker {
            sets: if enabled {
                vec![HashSet::new(); n]
            } else {
                Vec::new()
            },
            enabled,
        }
    }

    /// Whether tracking is active.
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Grants `node` knowledge of `id` (initial knowledge or learning).
    pub fn learn(&mut self, node: usize, id: NodeId) {
        if self.enabled {
            self.sets[node].insert(id);
        }
    }

    /// Does `node` know `id`?
    pub fn knows(&self, node: usize, id: NodeId) -> bool {
        !self.enabled || self.sets[node].contains(&id)
    }

    /// Number of IDs `node` has learned (0 when tracking is off).
    pub fn knowledge_size(&self, node: usize) -> usize {
        if self.enabled {
            self.sets[node].len()
        } else {
            0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeding_skips_filtered_indices() {
        let ids: Vec<NodeId> = vec![10, 20, 30, 40, 50];
        let mut t = KnowledgeTracker::new(5, true);
        // Nodes 1 and 3 are filtered out of the network.
        seed_path(&mut t, &ids, |i| i != 1 && i != 3);
        // Participants know themselves and their next *participating*
        // successor.
        assert!(t.knows(0, 10) && t.knows(0, 30));
        assert!(t.knows(2, 30) && t.knows(2, 50));
        assert!(t.knows(4, 50));
        // Nobody is seeded with a filtered node's ID, and filtered nodes
        // learn nothing.
        assert!(!t.knows(0, 20));
        assert!(!t.knows(2, 40));
        assert_eq!(t.knowledge_size(1), 0);
        assert_eq!(t.knowledge_size(3), 0);
        // The tail learns only itself.
        assert_eq!(t.knowledge_size(4), 1);
    }

    #[test]
    fn seeding_all_alive_matches_plain_path() {
        let ids: Vec<NodeId> = vec![7, 8, 9];
        let mut t = KnowledgeTracker::new(3, true);
        seed_path(&mut t, &ids, |_| true);
        assert!(t.knows(0, 7) && t.knows(0, 8) && !t.knows(0, 9));
        assert!(t.knows(1, 8) && t.knows(1, 9));
        assert_eq!(t.knowledge_size(2), 1);
    }

    #[test]
    fn disabled_tracker_knows_everything() {
        let t = KnowledgeTracker::new(4, false);
        assert!(t.knows(0, 999));
        assert_eq!(t.knowledge_size(0), 0);
    }

    #[test]
    fn learning_is_per_node() {
        let mut t = KnowledgeTracker::new(2, true);
        t.learn(0, 7);
        assert!(t.knows(0, 7));
        assert!(!t.knows(1, 7));
        assert_eq!(t.knowledge_size(0), 1);
        assert_eq!(t.knowledge_size(1), 0);
    }

    #[test]
    fn learning_is_idempotent() {
        let mut t = KnowledgeTracker::new(1, true);
        t.learn(0, 7);
        t.learn(0, 7);
        assert_eq!(t.knowledge_size(0), 1);
    }
}
