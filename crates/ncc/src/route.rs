//! Allocation-free routing support: dense ID resolution and the reusable
//! counting-sort buffers of the batched engine.
//!
//! The batched executor routes a round in two passes over the node
//! outboxes: pass one validates each envelope and counts messages per
//! destination index, pass two scatters envelopes into a flat arena at
//! offsets derived from a prefix sum over the counts (a stable counting
//! sort keyed by destination — stable because sources are visited in dense
//! index order, which is exactly the threaded engine's canonical routing
//! order). Every buffer involved — counts, bucket starts, scatter cursors
//! and the envelope arena — lives in [`RouteBuffers`] and is reused across
//! rounds: after the arena has grown to the high-water message count, the
//! routing hot path performs no heap allocation at all.

use crate::config::IdAssignment;
use crate::error::Violation;
use crate::message::NodeId;
use crate::wire::WireEnvelope;
use rayon::prelude::*;

/// Raw pointer to a `u32` buffer written by parallel tasks at disjoint
/// indices (chunk sums / per-worker cursor rows partitioned by
/// destination range, and the delivery sweep's per-chunk totals).
pub(crate) struct RawU32(pub(crate) *mut u32);
unsafe impl Send for RawU32 {}
unsafe impl Sync for RawU32 {}

impl RawU32 {
    /// # Safety
    ///
    /// `at` must be owned exclusively by the calling task.
    pub(crate) unsafe fn write(&self, at: usize, v: u32) {
        unsafe { self.0.add(at).write(v) };
    }
}

/// Raw pointer to a table of envelope rows (the sharded engine's
/// `(src-shard, dst-shard)` exchange cells), written by parallel tasks at
/// disjoint row ranges: source shard `s` touches only rows
/// `s * shards..(s + 1) * shards` during its seal.
pub(crate) struct RawRows(pub(crate) *mut Vec<WireEnvelope>);
unsafe impl Send for RawRows {}
unsafe impl Sync for RawRows {}

impl RawRows {
    /// # Safety
    ///
    /// Row `at` must be owned exclusively by the calling task.
    #[allow(clippy::mut_from_ref)]
    pub(crate) unsafe fn row(&self, at: usize) -> &mut Vec<WireEnvelope> {
        unsafe { &mut *self.0.add(at) }
    }
}

/// Raw pointer to the queue span table, read and written by the parallel
/// delivery sweep at disjoint node indices (each dense index belongs to
/// exactly one slot, and slots are partitioned into disjoint chunks).
pub(crate) struct RawSpans(pub(crate) *mut (u32, u32));
unsafe impl Send for RawSpans {}
unsafe impl Sync for RawSpans {}

impl RawSpans {
    /// # Safety
    ///
    /// `at` must be owned exclusively by the calling task.
    pub(crate) unsafe fn read(&self, at: usize) -> (u32, u32) {
        unsafe { self.0.add(at).read() }
    }

    /// # Safety
    ///
    /// `at` must be owned exclusively by the calling task.
    pub(crate) unsafe fn write(&self, at: usize, v: (u32, u32)) {
        unsafe { self.0.add(at).write(v) };
    }
}

/// Per-worker `(counts, cursors)` row base pointers for the
/// destination-range-parallel cursor derivation: every parallel task
/// touches a disjoint destination range of *every* row, so the aliasing
/// is sound by construction.
struct RowTable(Vec<(*const u32, *mut u32)>);
unsafe impl Send for RowTable {}
unsafe impl Sync for RowTable {}

impl RowTable {
    /// Accessor (rather than direct field use) so closures capture the
    /// whole `Sync` wrapper, not the raw-pointer `Vec` inside it.
    fn rows(&self) -> &[(*const u32, *mut u32)] {
        &self.0
    }
}

/// Maps node IDs to dense indices without hashing.
///
/// Sequential networks (`ids[i] == i + 1`) resolve arithmetically;
/// random-ID networks resolve by binary search over a sorted copy of the
/// ID space. Either way resolution happens once per *send* (in
/// [`RoundCtx::send`](crate::RoundCtx::send)), so the routing passes
/// themselves work purely on dense `u32` indices.
#[derive(Debug)]
pub(crate) enum Resolver {
    /// IDs are `1..=n` in path order.
    Sequential { n: usize },
    /// Sorted ID table with the matching dense index per entry.
    Sorted { ids: Vec<NodeId>, index: Vec<u32> },
}

impl Resolver {
    /// Builds the resolver for `ids` (in path order).
    pub(crate) fn build(ids: &[NodeId], assignment: IdAssignment) -> Self {
        match assignment {
            IdAssignment::Sequential => Resolver::Sequential { n: ids.len() },
            IdAssignment::Random => {
                let mut pairs: Vec<(NodeId, u32)> = ids
                    .iter()
                    .enumerate()
                    .map(|(i, &id)| (id, i as u32))
                    .collect();
                pairs.sort_unstable();
                Resolver::Sorted {
                    ids: pairs.iter().map(|&(id, _)| id).collect(),
                    index: pairs.iter().map(|&(_, i)| i).collect(),
                }
            }
        }
    }

    /// The dense index of `id`, or `None` if no such node exists.
    #[inline]
    pub(crate) fn index_of(&self, id: NodeId) -> Option<u32> {
        match self {
            Resolver::Sequential { n } => (1..=*n as u64).contains(&id).then(|| (id - 1) as u32),
            Resolver::Sorted { ids, index } => ids.binary_search(&id).ok().map(|pos| index[pos]),
        }
    }
}

/// One routing worker's private accumulators for the parallel
/// validate-and-count and scatter passes. Rows are reused across rounds;
/// at steady state a clean round touches no allocator through them
/// (`violations` only grows when violations actually occur).
#[derive(Debug, Default)]
pub(crate) struct WorkerScratch {
    /// Messages per destination index from this worker's slot range.
    pub(crate) counts: Vec<u32>,
    /// Scatter cursor per destination index (absolute arena offsets).
    pub(crate) cursors: Vec<u32>,
    /// Violations from this worker's slot range, in canonical (dense
    /// source index) order — replayed sequentially after the pass so
    /// violation accounting stays bit-identical to a sequential walk.
    pub(crate) violations: Vec<Violation>,
    /// Deliverable messages seen by this worker.
    pub(crate) round_messages: u64,
    /// Message volume (in words) seen by this worker.
    pub(crate) words: u64,
    /// Largest per-node send burst in this worker's range.
    pub(crate) max_sent: usize,
    /// Largest per-node delivery in this worker's range (the receive
    /// sweeps' half of the max fold; managed by the sweep, not
    /// [`WorkerScratch::begin_round`]).
    pub(crate) max_received: usize,
    /// Learns the parallel learn sweep could not apply in place (the
    /// node's region was full and needs re-homing, the one operation that
    /// grows the arena) — replayed sequentially after the pass. Empty at
    /// steady state, so a settled run never allocates through it.
    pub(crate) learns: Vec<(u32, NodeId)>,
}

impl WorkerScratch {
    /// Resets the per-round accumulators (counts are sized on first use).
    pub(crate) fn begin_round(&mut self, n: usize) {
        if self.counts.len() != n {
            self.counts = vec![0; n];
            self.cursors = vec![0; n];
        } else {
            self.counts.fill(0);
        }
        self.violations.clear();
        self.round_messages = 0;
        self.words = 0;
        self.max_sent = 0;
    }
}

/// The reusable buffers of one batched network's routing pass.
#[derive(Debug)]
pub(crate) struct RouteBuffers {
    /// Messages per destination index, this round.
    pub(crate) counts: Vec<u32>,
    /// Bucket start offset per destination index (prefix sums of counts).
    pub(crate) starts: Vec<u32>,
    /// Scatter cursor per destination index.
    cursor: Vec<u32>,
    /// Flat envelope arena; bucket `i` is `arena[starts[i]..][..counts[i]]`.
    pub(crate) arena: Vec<WireEnvelope>,
    /// Per-worker scratch rows for the parallel routing passes (empty
    /// until the first multi-worker round).
    pub(crate) scratch: Vec<WorkerScratch>,
    /// Per-destination-chunk message totals of the parallel fold (phase A
    /// writes them, phase B prefix-sums them into chunk base offsets).
    chunk_sums: Vec<u32>,
}

impl RouteBuffers {
    pub(crate) fn new(n: usize) -> Self {
        RouteBuffers {
            counts: vec![0; n],
            starts: vec![0; n],
            cursor: vec![0; n],
            arena: Vec::new(),
            scratch: Vec::new(),
            chunk_sums: Vec::new(),
        }
    }

    /// Ensures `workers` scratch rows exist; each worker resets its own
    /// row inside the parallel pass (`WorkerScratch::begin_round`), so the
    /// coordinating thread does no per-round `O(workers x n)` zero-fill.
    pub(crate) fn begin_parallel_round(&mut self, workers: usize) {
        if self.scratch.len() < workers {
            self.scratch.resize_with(workers, WorkerScratch::default);
        }
    }

    /// Folds the per-worker counts into the global per-destination counts
    /// and computes every worker's absolute scatter cursors: worker `w`'s
    /// region of bucket `d` starts after the regions of workers `< w`,
    /// which keeps bucket contents in dense source order — the exact
    /// order a sequential walk produces, for any worker count.
    ///
    /// Both the fold and the cursor derivation are parallelized over
    /// **destination ranges** (the former `O(workers x n)` coordinator
    /// pass was the routing bottleneck on dense rounds): phase A sums the
    /// worker rows per destination chunk, phase B is an `O(workers)`
    /// prefix over the chunk totals, and phase C derives `starts` and
    /// every worker's cursors within each chunk independently. Only a
    /// pointer-table allocation of `O(workers)` happens per call — and the
    /// adaptive router invokes this on dense rounds only, where it is
    /// noise against the message volume.
    ///
    /// Returns the round's total message count (and sizes the arena).
    pub(crate) fn seal_parallel(&mut self, workers: usize) -> usize {
        let n = self.counts.len();
        let chunk = n.div_ceil(workers).max(1);
        let nchunks = n.div_ceil(chunk).max(1);
        if self.chunk_sums.len() < nchunks {
            self.chunk_sums.resize(nchunks, 0);
        }

        // Phase A: counts[d] = Σ_w row_w[d], one destination chunk per
        // task, recording each chunk's message total.
        {
            let scratch = &self.scratch;
            let chunk_sums = RawU32(self.chunk_sums.as_mut_ptr());
            self.counts
                .par_chunks_mut(chunk)
                .enumerate()
                .for_each(|(c, counts_chunk)| {
                    let lo = c * chunk;
                    let mut sum: u32 = 0;
                    for (j, total) in counts_chunk.iter_mut().enumerate() {
                        let d = lo + j;
                        let mut t: u32 = 0;
                        for row in &scratch[..workers] {
                            t += row.counts[d];
                        }
                        *total = t;
                        sum += t;
                    }
                    // Sound: task `c` exclusively owns chunk_sums[c].
                    unsafe { chunk_sums.write(c, sum) };
                });
        }

        // Phase B: exclusive prefix over the chunk totals -> chunk bases.
        let mut acc: u32 = 0;
        for c in 0..nchunks {
            let s = self.chunk_sums[c];
            self.chunk_sums[c] = acc;
            acc += s;
        }
        let total = acc as usize;

        // Phase C: per chunk, derive bucket starts and the per-worker
        // scatter cursors (worker w's region of bucket d follows the
        // regions of workers < w).
        {
            let rows = RowTable(
                self.scratch[..workers]
                    .iter_mut()
                    .map(|s| (s.counts.as_ptr(), s.cursors.as_mut_ptr()))
                    .collect(),
            );
            let chunk_sums = &self.chunk_sums;
            self.starts
                .par_chunks_mut(chunk)
                .enumerate()
                .for_each(|(c, starts_chunk)| {
                    let lo = c * chunk;
                    let mut acc = chunk_sums[c];
                    for (j, start) in starts_chunk.iter_mut().enumerate() {
                        let d = lo + j;
                        *start = acc;
                        let mut cur = acc;
                        for &(counts_row, cursors_row) in rows.rows() {
                            // Sound: each task owns destination range
                            // [lo, lo + len) of every row.
                            unsafe {
                                cursors_row.add(d).write(cur);
                                cur += counts_row.add(d).read();
                            }
                        }
                        acc = cur;
                    }
                });
        }

        if self.arena.len() < total {
            self.arena.resize(total, WireEnvelope::EMPTY);
        }
        total
    }

    /// Computes bucket offsets from the counts over the given destination
    /// indices (ascending) and ensures the arena can hold the round's
    /// messages. The inline routing path passes the **live** indices only
    /// — exactly the compacted slot array's iteration order; messages can
    /// only be routed to live destinations, so skipping retired indices
    /// changes nothing and makes the seal `O(live)` instead of `O(n)` on
    /// long-tailed runs. Returns the total message count. Allocates only
    /// when the round exceeds every previous round's message count (the
    /// arena never shrinks).
    pub(crate) fn seal_counts_live(&mut self, live: impl Iterator<Item = usize>) -> usize {
        let mut acc: u32 = 0;
        for i in live {
            self.starts[i] = acc;
            self.cursor[i] = acc;
            acc += self.counts[i];
        }
        let total = acc as usize;
        if self.arena.len() < total {
            self.arena.resize(total, WireEnvelope::EMPTY);
        }
        total
    }

    /// Scatters one envelope into its destination bucket.
    #[inline]
    pub(crate) fn push(&mut self, env: WireEnvelope) {
        let dst = env.dst_idx as usize;
        let at = self.cursor[dst] as usize;
        self.arena[at] = env;
        self.cursor[dst] += 1;
    }

    /// The delivery bucket of destination index `i`.
    pub(crate) fn bucket(&self, i: usize) -> &[WireEnvelope] {
        &self.arena[self.starts[i] as usize..][..self.counts[i] as usize]
    }

    /// The `(start, len)` span of destination `i`'s bucket.
    pub(crate) fn span(&self, i: usize) -> (u32, u32) {
        (self.starts[i], self.counts[i])
    }

    /// The sealed arena's current length (an upper bound on the round's
    /// total bucket volume — the scenario fault pass sizes its swap
    /// arena from it).
    pub(crate) fn arena_len(&self) -> usize {
        self.arena.len()
    }

    /// Rewrites destination `i`'s bucket span. The scenario fault pass
    /// rebuilds buckets into its own swap arena and re-points the spans
    /// at the rebuilt layout before installing it.
    pub(crate) fn set_span(&mut self, i: usize, start: u32, count: u32) {
        self.starts[i] = start;
        self.counts[i] = count;
    }

    /// Swaps `arena` in as the sealed delivery arena (the previous arena
    /// lands in `arena`, to be reused as next round's swap buffer — both
    /// vectors converge on their high-water capacity, so the exchange is
    /// allocation-free at steady state).
    pub(crate) fn install_arena(&mut self, arena: &mut Vec<WireEnvelope>) {
        std::mem::swap(&mut self.arena, arena);
    }
}

/// Flat-arena backlog for the [`Queue`](crate::CapacityPolicy::Queue)
/// capacity policy: per-node FIFO delivery queues as spans of one
/// double-buffered envelope arena, instead of `n` separate `VecDeque`s.
/// Every buffer is reused across rounds, so queued delivery is
/// allocation-free once the arenas reach the run's high-water backlog.
#[derive(Debug, Default)]
pub(crate) struct QueueBuffers {
    /// Per-node `(start, len)` span of its backlog in `cur`.
    pub(crate) spans: Vec<(u32, u32)>,
    /// Backlog carried over from the previous round.
    pub(crate) cur: Vec<WireEnvelope>,
    /// Backlog being assembled for the next round.
    pub(crate) next: Vec<WireEnvelope>,
    /// The round's delivery arena (what inbox spans point into).
    pub(crate) inbox: Vec<WireEnvelope>,
    /// Per-slot-chunk delivered totals of the parallel delivery sweep's
    /// measuring pass (phase A writes totals, the sequential prefix turns
    /// them into chunk base offsets for phase B). Reused across rounds.
    pub(crate) chunk_take: Vec<u32>,
    /// Per-slot-chunk re-queued totals (same protocol as `chunk_take`).
    pub(crate) chunk_queue: Vec<u32>,
    /// Per-slot-chunk max backlog length after delivery, folded into
    /// `max_queue_len` on the coordinating thread (max is commutative).
    pub(crate) chunk_qmax: Vec<u32>,
}

impl QueueBuffers {
    pub(crate) fn new(n: usize) -> Self {
        QueueBuffers {
            spans: vec![(0, 0); n],
            cur: Vec::new(),
            next: Vec::new(),
            inbox: Vec::new(),
            chunk_take: Vec::new(),
            chunk_queue: Vec::new(),
            chunk_qmax: Vec::new(),
        }
    }

    /// Ensures the per-chunk arrays of the parallel delivery sweep can
    /// hold `nchunks` entries (they never shrink — round-reused like
    /// every other engine buffer).
    pub(crate) fn ensure_chunks(&mut self, nchunks: usize) {
        if self.chunk_take.len() < nchunks {
            self.chunk_take.resize(nchunks, 0);
            self.chunk_queue.resize(nchunks, 0);
            self.chunk_qmax.resize(nchunks, 0);
        }
    }

    /// Opens a round's delivery sweep (the previous round's inbox arena
    /// has been consumed by the step phase by now).
    pub(crate) fn begin_round(&mut self) {
        self.inbox.clear();
        self.next.clear();
    }

    /// Merges node `i`'s carried backlog with its freshly routed bucket,
    /// delivers up to `cap` envelopes into the inbox arena (FIFO: backlog
    /// first, then the new bucket in routed order), and re-queues the
    /// rest. Returns `(inbox_start, delivered, queued_after)`.
    ///
    /// Call [`QueueBuffers::begin_round`] first, then this for
    /// `i = 0..n` in order, then [`QueueBuffers::end_round`].
    pub(crate) fn deliver(
        &mut self,
        i: usize,
        fresh: &[WireEnvelope],
        cap: usize,
    ) -> (u32, u32, usize) {
        let (bs, bl) = self.spans[i];
        let backlog_range = bs as usize..(bs + bl) as usize;
        let total = bl as usize + fresh.len();
        let take = total.min(cap);
        let start = self.inbox.len() as u32;
        let next_start = self.next.len() as u32;
        {
            let mut pending = self.cur[backlog_range].iter().chain(fresh.iter());
            self.inbox.extend(pending.by_ref().take(take).copied());
            self.next.extend(pending.copied());
        }
        self.spans[i] = (next_start, (total - take) as u32);
        (start, take as u32, total - take)
    }

    /// Swaps the backlog buffers after a full delivery sweep.
    pub(crate) fn end_round(&mut self) {
        std::mem::swap(&mut self.cur, &mut self.next);
    }

    /// Envelopes still queued (undelivered) across all nodes.
    pub(crate) fn backlog_total(&self) -> u64 {
        self.spans.iter().map(|&(_, len)| len as u64).sum()
    }

    /// Envelopes currently queued for node `i`.
    pub(crate) fn backlog_len(&self, i: usize) -> usize {
        self.spans[i].1 as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::{WireMsg, NO_INDEX};

    #[test]
    fn sequential_resolution_is_arithmetic() {
        let ids: Vec<NodeId> = (1..=5).collect();
        let r = Resolver::build(&ids, IdAssignment::Sequential);
        assert_eq!(r.index_of(1), Some(0));
        assert_eq!(r.index_of(5), Some(4));
        assert_eq!(r.index_of(0), None);
        assert_eq!(r.index_of(6), None);
    }

    #[test]
    fn random_resolution_by_binary_search() {
        let ids: Vec<NodeId> = vec![900, 17, 404, 3];
        let r = Resolver::build(&ids, IdAssignment::Random);
        for (i, &id) in ids.iter().enumerate() {
            assert_eq!(r.index_of(id), Some(i as u32), "id {id}");
        }
        assert_eq!(r.index_of(5), None);
    }

    #[test]
    fn counting_sort_is_stable_by_source_order() {
        let mut b = RouteBuffers::new(3);
        // Destinations in arrival order: 2, 0, 2, 1, 0.
        let dsts = [2u32, 0, 2, 1, 0];
        for &d in &dsts {
            b.counts[d as usize] += 1;
        }
        assert_eq!(b.seal_counts_live(0..3), 5);
        for (k, &d) in dsts.iter().enumerate() {
            b.push(WireEnvelope {
                src: k as NodeId,
                msg: WireMsg::signal(0),
                dst: d as NodeId,
                dst_idx: d,
            });
        }
        // Bucket 0 sees sources 1 then 4 (arrival order preserved).
        let srcs = |i: usize| b.bucket(i).iter().map(|e| e.src).collect::<Vec<_>>();
        assert_eq!(srcs(0), vec![1, 4]);
        assert_eq!(srcs(1), vec![3]);
        assert_eq!(srcs(2), vec![0, 2]);
        let _ = NO_INDEX;
    }

    #[test]
    fn arena_never_shrinks() {
        let mut b = RouteBuffers::new(2);
        b.counts[0] = 4;
        assert_eq!(b.seal_counts_live(0..2), 4);
        let cap = b.arena.len();
        b.counts.fill(0);
        b.counts[1] = 1;
        assert_eq!(b.seal_counts_live(0..2), 1);
        assert_eq!(b.arena.len(), cap, "arena must be reused, not shrunk");
    }

    #[test]
    fn live_only_seal_skips_retired_indices() {
        let mut b = RouteBuffers::new(4);
        // Index 1 is retired with a stale count left behind; the live
        // seal must lay out buckets as if it did not exist.
        b.counts[0] = 2;
        b.counts[1] = 99;
        b.counts[2] = 1;
        b.counts[3] = 3;
        assert_eq!(b.seal_counts_live([0usize, 2, 3].into_iter()), 6);
        assert_eq!(b.span(0), (0, 2));
        assert_eq!(b.span(2), (2, 1));
        assert_eq!(b.span(3), (3, 3));
    }

    #[test]
    fn parallel_seal_matches_sequential_layout() {
        // 3 workers, 7 destinations: fold + cursors via seal_parallel
        // must equal a sequential walk of worker rows in worker order.
        let n = 7;
        let workers = 3;
        let mut b = RouteBuffers::new(n);
        b.begin_parallel_round(workers);
        let rows: [[u32; 7]; 3] = [
            [1, 0, 2, 0, 0, 1, 4],
            [0, 3, 1, 0, 2, 0, 0],
            [2, 1, 0, 0, 1, 1, 2],
        ];
        for (w, row) in rows.iter().enumerate() {
            b.scratch[w].begin_round(n);
            b.scratch[w].counts.copy_from_slice(row);
        }
        let total = b.seal_parallel(workers);
        assert_eq!(total, rows.iter().flatten().sum::<u32>() as usize);
        // Expected: bucket d starts at Σ_{d'<d} counts[d']; worker w's
        // cursor in bucket d follows workers < w.
        let mut acc = 0u32;
        for d in 0..n {
            assert_eq!(b.starts[d], acc, "start of bucket {d}");
            let mut cur = acc;
            for (w, row) in rows.iter().enumerate() {
                assert_eq!(b.scratch[w].cursors[d], cur, "cursor w={w} d={d}");
                cur += row[d];
            }
            assert_eq!(b.counts[d], rows.iter().map(|r| r[d]).sum::<u32>());
            acc = cur;
        }
    }
}
