//! Network construction and the engine entry points.
//!
//! A [`Network`] owns the simulated ID space and configuration; protocols
//! run on it through one of two engines:
//!
//! * [`Network::run_protocol`] — the **batched step-function executor**
//!   ([`batch`](crate::batch)): protocols are [`NodeProtocol`] state
//!   machines stepped in bulk by a rayon worker pool, with allocation-free
//!   counting-sort routing. This is the production engine; it simulates
//!   millions of nodes.
//! * [`Network::run`] — the **threaded oracle** (`threaded` feature):
//!   direct-style blocking closures, one OS thread per node. Tops out
//!   around `n ≈ 10⁴`; kept for the direct-style algorithm stack and as
//!   the differential-testing oracle
//!   ([`Network::run_protocol_threaded`] runs the *same* state machines
//!   on it, for transcript comparison).

use crate::config::{Config, IdAssignment};
use crate::error::SimError;
use crate::event::Sink;
use crate::message::NodeId;
use crate::metrics::{EngineStats, RunMetrics};
use crate::protocol::{NodeProtocol, NodeSeed};
use crate::route::Resolver;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use std::collections::HashSet;

/// The result of a completed simulation.
#[derive(Debug)]
pub struct RunResult<R> {
    /// Per-node outputs in knowledge-path (`G_k`) order, one entry per
    /// participating node. The path order is *omniscient* test information
    /// — the nodes themselves never see it.
    pub outputs: Vec<(NodeId, R)>,
    /// Round/message/violation metrics for the run.
    pub metrics: RunMetrics,
    /// Executor-internal statistics (compactions, routing-path choices).
    /// Not part of the model semantics: the threaded oracle reports
    /// all-zero stats, and differential tests must not compare them.
    pub engine: EngineStats,
}

impl<R> RunResult<R> {
    /// Output of the node with the given ID.
    pub fn output_of(&self, id: NodeId) -> Option<&R> {
        self.outputs.iter().find(|(i, _)| *i == id).map(|(_, r)| r)
    }

    /// IDs in knowledge-path order (ground truth for verification).
    pub fn gk_order(&self) -> Vec<NodeId> {
        self.outputs.iter().map(|(id, _)| *id).collect()
    }
}

/// A configured NCC network, ready to run a protocol.
pub struct Network {
    n: usize,
    config: Config,
    /// IDs in `G_k` path order (index = path position).
    ids: Vec<NodeId>,
    /// Dense ID→index resolution (no hashing on the send path).
    resolver: Resolver,
}

impl Network {
    /// Creates an `n`-node network. IDs and the knowledge-path order are
    /// derived deterministically from `config.seed`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn new(n: usize, config: Config) -> Self {
        assert!(n > 0, "a network needs at least one node");
        let ids = assign_ids(n, &config);
        let resolver = Resolver::build(&ids, config.id_assignment);
        Network {
            n,
            config,
            ids,
            resolver,
        }
    }

    /// Number of nodes.
    pub fn n(&self) -> usize {
        self.n
    }

    /// The per-round capacity this network enforces.
    pub fn capacity(&self) -> usize {
        self.config.capacity(self.n)
    }

    /// The model variant this network runs under.
    pub fn model(&self) -> crate::Model {
        self.config.model
    }

    /// IDs in knowledge-path order (omniscient information, for tests and
    /// workload setup).
    pub fn ids_in_path_order(&self) -> &[NodeId] {
        &self.ids
    }

    /// Zips per-node inputs onto the IDs in knowledge-path order:
    /// `values[i]` is assigned to the `i`-th node of `G_k`. The standard
    /// driver bookkeeping for wiring a workload onto a network. Returns
    /// an ordered map: driver output assembly iterates these
    /// assignments, and iteration order must not depend on a per-process
    /// hash seed (the `unordered-iteration` detlint rule).
    ///
    /// # Panics
    ///
    /// Panics if `values.len() != n`.
    pub fn assign_in_path_order<T: Copy>(
        &self,
        values: &[T],
    ) -> std::collections::BTreeMap<NodeId, T> {
        assert_eq!(self.n, values.len(), "one input value per node is required");
        self.ids
            .iter()
            .copied()
            .zip(values.iter().copied())
            .collect()
    }

    pub(crate) fn config(&self) -> &Config {
        &self.config
    }

    pub(crate) fn resolver(&self) -> &Resolver {
        &self.resolver
    }

    /// Runs a [`NodeProtocol`] state machine at every node on the
    /// **batched executor**. `factory` builds each node's protocol from
    /// its [`NodeSeed`] (the model's initial knowledge); the same factory
    /// runs at every node — exactly the "same algorithm at every node"
    /// setting of the model.
    ///
    /// # Errors
    ///
    /// Propagates model violations (strict policy), round-limit overruns
    /// and protocol panics, like the threaded engine.
    pub fn run_protocol<P, F>(&self, factory: F) -> Result<RunResult<P::Output>, SimError>
    where
        P: NodeProtocol,
        F: Fn(&NodeSeed<'_>) -> P + Sync,
    {
        crate::batch::run(self, None, None, factory)
    }

    /// Unified engine dispatch: runs a [`NodeProtocol`] on the chosen
    /// [`EngineKind`](crate::EngineKind), optionally masked to a
    /// participant subset, with the run's [`RunEvent`](crate::RunEvent)
    /// stream delivered into `sink` (pass `None` to run unobserved).
    /// This is the single entry point the `Realization` facade drives;
    /// the per-engine methods remain for direct use.
    ///
    /// # Errors
    ///
    /// As for [`Network::run_protocol`]. Requesting
    /// [`EngineKind::Threaded`](crate::EngineKind) in a build without the
    /// `threaded` feature returns [`SimError::EngineUnavailable`].
    ///
    /// # Panics
    ///
    /// Panics if a mask is given and `participants.len() != n`.
    pub fn run_protocol_on<P, F>(
        &self,
        engine: crate::EngineKind,
        participants: Option<&[bool]>,
        sink: Option<&mut dyn Sink>,
        factory: F,
    ) -> Result<RunResult<P::Output>, SimError>
    where
        P: NodeProtocol,
        F: Fn(&NodeSeed<'_>) -> P + Send + Sync,
    {
        match engine {
            crate::EngineKind::Batched => crate::batch::run(self, participants, sink, factory),
            #[cfg(feature = "threaded")]
            crate::EngineKind::Threaded => {
                let alive;
                let mask = match participants {
                    Some(mask) => mask,
                    None => {
                        alive = vec![true; self.n];
                        &alive
                    }
                };
                self.protocol_threaded(mask, sink, factory)
            }
            #[cfg(not(feature = "threaded"))]
            crate::EngineKind::Threaded => {
                let _ = sink;
                Err(SimError::EngineUnavailable)
            }
        }
    }

    /// Like [`Network::run_protocol`], but only the masked-in nodes
    /// participate: masked-out indices are dead from round zero, the
    /// knowledge path `G_k` links across them, and they produce no output.
    /// (The capacity is still derived from the full `n`.)
    ///
    /// # Errors
    ///
    /// As for [`Network::run_protocol`].
    ///
    /// # Panics
    ///
    /// Panics if `participants.len() != n`.
    pub fn run_protocol_masked<P, F>(
        &self,
        participants: &[bool],
        factory: F,
    ) -> Result<RunResult<P::Output>, SimError>
    where
        P: NodeProtocol,
        F: Fn(&NodeSeed<'_>) -> P + Sync,
    {
        crate::batch::run(self, Some(participants), None, factory)
    }
}

/// The thread-per-node oracle entry points.
#[cfg(feature = "threaded")]
mod threaded_runner {
    use super::*;
    use crate::engine::{Coordinator, Delivery, Submission};
    use crate::error::panic_message;
    use crate::handle::{NodeHandle, POISON_PANIC};
    use crate::message::Msg;
    use crate::protocol::{RoundCtx, Status};
    use crate::wire::{WireEnvelope, NO_INDEX};
    use crate::Model;
    use crossbeam::channel;
    use parking_lot::Mutex;
    use std::panic::AssertUnwindSafe;
    use std::sync::Arc;

    /// Stack size for node threads. Protocols are shallow (no deep
    /// recursion on the node side), so small stacks let us simulate
    /// thousands of nodes.
    const NODE_STACK_BYTES: usize = 512 * 1024;

    impl Network {
        /// Runs `node_fn` on every node (thread-per-node) until all
        /// protocol functions return. Direct style: the closure blocks in
        /// [`NodeHandle::step`] at every round boundary.
        ///
        /// # Errors
        ///
        /// Propagates model violations (strict policy), round-limit
        /// overruns and protocol panics.
        pub fn run<F, R>(&self, node_fn: F) -> Result<RunResult<R>, SimError>
        where
            F: Fn(&mut NodeHandle) -> R + Send + Sync,
            R: Send,
        {
            let alive = vec![true; self.n];
            self.run_threaded_masked(&alive, None, node_fn)
        }

        /// Like [`Network::run`], with the run's
        /// [`RunEvent`](crate::RunEvent) stream delivered into `sink`.
        ///
        /// # Errors
        ///
        /// As for [`Network::run`].
        pub fn run_observed<F, R>(
            &self,
            sink: Option<&mut dyn Sink>,
            node_fn: F,
        ) -> Result<RunResult<R>, SimError>
        where
            F: Fn(&mut NodeHandle) -> R + Send + Sync,
            R: Send,
        {
            let alive = vec![true; self.n];
            self.run_threaded_masked(&alive, sink, node_fn)
        }

        /// Runs the same [`NodeProtocol`] state machines the batched
        /// executor runs, but on the threaded oracle — the differential
        /// tests compare the two transcripts.
        ///
        /// # Errors
        ///
        /// As for [`Network::run`].
        pub fn run_protocol_threaded<P, F>(
            &self,
            factory: F,
        ) -> Result<RunResult<P::Output>, SimError>
        where
            P: NodeProtocol,
            F: Fn(&NodeSeed<'_>) -> P + Send + Sync,
        {
            let alive = vec![true; self.n];
            self.protocol_threaded(&alive, None, factory)
        }

        /// The threaded twin of [`Network::run_protocol_masked`]: runs the
        /// state machines over the masked-in nodes only, with the
        /// knowledge path linking across masked-out indices. Exists so
        /// masked batched runs (the paper-exact sub-network recursions)
        /// have a transcript-identical differential oracle.
        ///
        /// # Errors
        ///
        /// As for [`Network::run`].
        ///
        /// # Panics
        ///
        /// Panics if `participants.len() != n`.
        pub fn run_protocol_threaded_masked<P, F>(
            &self,
            participants: &[bool],
            factory: F,
        ) -> Result<RunResult<P::Output>, SimError>
        where
            P: NodeProtocol,
            F: Fn(&NodeSeed<'_>) -> P + Send + Sync,
        {
            self.protocol_threaded(participants, None, factory)
        }

        /// The state-machine wrapper over the thread-per-node engine: the
        /// sink-threading target of [`Network::run_protocol_on`].
        pub(crate) fn protocol_threaded<P, F>(
            &self,
            participants: &[bool],
            sink: Option<&mut dyn Sink>,
            factory: F,
        ) -> Result<RunResult<P::Output>, SimError>
        where
            P: NodeProtocol,
            F: Fn(&NodeSeed<'_>) -> P + Send + Sync,
        {
            let resolver = self.resolver();
            self.run_threaded_masked(participants, sink, move |h| {
                let seed = NodeSeed {
                    id: h.id,
                    n: h.n,
                    participants: h.participants,
                    capacity: h.capacity,
                    model: h.model,
                    initial_successor: h.initial_successor,
                    all_ids: h.all_ids.as_ref(),
                };
                let mut proto = factory(&seed);
                let mut inbox: Vec<WireEnvelope> = Vec::new();
                let mut out: Vec<WireEnvelope> = Vec::new();
                loop {
                    let mut phase_mark = None;
                    let mut stage_mark = None;
                    let status = {
                        let mut ctx = RoundCtx {
                            id: h.id,
                            n: h.n,
                            participants: h.participants,
                            capacity: h.capacity,
                            model: h.model,
                            initial_successor: h.initial_successor,
                            all_ids: h.all_ids.as_deref().map(Vec::as_slice),
                            round: h.round,
                            rng: &mut h.rng,
                            inbox: &inbox,
                            out: &mut out,
                            resolver,
                            // The threaded oracle keeps full-width per-node
                            // state even on masked runs; no dense remap.
                            dense_of: None,
                            phase_mark: &mut phase_mark,
                            stage_mark: &mut stage_mark,
                        };
                        proto.step(&mut ctx)
                    };
                    match status {
                        Status::Done(output) => {
                            // Marks staged in a Done step are discarded,
                            // exactly like the batched executor.
                            debug_assert!(
                                out.is_empty(),
                                "node {} staged sends in a Done step (discarded)",
                                h.id
                            );
                            return output;
                        }
                        Status::Continue => {
                            let sends: Vec<(NodeId, Msg)> = out
                                .drain(..)
                                .map(|env| (env.dst, env.msg.to_msg()))
                                .collect();
                            h.marks = (phase_mark, stage_mark);
                            inbox = h
                                .step(sends)
                                .iter()
                                .map(|e| WireEnvelope {
                                    src: e.src,
                                    msg: crate::wire::WireMsg::from_msg(&e.msg),
                                    dst: h.id,
                                    dst_idx: NO_INDEX,
                                })
                                .collect();
                        }
                    }
                }
            })
        }

        /// Thread-per-node run over a participant mask (masked-out nodes
        /// never spawn; the knowledge path links across them).
        fn run_threaded_masked<F, R>(
            &self,
            alive: &[bool],
            sink: Option<&mut dyn Sink>,
            node_fn: F,
        ) -> Result<RunResult<R>, SimError>
        where
            F: Fn(&mut NodeHandle) -> R + Send + Sync,
            R: Send,
        {
            let n = self.n;
            assert_eq!(alive.len(), n, "participant mask length must equal n");
            if let Some(s) = &self.config().scenario {
                return Err(SimError::InvalidScenario(format!(
                    "the threaded oracle cannot run scenarios (scenario seed {} \
                     with {} event(s) was configured); use the batched engine",
                    s.seed(),
                    s.events().len(),
                )));
            }
            let capacity = self.capacity();
            let (to_coord, from_nodes) = channel::unbounded::<Submission>();
            let mut to_nodes = Vec::with_capacity(n);
            let mut node_rx = Vec::with_capacity(n);
            for _ in 0..n {
                let (tx, rx) = channel::unbounded::<Delivery>();
                to_nodes.push(tx);
                node_rx.push(Some(rx));
            }

            let all_ids: Option<Arc<Vec<NodeId>>> = match self.config.model {
                Model::Ncc1 => {
                    let mut sorted: Vec<NodeId> =
                        (0..n).filter(|&i| alive[i]).map(|i| self.ids[i]).collect();
                    sorted.sort_unstable();
                    Some(Arc::new(sorted))
                }
                Model::Ncc0 => None,
            };

            // detlint: allow(relaxed-atomic) — threaded-oracle output collection: each node
            // thread writes only its own pre-assigned slot index, exactly once at Done, and
            // the vec is read only after every thread is joined — slot-indexed writes are
            // order-independent.
            let outputs: Arc<Mutex<Vec<Option<R>>>> =
                Arc::new(Mutex::new((0..n).map(|_| None).collect())); // detlint: allow(relaxed-atomic) — continuation of the slot-indexed statement above
            let node_fn = &node_fn;
            let participant_count = alive.iter().filter(|&&a| a).count();

            let mut coordinator = Coordinator::new(
                self.config.clone(),
                self.ids.clone(),
                alive.to_vec(),
                from_nodes,
                to_nodes,
                sink,
            );

            let result: Result<(), SimError> = std::thread::scope(|scope| {
                for index in (0..n).filter(|&i| alive[i]) {
                    let id = self.ids[index];
                    let succ = (index + 1..n).find(|&j| alive[j]).map(|j| self.ids[j]);
                    let rx = node_rx[index].take().expect("receiver taken twice");
                    let to_coord = to_coord.clone();
                    let all_ids = all_ids.clone();
                    let outputs = Arc::clone(&outputs);
                    let model = self.config.model;
                    let seed = self.config.seed;
                    std::thread::Builder::new()
                        .name(format!("ncc-node-{id}"))
                        .stack_size(NODE_STACK_BYTES)
                        .spawn_scoped(scope, move || {
                            let mut handle = NodeHandle::new(
                                id,
                                index,
                                n,
                                participant_count,
                                capacity,
                                model,
                                succ,
                                all_ids,
                                seed,
                                to_coord.clone(),
                                rx,
                            );
                            let run =
                                std::panic::catch_unwind(AssertUnwindSafe(|| node_fn(&mut handle)));
                            match run {
                                Ok(out) => {
                                    outputs.lock()[index] = Some(out);
                                    let _ = to_coord.send(Submission::Done { index });
                                }
                                Err(payload) => {
                                    let message = panic_message(payload.as_ref());
                                    if message == POISON_PANIC {
                                        // Engine-initiated unwind; the engine
                                        // already knows why.
                                        let _ = to_coord.send(Submission::Done { index });
                                    } else {
                                        let _ =
                                            to_coord.send(Submission::Panicked { index, message });
                                    }
                                }
                            }
                        })
                        .expect("failed to spawn node thread");
                }
                drop(to_coord); // coordinator's recv() errors once all nodes finish
                coordinator.run_rounds()
            });

            result?;
            let engine = coordinator.engine_stats();
            let metrics = coordinator.metrics;
            let mut outs = Vec::with_capacity(n);
            let mut guard = outputs.lock();
            for (index, slot) in guard.iter_mut().enumerate() {
                if !alive[index] {
                    continue;
                }
                let r = slot.take().expect("node finished without output");
                outs.push((self.ids[index], r));
            }
            Ok(RunResult {
                outputs: outs,
                metrics,
                engine,
            })
        }
    }
}

/// Generates distinct IDs in path order according to the config.
fn assign_ids(n: usize, config: &Config) -> Vec<NodeId> {
    match config.id_assignment {
        IdAssignment::Sequential => (1..=n as NodeId).collect(),
        IdAssignment::Random => {
            let mut rng = StdRng::seed_from_u64(config.seed ^ 0xD1CE_CAFE_F00D_BEEF);
            // IDs from [1, n^3] (c = 3), distinct.
            let hi = (n as u128).pow(3).min(u64::MAX as u128) as u64;
            let hi = hi.max(n as u64 + 1);
            let mut seen = HashSet::with_capacity(n);
            let mut ids: Vec<NodeId> = Vec::with_capacity(n);
            while ids.len() < n {
                let id = rng.gen_range(1..=hi);
                if seen.insert(id) {
                    ids.push(id);
                }
            }
            // Shuffle so ID magnitude carries no correlation with draw order.
            ids.shuffle(&mut rng);
            ids
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::{tags, Msg};

    #[test]
    fn ids_are_distinct_and_deterministic() {
        let a = assign_ids(100, &Config::ncc0(7));
        let b = assign_ids(100, &Config::ncc0(7));
        assert_eq!(a, b);
        let set: HashSet<_> = a.iter().collect();
        assert_eq!(set.len(), 100);
        let c = assign_ids(100, &Config::ncc0(8));
        assert_ne!(a, c);
    }

    #[test]
    fn sequential_ids_follow_path_order() {
        let ids = assign_ids(5, &Config::ncc0(0).with_sequential_ids());
        assert_eq!(ids, vec![1, 2, 3, 4, 5]);
    }

    #[cfg(feature = "threaded")]
    mod threaded {
        use super::*;
        use crate::SimError;

        #[test]
        fn zero_round_protocol() {
            let net = Network::new(4, Config::ncc0(1));
            let result = net.run(|h| h.id()).unwrap();
            assert_eq!(result.metrics.rounds, 0);
            assert_eq!(result.outputs.len(), 4);
            for (id, out) in &result.outputs {
                assert_eq!(id, out);
            }
        }

        #[test]
        fn single_node_network() {
            let net = Network::new(1, Config::ncc0(1));
            let result = net.run(|h| {
                assert!(h.initial_successor().is_none());
                h.idle();
                h.n()
            });
            let result = result.unwrap();
            assert_eq!(result.metrics.rounds, 1);
            assert_eq!(result.outputs[0].1, 1);
        }

        #[test]
        fn undirect_round_finds_unique_head() {
            let net = Network::new(16, Config::ncc0(3));
            let result = net
                .run(|h| {
                    let out = h
                        .initial_successor()
                        .map(|s| (s, Msg::signal(tags::UNDIRECT)))
                        .into_iter()
                        .collect();
                    let inbox = h.step(out);
                    inbox.first().map(|e| e.src)
                })
                .unwrap();
            let heads = result.outputs.iter().filter(|(_, p)| p.is_none()).count();
            assert_eq!(heads, 1);
            // The head is the first node in path order.
            assert!(result.outputs[0].1.is_none());
            // Everyone else's predecessor is the previous node on the path.
            let order = result.gk_order();
            for i in 1..order.len() {
                assert_eq!(result.outputs[i].1, Some(order[i - 1]));
            }
            assert!(result.metrics.is_clean());
        }

        #[test]
        fn ncc1_exposes_sorted_ids() {
            let net = Network::new(8, Config::ncc1(9));
            let result = net
                .run(|h| {
                    let ids = h.all_ids().to_vec();
                    assert!(ids.windows(2).all(|w| w[0] < w[1]));
                    ids.len()
                })
                .unwrap();
            assert!(result.outputs.iter().all(|(_, l)| *l == 8));
        }

        #[test]
        fn node_panic_is_reported() {
            let net = Network::new(3, Config::ncc0(1));
            let err = net
                .run(|h| {
                    if h.initial_successor().is_none() {
                        panic!("intentional test panic");
                    }
                    h.idle();
                })
                .unwrap_err();
            match err {
                SimError::NodePanic { message, .. } => {
                    assert!(message.contains("intentional"))
                }
                other => panic!("expected NodePanic, got {other}"),
            }
        }

        #[test]
        fn strict_unknown_addressee_is_fatal() {
            let net = Network::new(4, Config::ncc0(1));
            let bogus: NodeId = net.ids_in_path_order()[0];
            // Node 3 (tail) does not know the head's ID; sending to it is a
            // KT0 violation.
            let tail = *net.ids_in_path_order().last().unwrap();
            let err = net
                .run(move |h| {
                    let out = if h.id() == tail && bogus != tail {
                        vec![(bogus, Msg::signal(tags::GENERIC))]
                    } else {
                        vec![]
                    };
                    h.step(out);
                })
                .unwrap_err();
            assert!(matches!(err, SimError::Violation(_)), "got {err}");
        }

        #[test]
        fn record_policy_counts_but_continues() {
            let mut config = Config::ncc0(1);
            config.capacity_policy = crate::CapacityPolicy::Record;
            let net = Network::new(4, config);
            let head = net.ids_in_path_order()[0];
            let tail = *net.ids_in_path_order().last().unwrap();
            let result = net
                .run(move |h| {
                    let out = if h.id() == tail {
                        vec![(head, Msg::signal(tags::GENERIC))]
                    } else {
                        vec![]
                    };
                    h.step(out).len()
                })
                .unwrap();
            assert_eq!(result.metrics.violations.unknown_addressee, 1);
            // Lenient policy still delivers when physically possible.
            assert_eq!(*result.output_of(head).unwrap(), 1);
        }

        #[test]
        fn round_limit_aborts() {
            let mut config = Config::ncc0(1);
            config.max_rounds = 5;
            let net = Network::new(2, config);
            let err = net
                .run(|h| {
                    for _ in 0..100 {
                        h.idle();
                    }
                })
                .unwrap_err();
            assert!(matches!(err, SimError::RoundLimitExceeded { .. }));
        }

        #[test]
        fn queue_policy_paces_fan_in() {
            // Everyone sends to the head in the same round; with n=64 and
            // cap well below 63 the queue policy must spread delivery over
            // rounds.
            let mut config = Config::ncc0(1);
            config.capacity_policy = crate::CapacityPolicy::Queue;
            config.track_knowledge = false; // everyone addresses the head
            let net = Network::new(64, config.clone());
            let cap = net.capacity();
            assert!(cap < 63, "test requires cap < n-1, got {cap}");
            let head = net.ids_in_path_order()[0];
            let wait = (63 / cap) as u64 + 2;
            let result = net
                .run(move |h| {
                    let out = if h.id() == head {
                        vec![]
                    } else {
                        vec![(head, Msg::signal(tags::GENERIC))]
                    };
                    let mut got = h.step(out).len();
                    for _ in 0..wait {
                        got += h.idle().len();
                    }
                    got
                })
                .unwrap();
            assert_eq!(*result.output_of(head).unwrap(), 63);
            assert_eq!(result.metrics.max_received_per_round, cap);
            assert!(result.metrics.max_queue_len > 0);
            assert_eq!(result.metrics.undelivered, 0);
        }

        #[test]
        fn deterministic_replay() {
            let run = || {
                let net = Network::new(32, Config::ncc0(42));
                net.run(|h| {
                    // Las Vegas-style random messaging to the successor.
                    let r: u64 = rand::Rng::gen_range(h.rng(), 0..100);
                    let out = h
                        .initial_successor()
                        .map(|s| (s, Msg::word(tags::GENERIC, r)))
                        .into_iter()
                        .collect();
                    let inbox = h.step(out);
                    inbox.first().map(|e| e.word()).unwrap_or(0)
                })
                .unwrap()
            };
            let a = run();
            let b = run();
            assert_eq!(
                a.outputs.iter().map(|(i, o)| (*i, *o)).collect::<Vec<_>>(),
                b.outputs.iter().map(|(i, o)| (*i, *o)).collect::<Vec<_>>()
            );
            assert_eq!(a.metrics.messages, b.metrics.messages);
        }
    }
}
