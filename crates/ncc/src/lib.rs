//! Simulator for the **node-capacitated clique** (NCC) model of distributed
//! computing, as defined in *Distributed Graph Realizations* (Augustine,
//! Choudhary, Cohen, Peleg, Sivasubramaniam, Sourav — IPDPS 2020) and
//! originally introduced by Augustine et al. (SPAA 2019).
//!
//! # The model
//!
//! The network consists of `n` nodes with unique IDs drawn from a space much
//! larger than `n`. Computation proceeds in **synchronous rounds**. In every
//! round each node may send at most `cap = Θ(log n)` messages of `O(log n)`
//! bits each, and receive at most `cap` messages. A node `u` can address a
//! message to `v` only if `u` *knows* `v`'s ID (think of the ID as `v`'s IP
//! address).
//!
//! Two variants differ in the initial knowledge:
//!
//! * **NCC1** (the SPAA'19 model, KT1-like): every node knows every other
//!   node's ID from the start.
//! * **NCC0** (KT0-like): each node initially knows only the IDs of its
//!   out-neighbors in a directed *initial knowledge graph* `G_k`; following
//!   the paper, `G_k` is a directed path over the `n` nodes in an arbitrary
//!   (here: seeded random) order.
//!
//! # The simulator
//!
//! Each simulated node runs its protocol as ordinary straight-line Rust on a
//! dedicated OS thread; a coordinator thread implements the synchronous round
//! barrier, routes messages, enforces the capacity and knowledge constraints,
//! and gathers metrics. Protocols are written in *direct style*:
//!
//! ```
//! use dgr_ncc::{Config, Msg, Network, tags};
//!
//! // Every node learns its predecessor on the knowledge path (the paper's
//! // "undirecting" step): each node sends its ID to its successor.
//! let result = Network::new(8, Config::ncc0(42)).run(|h| {
//!     let out = h
//!         .initial_successor()
//!         .map(|succ| (succ, Msg::addr(tags::GENERIC, h.id())))
//!         .into_iter()
//!         .collect();
//!     let inbox = h.step(out);
//!     inbox.first().map(|env| env.src) // my predecessor, if any
//! }).unwrap();
//! assert_eq!(result.metrics.rounds, 1);
//! // Exactly one node (the head of the path) has no predecessor.
//! assert_eq!(result.outputs.iter().filter(|(_, p)| p.is_none()).count(), 1);
//! ```
//!
//! All runs are deterministic given [`Config::seed`]: node-local randomness is
//! derived from the seed and the node ID, and message routing is performed in
//! a canonical order.

mod config;
mod engine;
mod error;
mod handle;
mod knowledge;
mod message;
mod metrics;
mod network;

pub use config::{CapacityPolicy, Config, IdAssignment, Model};
pub use error::{SimError, Violation, ViolationKind};
pub use handle::NodeHandle;
pub use message::{tags, Envelope, Msg, NodeId};
pub use metrics::{RunMetrics, ViolationCounts};
pub use network::{Network, RunResult};

/// Computes the per-round send/receive capacity for an `n`-node network:
/// `max(min_capacity, ceil(factor * log2(n)))` messages per node per round.
///
/// This is the `O(log n)` bound of the NCC model made concrete; the constants
/// are part of [`Config`].
pub fn capacity_for(n: usize, factor: f64, min_capacity: usize) -> usize {
    let lg = (n.max(2) as f64).log2();
    let cap = (factor * lg).ceil() as usize;
    cap.max(min_capacity).max(1)
}

#[cfg(test)]
mod capacity_tests {
    use super::capacity_for;

    #[test]
    fn grows_logarithmically() {
        assert_eq!(capacity_for(2, 1.0, 1), 1);
        assert_eq!(capacity_for(1024, 1.0, 1), 10);
        assert_eq!(capacity_for(1 << 20, 1.0, 1), 20);
    }

    #[test]
    fn respects_minimum() {
        assert_eq!(capacity_for(2, 1.0, 4), 4);
        assert_eq!(capacity_for(1024, 2.0, 4), 20);
    }

    #[test]
    fn never_zero() {
        assert_eq!(capacity_for(1, 0.0, 0), 1);
    }
}
