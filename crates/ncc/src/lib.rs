//! Simulator for the **node-capacitated clique** (NCC) model of distributed
//! computing, as defined in *Distributed Graph Realizations* (Augustine,
//! Choudhary, Cohen, Peleg, Sivasubramaniam, Sourav — IPDPS 2020) and
//! originally introduced by Augustine et al. (SPAA 2019).
//!
//! # The model
//!
//! The network consists of `n` nodes with unique IDs drawn from a space much
//! larger than `n`. Computation proceeds in **synchronous rounds**. In every
//! round each node may send at most `cap = Θ(log n)` messages of `O(log n)`
//! bits each, and receive at most `cap` messages. A node `u` can address a
//! message to `v` only if `u` *knows* `v`'s ID (think of the ID as `v`'s IP
//! address).
//!
//! Two variants differ in the initial knowledge:
//!
//! * **NCC1** (the SPAA'19 model, KT1-like): every node knows every other
//!   node's ID from the start.
//! * **NCC0** (KT0-like): each node initially knows only the IDs of its
//!   out-neighbors in a directed *initial knowledge graph* `G_k`; following
//!   the paper, `G_k` is a directed path over the `n` nodes in an arbitrary
//!   (here: seeded random) order.
//!
//! # Two engines, one semantics
//!
//! The round structure of NCC — all outboxes, then validate/route, then all
//! inboxes — is embarrassingly parallel and allocation-free by design, and
//! the simulator exploits that with a **batched step-function executor**
//! ([`Network::run_protocol`]): node protocols are state machines
//! implementing [`NodeProtocol`] (`fn step(&mut self, ctx: &mut RoundCtx)
//! -> Status`), stepped in bulk each round by a rayon worker pool. Routing
//! is a stable counting sort of fixed-size [`WireMsg`] envelopes into a
//! reusable flat arena, bucketed by dense destination index — no hashing,
//! and at steady state no heap allocation anywhere in the round loop. This
//! engine simulates **millions** of nodes.
//!
//! The original **thread-per-node oracle** survives behind the `threaded`
//! feature (on by default): [`Network::run`] executes direct-style blocking
//! closures over a [`NodeHandle`], one OS thread per node. It tops out near
//! ten thousand nodes, but it is obviously correct, it still runs the whole
//! direct-style algorithm stack, and [`Network::run_protocol_threaded`]
//! runs *step-function* protocols on it so differential tests can hold the
//! two engines to identical transcripts and metrics (see
//! `crates/ncc/tests/differential.rs` and `ARCHITECTURE.md`).
//!
//! # A step-function protocol
//!
//! ```
//! use dgr_ncc::{tags, Config, Network, NodeProtocol, RoundCtx, Status, WireMsg};
//!
//! // Every node learns its predecessor on the knowledge path (the paper's
//! // "undirecting" step): each node sends its ID to its successor.
//! struct Undirect {
//!     sent: bool,
//! }
//!
//! impl NodeProtocol for Undirect {
//!     type Output = Option<u64>; // my predecessor, if any
//!
//!     fn step(&mut self, ctx: &mut RoundCtx<'_>) -> Status<Self::Output> {
//!         if !self.sent {
//!             if let Some(succ) = ctx.initial_successor() {
//!                 ctx.send(succ, WireMsg::signal(tags::UNDIRECT));
//!             }
//!             self.sent = true;
//!             return Status::Continue;
//!         }
//!         Status::Done(ctx.inbox().first().map(|env| env.src))
//!     }
//! }
//!
//! let net = Network::new(1024, Config::ncc0(42));
//! let result = net.run_protocol(|_seed| Undirect { sent: false }).unwrap();
//! assert_eq!(result.metrics.rounds, 1);
//! // Exactly one node (the head of the path) has no predecessor.
//! assert_eq!(result.outputs.iter().filter(|(_, p)| p.is_none()).count(), 1);
//! ```
//!
//! All runs are deterministic given [`Config::seed`] — independent of the
//! worker-thread count: node-local randomness is derived from the seed and
//! the node ID, and routing follows a canonical (dense source index) order.

mod batch;
mod config;
#[cfg(feature = "threaded")]
mod engine;
mod error;
pub mod event;
#[cfg(feature = "threaded")]
mod handle;
mod knowledge;
mod message;
mod metrics;
mod network;
mod protocol;
mod route;
mod scenario;
mod shard;
mod wire;

pub use config::{CapacityPolicy, Config, EngineKind, IdAssignment, Model};
pub use error::{SimError, Violation, ViolationKind};
pub use event::{
    JsonlSink, MetricsRecorder, NullSink, ProgressSink, Recording, RouteMode, RunEvent, Sink,
};
#[cfg(feature = "threaded")]
pub use handle::NodeHandle;
pub use message::{tags, Envelope, Msg, NodeId};
pub use metrics::{EngineStats, PhaseRounds, RunMetrics, ViolationCounts, ROUND_TRACE_LIMIT};
pub use network::{Network, RunResult};
pub use protocol::{NodeProtocol, NodeSeed, RoundCtx, Status};
pub use scenario::{Scenario, ScenarioEvent};
pub use wire::{WireEnvelope, WireMsg, WIRE_ADDRS, WIRE_WORDS};

/// Computes the per-round send/receive capacity for an `n`-node network:
/// `max(min_capacity, ceil(factor * log2(n)))` messages per node per round.
///
/// This is the `O(log n)` bound of the NCC model made concrete; the constants
/// are part of [`Config`].
pub fn capacity_for(n: usize, factor: f64, min_capacity: usize) -> usize {
    let lg = (n.max(2) as f64).log2();
    let cap = (factor * lg).ceil() as usize;
    cap.max(min_capacity).max(1)
}

#[cfg(test)]
mod capacity_tests {
    use super::capacity_for;

    #[test]
    fn grows_logarithmically() {
        assert_eq!(capacity_for(2, 1.0, 1), 1);
        assert_eq!(capacity_for(1024, 1.0, 1), 10);
        assert_eq!(capacity_for(1 << 20, 1.0, 1), 20);
    }

    #[test]
    fn respects_minimum() {
        assert_eq!(capacity_for(2, 1.0, 4), 4);
        assert_eq!(capacity_for(1024, 2.0, 4), 20);
    }

    #[test]
    fn never_zero() {
        assert_eq!(capacity_for(1, 0.0, 0), 1);
    }
}
