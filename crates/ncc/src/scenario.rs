//! The seeded adversary & churn scenario engine: deterministic fault
//! injection between routing seal and delivery.
//!
//! A [`Scenario`] is a declarative, pre-compiled fault schedule attached
//! to a [`Config`](crate::Config). The batched executor applies it at two
//! seams of its round loop:
//!
//! * **Churn ops** (crash-stop, crash-recovery, mid-run joins) apply at
//!   scheduled rounds around the step phase, reusing the live-slot
//!   machinery: a crash-stop is observationally a protocol that halts
//!   voluntarily (dead backlog, compaction trigger, `DeadRecipient` for
//!   late senders), a crash-pause parks the slot without retiring it, and
//!   a join keeps the slot parked from round 0 until its scheduled round.
//! * **Message faults** (drop, duplicate, reorder) apply to the *sealed*
//!   wire arena — after validation and the counting-sort scatter, before
//!   delivery. This is the one point where every engine layout agrees on
//!   a canonical order: destination buckets ascend by dense index, and
//!   within a bucket envelopes sit in dense **source** order (the
//!   counting sort is stable; the sharded exchange splices cells into
//!   exactly the same order).
//!
//! # Determinism discipline
//!
//! One coordinator RNG per round, seeded from `(scenario seed, round)`,
//! consumed along that canonical walk — never from worker threads, never
//! dependent on shard boundaries. Buckets of retired or parked nodes are
//! empty and consume nothing, so compaction timing cannot skew the
//! stream. The invariant the matrix suite enforces: a fixed `(run seed,
//! scenario seed, schedule)` yields bit-identical raw event streams at
//! every worker × shard combination, and the empty schedule is
//! bit-identical to a scenario-free run (quiet rounds never touch the
//! RNG or the arena).
//!
//! Nodes are addressed by **path position** (the same 0-based positions a
//! participant mask indexes); the schedule is validated against the mask
//! and compiled to dense indices before the run starts.

use crate::config::CapacityPolicy;
use crate::route::RouteBuffers;
use crate::wire::WireEnvelope;
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use std::ops::RangeInclusive;

/// One entry of a fault schedule. Rounds are 0-based and inclusive;
/// message-fault windows may overlap (the strongest active rate wins).
#[derive(Clone, Debug, PartialEq)]
pub enum ScenarioEvent {
    /// Drop each sealed message with probability `rate` during the round
    /// window.
    Drop {
        /// First round (0-based, inclusive) the rate applies to.
        from: u64,
        /// Last round (inclusive) the rate applies to.
        to: u64,
        /// Per-message drop probability in `[0, 1]`.
        rate: f64,
    },
    /// Deliver each surviving sealed message twice with probability
    /// `rate` during the round window (the copy lands adjacent to the
    /// original, so FIFO queues see it in the same round).
    Duplicate {
        /// First round (0-based, inclusive) the rate applies to.
        from: u64,
        /// Last round (inclusive) the rate applies to.
        to: u64,
        /// Per-message duplication probability in `[0, 1]`.
        rate: f64,
    },
    /// Permute each destination's freshly routed bucket — the fresh FIFO
    /// prefix — during the round window. Only meaningful (and only
    /// accepted) under [`CapacityPolicy::Queue`], whose FIFO semantics
    /// the permutation perturbs.
    Reorder {
        /// First round (0-based, inclusive) of the window.
        from: u64,
        /// Last round (inclusive) of the window.
        to: u64,
    },
    /// Crash-stop: the node participates in `round` and is dead
    /// thereafter — the exact observable footprint of a protocol that
    /// voluntarily halts at `round` (minus the output it never produces).
    CrashStop {
        /// Path position of the node.
        node: usize,
        /// Round after whose step phase the node dies.
        round: u64,
    },
    /// Crash-recovery: the node goes down after its step in `crash` and
    /// resumes (state intact, queued backlog intact, messages sent to it
    /// while down lost) at the start of `recover`.
    CrashRecover {
        /// Path position of the node.
        node: usize,
        /// Round after whose step phase the node goes down.
        crash: u64,
        /// Round at whose start the node comes back (`> crash`).
        recover: u64,
    },
    /// Churn join: the node sits out every round before `round`
    /// (unreachable, like a dead node) and starts its protocol there.
    Join {
        /// Path position of the node.
        node: usize,
        /// Round at whose start the node begins participating.
        round: u64,
    },
}

/// A seeded, declarative fault schedule (see the module docs). Build one
/// with the chainable constructors, attach it via
/// [`Config::with_scenario`](crate::Config::with_scenario) (or the
/// facade's `.scenario(…)` knob), and the batched executor compiles and
/// applies it deterministically.
///
/// ```
/// use dgr_ncc::Scenario;
///
/// let s = Scenario::new(7)
///     .drop_messages(0..=u64::MAX, 0.01)
///     .crash_recover(3, 4, 9)
///     .join(5, 6);
/// assert_eq!(s.events().len(), 3);
/// ```
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Scenario {
    seed: u64,
    events: Vec<ScenarioEvent>,
}

impl Scenario {
    /// An empty schedule drawing its fault randomness from `seed`. An
    /// empty schedule is bit-identical to no scenario at all.
    pub fn new(seed: u64) -> Self {
        Scenario {
            seed,
            events: Vec::new(),
        }
    }

    /// The scenario seed (independent of the run seed).
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The schedule entries, in insertion order.
    pub fn events(&self) -> &[ScenarioEvent] {
        &self.events
    }

    /// True when the schedule has no entries.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Adds a [`ScenarioEvent::Drop`] window.
    pub fn drop_messages(mut self, rounds: RangeInclusive<u64>, rate: f64) -> Self {
        self.events.push(ScenarioEvent::Drop {
            from: *rounds.start(),
            to: *rounds.end(),
            rate,
        });
        self
    }

    /// Adds a [`ScenarioEvent::Duplicate`] window.
    pub fn duplicate_messages(mut self, rounds: RangeInclusive<u64>, rate: f64) -> Self {
        self.events.push(ScenarioEvent::Duplicate {
            from: *rounds.start(),
            to: *rounds.end(),
            rate,
        });
        self
    }

    /// Adds a [`ScenarioEvent::Reorder`] window (queue policy only).
    pub fn reorder(mut self, rounds: RangeInclusive<u64>) -> Self {
        self.events.push(ScenarioEvent::Reorder {
            from: *rounds.start(),
            to: *rounds.end(),
        });
        self
    }

    /// Adds a [`ScenarioEvent::CrashStop`].
    pub fn crash(mut self, node: usize, round: u64) -> Self {
        self.events.push(ScenarioEvent::CrashStop { node, round });
        self
    }

    /// Adds a [`ScenarioEvent::CrashRecover`].
    pub fn crash_recover(mut self, node: usize, crash: u64, recover: u64) -> Self {
        self.events.push(ScenarioEvent::CrashRecover {
            node,
            crash,
            recover,
        });
        self
    }

    /// Adds a [`ScenarioEvent::Join`].
    pub fn join(mut self, node: usize, round: u64) -> Self {
        self.events.push(ScenarioEvent::Join { node, round });
        self
    }

    /// Checks the schedule against the network it is about to perturb:
    /// every referenced node must be a participant of the (possibly
    /// masked) run, every rate must be a probability, windows must not be
    /// inverted, recoveries must follow their crashes, and reorder faults
    /// require the queue policy. Returns a message naming the offending
    /// entry — the engines refuse to start on `Err`, and the facade wraps
    /// the same message in its `InvalidRequest`.
    pub fn validate(
        &self,
        n: usize,
        mask: Option<&[bool]>,
        policy: CapacityPolicy,
    ) -> Result<(), String> {
        let participant = |node: usize| node < n && mask.is_none_or(|m| m[node]);
        let check_node = |node: usize, what: &str| {
            if !participant(node) {
                return Err(format!(
                    "{what} references node {node}, which is not a participant \
                     of this {n}-node run{}",
                    if mask.is_some() {
                        " (masked out or out of range)"
                    } else {
                        ""
                    }
                ));
            }
            Ok(())
        };
        let check_window = |from: u64, to: u64, what: &str| {
            if from > to {
                return Err(format!("{what} window {from}..={to} is inverted"));
            }
            Ok(())
        };
        let check_rate = |rate: f64, what: &str| {
            if !(0.0..=1.0).contains(&rate) {
                return Err(format!("{what} rate {rate} is not a probability in [0, 1]"));
            }
            Ok(())
        };
        for event in &self.events {
            match *event {
                ScenarioEvent::Drop { from, to, rate } => {
                    check_window(from, to, "drop")?;
                    check_rate(rate, "drop")?;
                }
                ScenarioEvent::Duplicate { from, to, rate } => {
                    check_window(from, to, "duplicate")?;
                    check_rate(rate, "duplicate")?;
                }
                ScenarioEvent::Reorder { from, to } => {
                    check_window(from, to, "reorder")?;
                    if policy != CapacityPolicy::Queue {
                        return Err(format!(
                            "reorder faults permute FIFO delivery queues and require \
                             CapacityPolicy::Queue (this run uses {policy:?})"
                        ));
                    }
                }
                ScenarioEvent::CrashStop { node, round: _ } => {
                    check_node(node, "crash")?;
                }
                ScenarioEvent::CrashRecover {
                    node,
                    crash,
                    recover,
                } => {
                    check_node(node, "crash_recover")?;
                    if recover <= crash {
                        return Err(format!(
                            "crash_recover of node {node} schedules recovery at round \
                             {recover}, at or before its crash at round {crash}"
                        ));
                    }
                }
                ScenarioEvent::Join { node, round: _ } => {
                    check_node(node, "join")?;
                }
            }
        }
        Ok(())
    }

    /// Compiles the (already validated) schedule against the run's dense
    /// participant space: `dense_of[node]` maps path positions to dense
    /// indices. Produces the sorted churn timelines and the message-fault
    /// windows the runtime walks with O(1) per-round cursors.
    pub(crate) fn compile(&self, dense_of: impl Fn(usize) -> u32) -> CompiledScenario {
        let mut drops = Vec::new();
        let mut dups = Vec::new();
        let mut reorders = Vec::new();
        let mut pre = Vec::new();
        let mut post = Vec::new();
        let mut join_dense = Vec::new();
        for event in &self.events {
            match *event {
                ScenarioEvent::Drop { from, to, rate } => drops.push((from, to, rate)),
                ScenarioEvent::Duplicate { from, to, rate } => dups.push((from, to, rate)),
                ScenarioEvent::Reorder { from, to } => reorders.push((from, to)),
                ScenarioEvent::CrashStop { node, round } => post.push(ChurnOp {
                    round,
                    dense: dense_of(node),
                    node,
                    kind: ChurnKind::CrashStop,
                }),
                ScenarioEvent::CrashRecover {
                    node,
                    crash,
                    recover,
                } => {
                    let dense = dense_of(node);
                    post.push(ChurnOp {
                        round: crash,
                        dense,
                        node,
                        kind: ChurnKind::CrashPause,
                    });
                    pre.push(ChurnOp {
                        round: recover,
                        dense,
                        node,
                        kind: ChurnKind::Recover,
                    });
                }
                ScenarioEvent::Join { node, round } => {
                    let dense = dense_of(node);
                    join_dense.push(dense);
                    pre.push(ChurnOp {
                        round,
                        dense,
                        node,
                        kind: ChurnKind::Join,
                    });
                }
            }
        }
        // Stable by round: ops scheduled for the same round apply in
        // schedule order, part of the canonical stream.
        pre.sort_by_key(|op| op.round);
        post.sort_by_key(|op| op.round);
        join_dense.sort_unstable();
        join_dense.dedup();
        CompiledScenario {
            seed: self.seed,
            drops,
            dups,
            reorders,
            pre,
            post,
            join_dense,
        }
    }
}

/// What a compiled churn op does to its slot.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum ChurnKind {
    /// Retire the slot for good (after its step this round).
    CrashStop,
    /// Park the slot, state intact (after its step this round).
    CrashPause,
    /// Un-park a paused slot (before the step phase this round).
    Recover,
    /// Un-park a joining slot for the first time (before the step phase).
    Join,
}

/// One compiled churn operation, addressed by dense index (with the path
/// position kept for narration).
#[derive(Clone, Copy, Debug)]
pub(crate) struct ChurnOp {
    pub(crate) round: u64,
    pub(crate) dense: u32,
    pub(crate) node: usize,
    pub(crate) kind: ChurnKind,
}

/// Per-round message-fault tally, returned by the fault pass and folded
/// into the round's delivered/word accounting (and the
/// [`FaultInjected`](crate::RunEvent::FaultInjected) narration).
#[derive(Clone, Copy, Debug, Default)]
pub(crate) struct FaultTally {
    pub(crate) dropped: u64,
    pub(crate) duplicated: u64,
    pub(crate) reordered: u64,
    /// Words removed by drops.
    pub(crate) words_removed: u64,
    /// Words added by duplicates.
    pub(crate) words_added: u64,
}

impl FaultTally {
    pub(crate) fn any(&self) -> bool {
        (self.dropped | self.duplicated | self.reordered) != 0
    }
}

/// The compiled, immutable form of a schedule.
#[derive(Clone, Debug)]
pub(crate) struct CompiledScenario {
    seed: u64,
    drops: Vec<(u64, u64, f64)>,
    dups: Vec<(u64, u64, f64)>,
    reorders: Vec<(u64, u64)>,
    /// Pre-step ops (recover, join), sorted by round.
    pre: Vec<ChurnOp>,
    /// Post-step ops (crash-stop, crash-pause), sorted by round.
    post: Vec<ChurnOp>,
    /// Dense indices of joining nodes (start parked), sorted + deduped.
    join_dense: Vec<u32>,
}

/// The scenario runtime one engine run owns: compiled schedule, timeline
/// cursors, the per-round fault RNG and the swap arena the fault pass
/// rebuilds buckets into. Every buffer is round-reused — once the arena
/// reaches the run's high-water message count the fault pass allocates
/// nothing (under shards the one arena rotates through the per-shard
/// arenas via swap and converges the same way).
#[derive(Debug)]
pub(crate) struct ScenarioRt {
    compiled: CompiledScenario,
    rng: SmallRng,
    arena: Vec<WireEnvelope>,
    pre_cursor: usize,
    post_cursor: usize,
    /// Effective rates for the current round (0 outside windows).
    drop_rate: f64,
    dup_rate: f64,
    reorder: bool,
    tally: FaultTally,
}

impl ScenarioRt {
    pub(crate) fn new(compiled: CompiledScenario) -> Self {
        ScenarioRt {
            rng: SmallRng::seed_from_u64(compiled.seed),
            compiled,
            arena: Vec::new(),
            pre_cursor: 0,
            post_cursor: 0,
            drop_rate: 0.0,
            dup_rate: 0.0,
            reorder: false,
            tally: FaultTally::default(),
        }
    }

    /// Slots that must be built parked (joining nodes), by dense index.
    pub(crate) fn starts_parked(&self, dense: u32) -> bool {
        self.compiled.join_dense.binary_search(&dense).is_ok()
    }

    /// Opens round `round`: resolves the active message-fault rates and,
    /// when any fault could fire, derives the round's coordinator RNG
    /// from `(scenario seed, round)`. Quiet rounds touch neither the RNG
    /// nor (later) the arena, keeping them bit-identical to a
    /// scenario-free engine.
    pub(crate) fn begin_round(&mut self, round: u64) {
        let strongest = |windows: &[(u64, u64, f64)]| {
            windows
                .iter()
                .filter(|&&(from, to, _)| (from..=to).contains(&round))
                .fold(0.0f64, |acc, &(_, _, rate)| acc.max(rate))
        };
        self.drop_rate = strongest(&self.compiled.drops);
        self.dup_rate = strongest(&self.compiled.dups);
        self.reorder = self
            .compiled
            .reorders
            .iter()
            .any(|&(from, to)| (from..=to).contains(&round));
        self.tally = FaultTally::default();
        if self.faults_active() {
            self.rng = SmallRng::seed_from_u64(
                self.compiled
                    .seed
                    .wrapping_add(round.wrapping_mul(0x9E37_79B9_7F4A_7C15)),
            );
        }
    }

    /// True when the current round has any message fault scheduled.
    pub(crate) fn faults_active(&self) -> bool {
        self.drop_rate > 0.0 || self.dup_rate > 0.0 || self.reorder
    }

    /// Pre-step churn ops scheduled for `round` (recoveries, joins).
    pub(crate) fn pre_step_ops(&mut self, round: u64) -> &[ChurnOp] {
        Self::take_ops(&self.compiled.pre, &mut self.pre_cursor, round)
    }

    /// Post-step churn ops scheduled for `round` (crashes, pauses).
    pub(crate) fn post_step_ops(&mut self, round: u64) -> &[ChurnOp] {
        Self::take_ops(&self.compiled.post, &mut self.post_cursor, round)
    }

    fn take_ops<'a>(ops: &'a [ChurnOp], cursor: &mut usize, round: u64) -> &'a [ChurnOp] {
        // The engine calls this once per round in ascending order; the
        // first loop only fires if a round was skipped entirely.
        while *cursor < ops.len() && ops[*cursor].round < round {
            *cursor += 1;
        }
        let start = *cursor;
        while *cursor < ops.len() && ops[*cursor].round == round {
            *cursor += 1;
        }
        &ops[start..*cursor]
    }

    /// The fault pass: rebuilds each live destination's sealed bucket —
    /// dropping, duplicating, and (queue policy) permuting envelopes —
    /// into the swap arena, then swaps it into `buffers`. Must be called
    /// from the coordinating thread, walking `live` in ascending dense
    /// order (under shards: per shard in shard order, which is the same
    /// global order); the RNG draws happen along that walk, which is what
    /// makes the stream worker- and shard-invariant. Call once per
    /// buffers object per round, only when [`Self::faults_active`].
    pub(crate) fn perturb(
        &mut self,
        buffers: &mut RouteBuffers,
        live: impl Iterator<Item = usize>,
    ) {
        self.arena.clear();
        // Duplication at most doubles the sealed volume, so 2× the sealed
        // arena is a hard capacity bound — reserving it up front keeps the
        // rebuild realloc-free even on rounds that duplicate unusually
        // many messages (the allocation probe holds the pass to that).
        self.arena.reserve(2 * buffers.arena_len());
        for i in live {
            let new_start = self.arena.len();
            for &env in buffers.bucket(i) {
                if self.drop_rate > 0.0 && self.rng.gen_bool(self.drop_rate) {
                    self.tally.dropped += 1;
                    self.tally.words_removed += env.msg.size_words() as u64;
                    continue;
                }
                self.arena.push(env);
                if self.dup_rate > 0.0 && self.rng.gen_bool(self.dup_rate) {
                    self.tally.duplicated += 1;
                    self.tally.words_added += env.msg.size_words() as u64;
                    self.arena.push(env);
                }
            }
            let new_count = self.arena.len() - new_start;
            if self.reorder && new_count > 1 {
                self.arena[new_start..].shuffle(&mut self.rng);
                self.tally.reordered += 1;
            }
            buffers.set_span(i, new_start as u32, new_count as u32);
        }
        buffers.install_arena(&mut self.arena);
    }

    /// The round's accumulated fault tally (reset by
    /// [`Self::begin_round`]).
    pub(crate) fn tally(&self) -> FaultTally {
        self.tally
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_collects_events_in_order() {
        let s = Scenario::new(1)
            .drop_messages(2..=5, 0.5)
            .crash(3, 7)
            .join(1, 4);
        assert_eq!(s.seed(), 1);
        assert_eq!(s.events().len(), 3);
        assert!(!s.is_empty());
        assert!(Scenario::new(9).is_empty());
    }

    #[test]
    fn validate_rejects_non_participants() {
        let s = Scenario::new(0).crash(10, 1);
        assert!(s.validate(10, None, CapacityPolicy::Strict).is_err());
        let s = Scenario::new(0).join(3, 1);
        let mask = vec![true, true, true, false, true];
        let err = s
            .validate(5, Some(&mask), CapacityPolicy::Strict)
            .unwrap_err();
        assert!(err.contains("node 3"), "{err}");
        assert!(s.validate(5, None, CapacityPolicy::Strict).is_ok());
    }

    #[test]
    fn validate_rejects_recovery_before_crash() {
        let s = Scenario::new(0).crash_recover(1, 5, 5);
        let err = s.validate(4, None, CapacityPolicy::Queue).unwrap_err();
        assert!(err.contains("recovery"), "{err}");
        let s = Scenario::new(0).crash_recover(1, 5, 6);
        assert!(s.validate(4, None, CapacityPolicy::Queue).is_ok());
    }

    #[test]
    fn validate_rejects_reorder_without_queueing() {
        let s = Scenario::new(0).reorder(0..=10);
        let err = s.validate(4, None, CapacityPolicy::Record).unwrap_err();
        assert!(err.contains("Record"), "{err}");
        assert!(s.validate(4, None, CapacityPolicy::Queue).is_ok());
    }

    #[test]
    #[allow(clippy::reversed_empty_ranges)] // the empty window is the point
    fn validate_rejects_bad_rates_and_windows() {
        let s = Scenario::new(0).drop_messages(0..=1, 1.5);
        assert!(s.validate(4, None, CapacityPolicy::Queue).is_err());
        let s = Scenario::new(0).duplicate_messages(5..=2, 0.1);
        assert!(s.validate(4, None, CapacityPolicy::Queue).is_err());
    }

    #[test]
    fn compiled_timelines_sort_by_round_and_keep_schedule_order() {
        let s = Scenario::new(0)
            .crash(2, 9)
            .crash_recover(1, 3, 8)
            .join(0, 3);
        let c = s.compile(|node| node as u32);
        assert_eq!(
            c.post
                .iter()
                .map(|op| (op.round, op.node))
                .collect::<Vec<_>>(),
            vec![(3, 1), (9, 2)]
        );
        assert_eq!(
            c.pre
                .iter()
                .map(|op| (op.round, op.node))
                .collect::<Vec<_>>(),
            vec![(3, 0), (8, 1)]
        );
        let rt = ScenarioRt::new(c);
        assert!(rt.starts_parked(0));
        assert!(!rt.starts_parked(1));
    }

    #[test]
    fn runtime_cursors_hand_out_each_round_once() {
        let s = Scenario::new(0).crash(0, 2).crash(1, 2).crash(2, 5);
        let mut rt = ScenarioRt::new(s.compile(|node| node as u32));
        assert!(rt.post_step_ops(0).is_empty());
        let at_2: Vec<usize> = rt.post_step_ops(2).iter().map(|op| op.node).collect();
        assert_eq!(at_2, vec![0, 1]);
        assert!(rt.post_step_ops(3).is_empty());
        assert_eq!(rt.post_step_ops(5).len(), 1);
        assert!(rt.post_step_ops(6).is_empty());
    }

    #[test]
    fn fault_pass_is_a_pure_function_of_seed_and_round() {
        use crate::wire::WireMsg;
        let build = || {
            let mut b = RouteBuffers::new(3);
            for d in [0u32, 1, 1, 2, 2, 2] {
                b.counts[d as usize] += 1;
            }
            let total = b.seal_counts_live(0..3);
            for (k, d) in [0u32, 1, 1, 2, 2, 2].iter().enumerate() {
                b.push(WireEnvelope {
                    src: k as u64 + 1,
                    msg: WireMsg::signal(0),
                    dst: *d as u64 + 1,
                    dst_idx: *d,
                });
            }
            assert_eq!(total, 6);
            b
        };
        let run = || {
            let s = Scenario::new(42)
                .drop_messages(0..=10, 0.5)
                .duplicate_messages(0..=10, 0.5);
            let mut rt = ScenarioRt::new(s.compile(|n| n as u32));
            rt.begin_round(3);
            assert!(rt.faults_active());
            let mut b = build();
            rt.perturb(&mut b, 0..3);
            let survivors: Vec<(u32, Vec<u64>)> = (0..3)
                .map(|i| (b.counts[i], b.bucket(i).iter().map(|e| e.src).collect()))
                .collect();
            (survivors, rt.tally())
        };
        let (a, tally_a) = run();
        let (b, tally_b) = run();
        assert_eq!(a, b, "same seed+round must perturb identically");
        assert_eq!(tally_a.dropped, tally_b.dropped);
        assert_eq!(tally_a.duplicated, tally_b.duplicated);
        assert!(tally_a.any());
        // Buckets stay contiguous and ascending after the rebuild.
        let mut acc = 0u32;
        for (count, _) in &a {
            acc += count;
        }
        assert_eq!(
            acc as u64,
            6 - tally_a.dropped + tally_a.duplicated,
            "tally must account for every envelope"
        );
    }

    #[test]
    fn quiet_rounds_leave_buckets_untouched() {
        let s = Scenario::new(42).drop_messages(5..=6, 1.0);
        let mut rt = ScenarioRt::new(s.compile(|n| n as u32));
        rt.begin_round(3);
        assert!(!rt.faults_active());
        rt.begin_round(5);
        assert!(rt.faults_active());
        assert_eq!(rt.drop_rate, 1.0);
    }

    #[test]
    fn overlapping_windows_take_the_strongest_rate() {
        let s = Scenario::new(0)
            .drop_messages(0..=10, 0.1)
            .drop_messages(5..=6, 0.9);
        let mut rt = ScenarioRt::new(s.compile(|n| n as u32));
        rt.begin_round(5);
        assert_eq!(rt.drop_rate, 0.9);
        rt.begin_round(7);
        assert_eq!(rt.drop_rate, 0.1);
    }
}
