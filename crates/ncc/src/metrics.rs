//! Round/message metrics gathered by the engine.
//!
//! The theorems in the paper are statements about *rounds* (and implicitly
//! about message budgets), so the metrics are the primary experimental
//! output of every run — the simulator is the measurement instrument.

use crate::error::{SimError, Violation, ViolationKind};

/// Maximum number of concrete violation records kept for diagnostics.
pub(crate) const VIOLATION_SAMPLE_LIMIT: usize = 16;

/// Maximum rounds recorded in [`RunMetrics::messages_per_round`]. The
/// per-round trace is a diagnostic; capping it keeps the engines' round
/// loops free of unbounded `Vec` growth (the batched executor pre-reserves
/// exactly this capacity, so recording a round never allocates).
pub const ROUND_TRACE_LIMIT: usize = 4096;

/// Counters for the different violation kinds (meaningful under
/// [`CapacityPolicy::Record`](crate::CapacityPolicy::Record), where runs
/// continue past violations).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ViolationCounts {
    /// Send-capacity overshoots.
    pub send_capacity: u64,
    /// Receive-capacity overshoots.
    pub receive_capacity: u64,
    /// Oversized messages.
    pub message_too_large: u64,
    /// KT0 addressing violations.
    pub unknown_addressee: u64,
    /// KT0 carried-address violations.
    pub unknown_carried: u64,
    /// Sends to nonexistent or terminated nodes.
    pub bad_recipient: u64,
}

impl ViolationCounts {
    /// Total number of recorded violations.
    pub fn total(&self) -> u64 {
        self.send_capacity
            + self.receive_capacity
            + self.message_too_large
            + self.unknown_addressee
            + self.unknown_carried
            + self.bad_recipient
    }
}

/// One entry of the per-phase round breakdown: a protocol-declared macro
/// phase and the rounds spent in it. Derived from the event stream's
/// [`PhaseChange`](crate::RunEvent::PhaseChange) events by the
/// [`MetricsRecorder`](crate::MetricsRecorder) fold; when the protocol
/// marks its first phase at round 0 the entries sum to the total round
/// count (asserted at scale for `Ncc0Exact` in `tests/scale.rs`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PhaseRounds {
    /// The phase label the protocol declared.
    pub phase: &'static str,
    /// Rounds spent in this phase.
    pub rounds: u64,
}

/// Aggregate metrics of a completed run.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RunMetrics {
    /// Number of synchronous rounds executed.
    pub rounds: u64,
    /// Total messages delivered over the whole run.
    pub messages: u64,
    /// Total message volume in machine words (tag + words + addrs).
    pub words: u64,
    /// Maximum messages sent by any single node in any single round.
    pub max_sent_per_round: usize,
    /// Maximum messages delivered to any single node in any single round.
    pub max_received_per_round: usize,
    /// Maximum length any receive queue reached (only non-zero under the
    /// [`Queue`](crate::CapacityPolicy::Queue) policy).
    pub max_queue_len: usize,
    /// Messages still undelivered when the run ended (queued for terminated
    /// nodes; indicates a protocol that stopped listening too early).
    pub undelivered: u64,
    /// The per-round capacity that was enforced.
    pub capacity: usize,
    /// Largest knowledge set any node accumulated (0 when tracking is off).
    /// This is the information-theoretic quantity behind the paper's lower
    /// bounds: realizing a heavy node forces it to learn many IDs.
    pub max_knowledge: usize,
    /// Violation counters (all zero on a clean strict run).
    pub violations: ViolationCounts,
    /// Sample of concrete violations (first few, for diagnostics).
    pub violation_samples: Vec<Violation>,
    /// Messages delivered per round (index = round). Enables congestion
    /// profiles over time; truncated after [`ROUND_TRACE_LIMIT`] rounds.
    pub messages_per_round: Vec<u64>,
    /// Per-phase round breakdown for protocols that mark their phases
    /// (the composed Algorithm 6). Empty when the protocol never marks.
    /// Engine-invariant: both engines derive it from the same event
    /// stream, so differential comparisons include it.
    pub phase_rounds: Vec<PhaseRounds>,
}

/// Executor-internal statistics of a completed run. Unlike [`RunMetrics`]
/// these are **not** part of the model semantics — the threaded oracle
/// reports all-zero stats — so they live outside the metrics the
/// differential tests compare. They exist to make the batched executor's
/// adaptive machinery (live-slot compaction, dense-vs-sparse round
/// classification, the parallel receive/learn sweeps, the dense masked
/// remap) observable and testable.
///
/// The route/sweep *round counters* and `dense_index_space` are
/// deterministic given the configuration; the `*_nanos` phase timings and
/// the sweep-path counters depend on wall clock and worker count and must
/// never be compared across runs — they exist for `engine_bench`'s
/// serial-fraction breakdown.
#[derive(Clone, Debug, Default)]
pub struct EngineStats {
    /// Number of live-slot compactions the step phase performed.
    pub compactions: u64,
    /// Live-slot count recorded at each compaction, in order. Strictly
    /// decreasing by construction (a compaction fires only once the live
    /// count has at least halved since the previous one).
    pub compaction_live: Vec<usize>,
    /// Rounds classified sparse (routed inline regardless of worker
    /// count). The classification depends only on the previous round's
    /// delivered volume, so it is identical for every worker count.
    pub inline_route_rounds: u64,
    /// Rounds classified dense (fanned out over the worker pool when one
    /// exists; still executed inline under a single worker).
    pub parallel_route_rounds: u64,
    /// Size of the dense per-node index space the run allocated its
    /// engine arrays (routing counts, queue spans, knowledge regions,
    /// aliveness) for: the participant count `k` — equal to `n` on
    /// unmasked runs, the sub-network size on masked runs. The dense
    /// masked remap's memory claim is asserted through this.
    pub dense_index_space: usize,
    /// Final knowledge-arena length in IDs (0 when tracking is off).
    /// Scales with `dense_index_space`, not network size.
    pub knowledge_arena: usize,
    /// Rounds whose receive/learn sweeps ran on the parallel path (a
    /// scheduling decision — transcripts are identical either way).
    pub parallel_sweep_rounds: u64,
    /// Rounds whose receive/learn sweeps ran inline.
    pub inline_sweep_rounds: u64,
    /// Wall-clock nanoseconds spent in the step phase across the run.
    pub step_nanos: u64,
    /// Wall-clock nanoseconds spent validating + routing.
    pub route_nanos: u64,
    /// Wall-clock nanoseconds spent in queue delivery / capacity checks.
    pub deliver_nanos: u64,
    /// Wall-clock nanoseconds spent in the learn sweep + delivery fold.
    pub learn_nanos: u64,
    /// Ownership shards the run executed with (`1` = the single-arena
    /// layout). Deterministic given the configuration.
    pub shards: usize,
    /// Dense-index span width each shard owned at run start — the
    /// ownership map of the sharded layout (empty on unsharded runs).
    /// Deterministic given the configuration.
    pub shard_windows: Vec<usize>,
    /// Envelopes that crossed a shard boundary through the exchange
    /// phase over the whole run. A pure function of the transcript and
    /// the shard count (0 on unsharded runs).
    pub cross_shard_messages: u64,
    /// Wall-clock nanoseconds spent in the boundary-exchange phase
    /// (incoming-cell counting, the per-shard seal, and the canonical
    /// splice). 0 on unsharded runs.
    pub exchange_nanos: u64,
    /// Sealed messages discarded by the scenario engine's drop faults.
    /// Deterministic given `(seed, scenario)` — folded from the
    /// [`FaultInjected`](crate::RunEvent::FaultInjected) narration, like
    /// every other scenario counter below (all 0 on scenario-free runs).
    pub faults_dropped: u64,
    /// Extra copies injected by the scenario engine's duplicate faults.
    pub faults_duplicated: u64,
    /// Destination buckets whose fresh FIFO prefix the scenario engine
    /// permuted (queue policy only).
    pub faults_reordered: u64,
    /// Nodes crash-stopped by the scenario schedule.
    pub crashes: u64,
    /// Nodes brought back by the scenario schedule after a scheduled
    /// crash (crash-recovery, not crash-stop).
    pub recoveries: u64,
    /// Nodes that joined the run mid-protocol through the scenario
    /// schedule's churn events.
    pub joins: u64,
}

impl RunMetrics {
    /// Closes out one executed round: accumulates the message count and
    /// appends to the (capped) per-round trace. Shared by both engines so
    /// their round accounting stays bit-identical.
    pub(crate) fn record_round(&mut self, messages: u64) {
        self.messages += messages;
        if self.messages_per_round.len() < ROUND_TRACE_LIMIT {
            self.messages_per_round.push(messages);
        }
        self.rounds += 1;
    }

    /// Counts a violation (and samples the first few); fatal when `strict`.
    /// Shared by both engines so their violation accounting is identical.
    pub(crate) fn record_violation(&mut self, strict: bool, v: Violation) -> Result<(), SimError> {
        let counts = &mut self.violations;
        match v.kind {
            ViolationKind::SendCapacity { .. } => counts.send_capacity += 1,
            ViolationKind::ReceiveCapacity { .. } => counts.receive_capacity += 1,
            ViolationKind::MessageTooLarge { .. } => counts.message_too_large += 1,
            ViolationKind::UnknownAddressee { .. } => counts.unknown_addressee += 1,
            ViolationKind::UnknownCarriedAddress { .. } => counts.unknown_carried += 1,
            ViolationKind::NoSuchNode { .. } | ViolationKind::DeadRecipient { .. } => {
                counts.bad_recipient += 1
            }
        }
        if self.violation_samples.len() < VIOLATION_SAMPLE_LIMIT {
            self.violation_samples.push(v.clone());
        }
        if strict {
            return Err(SimError::Violation(v));
        }
        Ok(())
    }

    /// True when the run obeyed every model constraint.
    pub fn is_clean(&self) -> bool {
        self.violations.total() == 0 && self.undelivered == 0
    }

    /// Average messages per round (0 for an empty run).
    pub fn avg_messages_per_round(&self) -> f64 {
        if self.rounds == 0 {
            0.0
        } else {
            self.messages as f64 / self.rounds as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_sum_all_kinds() {
        let v = ViolationCounts {
            send_capacity: 1,
            receive_capacity: 2,
            message_too_large: 3,
            unknown_addressee: 4,
            unknown_carried: 5,
            bad_recipient: 6,
        };
        assert_eq!(v.total(), 21);
    }

    #[test]
    fn clean_run_detection() {
        let mut m = RunMetrics::default();
        assert!(m.is_clean());
        m.undelivered = 1;
        assert!(!m.is_clean());
        m.undelivered = 0;
        m.violations.send_capacity = 1;
        assert!(!m.is_clean());
    }

    #[test]
    fn average_is_safe_on_empty() {
        let m = RunMetrics::default();
        assert_eq!(m.avg_messages_per_round(), 0.0);
        let m = RunMetrics {
            rounds: 4,
            messages: 10,
            ..Default::default()
        };
        assert!((m.avg_messages_per_round() - 2.5).abs() < 1e-12);
    }
}
