//! Simulation configuration: model variant, capacities, policies, seeding.

/// Which executor drives a protocol run.
///
/// Both engines implement the same round semantics and produce
/// bit-identical transcripts for the same protocol (the differential
/// suites hold them to it); they differ only in scale and purpose.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EngineKind {
    /// The batched step-function executor — the production engine,
    /// practical at six- and seven-digit `n`.
    Batched,
    /// The thread-per-node oracle (feature `threaded`): obviously-correct
    /// reference engine, used as the differential twin. Tops out near
    /// `n ≈ 10⁴`.
    Threaded,
}

/// Which NCC variant the network starts in.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Model {
    /// KT0-like: each node initially knows only its out-neighbor on a
    /// directed path `G_k` over the nodes (seeded random order).
    Ncc0,
    /// KT1-like (the SPAA'19 NCC): all node IDs are common knowledge.
    Ncc1,
}

/// What the engine does when a node exceeds its per-round send or receive
/// capacity.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CapacityPolicy {
    /// Any violation aborts the run with
    /// [`SimError::Violation`](crate::SimError::Violation). Use this in
    /// tests to *prove* an
    /// algorithm is capacity-legal.
    Strict,
    /// Violations are counted in the metrics but messages are still
    /// delivered. Useful for measuring how far an algorithm overshoots.
    Record,
    /// Receive-side congestion is modeled honestly: each node owns a FIFO
    /// delivery queue from which at most `cap` messages are handed over per
    /// round. Send-side violations are still hard errors (a node must pace
    /// itself), but bursty fan-in is absorbed and paid for in rounds.
    Queue,
}

/// How node IDs are assigned.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum IdAssignment {
    /// IDs `1..=n`. Convenient for debugging and for reproducing the paper's
    /// figures, and the paper notes NCC1 may w.l.o.g. use `[1, n]`.
    Sequential,
    /// Distinct IDs sampled from `[1, n^3]` — the honest NCC0 setting where
    /// IDs carry no positional information.
    Random,
}

/// Full configuration of a simulated NCC network.
#[derive(Clone, Debug)]
pub struct Config {
    /// NCC0 or NCC1.
    pub model: Model,
    /// Capacity enforcement policy.
    pub capacity_policy: CapacityPolicy,
    /// Multiplier `c` in `cap = max(min_capacity, ceil(c * log2 n))`.
    pub capacity_factor: f64,
    /// Floor on the per-round capacity (avoids degenerate tiny-`n` caps).
    pub min_capacity: usize,
    /// Maximum data words per message.
    pub max_words: usize,
    /// Maximum addresses per message.
    pub max_addrs: usize,
    /// When true, the engine tracks the set of IDs each node has learned and
    /// flags any send addressed to an unknown ID (KT0 legality checking).
    /// Ignored under [`Model::Ncc1`], where everything is known.
    pub track_knowledge: bool,
    /// ID assignment scheme.
    pub id_assignment: IdAssignment,
    /// Master seed: drives ID assignment, the `G_k` permutation, and each
    /// node's local RNG (derived per node). Identical configs replay
    /// identically.
    pub seed: u64,
    /// Safety valve: abort if the protocol runs longer than this many rounds.
    pub max_rounds: u64,
    /// Worker threads for the batched executor: `0` (default) sizes the
    /// pool to the machine, `1` forces the inline single-thread paths
    /// (useful for allocation probes and debugging). Covers the step
    /// phase, dense-round routing, and the receive/learn sweeps. Results
    /// are identical for every value — parallel passes write disjoint
    /// regions and fold their reductions in a fixed order, and the
    /// dense/sparse round classification is a pure function of the
    /// transcript, so event streams are bit-identical too.
    pub worker_threads: usize,
    /// Ownership shards for the batched executor: the dense participant
    /// space is split into this many contiguous ranges, each owning a
    /// private slot arena, wire/queue buffers and knowledge-tracker arena.
    /// Cross-shard sends move in a deterministic all-to-all exchange
    /// phase, so transcripts, metrics and raw event streams are
    /// bit-identical to the unsharded layout for every shard count. `1`
    /// (the default) keeps today's single-arena layout; values are
    /// clamped to the participant count. Like `worker_threads` this is a
    /// layout knob, ignored by the threaded oracle.
    pub shards: usize,
    /// Optional seeded fault schedule ([`Scenario`](crate::Scenario))
    /// applied by the batched executor between routing seal and delivery:
    /// message drop/duplication/reordering plus crash-stop, crash-recovery
    /// and mid-run joins at scheduled rounds. `None` (the default) is
    /// bit-identical to a scenario-free run, as is `Some` with an empty
    /// schedule. Unsupported by the threaded oracle (rejected up front).
    pub scenario: Option<crate::Scenario>,
}

impl Config {
    /// A strict NCC0 configuration with knowledge tracking on — the default
    /// for tests, since a green run certifies NCC0 legality.
    pub fn ncc0(seed: u64) -> Self {
        Config {
            model: Model::Ncc0,
            capacity_policy: CapacityPolicy::Strict,
            capacity_factor: 2.0,
            min_capacity: 4,
            max_words: 4,
            max_addrs: 2,
            track_knowledge: true,
            id_assignment: IdAssignment::Random,
            seed,
            max_rounds: 10_000_000,
            worker_threads: 0,
            shards: 1,
            scenario: None,
        }
    }

    /// A strict NCC1 configuration.
    pub fn ncc1(seed: u64) -> Self {
        Config {
            model: Model::Ncc1,
            track_knowledge: false,
            ..Config::ncc0(seed)
        }
    }

    /// Switches to the queueing capacity policy (used by the staggered
    /// token-collection primitive and the explicit realizations).
    pub fn with_queueing(mut self) -> Self {
        self.capacity_policy = CapacityPolicy::Queue;
        self
    }

    /// Overrides the capacity multiplier.
    pub fn with_capacity_factor(mut self, factor: f64) -> Self {
        self.capacity_factor = factor;
        self
    }

    /// Uses sequential IDs `1..=n` (handy for figure-exact tests).
    pub fn with_sequential_ids(mut self) -> Self {
        self.id_assignment = IdAssignment::Sequential;
        self
    }

    /// Pins the batched executor's step-phase worker count (`0` = auto).
    pub fn with_worker_threads(mut self, workers: usize) -> Self {
        self.worker_threads = workers;
        self
    }

    /// Splits the batched executor's state into `shards` ownership shards
    /// (`1` = the single-arena layout; clamped to the participant count).
    pub fn with_shards(mut self, shards: usize) -> Self {
        self.shards = shards;
        self
    }

    /// Installs a seeded fault schedule (drops, duplicates, reorders,
    /// crashes, recoveries, joins) for the batched executor to apply.
    pub fn with_scenario(mut self, scenario: crate::Scenario) -> Self {
        self.scenario = Some(scenario);
        self
    }

    /// The concrete per-round send/receive capacity for an `n`-node network
    /// under this configuration.
    pub fn capacity(&self, n: usize) -> usize {
        crate::capacity_for(n, self.capacity_factor, self.min_capacity)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_strict_kt0() {
        let c = Config::ncc0(1);
        assert_eq!(c.model, Model::Ncc0);
        assert_eq!(c.capacity_policy, CapacityPolicy::Strict);
        assert!(c.track_knowledge);
    }

    #[test]
    fn ncc1_disables_knowledge_tracking() {
        let c = Config::ncc1(1);
        assert_eq!(c.model, Model::Ncc1);
        assert!(!c.track_knowledge);
    }

    #[test]
    fn capacity_uses_factor_and_floor() {
        let c = Config::ncc0(0).with_capacity_factor(1.0);
        assert_eq!(c.capacity(2), 4); // floor
        assert_eq!(c.capacity(1 << 16), 16);
    }

    #[test]
    fn builders_chain() {
        let c = Config::ncc0(7).with_queueing().with_sequential_ids();
        assert_eq!(c.capacity_policy, CapacityPolicy::Queue);
        assert_eq!(c.id_assignment, IdAssignment::Sequential);
        assert_eq!(c.seed, 7);
    }
}
