//! The step-function protocol model: node protocols as polled state
//! machines.
//!
//! Under the batched engine a node's protocol is not a blocking closure on
//! a dedicated thread but a state machine implementing [`NodeProtocol`]:
//! once per round the executor calls [`NodeProtocol::step`] with a
//! [`RoundCtx`] that exposes the previous round's inbox and collects this
//! round's sends. Returning [`Status::Done`] retires the node.
//!
//! The correspondence with the direct-style API is exact: one
//! `NodeHandle::step(out) -> inbox` call equals one `RoundCtx` whose
//! `inbox()` is the *previous* round's delivery and whose `send`s form
//! `out`. A protocol that returns `Done` on its `k`-th step behaves like a
//! closure that called `step` exactly `k - 1` times and then returned —
//! which is why the same state machine can run on the batched executor or
//! on the threaded oracle and produce identical transcripts (the
//! differential tests rely on this).

use crate::config::Model;
use crate::message::NodeId;
use crate::route::Resolver;
use crate::wire::{WireEnvelope, WireMsg, DEAD_INDEX, NO_INDEX};
use rand::rngs::SmallRng;
use std::sync::Arc;

/// What a protocol reports after one step.
#[derive(Debug)]
pub enum Status<R> {
    /// The node participates in the round it just populated.
    Continue,
    /// The node's protocol is finished; `R` is its output. Sends staged in
    /// the same step are discarded (a finished node does not participate in
    /// the round).
    Done(R),
}

/// A node's protocol as a polled state machine.
pub trait NodeProtocol: Send {
    /// The per-node result of a completed run.
    type Output: Send;

    /// Executes one synchronous round: read `ctx.inbox()` (the previous
    /// round's delivery; empty on the first call), stage sends with
    /// `ctx.send`, and return [`Status::Continue`] — or return
    /// [`Status::Done`] to retire from the network.
    fn step(&mut self, ctx: &mut RoundCtx<'_>) -> Status<Self::Output>;
}

/// The initial knowledge handed to a protocol factory — exactly what the
/// NCC model grants a node at time zero, nothing more.
pub struct NodeSeed<'a> {
    /// This node's ID (its "address").
    pub id: NodeId,
    /// Network size (common knowledge in the model).
    pub n: usize,
    /// Number of *participating* nodes — the length of the knowledge path
    /// `G_k` this run actually links. Equals `n` on unmasked runs; on a
    /// masked run ([`Network::run_protocol_masked`](crate::Network)) it is
    /// the sub-network size, which the model grants as common knowledge
    /// exactly like `n` (the paper's prefix recursion broadcasts it before
    /// recursing).
    pub participants: usize,
    /// Per-round send/receive capacity (`Θ(log n)`, common knowledge).
    pub capacity: usize,
    /// The model variant.
    pub model: Model,
    /// NCC0 initial knowledge: successor on the knowledge path `G_k`.
    pub initial_successor: Option<NodeId>,
    pub(crate) all_ids: Option<&'a Arc<Vec<NodeId>>>,
}

impl NodeSeed<'_> {
    /// NCC1 initial knowledge: every node's ID, sorted. Protocols that
    /// need it past construction should clone the [`Arc`].
    ///
    /// # Panics
    ///
    /// Panics under NCC0 — a model violation in the protocol's code.
    pub fn all_ids(&self) -> &Arc<Vec<NodeId>> {
        self.all_ids.expect("all_ids() requires the NCC1 model")
    }
}

/// A node's view of one synchronous round: the API surface a
/// [`NodeProtocol::step`] call sees.
pub struct RoundCtx<'a> {
    pub(crate) id: NodeId,
    pub(crate) n: usize,
    pub(crate) participants: usize,
    pub(crate) capacity: usize,
    pub(crate) model: Model,
    pub(crate) initial_successor: Option<NodeId>,
    pub(crate) all_ids: Option<&'a [NodeId]>,
    pub(crate) round: u64,
    pub(crate) rng: &'a mut SmallRng,
    pub(crate) inbox: &'a [WireEnvelope],
    pub(crate) out: &'a mut Vec<WireEnvelope>,
    pub(crate) resolver: &'a Resolver,
    /// Dense remap for masked batched runs: `dense_of[full]` is the 0..k
    /// slot index of a participant, [`DEAD_INDEX`] for a masked-out node.
    /// `None` means the resolver's index *is* the dense index (unmasked
    /// batched runs, and the threaded oracle which keeps full-width
    /// per-node arrays).
    pub(crate) dense_of: Option<&'a [u32]>,
    pub(crate) phase_mark: &'a mut Option<&'static str>,
    pub(crate) stage_mark: &'a mut Option<&'static str>,
}

impl RoundCtx<'_> {
    /// This node's ID.
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// Network size.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of participating nodes — the knowledge-path length. Equals
    /// [`RoundCtx::n`] except on masked sub-network runs (common knowledge,
    /// like `n`; see [`NodeSeed::participants`]).
    pub fn participants(&self) -> usize {
        self.participants
    }

    /// Per-round send/receive capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// The model variant this network runs under.
    pub fn model(&self) -> Model {
        self.model
    }

    /// Rounds completed so far by this node (0 on the first step).
    pub fn round(&self) -> u64 {
        self.round
    }

    /// NCC0 initial knowledge: successor on the knowledge path, if any.
    pub fn initial_successor(&self) -> Option<NodeId> {
        self.initial_successor
    }

    /// NCC1 initial knowledge: all IDs, sorted.
    ///
    /// # Panics
    ///
    /// Panics under NCC0.
    pub fn all_ids(&self) -> &[NodeId] {
        self.all_ids.expect("all_ids() requires the NCC1 model")
    }

    /// This node's local randomness (deterministically seeded from the
    /// master seed and the node ID — the same stream on either engine).
    pub fn rng(&mut self) -> &mut SmallRng {
        self.rng
    }

    /// The previous round's inbox (empty on the first step).
    pub fn inbox(&self) -> &[WireEnvelope] {
        self.inbox
    }

    /// Declares that this node entered the given macro phase (Algorithm
    /// 6's data-dependent phases). The engine collects marks after the
    /// step phase in dense node-index order and emits a
    /// [`PhaseChange`](crate::RunEvent::PhaseChange) event on every
    /// *change* (repeats — every node of a lockstep protocol marking the
    /// same phase in the same round — are deduplicated). Marks staged in
    /// a step that returns [`Status::Done`] are discarded, and at most
    /// one mark per node per round is kept (the last wins). Purely
    /// observational: marking can never affect the transcript.
    pub fn mark_phase(&mut self, phase: &'static str) {
        *self.phase_mark = Some(phase);
    }

    /// Declares a finer-grained internal stage transition; emitted as a
    /// [`StageTransition`](crate::RunEvent::StageTransition) event under
    /// the same collection and deduplication rules as
    /// [`RoundCtx::mark_phase`].
    pub fn mark_stage(&mut self, stage: &'static str) {
        *self.stage_mark = Some(stage);
    }

    /// Stages a message for this round. The destination ID is resolved to
    /// a dense index here, at send time, so the routing pass itself does no
    /// ID lookups at all; an unknown ID is carried through and surfaces as
    /// a [`NoSuchNode`](crate::ViolationKind::NoSuchNode) violation.
    pub fn send(&mut self, dst: NodeId, msg: WireMsg) {
        let full_idx = self.resolver.index_of(dst).unwrap_or(NO_INDEX);
        let dst_idx = match self.dense_of {
            // Masked run: project the resolver's full-network index into
            // the dense 0..k participant space (DEAD_INDEX marks a real
            // node that is not in this run).
            Some(map) if full_idx != NO_INDEX => map[full_idx as usize],
            _ => full_idx,
        };
        debug_assert!(dst_idx != DEAD_INDEX || self.dense_of.is_some());
        self.out.push(WireEnvelope {
            src: self.id,
            msg,
            dst,
            dst_idx,
        });
    }
}
