//! The batched step-function executor.
//!
//! One round has two phases. The **step phase** polls every live node's
//! [`NodeProtocol::step`] across a rayon worker pool — node state is
//! sharded into disjoint `&mut` chunks, each node writes into its own
//! reusable outbox, and the previous round's inboxes are disjoint spans of
//! a shared read-only arena, so the phase is data-race-free by
//! construction and deterministic regardless of worker count. The
//! **routing phase** is a stable counting sort by destination index
//! (validate + count, prefix-sum, scatter) with capacity checks per
//! bucket. Rounds are classified **dense** or **sparse** from the
//! previous round's delivered message volume — a pure function of the
//! transcript, identical for every worker count: sparse rounds run the
//! allocation-free inline path on the coordinating thread; dense rounds
//! (when a worker pool exists) fan the validate-and-count and scatter
//! passes out with per-worker count arrays — worker `w`'s region of every
//! destination bucket precedes worker `w+1`'s, so bucket contents stay in
//! dense source order and transcripts are bit-identical for every worker
//! count and either path. All routing state lives in reusable buffers
//! ([`RouteBuffers`](crate::route::RouteBuffers) and its per-worker
//! scratch rows); at steady state a round allocates nothing on the
//! single-worker path, and nothing per-message on the parallel path.
//!
//! **Parallel receive/learn sweeps.** The post-routing half of the round
//! — queue delivery (or capacity checks) and the KT0 learn walk — fans
//! out over the same worker pool on dense or wide rounds, using the same
//! per-worker/deterministic-fold discipline as the routing passes: queue
//! delivery is a two-phase measure-then-copy whose inbox/backlog arenas
//! reproduce the sequential slot-order prefix layout exactly; capacity
//! violations journal per worker and replay in worker order (= dense slot
//! order), so a strict abort picks the same canonical first violation;
//! learns apply in place inside each node's disjoint knowledge region,
//! journaling only region re-homes for a sequential replay; and
//! `max_received`/`max_queue_len`/`undelivered` are max/sum reductions.
//! Transcripts, metrics and event streams are bit-identical to the
//! sequential sweeps for every worker count.
//!
//! **Dense masked remap.** Masked runs remap the k participants to a
//! dense `0..k` index space at run start: every index-addressed engine
//! structure (routing counts, queue spans, knowledge regions, aliveness,
//! worker scratch) is sized to k, not n, so deep masked prefix recursions
//! pay for the sub-network they run. The resolver still answers in
//! full-network indices; [`RoundCtx::send`](crate::RoundCtx) projects
//! through the remap table at send time, marking masked-out recipients
//! with a dedicated sentinel so the violation taxonomy (`NoSuchNode` vs
//! `DeadRecipient`) is unchanged.
//!
//! **Live-slot compaction.** A node that returns [`Status::Done`] retires;
//! its output moves to a side list and its slot stays behind as a dead
//! entry. Once the live count has halved relative to the slot window, the
//! window is compacted: dead slots are dropped by a stable in-place
//! `retain`, so the surviving slots keep their dense-index order and every
//! per-round loop (step, validate, scatter, delivery) walks only live
//! nodes. Each slot carries its dense index — the index *remap* — so all
//! index-keyed engine state (destination counts, inbox spans, the
//! knowledge tracker, queue backlogs) is untouched by the reorder and
//! transcripts are unchanged. The halving rule bounds total compaction
//! work by `O(n)` per run, and a long-tailed run's steady cost is
//! proportional to its *live* population, not its initial one.
//!
//! Semantics are bit-for-bit those of the threaded oracle engine
//! (`crates/ncc/src/engine.rs`): same canonical routing order, same
//! validation order, same violation accounting, same metrics. The
//! differential tests in `crates/ncc/tests/differential.rs` hold the two
//! engines to that.
//!
//! **Events.** Every run narrates itself as a typed
//! [`RunEvent`](crate::event) stream — round completions (with the
//! dense/sparse route classification), protocol phase/stage marks, compactions, the
//! final `Done` — through a shared [`Emitter`]. The executor keeps no
//! separate statistics: [`EngineStats`](crate::EngineStats) and the
//! per-phase round breakdown are derived by folding this stream through
//! the emitter's always-on recorder, so the stats are a pure function of
//! the narrated events (and the oracle's stream is held semantically
//! identical).

use crate::config::{CapacityPolicy, Config, Model};
use crate::error::{panic_message, SimError, Violation, ViolationKind};
use crate::event::{Emitter, RouteMode, RunEvent, Sink};
use crate::knowledge::KnowledgeTracker;
use crate::message::NodeId;
use crate::metrics::RunMetrics;
use crate::network::{Network, RunResult};
use crate::protocol::{NodeProtocol, NodeSeed, RoundCtx, Status};
use crate::route::{QueueBuffers, RawSpans, RawU32, RouteBuffers};
use crate::scenario::ChurnKind;
use crate::wire::{WireEnvelope, DEAD_INDEX, NO_INDEX, WIRE_ADDRS, WIRE_WORDS};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use rayon::prelude::*;
use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Raw pointer to the slot array, shared across routing workers. Each
/// worker touches only its own disjoint slot range, making the aliasing
/// sound by construction.
struct RawSlots<P: NodeProtocol>(*mut Slot<P>);
unsafe impl<P: NodeProtocol> Send for RawSlots<P> {}
unsafe impl<P: NodeProtocol> Sync for RawSlots<P> {}

impl<P: NodeProtocol> RawSlots<P> {
    /// # Safety
    ///
    /// The caller must hold exclusive access to slot `i` (each routing
    /// worker owns a disjoint slot range).
    #[allow(clippy::mut_from_ref)]
    unsafe fn slot(&self, i: usize) -> &mut Slot<P> {
        unsafe { &mut *self.0.add(i) }
    }
}

/// Raw pointer to the routing arena, shared across scatter workers. Each
/// `(worker, destination)` region is disjoint by the cursor construction
/// in [`RouteBuffers::seal_parallel`].
struct RawArena(*mut WireEnvelope);
unsafe impl Send for RawArena {}
unsafe impl Sync for RawArena {}

impl RawArena {
    /// # Safety
    ///
    /// `at` must lie in a region owned exclusively by the calling worker.
    unsafe fn write(&self, at: usize, env: WireEnvelope) {
        unsafe { self.0.add(at).write(env) };
    }
}

/// One node's state under the batched executor. Slots are created only for
/// participating nodes and live in dense-index order; compaction drops
/// retired slots but never reorders the survivors, so iterating the slot
/// array *is* iterating the live nodes in canonical dense order. Shared
/// with the ownership-sharded engine (`shard.rs`), where each shard owns
/// the slots of one contiguous dense-index range.
pub(crate) struct Slot<P: NodeProtocol> {
    /// This node's dense index (position on the full `G_k` path) — the
    /// stable key into every index-addressed engine structure, surviving
    /// any compaction reorder of the slot array itself. Global even under
    /// the sharded layout (shards rebase to local indices at use sites).
    pub(crate) idx: u32,
    pub(crate) id: NodeId,
    pub(crate) succ: Option<NodeId>,
    pub(crate) alive: bool,
    /// Parked by the scenario schedule: a crash-paused node awaiting its
    /// recovery round, or a churn joiner awaiting its join round. Paused
    /// slots stay `alive` (they survive compaction and count toward the
    /// live population — the run must outlast them) but are skipped by
    /// every sweep and unreachable to senders (`alive_now` false).
    pub(crate) paused: bool,
    pub(crate) rounds: u64,
    pub(crate) inbox_start: u32,
    pub(crate) inbox_len: u32,
    pub(crate) rng: SmallRng,
    pub(crate) out: Vec<WireEnvelope>,
    pub(crate) proto: Option<P>,
    pub(crate) output: Option<P::Output>,
    pub(crate) panic: Option<String>,
    /// Phase/stage marks staged by this round's step (cleared per round;
    /// discarded when the step retires the node).
    pub(crate) phase_mark: Option<&'static str>,
    pub(crate) stage_mark: Option<&'static str>,
}

impl<P: NodeProtocol> Slot<P> {
    /// A fresh slot at dense index `idx`. The per-node RNG stream
    /// derivation matches `NodeHandle::new`, so a protocol draws
    /// identical randomness on either engine and under either layout.
    pub(crate) fn new(
        idx: u32,
        id: NodeId,
        succ: Option<NodeId>,
        config_seed: u64,
        proto: P,
    ) -> Self {
        let mix = config_seed
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(id.wrapping_mul(0xBF58_476D_1CE4_E5B9));
        Slot {
            idx,
            id,
            succ,
            alive: true,
            paused: false,
            rounds: 0,
            inbox_start: 0,
            inbox_len: 0,
            rng: SmallRng::seed_from_u64(mix),
            out: Vec::new(),
            proto: Some(proto),
            output: None,
            panic: None,
            phase_mark: None,
            stage_mark: None,
        }
    }
}

/// The per-run constants a [`step_slot`] call needs to build a
/// [`RoundCtx`] — bundled so the monolithic and sharded engines drive the
/// exact same step-phase code.
pub(crate) struct StepShared<'a> {
    pub(crate) n: usize,
    pub(crate) participants: usize,
    pub(crate) cap: usize,
    pub(crate) model: Model,
    pub(crate) all_ids: Option<&'a [NodeId]>,
    pub(crate) resolver: &'a crate::route::Resolver,
    pub(crate) dense_of: Option<&'a [u32]>,
}

/// What stepping one slot did (the caller folds these into its own
/// finished/panicked/marked accounting).
pub(crate) enum StepOutcome {
    /// The slot was already retired; nothing ran.
    Skipped,
    /// The protocol continues; `marked` = it staged a phase/stage mark.
    Running { marked: bool },
    /// The protocol retired this step — by returning
    /// [`Status::Done`] or by panicking (`slot.panic` holds the message).
    Finished { panicked: bool },
}

/// Steps one live slot: builds the [`RoundCtx`] over the slot's inbox
/// span of `arena`, polls the protocol (catching panics), and applies the
/// status to the slot. Identical logic for the monolithic and sharded
/// engines — the transcript cannot depend on the arena layout because a
/// node only ever sees its own span.
pub(crate) fn step_slot<P: NodeProtocol>(
    slot: &mut Slot<P>,
    arena: &[WireEnvelope],
    sh: &StepShared<'_>,
) -> StepOutcome {
    if !slot.alive || slot.paused {
        return StepOutcome::Skipped;
    }
    let inbox = &arena[slot.inbox_start as usize..][..slot.inbox_len as usize];
    slot.out.clear();
    slot.phase_mark = None;
    slot.stage_mark = None;
    let status = {
        let Slot {
            id,
            succ,
            rounds,
            rng,
            out,
            proto,
            phase_mark,
            stage_mark,
            ..
        } = slot;
        let mut ctx = RoundCtx {
            id: *id,
            n: sh.n,
            participants: sh.participants,
            capacity: sh.cap,
            model: sh.model,
            initial_successor: *succ,
            all_ids: sh.all_ids,
            round: *rounds,
            rng,
            inbox,
            out,
            resolver: sh.resolver,
            dense_of: sh.dense_of,
            phase_mark,
            stage_mark,
        };
        let proto = proto.as_mut().expect("live node without protocol");
        std::panic::catch_unwind(AssertUnwindSafe(|| proto.step(&mut ctx)))
    };
    match status {
        Ok(Status::Continue) => {
            slot.rounds += 1;
            StepOutcome::Running {
                marked: slot.phase_mark.is_some() || slot.stage_mark.is_some(),
            }
        }
        Ok(Status::Done(out)) => {
            debug_assert!(
                slot.out.is_empty(),
                "node {} staged sends in a Done step (discarded)",
                slot.id
            );
            slot.output = Some(out);
            slot.proto = None;
            slot.alive = false;
            slot.out.clear();
            slot.inbox_len = 0;
            slot.phase_mark = None;
            slot.stage_mark = None;
            StepOutcome::Finished { panicked: false }
        }
        Err(payload) => {
            slot.panic = Some(panic_message(payload.as_ref()));
            slot.proto = None;
            slot.alive = false;
            slot.out.clear();
            slot.inbox_len = 0;
            slot.phase_mark = None;
            slot.stage_mark = None;
            StepOutcome::Finished { panicked: true }
        }
    }
}

/// A round is classified **dense** when the previous round delivered at
/// least this many messages *and* at least a quarter of a message per
/// node: below that, the per-worker count-array resets and the
/// `O(workers + n)` fold cost more wall-clock than the inline walk saves.
/// The classification depends only on the transcript (never on the worker
/// count), so the narrated [`RouteMode`] is bit-identical across worker
/// counts; whether a dense round actually fans out over the pool is a
/// separate, purely scheduling decision that cannot affect results.
pub(crate) const PARALLEL_ROUTE_MIN_MSGS: u64 = 2048;

/// The receive/learn sweeps additionally go parallel on *wide* rounds —
/// ones whose slot window alone makes the `O(live)` walks worth
/// fanning out even when little traffic flows (the long quiet phases of
/// 10^6+-node runs). Like the routing heuristic this is pure scheduling:
/// both sweep paths produce bit-identical transcripts and metrics.
pub(crate) const PARALLEL_SWEEP_MIN_LIVE: usize = 1 << 15;

/// Runs `factory`-built protocols on every participating node until all
/// have returned [`Status::Done`]. `participants` masks nodes out of the
/// network entirely (they are dead from round zero and the knowledge path
/// links across them); `None` means everyone participates.
pub(crate) fn run<P, F>(
    net: &Network,
    participants: Option<&[bool]>,
    sink: Option<&mut dyn Sink>,
    factory: F,
) -> Result<RunResult<P::Output>, SimError>
where
    P: NodeProtocol,
    F: Fn(&NodeSeed<'_>) -> P + Sync,
{
    let config: &Config = net.config();
    if config.shards > 1 {
        // Ownership-sharded layout: per-shard slot arenas joined by a
        // deterministic boundary-exchange phase. Bit-identical transcripts,
        // metrics and raw event streams — `shard::run` clamps the shard
        // count to the participant space.
        return crate::shard::run(net, participants, sink, factory);
    }
    let ids = net.ids_in_path_order();
    let n = ids.len();
    let cap = config.capacity(n);
    assert!(
        config.max_words <= WIRE_WORDS && config.max_addrs <= WIRE_ADDRS,
        "batched engine: configured message budget ({} words, {} addrs) \
         exceeds the inline wire budget ({WIRE_WORDS} words, {WIRE_ADDRS} addrs)",
        config.max_words,
        config.max_addrs,
    );
    if let Some(mask) = participants {
        assert_eq!(mask.len(), n, "participant mask length must equal n");
    }
    let participating = |i: usize| participants.is_none_or(|m| m[i]);
    let participant_count = (0..n).filter(|&i| participating(i)).count();

    // NCC1 common knowledge: all participating IDs, sorted.
    let all_ids: Option<Arc<Vec<NodeId>>> = match config.model {
        Model::Ncc1 => {
            let mut sorted: Vec<NodeId> = (0..n)
                .filter(|&i| participating(i))
                .map(|i| ids[i])
                .collect();
            sorted.sort_unstable();
            Some(Arc::new(sorted))
        }
        Model::Ncc0 => None,
    };
    let all_ids_slice: Option<&[NodeId]> = all_ids.as_deref().map(Vec::as_slice);

    // Dense masked remap: the k participants own indices 0..k in path
    // order, and *every* index-addressed engine structure (routing counts
    // and bucket starts, queue spans, knowledge regions, aliveness, the
    // per-worker scratch rows) is sized to k — so a deep masked prefix
    // recursion pays memory for the sub-network it actually runs, not for
    // the full network it was carved from. `dense_of` projects the
    // resolver's full-network index into this space once, at send time;
    // DEAD_INDEX marks a real node outside the run (kept distinct from
    // NO_INDEX so the violation taxonomy still matches the oracle's).
    let k = participant_count;
    let dense_of: Option<Vec<u32>> = participants.map(|mask| {
        let mut map = vec![DEAD_INDEX; n];
        let mut next = 0u32;
        for (i, &p) in mask.iter().enumerate() {
            if p {
                map[i] = next;
                next += 1;
            }
        }
        map
    });
    let dense_of_slice: Option<&[u32]> = dense_of.as_deref();

    // Scenario engine: validate the fault schedule against this run and
    // compile it to dense indices + sorted churn timelines. The runtime
    // (timeline cursors, per-round fault RNG, swap arena) is engine state
    // like any other reusable buffer.
    let mut scenario_rt = match &config.scenario {
        Some(s) => {
            s.validate(n, participants, config.capacity_policy)
                .map_err(SimError::InvalidScenario)?;
            let compiled = s.compile(|node| dense_of_slice.map_or(node as u32, |map| map[node]));
            Some(crate::scenario::ScenarioRt::new(compiled))
        }
        None => None,
    };

    // KT0 knowledge, seeded along the path of *participating* nodes
    // (tracker rows are dense).
    let track = config.track_knowledge && config.model == Model::Ncc0;
    let mut knowledge = KnowledgeTracker::new(k, track);
    crate::knowledge::seed_path_dense(&mut knowledge, ids, participating);

    // Build the node slots — participating nodes only; masked-out indices
    // never even get a slot (they are dead from round zero). Outboxes
    // start empty and grow to each node's actual burst size (pre-reserving
    // `cap + 1` per slot would cost ~3 KB x n at the 10^6 scale for
    // protocols that never fan out that far).
    let mut slots: Vec<Slot<P>> = Vec::with_capacity(participant_count);
    for i in 0..n {
        if !participating(i) {
            continue;
        }
        let succ = (i + 1..n).find(|&j| participating(j)).map(|j| ids[j]);
        let seed = NodeSeed {
            id: ids[i],
            n,
            participants: participant_count,
            capacity: cap,
            model: config.model,
            initial_successor: succ,
            all_ids: all_ids.as_ref(),
        };
        slots.push(Slot::new(
            slots.len() as u32,
            ids[i],
            succ,
            config.seed,
            factory(&seed),
        ));
    }
    let mut live = slots.len();
    // Retired nodes' outputs, keyed by dense index so the final collection
    // can restore path order after any number of compactions.
    let mut done: Vec<(u32, NodeId, P::Output)> = Vec::with_capacity(live);

    // Dense space: every participant starts alive; masked-out nodes have
    // no index at all (sends to them surface as DEAD_INDEX).
    let mut alive_now: Vec<bool> = vec![true; k];
    // Churn joiners sit out every round before their scheduled join:
    // parked (skipped by every sweep) and unreachable, like dead nodes —
    // but still counted live, so the run waits for them.
    if let Some(rt) = &scenario_rt {
        for slot in slots.iter_mut() {
            if rt.starts_parked(slot.idx) {
                slot.paused = true;
                alive_now[slot.idx as usize] = false;
            }
        }
    }
    let mut buffers = RouteBuffers::new(k);
    let queue_mode = config.capacity_policy == CapacityPolicy::Queue;
    let strict = config.capacity_policy == CapacityPolicy::Strict;
    let mut queues = QueueBuffers::new(if queue_mode { k } else { 0 });
    // Retired nodes whose receive queues still hold backlog: their queues
    // keep draining at `cap` per round into the undelivered counter,
    // exactly as when their slots still existed (the threaded oracle walks
    // every queue every round; this list is the compaction-safe image of
    // that walk).
    let mut dead_backlog: Vec<u32> = Vec::new();

    let mut metrics = RunMetrics {
        capacity: cap,
        ..RunMetrics::default()
    };
    // Every run narrates itself as a typed event stream: the always-on
    // recorder inside the emitter is the *sole* source of `EngineStats`
    // and the phase breakdown; the caller's sink (if any) sees the same
    // stream.
    let mut emitter = Emitter::new(sink);
    // Pre-reserve the full (capped) trace so recording a round can never
    // allocate inside the round loop.
    metrics
        .messages_per_round
        .reserve(crate::metrics::ROUND_TRACE_LIMIT);

    let workers = match config.worker_threads {
        0 => rayon::current_num_threads(),
        w => w,
    }
    .clamp(1, k.max(1));
    let resolver = net.resolver();
    let step_shared = StepShared {
        n,
        participants: participant_count,
        cap,
        model: config.model,
        all_ids: all_ids_slice,
        resolver,
        dense_of: dense_of_slice,
    };
    // Previous round's delivered message count — drives the adaptive
    // inline-vs-parallel routing choice.
    let mut prev_round_messages: u64 = 0;
    // Per-phase wall-clock accumulators (surfaced through `EngineStats`
    // for `engine_bench`'s serial-fraction breakdown; an `Instant` pair
    // per phase per round, no allocation).
    let (mut step_nanos, mut route_nanos) = (0u64, 0u64);
    let (mut deliver_nanos, mut learn_nanos) = (0u64, 0u64);
    let (mut parallel_sweep_rounds, mut inline_sweep_rounds) = (0u64, 0u64);

    while live > 0 {
        let window = slots.len();
        let chunk = window.div_ceil(workers).max(1);

        // --- Scenario churn (pre-step): recoveries and joins scheduled
        // for this round un-park their slots before anyone steps, and
        // the round's fault rates (plus, when any could fire, the
        // per-round coordinator RNG) are resolved. ---
        if let Some(rt) = scenario_rt.as_mut() {
            let round = metrics.rounds;
            rt.begin_round(round);
            for &op in rt.pre_step_ops(round) {
                let Ok(pos) = slots.binary_search_by_key(&op.dense, |s| s.idx) else {
                    continue;
                };
                let slot = &mut slots[pos];
                if !slot.alive || !slot.paused {
                    continue;
                }
                slot.paused = false;
                alive_now[op.dense as usize] = true;
                emitter.emit(match op.kind {
                    ChurnKind::Recover => RunEvent::NodeRecovered {
                        round,
                        node: op.node,
                    },
                    ChurnKind::Join => RunEvent::NodeJoined {
                        round,
                        node: op.node,
                    },
                    ChurnKind::CrashStop | ChurnKind::CrashPause => continue,
                });
            }
        }

        // --- Step phase: poll every live protocol in parallel. ---
        // detlint: allow(ambient-entropy) — per-phase wall-clock timer: the elapsed nanos feed EngineStats::*_nanos (observability only) and never a transcript, round count, or message
        let t_phase = Instant::now();
        let finished = AtomicUsize::new(0);
        let panicked = AtomicBool::new(false);
        let marked = AtomicBool::new(false);
        {
            let arena: &[WireEnvelope] = if queue_mode {
                &queues.inbox
            } else {
                &buffers.arena
            };
            let step_one = |slot: &mut Slot<P>| match step_slot(slot, arena, &step_shared) {
                StepOutcome::Skipped | StepOutcome::Running { marked: false } => {}
                StepOutcome::Running { marked: true } => {
                    // detlint: allow(relaxed-atomic) — one-way flag; any arrival order of the racing stores yields the same post-join value (true), read only after the pool barrier
                    marked.store(true, Ordering::Relaxed);
                }
                StepOutcome::Finished { panicked: p } => {
                    if p {
                        // detlint: allow(relaxed-atomic) — one-way flag raised at most once per slot; order-independent, read after the pool barrier
                        panicked.store(true, Ordering::Relaxed);
                    }
                    // detlint: allow(relaxed-atomic) — commutative done-count: addition order cannot change the sum, read only after the pool barrier
                    finished.fetch_add(1, Ordering::Relaxed);
                }
            };
            if workers == 1 {
                // Inline fast path: no dispatch, no allocation.
                for slot in slots.iter_mut() {
                    step_one(slot);
                }
            } else {
                slots.par_chunks_mut(chunk).for_each(|chunk| {
                    for slot in chunk {
                        step_one(slot);
                    }
                });
            }
        }
        step_nanos += t_phase.elapsed().as_nanos() as u64;
        // detlint: allow(relaxed-atomic) — post-barrier read; the pool join supplies the happens-before edge, and blame is re-derived below by a deterministic lowest-dense-index scan
        if panicked.load(Ordering::Relaxed) {
            // Deterministic attribution: blame the lowest dense index.
            let (node, message) = slots
                .iter_mut()
                .find_map(|s| s.panic.take().map(|m| (s.id, m)))
                .expect("panic flag set without a panic record");
            return Err(SimError::NodePanic { node, message });
        }
        // detlint: allow(relaxed-atomic) — post-barrier read of the commutative done-count
        let mut newly_done = finished.load(Ordering::Relaxed);
        if newly_done > 0 {
            live -= newly_done;
            for slot in slots.iter() {
                let i = slot.idx as usize;
                if alive_now[i] && !slot.alive {
                    alive_now[i] = false;
                    // A retiring node may leave backlog in its receive
                    // queue; keep draining it (see `dead_backlog`).
                    if queue_mode && queues.backlog_len(i) > 0 {
                        dead_backlog.push(slot.idx);
                    }
                }
            }
        }
        if live == 0 {
            break;
        }
        // --- Protocol marks: collect in dense (slot) order and emit the
        // deduplicated phase/stage events. The scan only runs when some
        // step actually marked — mark-free protocols pay one atomic load.
        // detlint: allow(relaxed-atomic) — post-barrier read of the one-way mark flag; the mark scan itself walks slots in dense order
        if marked.load(Ordering::Relaxed) {
            for slot in slots.iter_mut() {
                let (phase, stage) = (slot.phase_mark.take(), slot.stage_mark.take());
                if phase.is_some() || stage.is_some() {
                    emitter.emit_marks(metrics.rounds, phase, stage);
                }
            }
        }
        // --- Scenario churn (post-step): scheduled crash-stops and
        // crash-pauses take effect *after* the node's step this round —
        // the exact observable footprint of a protocol that voluntarily
        // halts here (sends discarded like a `Done` step's, backlog to
        // the dead-drain, compaction trigger fed), minus the output. A
        // pause parks the slot instead of retiring it.
        if let Some(rt) = scenario_rt.as_mut() {
            let round = metrics.rounds;
            for &op in rt.post_step_ops(round) {
                let Ok(pos) = slots.binary_search_by_key(&op.dense, |s| s.idx) else {
                    continue;
                };
                let slot = &mut slots[pos];
                if !slot.alive || slot.paused {
                    continue;
                }
                let i = op.dense as usize;
                match op.kind {
                    ChurnKind::CrashStop => {
                        slot.alive = false;
                        slot.proto = None;
                        live -= 1;
                        newly_done += 1;
                        if queue_mode && queues.backlog_len(i) > 0 {
                            dead_backlog.push(op.dense);
                        }
                    }
                    ChurnKind::CrashPause => slot.paused = true,
                    ChurnKind::Recover | ChurnKind::Join => continue,
                }
                slot.out.clear();
                slot.inbox_len = 0;
                slot.phase_mark = None;
                slot.stage_mark = None;
                alive_now[i] = false;
                emitter.emit(RunEvent::NodeCrashed {
                    round,
                    node: op.node,
                });
            }
            // A schedule that kills the last live node ends the run
            // exactly as the last voluntary retirement would (no
            // further round narration).
            if live == 0 {
                break;
            }
        }
        // --- Compaction: once the live population has halved relative to
        // the slot window, drop retired slots (stable, in-place) so every
        // subsequent per-round walk pays only for live nodes. Outputs move
        // to the `done` side list keyed by dense index.
        if newly_done > 0 && live * 2 <= window {
            slots.retain_mut(|s| {
                if s.alive {
                    return true;
                }
                if let Some(out) = s.output.take() {
                    done.push((s.idx, s.id, out));
                }
                false
            });
            debug_assert_eq!(slots.len(), live);
            emitter.emit(RunEvent::Compaction {
                round: metrics.rounds,
                live,
            });
        }
        let window = slots.len();
        let chunk = window.div_ceil(workers).max(1);

        // --- Routing phase: validate + count, prefix-sum, stable
        // scatter. Sparse rounds (previous round's volume below the
        // parallel threshold) run the allocation-free inline path; dense
        // rounds fan both passes out over disjoint slot ranges with
        // per-worker count arrays (bit-identical transcripts either way —
        // worker `w`'s region of every bucket precedes worker `w+1`'s, so
        // bucket contents stay in dense source order).
        let round = metrics.rounds;
        let mut round_messages: u64 = 0;
        // detlint: allow(ambient-entropy) — per-phase wall-clock timer: the elapsed nanos feed EngineStats::*_nanos (observability only) and never a transcript, round count, or message
        let t_phase = Instant::now();
        // The dense/sparse classification is a pure function of the
        // previous round's volume — worker-count-invariant, so the
        // narrated `route_mode` (and with it the raw event stream) is
        // bit-identical across worker counts. Whether a dense round
        // actually fans out is gated separately on the pool size.
        let dense_round = prev_round_messages >= PARALLEL_ROUTE_MIN_MSGS
            && prev_round_messages >= (window as u64) / 4;
        let parallel_route = workers > 1 && dense_round;
        let route_mode = if dense_round {
            RouteMode::Parallel
        } else {
            RouteMode::Inline
        };
        if !parallel_route {
            // --- Pass 1 (inline): validate and count per bucket. Only
            // live destinations can receive (validation rejects the rest),
            // so resetting the live counts is enough — stale counts of
            // retired indices are never read again. ---
            for slot in slots.iter() {
                buffers.counts[slot.idx as usize] = 0;
            }
            for slot in slots.iter_mut() {
                let src_idx = slot.idx as usize;
                let attempted = slot.out.len();
                for env in slot.out.iter_mut() {
                    let deliver =
                        match validate(env, src_idx, config, &knowledge, &alive_now, round) {
                            Ok(()) => true,
                            Err(v) => {
                                metrics.record_violation(strict, v)?;
                                // Lenient policies still deliver when
                                // physically possible (destination exists,
                                // participates in this run, and is alive).
                                env.dst_idx != NO_INDEX
                                    && env.dst_idx != DEAD_INDEX
                                    && alive_now[env.dst_idx as usize]
                            }
                        };
                    if deliver {
                        round_messages += 1;
                        metrics.words += env.msg.size_words() as u64;
                        buffers.counts[env.dst_idx as usize] += 1;
                    } else {
                        env.dst_idx = NO_INDEX;
                    }
                }
                if attempted > cap {
                    metrics.record_violation(
                        strict,
                        Violation {
                            round,
                            node: slot.id,
                            kind: ViolationKind::SendCapacity {
                                sent: attempted,
                                cap,
                            },
                        },
                    )?;
                }
                metrics.max_sent_per_round = metrics.max_sent_per_round.max(attempted);
            }

            // --- Pass 2 (inline): prefix-sum offsets over the live
            // destinations (ascending dense order — the slot array's
            // order), stable scatter. ---
            buffers.seal_counts_live(slots.iter().map(|s| s.idx as usize));
            for slot in slots.iter_mut() {
                for env in slot.out.iter() {
                    if env.dst_idx != NO_INDEX {
                        buffers.push(*env);
                    }
                }
                slot.out.clear();
            }
        } else {
            // --- Pass 1 (parallel): per-worker validate and count. ---
            buffers.begin_parallel_round(workers);
            {
                let slots_ptr = RawSlots(slots.as_mut_ptr());
                let knowledge = &knowledge;
                let alive_now = &alive_now;
                buffers.scratch[..workers]
                    .par_chunks_mut(1)
                    .enumerate()
                    .for_each(|(w, scratch_row)| {
                        let s = &mut scratch_row[0];
                        s.begin_round(k);
                        let lo = (w * chunk).min(window);
                        let hi = ((w + 1) * chunk).min(window);
                        for pos in lo..hi {
                            // Sound: this worker owns slot range [lo, hi).
                            let slot = unsafe { slots_ptr.slot(pos) };
                            let src_idx = slot.idx as usize;
                            let attempted = slot.out.len();
                            for env in slot.out.iter_mut() {
                                let deliver = match validate(
                                    env, src_idx, config, knowledge, alive_now, round,
                                ) {
                                    Ok(()) => true,
                                    Err(v) => {
                                        s.violations.push(v);
                                        env.dst_idx != NO_INDEX
                                            && env.dst_idx != DEAD_INDEX
                                            && alive_now[env.dst_idx as usize]
                                    }
                                };
                                if deliver {
                                    s.round_messages += 1;
                                    s.words += env.msg.size_words() as u64;
                                    s.counts[env.dst_idx as usize] += 1;
                                } else {
                                    env.dst_idx = NO_INDEX;
                                }
                            }
                            if attempted > cap {
                                s.violations.push(Violation {
                                    round,
                                    node: slot.id,
                                    kind: ViolationKind::SendCapacity {
                                        sent: attempted,
                                        cap,
                                    },
                                });
                            }
                            s.max_sent = s.max_sent.max(attempted);
                        }
                    });
            }
            // Replay violations in canonical (dense source) order: worker
            // ranges are contiguous and each worker records in slot order,
            // so concatenation is exactly the sequential order. Strict
            // policy aborts on the same first violation as the inline path.
            for w in 0..workers {
                for v in buffers.scratch[w].violations.drain(..) {
                    metrics.record_violation(strict, v)?;
                }
            }
            for s in &buffers.scratch[..workers] {
                round_messages += s.round_messages;
                metrics.words += s.words;
                metrics.max_sent_per_round = metrics.max_sent_per_round.max(s.max_sent);
            }

            // --- Pass 2 (parallel): fold counts and derive the per-worker
            // scatter cursors — itself parallelized over destination
            // ranges — then scatter through the cursors into disjoint
            // arena regions. ---
            buffers.seal_parallel(workers);
            {
                let slots_ptr = RawSlots(slots.as_mut_ptr());
                let arena_ptr = RawArena(buffers.arena.as_mut_ptr());
                buffers.scratch[..workers]
                    .par_chunks_mut(1)
                    .enumerate()
                    .for_each(|(w, scratch_row)| {
                        let s = &mut scratch_row[0];
                        let lo = (w * chunk).min(window);
                        let hi = ((w + 1) * chunk).min(window);
                        for pos in lo..hi {
                            let slot = unsafe { slots_ptr.slot(pos) };
                            for env in slot.out.iter() {
                                if env.dst_idx != NO_INDEX {
                                    let d = env.dst_idx as usize;
                                    let at = s.cursors[d] as usize;
                                    // Sound: (worker, destination) regions
                                    // are disjoint by cursor construction.
                                    unsafe { arena_ptr.write(at, *env) };
                                    s.cursors[d] += 1;
                                }
                            }
                            slot.out.clear();
                        }
                    });
            }
        }

        // --- Scenario fault pass: perturb the sealed buckets (drop /
        // duplicate / reorder) along the canonical walk — every slot in
        // dense order; retired and parked slots have empty buckets and
        // consume no randomness — then fold the tally into the round's
        // delivered/word accounting and narrate it. Quiet rounds skip
        // the pass entirely, staying bit-identical to a scenario-free
        // engine.
        if let Some(rt) = scenario_rt.as_mut() {
            if rt.faults_active() {
                rt.perturb(&mut buffers, slots.iter().map(|s| s.idx as usize));
                let tally = rt.tally();
                if tally.any() {
                    round_messages = round_messages - tally.dropped + tally.duplicated;
                    metrics.words = metrics.words - tally.words_removed + tally.words_added;
                    emitter.emit(RunEvent::FaultInjected {
                        round,
                        dropped: tally.dropped,
                        duplicated: tally.duplicated,
                        reordered: tally.reordered,
                    });
                }
            }
        }
        route_nanos += t_phase.elapsed().as_nanos() as u64;

        // --- Receive side: capacity policy per bucket. The post-routing
        // sweeps over the slot window (queue delivery / capacity checks
        // here, the learn sweep below) fan out over the worker pool on
        // dense or wide rounds. Like the routing choice this is pure
        // scheduling: both paths produce bit-identical inbox layouts,
        // metrics, violations and knowledge (see the per-path notes), so
        // the heuristic can never affect results.
        // detlint: allow(ambient-entropy) — per-phase wall-clock timer: the elapsed nanos feed EngineStats::*_nanos (observability only) and never a transcript, round count, or message
        let t_phase = Instant::now();
        let parallel_sweep = workers > 1
            && (round_messages >= PARALLEL_ROUTE_MIN_MSGS || window >= PARALLEL_SWEEP_MIN_LIVE);
        if parallel_sweep {
            parallel_sweep_rounds += 1;
        } else {
            inline_sweep_rounds += 1;
        }
        if queue_mode {
            // Flat-arena FIFO backlog: carried spans merge with the round's
            // buckets, `cap` envelopes deliver, the rest re-queue — no
            // per-node deques, no steady-state allocation. Live nodes walk
            // in dense order through the slot array; retired nodes with
            // backlog drain separately (their freshly routed bucket is
            // empty by validation, so `&[]` stands in for it). Per-node
            // FIFO contents and all max-fold metrics are identical to one
            // full dense sweep — only the inbox arena layout can differ,
            // and nothing observes it across nodes.
            queues.begin_round();
            if !parallel_sweep {
                for slot in slots.iter_mut() {
                    if !slot.alive {
                        continue;
                    }
                    let i = slot.idx as usize;
                    // A parked slot receives nothing, but its backlog
                    // must still ride the double-buffer swap (cap 0 =
                    // re-queue everything, FIFO intact for recovery).
                    let cap_i = if slot.paused { 0 } else { cap };
                    let (start, take, queued) = queues.deliver(i, buffers.bucket(i), cap_i);
                    metrics.max_queue_len = metrics.max_queue_len.max(queued);
                    slot.inbox_start = start;
                    slot.inbox_len = take;
                }
            } else {
                // Two-phase parallel delivery. Phase A measures each slot
                // chunk — per-chunk delivered/queued totals plus max
                // backlog — into the reusable chunk arrays; a sequential
                // exclusive prefix turns the totals into chunk base
                // offsets; phase B recomputes each slot's take from the
                // same inputs and copies backlog-then-bucket at running
                // cursors into disjoint arena regions. The resulting
                // inbox and backlog arenas are the slot-order prefix
                // layout the sequential walk produces — bit-identical,
                // not merely equivalent — so inbox spans, FIFO contents
                // and the carried spans match for every worker count.
                let nchunks = window.div_ceil(chunk);
                queues.ensure_chunks(nchunks);
                {
                    let QueueBuffers {
                        spans,
                        chunk_take,
                        chunk_queue,
                        chunk_qmax,
                        ..
                    } = &mut queues;
                    let spans: &[(u32, u32)] = spans;
                    let counts: &[u32] = &buffers.counts;
                    let slots_ptr = RawSlots(slots.as_mut_ptr());
                    let ct = RawU32(chunk_take.as_mut_ptr());
                    let cq = RawU32(chunk_queue.as_mut_ptr());
                    let cm = RawU32(chunk_qmax.as_mut_ptr());
                    (0..nchunks).into_par_iter().for_each(|c| {
                        let lo = c * chunk;
                        let hi = ((c + 1) * chunk).min(window);
                        let (mut take_sum, mut queue_sum, mut qmax) = (0u32, 0u32, 0u32);
                        for pos in lo..hi {
                            // Sound: this task owns slot range [lo, hi).
                            let slot = unsafe { slots_ptr.slot(pos) };
                            if !slot.alive {
                                continue;
                            }
                            let i = slot.idx as usize;
                            let total = spans[i].1 as usize + counts[i] as usize;
                            // Parked slots deliver nothing (their backlog
                            // re-queues in full, same as the inline walk).
                            let take = if slot.paused { 0 } else { total.min(cap) };
                            let queued = (total - take) as u32;
                            take_sum += take as u32;
                            queue_sum += queued;
                            qmax = qmax.max(queued);
                        }
                        // Sound: task `c` exclusively owns entry `c`.
                        unsafe {
                            ct.write(c, take_sum);
                            cq.write(c, queue_sum);
                            cm.write(c, qmax);
                        }
                    });
                }
                let (mut take_acc, mut queue_acc) = (0u32, 0u32);
                for c in 0..nchunks {
                    let (t, q) = (queues.chunk_take[c], queues.chunk_queue[c]);
                    queues.chunk_take[c] = take_acc;
                    queues.chunk_queue[c] = queue_acc;
                    take_acc += t;
                    queue_acc += q;
                    metrics.max_queue_len =
                        metrics.max_queue_len.max(queues.chunk_qmax[c] as usize);
                }
                queues.inbox.resize(take_acc as usize, WireEnvelope::EMPTY);
                queues.next.resize(queue_acc as usize, WireEnvelope::EMPTY);
                {
                    let QueueBuffers {
                        spans,
                        cur,
                        next,
                        inbox,
                        chunk_take,
                        chunk_queue,
                        ..
                    } = &mut queues;
                    let cur: &[WireEnvelope] = cur;
                    let chunk_take: &[u32] = chunk_take;
                    let chunk_queue: &[u32] = chunk_queue;
                    let counts: &[u32] = &buffers.counts;
                    let starts: &[u32] = &buffers.starts;
                    let route_arena: &[WireEnvelope] = &buffers.arena;
                    let slots_ptr = RawSlots(slots.as_mut_ptr());
                    let spans_ptr = RawSpans(spans.as_mut_ptr());
                    let inbox_ptr = RawArena(inbox.as_mut_ptr());
                    let next_ptr = RawArena(next.as_mut_ptr());
                    (0..nchunks).into_par_iter().for_each(|c| {
                        let lo = c * chunk;
                        let hi = ((c + 1) * chunk).min(window);
                        let mut ic = chunk_take[c] as usize;
                        let mut qc = chunk_queue[c] as usize;
                        for pos in lo..hi {
                            // Sound: this task owns slot range [lo, hi),
                            // and dense index `i` belongs to exactly one
                            // slot — so the slot, its span entry and its
                            // cursor regions are all exclusively owned.
                            let slot = unsafe { slots_ptr.slot(pos) };
                            if !slot.alive {
                                continue;
                            }
                            let i = slot.idx as usize;
                            let (bs, bl) = unsafe { spans_ptr.read(i) };
                            let backlog = &cur[bs as usize..(bs + bl) as usize];
                            let fresh = &route_arena[starts[i] as usize..][..counts[i] as usize];
                            let total = backlog.len() + fresh.len();
                            let take = if slot.paused { 0 } else { total.min(cap) };
                            let tb = take.min(backlog.len());
                            slot.inbox_start = ic as u32;
                            slot.inbox_len = take as u32;
                            let next_start = qc as u32;
                            // FIFO: backlog first, then the routed bucket.
                            for &env in &backlog[..tb] {
                                unsafe { inbox_ptr.write(ic, env) };
                                ic += 1;
                            }
                            for &env in &fresh[..take - tb] {
                                unsafe { inbox_ptr.write(ic, env) };
                                ic += 1;
                            }
                            for &env in &backlog[tb..] {
                                unsafe { next_ptr.write(qc, env) };
                                qc += 1;
                            }
                            for &env in &fresh[take - tb..] {
                                unsafe { next_ptr.write(qc, env) };
                                qc += 1;
                            }
                            unsafe { spans_ptr.write(i, (next_start, (total - take) as u32)) };
                        }
                    });
                }
            }
            let mut drained_any = false;
            for &idx in dead_backlog.iter() {
                let i = idx as usize;
                let (start, take, queued) = queues.deliver(i, &[], cap);
                metrics.max_queue_len = metrics.max_queue_len.max(queued);
                // A dead node's "delivery" is immediately undeliverable —
                // the same accounting the per-slot sweep used to apply.
                let delivered = take as usize;
                metrics.max_received_per_round = metrics.max_received_per_round.max(delivered);
                if knowledge.enabled() {
                    let inbox = &queues.inbox[start as usize..][..delivered];
                    for env in inbox {
                        knowledge.learn(i, env.src);
                        for &a in env.msg.addrs_slice() {
                            knowledge.learn(i, a);
                        }
                    }
                }
                metrics.undelivered += take as u64;
                drained_any |= queued == 0;
            }
            if drained_any {
                let queues = &queues;
                dead_backlog.retain(|&idx| queues.backlog_len(idx as usize) > 0);
            }
            queues.end_round();
        } else if !parallel_sweep {
            for slot in slots.iter_mut() {
                if !slot.alive {
                    continue;
                }
                let i = slot.idx as usize;
                let received = buffers.counts[i] as usize;
                if received > cap {
                    metrics.record_violation(
                        strict,
                        Violation {
                            round,
                            node: slot.id,
                            kind: ViolationKind::ReceiveCapacity { received, cap },
                        },
                    )?;
                }
                let (start, len) = buffers.span(i);
                slot.inbox_start = start;
                slot.inbox_len = len;
            }
        } else {
            // Parallel capacity check: per-worker violation journals,
            // replayed in worker order below — worker ranges are
            // contiguous and each worker records in slot order, so the
            // concatenation is exactly the sequential sweep's order and a
            // strict abort picks the same canonical first violation.
            buffers.begin_parallel_round(workers);
            {
                let RouteBuffers {
                    counts,
                    starts,
                    scratch,
                    ..
                } = &mut buffers;
                let counts: &[u32] = counts;
                let starts: &[u32] = starts;
                let slots_ptr = RawSlots(slots.as_mut_ptr());
                scratch[..workers]
                    .par_chunks_mut(1)
                    .enumerate()
                    .for_each(|(w, scratch_row)| {
                        let s = &mut scratch_row[0];
                        s.violations.clear();
                        let lo = (w * chunk).min(window);
                        let hi = ((w + 1) * chunk).min(window);
                        for pos in lo..hi {
                            // Sound: this worker owns slot range [lo, hi).
                            let slot = unsafe { slots_ptr.slot(pos) };
                            if !slot.alive {
                                continue;
                            }
                            let i = slot.idx as usize;
                            let received = counts[i] as usize;
                            if received > cap {
                                s.violations.push(Violation {
                                    round,
                                    node: slot.id,
                                    kind: ViolationKind::ReceiveCapacity { received, cap },
                                });
                            }
                            slot.inbox_start = starts[i];
                            slot.inbox_len = counts[i];
                        }
                    });
            }
            for w in 0..workers {
                for v in buffers.scratch[w].violations.drain(..) {
                    metrics.record_violation(strict, v)?;
                }
            }
        }
        deliver_nanos += t_phase.elapsed().as_nanos() as u64;

        // --- Knowledge propagation + delivery metrics. ---
        // detlint: allow(ambient-entropy) — per-phase wall-clock timer: the elapsed nanos feed EngineStats::*_nanos (observability only) and never a transcript, round count, or message
        let t_phase = Instant::now();
        if !parallel_sweep {
            let delivery_arena: &[WireEnvelope] = if queue_mode {
                &queues.inbox
            } else {
                &buffers.arena
            };
            for slot in slots.iter() {
                if !slot.alive {
                    continue;
                }
                let delivered = slot.inbox_len as usize;
                metrics.max_received_per_round = metrics.max_received_per_round.max(delivered);
                if knowledge.enabled() {
                    let i = slot.idx as usize;
                    let inbox = &delivery_arena[slot.inbox_start as usize..][..delivered];
                    for env in inbox {
                        knowledge.learn(i, env.src);
                        for &a in env.msg.addrs_slice() {
                            knowledge.learn(i, a);
                        }
                    }
                }
            }
        } else {
            // Parallel learn sweep: workers own disjoint slot chunks, and
            // per-node knowledge regions are disjoint arena spans, so
            // in-place learns never alias. The one mutation that moves
            // memory *between* regions — re-homing a full region to the
            // arena tail — is journaled per worker and replayed
            // sequentially below. Region contents are sorted *sets*, so
            // replay order cannot change what any node knows:
            // `knows`/`knowledge_size`/`max_knowledge` are bit-identical
            // to the sequential walk, only the unobservable arena layout
            // may differ. The journals empty out once knowledge stops
            // spreading, so a settled run allocates nothing here.
            buffers.begin_parallel_round(workers);
            let enabled = knowledge.enabled();
            {
                let RouteBuffers { arena, scratch, .. } = &mut buffers;
                let delivery_arena: &[WireEnvelope] =
                    if queue_mode { &queues.inbox } else { arena };
                let slots_ptr = RawSlots(slots.as_mut_ptr());
                let shard = knowledge.shard();
                let shard = &shard;
                scratch[..workers]
                    .par_chunks_mut(1)
                    .enumerate()
                    .for_each(|(w, scratch_row)| {
                        let s = &mut scratch_row[0];
                        s.learns.clear();
                        s.max_received = 0;
                        let lo = (w * chunk).min(window);
                        let hi = ((w + 1) * chunk).min(window);
                        for pos in lo..hi {
                            // Sound: this worker owns slot range [lo, hi).
                            let slot = unsafe { slots_ptr.slot(pos) };
                            if !slot.alive {
                                continue;
                            }
                            let delivered = slot.inbox_len as usize;
                            s.max_received = s.max_received.max(delivered);
                            if !enabled {
                                continue;
                            }
                            let i = slot.idx as usize;
                            let inbox = &delivery_arena[slot.inbox_start as usize..][..delivered];
                            for env in inbox {
                                // Sound: slot chunks are disjoint and each
                                // dense index belongs to exactly one slot,
                                // so this worker exclusively owns region i.
                                if !unsafe { shard.try_learn(i, env.src) } {
                                    s.learns.push((slot.idx, env.src));
                                }
                                for &a in env.msg.addrs_slice() {
                                    if !unsafe { shard.try_learn(i, a) } {
                                        s.learns.push((slot.idx, a));
                                    }
                                }
                            }
                        }
                    });
            }
            // Replay the deferred learns (full regions needing a re-home)
            // and fold the per-worker delivery max. A learned set is
            // order-independent and max is commutative, so both folds are
            // deterministic for any worker count.
            for w in 0..workers {
                metrics.max_received_per_round = metrics
                    .max_received_per_round
                    .max(buffers.scratch[w].max_received);
                for (node, id) in buffers.scratch[w].learns.drain(..) {
                    knowledge.learn(node as usize, id);
                }
            }
        }
        learn_nanos += t_phase.elapsed().as_nanos() as u64;

        metrics.record_round(round_messages);
        emitter.emit(RunEvent::RoundCompleted {
            round,
            delivered: round_messages,
            live,
            route_mode,
        });
        prev_round_messages = round_messages;
        if metrics.rounds > config.max_rounds {
            return Err(SimError::RoundLimitExceeded {
                limit: config.max_rounds,
            });
        }
    }

    // Undrained queues mean some protocol stopped listening too early.
    metrics.undelivered += queues.backlog_total();
    if knowledge.enabled() {
        // Fold over the dense participant space only (masked-out indices
        // never had tracker rows), in parallel when the run is wide
        // enough to make the fan-out pay.
        let fold = |i: usize| knowledge.knowledge_size(i);
        metrics.max_knowledge = if workers > 1 && k >= PARALLEL_SWEEP_MIN_LIVE {
            (0..k).into_par_iter().map(fold).max().unwrap_or(0)
        } else {
            (0..k).map(fold).max().unwrap_or(0)
        };
    }
    emitter.emit(RunEvent::Done {
        rounds: metrics.rounds,
        messages: metrics.messages,
    });
    metrics.phase_rounds = emitter.recorder.phase_rounds();
    let mut stats = emitter.recorder.engine_stats();
    stats.shards = 1;
    stats.dense_index_space = k;
    stats.knowledge_arena = knowledge.arena_len();
    stats.parallel_sweep_rounds = parallel_sweep_rounds;
    stats.inline_sweep_rounds = inline_sweep_rounds;
    stats.step_nanos = step_nanos;
    stats.route_nanos = route_nanos;
    stats.deliver_nanos = deliver_nanos;
    stats.learn_nanos = learn_nanos;

    // Merge compacted-away outputs with the final window's, restoring
    // knowledge-path order by dense index.
    for s in slots.into_iter() {
        if let Some(out) = s.output {
            done.push((s.idx, s.id, out));
        }
    }
    done.sort_unstable_by_key(|&(idx, _, _)| idx);
    let outputs: Vec<(NodeId, P::Output)> =
        done.into_iter().map(|(_, id, out)| (id, out)).collect();
    Ok(RunResult {
        outputs,
        metrics,
        engine: stats,
    })
}

/// Validates one envelope against the model constraints, in the same order
/// as the threaded oracle's `Coordinator::validate`. `src_idx` is the
/// index of the sender's row in `knowledge` (global dense index on the
/// monolithic path, shard-local under the sharded layout); `alive` is
/// always the full dense participant space, since destinations may live
/// anywhere.
pub(crate) fn validate(
    env: &WireEnvelope,
    src_idx: usize,
    config: &Config,
    knowledge: &KnowledgeTracker,
    alive: &[bool],
    round: u64,
) -> Result<(), Violation> {
    let fail = |kind| Violation {
        round,
        node: env.src,
        kind,
    };
    if env.msg.word_count() > config.max_words || env.msg.addr_count() > config.max_addrs {
        return Err(fail(ViolationKind::MessageTooLarge {
            words: env.msg.word_count(),
            addrs: env.msg.addr_count(),
        }));
    }
    if env.dst_idx == NO_INDEX {
        return Err(fail(ViolationKind::NoSuchNode { dst: env.dst }));
    }
    // DEAD_INDEX: the ID exists in the full network but its node is not
    // part of this (masked) run — dead from round zero, same taxonomy as
    // the oracle. Otherwise the dense index is in bounds of `alive`.
    if env.dst_idx == DEAD_INDEX || !alive[env.dst_idx as usize] {
        return Err(fail(ViolationKind::DeadRecipient { dst: env.dst }));
    }
    if !knowledge.knows(src_idx, env.dst) {
        return Err(fail(ViolationKind::UnknownAddressee { dst: env.dst }));
    }
    for &a in env.msg.addrs_slice() {
        if !knowledge.knows(src_idx, a) {
            return Err(fail(ViolationKind::UnknownCarriedAddress { carried: a }));
        }
    }
    Ok(())
}
