//! The batched step-function executor.
//!
//! One round has two phases. The **step phase** polls every live node's
//! [`NodeProtocol::step`] across a rayon worker pool — node state is
//! sharded into disjoint `&mut` chunks, each node writes into its own
//! reusable outbox, and the previous round's inboxes are disjoint spans of
//! a shared read-only arena, so the phase is data-race-free by
//! construction and deterministic regardless of worker count. The
//! **routing phase** is a stable counting sort by destination index
//! (validate + count, prefix-sum, scatter) with capacity checks per
//! bucket. With one worker it runs inline on the coordinating thread;
//! with more, the validate-and-count and scatter passes fan out over the
//! same worker pool using per-worker count arrays — worker `w`'s region
//! of every destination bucket precedes worker `w+1`'s, so bucket
//! contents stay in dense source order and transcripts are bit-identical
//! for every worker count. All routing state lives in reusable buffers
//! ([`RouteBuffers`](crate::route::RouteBuffers) and its per-worker
//! scratch rows); at steady state a round allocates nothing on the
//! single-worker path, and nothing per-message on the parallel path.
//!
//! Semantics are bit-for-bit those of the threaded oracle engine
//! (`crates/ncc/src/engine.rs`): same canonical routing order, same
//! validation order, same violation accounting, same metrics. The
//! differential tests in `crates/ncc/tests/differential.rs` hold the two
//! engines to that.

use crate::config::{CapacityPolicy, Config, Model};
use crate::error::{panic_message, SimError, Violation, ViolationKind};
use crate::knowledge::KnowledgeTracker;
use crate::message::NodeId;
use crate::metrics::RunMetrics;
use crate::network::{Network, RunResult};
use crate::protocol::{NodeProtocol, NodeSeed, RoundCtx, Status};
use crate::route::{QueueBuffers, RouteBuffers};
use crate::wire::{WireEnvelope, NO_INDEX, WIRE_ADDRS, WIRE_WORDS};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use rayon::prelude::*;
use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;

/// Raw pointer to the slot array, shared across routing workers. Each
/// worker touches only its own disjoint slot range, making the aliasing
/// sound by construction.
struct RawSlots<P: NodeProtocol>(*mut Slot<P>);
unsafe impl<P: NodeProtocol> Send for RawSlots<P> {}
unsafe impl<P: NodeProtocol> Sync for RawSlots<P> {}

impl<P: NodeProtocol> RawSlots<P> {
    /// # Safety
    ///
    /// The caller must hold exclusive access to slot `i` (each routing
    /// worker owns a disjoint slot range).
    #[allow(clippy::mut_from_ref)]
    unsafe fn slot(&self, i: usize) -> &mut Slot<P> {
        unsafe { &mut *self.0.add(i) }
    }
}

/// Raw pointer to the routing arena, shared across scatter workers. Each
/// `(worker, destination)` region is disjoint by the cursor construction
/// in [`RouteBuffers::seal_parallel`].
struct RawArena(*mut WireEnvelope);
unsafe impl Send for RawArena {}
unsafe impl Sync for RawArena {}

impl RawArena {
    /// # Safety
    ///
    /// `at` must lie in a region owned exclusively by the calling worker.
    unsafe fn write(&self, at: usize, env: WireEnvelope) {
        unsafe { self.0.add(at).write(env) };
    }
}

/// One node's state under the batched executor.
struct Slot<P: NodeProtocol> {
    id: NodeId,
    succ: Option<NodeId>,
    alive: bool,
    rounds: u64,
    inbox_start: u32,
    inbox_len: u32,
    rng: SmallRng,
    out: Vec<WireEnvelope>,
    proto: Option<P>,
    output: Option<P::Output>,
    panic: Option<String>,
}

/// Runs `factory`-built protocols on every participating node until all
/// have returned [`Status::Done`]. `participants` masks nodes out of the
/// network entirely (they are dead from round zero and the knowledge path
/// links across them); `None` means everyone participates.
pub(crate) fn run<P, F>(
    net: &Network,
    participants: Option<&[bool]>,
    factory: F,
) -> Result<RunResult<P::Output>, SimError>
where
    P: NodeProtocol,
    F: Fn(&NodeSeed<'_>) -> P + Sync,
{
    let config: &Config = net.config();
    let ids = net.ids_in_path_order();
    let n = ids.len();
    let cap = config.capacity(n);
    assert!(
        config.max_words <= WIRE_WORDS && config.max_addrs <= WIRE_ADDRS,
        "batched engine: configured message budget ({} words, {} addrs) \
         exceeds the inline wire budget ({WIRE_WORDS} words, {WIRE_ADDRS} addrs)",
        config.max_words,
        config.max_addrs,
    );
    if let Some(mask) = participants {
        assert_eq!(mask.len(), n, "participant mask length must equal n");
    }
    let participating = |i: usize| participants.is_none_or(|m| m[i]);

    // NCC1 common knowledge: all participating IDs, sorted.
    let all_ids: Option<Arc<Vec<NodeId>>> = match config.model {
        Model::Ncc1 => {
            let mut sorted: Vec<NodeId> = (0..n)
                .filter(|&i| participating(i))
                .map(|i| ids[i])
                .collect();
            sorted.sort_unstable();
            Some(Arc::new(sorted))
        }
        Model::Ncc0 => None,
    };
    let all_ids_slice: Option<&[NodeId]> = all_ids.as_deref().map(Vec::as_slice);

    // KT0 knowledge, seeded along the path of *participating* nodes.
    let track = config.track_knowledge && config.model == Model::Ncc0;
    let mut knowledge = KnowledgeTracker::new(n, track);
    crate::knowledge::seed_path(&mut knowledge, ids, participating);

    // Build the node slots. The per-node RNG stream derivation matches
    // `NodeHandle::new`, so a protocol draws identical randomness on
    // either engine.
    let mut slots: Vec<Slot<P>> = Vec::with_capacity(n);
    let mut live = 0usize;
    for i in 0..n {
        let alive = participating(i);
        let succ = (i + 1..n).find(|&j| participating(j)).map(|j| ids[j]);
        let seed = NodeSeed {
            id: ids[i],
            n,
            capacity: cap,
            model: config.model,
            initial_successor: if alive { succ } else { None },
            all_ids: all_ids.as_ref(),
        };
        let mix = config
            .seed
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(ids[i].wrapping_mul(0xBF58_476D_1CE4_E5B9));
        live += alive as usize;
        slots.push(Slot {
            id: ids[i],
            succ: seed.initial_successor,
            alive,
            rounds: 0,
            inbox_start: 0,
            inbox_len: 0,
            rng: SmallRng::seed_from_u64(mix),
            out: Vec::with_capacity(cap + 1),
            proto: alive.then(|| factory(&seed)),
            output: None,
            panic: None,
        });
    }

    let mut alive_now: Vec<bool> = (0..n).map(&participating).collect();
    let mut buffers = RouteBuffers::new(n);
    let queue_mode = config.capacity_policy == CapacityPolicy::Queue;
    let strict = config.capacity_policy == CapacityPolicy::Strict;
    let mut queues = QueueBuffers::new(if queue_mode { n } else { 0 });

    let mut metrics = RunMetrics {
        capacity: cap,
        ..RunMetrics::default()
    };
    // Pre-reserve the full (capped) trace so recording a round can never
    // allocate inside the round loop.
    metrics
        .messages_per_round
        .reserve(crate::metrics::ROUND_TRACE_LIMIT);

    let workers = match config.worker_threads {
        0 => rayon::current_num_threads(),
        w => w,
    }
    .clamp(1, n.max(1));
    let chunk = n.div_ceil(workers);
    let resolver = net.resolver();

    while live > 0 {
        // --- Step phase: poll every live protocol in parallel. ---
        let finished = AtomicUsize::new(0);
        let panicked = AtomicBool::new(false);
        {
            let arena: &[WireEnvelope] = if queue_mode {
                &queues.inbox
            } else {
                &buffers.arena
            };
            let step_one = |slot: &mut Slot<P>| {
                if !slot.alive {
                    return;
                }
                let inbox = &arena[slot.inbox_start as usize..][..slot.inbox_len as usize];
                slot.out.clear();
                let status = {
                    let Slot {
                        id,
                        succ,
                        rounds,
                        rng,
                        out,
                        proto,
                        ..
                    } = slot;
                    let mut ctx = RoundCtx {
                        id: *id,
                        n,
                        capacity: cap,
                        model: config.model,
                        initial_successor: *succ,
                        all_ids: all_ids_slice,
                        round: *rounds,
                        rng,
                        inbox,
                        out,
                        resolver,
                    };
                    let proto = proto.as_mut().expect("live node without protocol");
                    std::panic::catch_unwind(AssertUnwindSafe(|| proto.step(&mut ctx)))
                };
                match status {
                    Ok(Status::Continue) => slot.rounds += 1,
                    Ok(Status::Done(out)) => {
                        debug_assert!(
                            slot.out.is_empty(),
                            "node {} staged sends in a Done step (discarded)",
                            slot.id
                        );
                        slot.output = Some(out);
                        slot.proto = None;
                        slot.alive = false;
                        slot.out.clear();
                        finished.fetch_add(1, Ordering::Relaxed);
                    }
                    Err(payload) => {
                        slot.panic = Some(panic_message(payload.as_ref()));
                        slot.proto = None;
                        slot.alive = false;
                        slot.out.clear();
                        panicked.store(true, Ordering::Relaxed);
                        finished.fetch_add(1, Ordering::Relaxed);
                    }
                }
            };
            if workers == 1 {
                // Inline fast path: no dispatch, no allocation.
                for slot in slots.iter_mut() {
                    step_one(slot);
                }
            } else {
                slots.par_chunks_mut(chunk).for_each(|chunk| {
                    for slot in chunk {
                        step_one(slot);
                    }
                });
            }
        }
        if panicked.load(Ordering::Relaxed) {
            // Deterministic attribution: blame the lowest dense index.
            let (node, message) = slots
                .iter_mut()
                .find_map(|s| s.panic.take().map(|m| (s.id, m)))
                .expect("panic flag set without a panic record");
            return Err(SimError::NodePanic { node, message });
        }
        let newly_done = finished.load(Ordering::Relaxed);
        if newly_done > 0 {
            live -= newly_done;
            for (i, slot) in slots.iter().enumerate() {
                alive_now[i] = slot.alive;
            }
        }
        if live == 0 {
            break;
        }

        // --- Routing phase: validate + count, prefix-sum, stable
        // scatter. One worker runs the allocation-free inline path; more
        // workers fan both passes out over disjoint slot ranges with
        // per-worker count arrays (bit-identical transcripts either way —
        // worker `w`'s region of every bucket precedes worker `w+1`'s, so
        // bucket contents stay in dense source order).
        let round = metrics.rounds;
        let mut round_messages: u64 = 0;
        if workers == 1 {
            // --- Pass 1 (inline): validate and count per bucket. ---
            buffers.begin_round();
            for (src_idx, slot) in slots.iter_mut().enumerate() {
                let attempted = slot.out.len();
                for env in slot.out.iter_mut() {
                    let deliver =
                        match validate(env, src_idx, config, &knowledge, &alive_now, round) {
                            Ok(()) => true,
                            Err(v) => {
                                metrics.record_violation(strict, v)?;
                                // Lenient policies still deliver when
                                // physically possible (destination exists
                                // and is alive).
                                env.dst_idx != NO_INDEX && alive_now[env.dst_idx as usize]
                            }
                        };
                    if deliver {
                        round_messages += 1;
                        metrics.words += env.msg.size_words() as u64;
                        buffers.counts[env.dst_idx as usize] += 1;
                    } else {
                        env.dst_idx = NO_INDEX;
                    }
                }
                if attempted > cap {
                    metrics.record_violation(
                        strict,
                        Violation {
                            round,
                            node: slot.id,
                            kind: ViolationKind::SendCapacity {
                                sent: attempted,
                                cap,
                            },
                        },
                    )?;
                }
                metrics.max_sent_per_round = metrics.max_sent_per_round.max(attempted);
            }

            // --- Pass 2 (inline): prefix-sum offsets, stable scatter. ---
            buffers.seal_counts();
            for slot in slots.iter_mut() {
                for env in slot.out.iter() {
                    if env.dst_idx != NO_INDEX {
                        buffers.push(*env);
                    }
                }
                slot.out.clear();
            }
        } else {
            // --- Pass 1 (parallel): per-worker validate and count. ---
            buffers.begin_parallel_round(workers);
            {
                let slots_ptr = RawSlots(slots.as_mut_ptr());
                let knowledge = &knowledge;
                let alive_now = &alive_now;
                buffers.scratch[..workers]
                    .par_chunks_mut(1)
                    .enumerate()
                    .for_each(|(w, scratch_row)| {
                        let s = &mut scratch_row[0];
                        s.begin_round(n);
                        let lo = (w * chunk).min(n);
                        let hi = ((w + 1) * chunk).min(n);
                        for src_idx in lo..hi {
                            // Sound: this worker owns slot range [lo, hi).
                            let slot = unsafe { slots_ptr.slot(src_idx) };
                            let attempted = slot.out.len();
                            for env in slot.out.iter_mut() {
                                let deliver = match validate(
                                    env, src_idx, config, knowledge, alive_now, round,
                                ) {
                                    Ok(()) => true,
                                    Err(v) => {
                                        s.violations.push(v);
                                        env.dst_idx != NO_INDEX && alive_now[env.dst_idx as usize]
                                    }
                                };
                                if deliver {
                                    s.round_messages += 1;
                                    s.words += env.msg.size_words() as u64;
                                    s.counts[env.dst_idx as usize] += 1;
                                } else {
                                    env.dst_idx = NO_INDEX;
                                }
                            }
                            if attempted > cap {
                                s.violations.push(Violation {
                                    round,
                                    node: slot.id,
                                    kind: ViolationKind::SendCapacity {
                                        sent: attempted,
                                        cap,
                                    },
                                });
                            }
                            s.max_sent = s.max_sent.max(attempted);
                        }
                    });
            }
            // Replay violations in canonical (dense source) order: worker
            // ranges are contiguous and each worker records in slot order,
            // so concatenation is exactly the sequential order. Strict
            // policy aborts on the same first violation as the inline path.
            for w in 0..workers {
                for v in buffers.scratch[w].violations.drain(..) {
                    metrics.record_violation(strict, v)?;
                }
            }
            for s in &buffers.scratch[..workers] {
                round_messages += s.round_messages;
                metrics.words += s.words;
                metrics.max_sent_per_round = metrics.max_sent_per_round.max(s.max_sent);
            }

            // --- Pass 2 (parallel): fold counts, then scatter through
            // per-worker cursors into disjoint arena regions. ---
            buffers.seal_parallel(workers);
            {
                let slots_ptr = RawSlots(slots.as_mut_ptr());
                let arena_ptr = RawArena(buffers.arena.as_mut_ptr());
                buffers.scratch[..workers]
                    .par_chunks_mut(1)
                    .enumerate()
                    .for_each(|(w, scratch_row)| {
                        let s = &mut scratch_row[0];
                        let lo = (w * chunk).min(n);
                        let hi = ((w + 1) * chunk).min(n);
                        for src_idx in lo..hi {
                            let slot = unsafe { slots_ptr.slot(src_idx) };
                            for env in slot.out.iter() {
                                if env.dst_idx != NO_INDEX {
                                    let d = env.dst_idx as usize;
                                    let at = s.cursors[d] as usize;
                                    // Sound: (worker, destination) regions
                                    // are disjoint by cursor construction.
                                    unsafe { arena_ptr.write(at, *env) };
                                    s.cursors[d] += 1;
                                }
                            }
                            slot.out.clear();
                        }
                    });
            }
        }

        // --- Receive side: capacity policy per bucket. ---
        if queue_mode {
            // Flat-arena FIFO backlog: carried spans merge with the round's
            // buckets, `cap` envelopes deliver, the rest re-queue — no
            // per-node deques, no steady-state allocation.
            queues.begin_round();
            for (i, slot) in slots.iter_mut().enumerate() {
                let (start, take, queued) = queues.deliver(i, buffers.bucket(i), cap);
                metrics.max_queue_len = metrics.max_queue_len.max(queued);
                slot.inbox_start = start;
                slot.inbox_len = take;
            }
            queues.end_round();
        } else {
            for i in 0..n {
                let received = buffers.counts[i] as usize;
                if received > cap {
                    metrics.record_violation(
                        strict,
                        Violation {
                            round,
                            node: ids[i],
                            kind: ViolationKind::ReceiveCapacity { received, cap },
                        },
                    )?;
                }
                let (start, len) = buffers.span(i);
                slots[i].inbox_start = start;
                slots[i].inbox_len = len;
            }
        }

        // --- Knowledge propagation + delivery metrics. ---
        let delivery_arena: &[WireEnvelope] = if queue_mode {
            &queues.inbox
        } else {
            &buffers.arena
        };
        for (i, slot) in slots.iter().enumerate() {
            let delivered = slot.inbox_len as usize;
            metrics.max_received_per_round = metrics.max_received_per_round.max(delivered);
            if knowledge.enabled() {
                let inbox = &delivery_arena[slot.inbox_start as usize..][..delivered];
                for env in inbox {
                    knowledge.learn(i, env.src);
                    for &a in env.msg.addrs_slice() {
                        knowledge.learn(i, a);
                    }
                }
            }
        }

        metrics.record_round(round_messages);
        if metrics.rounds > config.max_rounds {
            return Err(SimError::RoundLimitExceeded {
                limit: config.max_rounds,
            });
        }

        // --- Deliver: messages staged for nodes that died this round are
        // undeliverable (possible only via queue backlogs). ---
        for slot in slots.iter_mut() {
            if !slot.alive && slot.inbox_len > 0 {
                metrics.undelivered += slot.inbox_len as u64;
                slot.inbox_len = 0;
            }
        }
    }

    // Undrained queues mean some protocol stopped listening too early.
    metrics.undelivered += queues.backlog_total();
    if knowledge.enabled() {
        metrics.max_knowledge = (0..n)
            .map(|i| knowledge.knowledge_size(i))
            .max()
            .unwrap_or(0);
    }

    let outputs: Vec<(NodeId, P::Output)> = slots
        .into_iter()
        .filter_map(|s| s.output.map(|out| (s.id, out)))
        .collect();
    Ok(RunResult { outputs, metrics })
}

/// Validates one envelope against the model constraints, in the same order
/// as the threaded oracle's `Coordinator::validate`.
fn validate(
    env: &WireEnvelope,
    src_idx: usize,
    config: &Config,
    knowledge: &KnowledgeTracker,
    alive: &[bool],
    round: u64,
) -> Result<(), Violation> {
    let fail = |kind| Violation {
        round,
        node: env.src,
        kind,
    };
    if env.msg.word_count() > config.max_words || env.msg.addr_count() > config.max_addrs {
        return Err(fail(ViolationKind::MessageTooLarge {
            words: env.msg.word_count(),
            addrs: env.msg.addr_count(),
        }));
    }
    if env.dst_idx == NO_INDEX {
        return Err(fail(ViolationKind::NoSuchNode { dst: env.dst }));
    }
    if !alive[env.dst_idx as usize] {
        return Err(fail(ViolationKind::DeadRecipient { dst: env.dst }));
    }
    if !knowledge.knows(src_idx, env.dst) {
        return Err(fail(ViolationKind::UnknownAddressee { dst: env.dst }));
    }
    for &a in env.msg.addrs_slice() {
        if !knowledge.knows(src_idx, a) {
            return Err(fail(ViolationKind::UnknownCarriedAddress { carried: a }));
        }
    }
    Ok(())
}
