//! The typed run-event stream: one source of truth for everything that
//! happens during a protocol run.
//!
//! Both engines — the batched executor (`batch.rs`) and the threaded
//! oracle — narrate a run as a sequence of [`RunEvent`]s pushed
//! into a [`Sink`]. The stream is **engine-invariant in its semantic
//! projection** ([`RunEvent::semantic`]): for the same protocol, config
//! and seed, the two engines emit the same semantic events in the same
//! order — the bit-identical-transcript guarantee extended to events.
//! Executor scheduling detail (the adaptive routing path of a round, slot
//! compactions) rides the same stream but is explicitly outside the
//! semantic projection.
//!
//! The stream is also the *only* source of the executor-internal
//! statistics: [`EngineStats`] is derived by folding the events through a
//! [`MetricsRecorder`] — the engines no longer keep separate counters, so
//! the stats can never drift from what the stream says happened. The same
//! fold produces the per-phase round breakdown
//! ([`RunMetrics::phase_rounds`](crate::RunMetrics)).
//!
//! Event ordering within one completed round `r`:
//!
//! 1. [`RunEvent::NodeJoined`] / [`RunEvent::NodeRecovered`] — scenario
//!    churn applied before the round's step phase, in schedule order;
//! 2. [`RunEvent::PhaseChange`] / [`RunEvent::StageTransition`] — protocol
//!    marks from the round's step phase (deduplicated: only *changes*
//!    are emitted, in dense node-index order);
//! 3. [`RunEvent::NodeCrashed`] — scenario crashes taking effect after
//!    the round's step phase, in schedule order;
//! 4. [`RunEvent::Compaction`] — batched executor only;
//! 5. [`RunEvent::FaultInjected`] — the round's message-fault tally,
//!    emitted only when the scenario engine perturbed something;
//! 6. [`RunEvent::RoundCompleted`].
//!
//! One [`RunEvent::Done`] closes the engine stream; driver-level events
//! (certification) may follow it on the same sink.

use crate::metrics::{EngineStats, PhaseRounds};

/// The batched executor's dense/sparse classification of a round. A pure
/// function of the previous round's delivered volume — worker-count-
/// invariant, so event streams stay bit-identical across pool sizes —
/// surfaced so the adaptive router stays observable and testable. Whether
/// a dense round *actually* fans out over the pool is gated separately on
/// the worker count; both execution paths produce identical transcripts.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RouteMode {
    /// Sparse round: routed on the allocation-free sequential path.
    Inline,
    /// Dense round: eligible for the per-worker count/scatter routing path
    /// (executed inline anyway when the pool has a single worker).
    Parallel,
    /// The engine has no adaptive router (the threaded oracle).
    Unspecified,
}

/// One event in a run's stream.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RunEvent {
    /// A synchronous round finished. `round` is 0-based; `delivered` is
    /// the number of messages delivered this round; `live` is the number
    /// of nodes still running after the round's step phase. `route_mode`
    /// is executor scheduling detail (see [`RunEvent::semantic`]).
    RoundCompleted {
        /// 0-based index of the completed round.
        round: u64,
        /// Messages delivered this round.
        delivered: u64,
        /// Nodes still live after the round's step phase.
        live: usize,
        /// Routing path the batched executor chose (scheduling detail).
        route_mode: RouteMode,
    },
    /// The protocol moved to a new internal stage (fine-grained marker,
    /// [`RoundCtx::mark_stage`](crate::RoundCtx::mark_stage)).
    StageTransition {
        /// Round in which the transition was observed.
        round: u64,
        /// Stage label.
        stage: &'static str,
    },
    /// The protocol entered a new macro phase (Algorithm 6's
    /// data-dependent phases;
    /// [`RoundCtx::mark_phase`](crate::RoundCtx::mark_phase)). Drives the
    /// per-phase round breakdown in
    /// [`RunMetrics::phase_rounds`](crate::RunMetrics).
    PhaseChange {
        /// Round in which the phase began.
        round: u64,
        /// Phase label.
        phase: &'static str,
    },
    /// The batched executor compacted its live-slot window (a memory
    /// layout decision; never semantic).
    Compaction {
        /// Round during which the compaction fired.
        round: u64,
        /// Live slots surviving the compaction.
        live: usize,
    },
    /// The scenario engine perturbed this round's sealed traffic. Emitted
    /// at most once per round, only when some counter is non-zero — so an
    /// empty schedule leaves the stream bit-identical to a scenario-free
    /// run. Deterministic given `(seed, scenario)`: the faults are drawn
    /// from a per-round RNG in dense source order, worker- and
    /// shard-invariant.
    FaultInjected {
        /// Round whose sealed traffic was perturbed.
        round: u64,
        /// Sealed messages discarded before delivery.
        dropped: u64,
        /// Extra copies injected before delivery.
        duplicated: u64,
        /// Destination buckets whose fresh FIFO prefix was permuted
        /// (queue policy only).
        reordered: u64,
    },
    /// A node was crash-stopped (or crash-paused, when a matching
    /// [`NodeRecovered`](RunEvent::NodeRecovered) follows) by the
    /// scenario schedule. Takes effect after the node's step in `round`:
    /// the node participates in `round` and is unreachable thereafter —
    /// exactly the observable footprint of a protocol that voluntarily
    /// halts at `round`.
    NodeCrashed {
        /// Round after whose step phase the node went down.
        round: u64,
        /// Path position of the node (the schedule's addressing space).
        node: usize,
    },
    /// A crashed node came back at the start of `round` per the scenario
    /// schedule: its step machine resumes where it stopped, its queued
    /// backlog survives, and messages sent while it was down are gone.
    NodeRecovered {
        /// Round at whose start the node rejoined.
        round: u64,
        /// Path position of the node.
        node: usize,
    },
    /// A scheduled churn join: the node sat out every earlier round
    /// (unreachable, like a dead node) and starts its protocol at `round`.
    NodeJoined {
        /// Round at whose start the node began participating.
        round: u64,
        /// Path position of the node.
        node: usize,
    },
    /// Driver-level: the max-flow certification began.
    CertificationStarted {
        /// Number of nodes whose thresholds are being certified.
        nodes: usize,
    },
    /// Driver-level: the max-flow certification finished.
    CertificationResult {
        /// Did every checked pair satisfy its threshold?
        satisfied: bool,
        /// Number of node pairs flow-checked.
        pairs_checked: usize,
    },
    /// The engine's round loop finished (all nodes retired). Driver-level
    /// events may still follow on the same sink.
    Done {
        /// Total rounds executed.
        rounds: u64,
        /// Total messages delivered.
        messages: u64,
    },
}

impl RunEvent {
    /// The engine-invariant projection of this event: strips the
    /// executor-scheduling detail (`route_mode`) and drops executor-only
    /// events ([`RunEvent::Compaction`]). Two engines running the same
    /// protocol emit streams whose semantic projections are identical —
    /// the differential suites hold them to it.
    pub fn semantic(&self) -> Option<RunEvent> {
        match self {
            RunEvent::Compaction { .. } => None,
            RunEvent::RoundCompleted {
                round,
                delivered,
                live,
                ..
            } => Some(RunEvent::RoundCompleted {
                round: *round,
                delivered: *delivered,
                live: *live,
                route_mode: RouteMode::Unspecified,
            }),
            other => Some(other.clone()),
        }
    }

    /// One JSON object describing the event (hand-rolled: the workspace
    /// is offline, and every field is a number, bool or label — labels
    /// are string-escaped, since protocols may mark arbitrary text).
    pub fn to_json(&self) -> String {
        fn esc(label: &str) -> std::borrow::Cow<'_, str> {
            if label
                .chars()
                .all(|c| c != '"' && c != '\\' && !c.is_control())
            {
                return label.into();
            }
            let mut out = String::with_capacity(label.len() + 8);
            for c in label.chars() {
                match c {
                    '"' => out.push_str("\\\""),
                    '\\' => out.push_str("\\\\"),
                    c if c.is_control() => out.push_str(&format!("\\u{:04x}", c as u32)),
                    c => out.push(c),
                }
            }
            out.into()
        }
        match self {
            RunEvent::RoundCompleted {
                round,
                delivered,
                live,
                route_mode,
            } => format!(
                "{{\"event\":\"round\",\"round\":{round},\"delivered\":{delivered},\
                 \"live\":{live},\"route\":\"{}\"}}",
                match route_mode {
                    RouteMode::Inline => "inline",
                    RouteMode::Parallel => "parallel",
                    RouteMode::Unspecified => "unspecified",
                }
            ),
            RunEvent::StageTransition { round, stage } => {
                format!(
                    "{{\"event\":\"stage\",\"round\":{round},\"stage\":\"{}\"}}",
                    esc(stage)
                )
            }
            RunEvent::PhaseChange { round, phase } => {
                format!(
                    "{{\"event\":\"phase\",\"round\":{round},\"phase\":\"{}\"}}",
                    esc(phase)
                )
            }
            RunEvent::Compaction { round, live } => {
                format!("{{\"event\":\"compaction\",\"round\":{round},\"live\":{live}}}")
            }
            RunEvent::FaultInjected {
                round,
                dropped,
                duplicated,
                reordered,
            } => format!(
                "{{\"event\":\"fault\",\"round\":{round},\"dropped\":{dropped},\
                 \"duplicated\":{duplicated},\"reordered\":{reordered}}}"
            ),
            RunEvent::NodeCrashed { round, node } => {
                format!("{{\"event\":\"node_crashed\",\"round\":{round},\"node\":{node}}}")
            }
            RunEvent::NodeRecovered { round, node } => {
                format!("{{\"event\":\"node_recovered\",\"round\":{round},\"node\":{node}}}")
            }
            RunEvent::NodeJoined { round, node } => {
                format!("{{\"event\":\"node_joined\",\"round\":{round},\"node\":{node}}}")
            }
            RunEvent::CertificationStarted { nodes } => {
                format!("{{\"event\":\"certification_started\",\"nodes\":{nodes}}}")
            }
            RunEvent::CertificationResult {
                satisfied,
                pairs_checked,
            } => format!(
                "{{\"event\":\"certification_result\",\"satisfied\":{satisfied},\
                 \"pairs_checked\":{pairs_checked}}}"
            ),
            RunEvent::Done { rounds, messages } => {
                format!("{{\"event\":\"done\",\"rounds\":{rounds},\"messages\":{messages}}}")
            }
        }
    }
}

/// The semantic projection of a whole stream (see [`RunEvent::semantic`]).
pub fn semantic_stream(events: &[RunEvent]) -> Vec<RunEvent> {
    events.iter().filter_map(RunEvent::semantic).collect()
}

/// Reborrows an optional sink so it can be handed to a callee without
/// giving it up — the standard move for drivers that run an engine and
/// then keep emitting driver-level events into the same sink.
pub fn reborrow<'a, 'b: 'a>(
    sink: &'a mut Option<&'b mut (dyn Sink + 'b)>,
) -> Option<&'a mut (dyn Sink + 'a)> {
    match sink {
        Some(s) => Some(&mut **s),
        None => None,
    }
}

/// A consumer of [`RunEvent`]s. Sinks are driven from the engine's
/// coordinating thread, strictly in stream order; `Send` so runs can be
/// driven from a worker thread (the facade's streaming sessions).
pub trait Sink: Send {
    /// Receives one event. Called synchronously from the engine's round
    /// loop — a slow sink slows the run (by design: that is what makes
    /// pull-based stepping possible).
    fn emit(&mut self, event: &RunEvent);
}

/// Discards every event. The zero-cost way to exercise the observed code
/// path; `engine_bench` holds its round-loop overhead under 2%.
#[derive(Clone, Copy, Debug, Default)]
pub struct NullSink;

impl Sink for NullSink {
    fn emit(&mut self, _event: &RunEvent) {}
}

/// Folds a stream into aggregate statistics: [`EngineStats`], the
/// per-phase round breakdown, and round/message totals. This is the
/// **only** producer of [`EngineStats`] — both engines derive their
/// reported stats by running one of these internally, so the stats are a
/// pure function of the event stream.
#[derive(Clone, Debug, Default)]
pub struct MetricsRecorder {
    rounds: u64,
    messages: u64,
    stats: EngineStats,
    phases: Vec<PhaseRounds>,
    open_phase: Option<(&'static str, u64)>,
    finished: bool,
}

impl MetricsRecorder {
    /// A fresh recorder.
    pub fn new() -> Self {
        MetricsRecorder::default()
    }

    /// Rounds completed so far.
    pub fn rounds(&self) -> u64 {
        self.rounds
    }

    /// Messages delivered so far.
    pub fn messages(&self) -> u64 {
        self.messages
    }

    /// True once the stream's [`RunEvent::Done`] has been folded.
    pub fn finished(&self) -> bool {
        self.finished
    }

    /// The executor-internal statistics derived from the stream.
    pub fn engine_stats(&self) -> EngineStats {
        self.stats.clone()
    }

    /// The per-phase round breakdown: one entry per
    /// [`RunEvent::PhaseChange`], charged the rounds up to the next phase
    /// (or the end of the run). When the first phase is marked at round 0
    /// the entries sum to the total round count. A still-open phase is
    /// charged the rounds seen so far.
    pub fn phase_rounds(&self) -> Vec<PhaseRounds> {
        let mut phases = self.phases.clone();
        if let Some((phase, start)) = self.open_phase {
            phases.push(PhaseRounds {
                phase,
                rounds: self.rounds - start,
            });
        }
        phases
    }
}

impl Sink for MetricsRecorder {
    fn emit(&mut self, event: &RunEvent) {
        match *event {
            RunEvent::RoundCompleted {
                round,
                delivered,
                route_mode,
                ..
            } => {
                self.rounds = round + 1;
                self.messages += delivered;
                match route_mode {
                    RouteMode::Inline => self.stats.inline_route_rounds += 1,
                    RouteMode::Parallel => self.stats.parallel_route_rounds += 1,
                    RouteMode::Unspecified => {}
                }
            }
            RunEvent::Compaction { live, .. } => {
                self.stats.compactions += 1;
                self.stats.compaction_live.push(live);
            }
            RunEvent::PhaseChange { round, phase } => {
                if let Some((open, start)) = self.open_phase.take() {
                    self.phases.push(PhaseRounds {
                        phase: open,
                        rounds: round - start,
                    });
                }
                self.open_phase = Some((phase, round));
            }
            RunEvent::FaultInjected {
                dropped,
                duplicated,
                reordered,
                ..
            } => {
                self.stats.faults_dropped += dropped;
                self.stats.faults_duplicated += duplicated;
                self.stats.faults_reordered += reordered;
            }
            RunEvent::NodeCrashed { .. } => self.stats.crashes += 1,
            RunEvent::NodeRecovered { .. } => self.stats.recoveries += 1,
            RunEvent::NodeJoined { .. } => self.stats.joins += 1,
            RunEvent::Done { rounds, .. } => {
                if let Some((open, start)) = self.open_phase.take() {
                    self.phases.push(PhaseRounds {
                        phase: open,
                        rounds: rounds - start,
                    });
                }
                self.finished = true;
            }
            _ => {}
        }
    }
}

/// Records the raw stream. Clones share one buffer, so a test (or
/// operator script) can keep a handle while the builder consumes the
/// sink: `realization.observe(recording.clone())`.
#[derive(Clone, Debug, Default)]
// detlint: allow(relaxed-atomic) — the engines emit into sinks sequentially from the round loop (single writer); the lock exists so tests can snapshot the buffer after the run, and contention can therefore never reorder events
pub struct Recording(std::sync::Arc<std::sync::Mutex<Vec<RunEvent>>>);

impl Recording {
    /// A fresh, empty recording.
    pub fn new() -> Self {
        Recording::default()
    }

    /// A snapshot of the events recorded so far.
    ///
    /// # Panics
    ///
    /// Panics if a previous holder of the buffer panicked mid-push.
    pub fn events(&self) -> Vec<RunEvent> {
        self.0.lock().expect("recording poisoned").clone()
    }
}

impl Sink for Recording {
    fn emit(&mut self, event: &RunEvent) {
        self.0
            .lock()
            .expect("recording poisoned")
            .push(event.clone());
    }
}

/// Streams every event as one JSON object per line — the
/// machine-readable live feed (pipe it to a file, a socket, `jq`).
/// Write errors are sticky and silent: observability must never abort a
/// six-digit run half-way through.
#[derive(Debug)]
pub struct JsonlSink<W: std::io::Write + Send> {
    writer: W,
    failed: bool,
}

impl<W: std::io::Write + Send> JsonlSink<W> {
    /// Streams events into `writer`.
    pub fn new(writer: W) -> Self {
        JsonlSink {
            writer,
            failed: false,
        }
    }

    /// True if any write failed (the sink stopped emitting).
    pub fn failed(&self) -> bool {
        self.failed
    }

    /// Recovers the writer (flushing is the caller's business).
    pub fn into_inner(self) -> W {
        self.writer
    }
}

impl<W: std::io::Write + Send> Sink for JsonlSink<W> {
    fn emit(&mut self, event: &RunEvent) {
        if self.failed {
            return;
        }
        if writeln!(self.writer, "{}", event.to_json()).is_err() {
            self.failed = true;
        }
    }
}

/// Human-readable progress lines: every `every`-th round, every phase
/// change, and the final summary. The default target is stderr — watch a
/// six-digit run live instead of post-hoc.
#[derive(Debug)]
pub struct ProgressSink<W: std::io::Write + Send> {
    writer: W,
    every: u64,
}

impl ProgressSink<std::io::Stderr> {
    /// Progress to stderr, one line per `every` rounds (0 = every round).
    pub fn stderr(every: u64) -> Self {
        ProgressSink::new(std::io::stderr(), every)
    }
}

impl<W: std::io::Write + Send> ProgressSink<W> {
    /// Progress into `writer`, one line per `every` rounds (0 = every
    /// round).
    pub fn new(writer: W, every: u64) -> Self {
        ProgressSink {
            writer,
            every: every.max(1),
        }
    }
}

impl<W: std::io::Write + Send> Sink for ProgressSink<W> {
    fn emit(&mut self, event: &RunEvent) {
        let _ = match event {
            // Rounds print 0-based, matching `PhaseChange`, `JsonlSink`
            // and `RoundSnapshot::round`.
            RunEvent::RoundCompleted {
                round,
                delivered,
                live,
                ..
            } if (round + 1) % self.every == 0 => writeln!(
                self.writer,
                "round {round:>8}: {delivered} delivered, {live} live"
            ),
            RunEvent::PhaseChange { round, phase } => {
                writeln!(self.writer, "round {:>8}: phase -> {phase}", round)
            }
            RunEvent::FaultInjected {
                round,
                dropped,
                duplicated,
                reordered,
            } => writeln!(
                self.writer,
                "round {round:>8}: faults injected \
                 ({dropped} dropped, {duplicated} duplicated, {reordered} reordered)"
            ),
            RunEvent::NodeCrashed { round, node } => {
                writeln!(self.writer, "round {round:>8}: node {node} crashed")
            }
            RunEvent::NodeRecovered { round, node } => {
                writeln!(self.writer, "round {round:>8}: node {node} recovered")
            }
            RunEvent::NodeJoined { round, node } => {
                writeln!(self.writer, "round {round:>8}: node {node} joined")
            }
            RunEvent::CertificationStarted { nodes } => {
                writeln!(self.writer, "certifying {nodes} nodes ...")
            }
            RunEvent::CertificationResult {
                satisfied,
                pairs_checked,
            } => writeln!(
                self.writer,
                "certification: satisfied={satisfied} ({pairs_checked} pairs)"
            ),
            RunEvent::Done { rounds, messages } => {
                writeln!(self.writer, "done: {rounds} rounds, {messages} messages")
            }
            _ => Ok(()),
        };
    }
}

/// The engines' internal emission point: every event goes through the
/// always-on [`MetricsRecorder`] (the sole source of [`EngineStats`] and
/// the phase breakdown) and then to the caller's sink, if any. Also owns
/// the mark deduplication both engines share, so their streams stay
/// bit-identical by construction.
pub(crate) struct Emitter<'a> {
    pub(crate) recorder: MetricsRecorder,
    sink: Option<&'a mut dyn Sink>,
    last_phase: Option<&'static str>,
    last_stage: Option<&'static str>,
}

impl<'a> Emitter<'a> {
    pub(crate) fn new(sink: Option<&'a mut dyn Sink>) -> Self {
        Emitter {
            recorder: MetricsRecorder::new(),
            sink,
            last_phase: None,
            last_stage: None,
        }
    }

    pub(crate) fn emit(&mut self, event: RunEvent) {
        self.recorder.emit(&event);
        if let Some(sink) = self.sink.as_mut() {
            sink.emit(&event);
        }
    }

    /// Emits one node's round marks, suppressing repeats: only a *change*
    /// of phase/stage becomes an event. Engines call this in dense
    /// node-index order, so the deduplicated stream is canonical.
    pub(crate) fn emit_marks(
        &mut self,
        round: u64,
        phase: Option<&'static str>,
        stage: Option<&'static str>,
    ) {
        if let Some(phase) = phase {
            if self.last_phase != Some(phase) {
                self.last_phase = Some(phase);
                self.emit(RunEvent::PhaseChange { round, phase });
            }
        }
        if let Some(stage) = stage {
            if self.last_stage != Some(stage) {
                self.last_stage = Some(stage);
                self.emit(RunEvent::StageTransition { round, stage });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round(round: u64, delivered: u64, live: usize, route_mode: RouteMode) -> RunEvent {
        RunEvent::RoundCompleted {
            round,
            delivered,
            live,
            route_mode,
        }
    }

    #[test]
    fn recorder_derives_engine_stats_from_the_stream() {
        let mut rec = MetricsRecorder::new();
        rec.emit(&round(0, 10, 4, RouteMode::Inline));
        rec.emit(&RunEvent::Compaction { round: 1, live: 2 });
        rec.emit(&round(1, 2000, 2, RouteMode::Parallel));
        rec.emit(&round(2, 1, 1, RouteMode::Inline));
        rec.emit(&RunEvent::Done {
            rounds: 3,
            messages: 2011,
        });
        let stats = rec.engine_stats();
        assert_eq!(stats.inline_route_rounds, 2);
        assert_eq!(stats.parallel_route_rounds, 1);
        assert_eq!(stats.compactions, 1);
        assert_eq!(stats.compaction_live, vec![2]);
        assert_eq!(rec.rounds(), 3);
        assert_eq!(rec.messages(), 2011);
        assert!(rec.finished());
    }

    #[test]
    fn recorder_breaks_rounds_down_by_phase() {
        let mut rec = MetricsRecorder::new();
        rec.emit(&RunEvent::PhaseChange {
            round: 0,
            phase: "setup",
        });
        for r in 0..5 {
            rec.emit(&round(r, 1, 8, RouteMode::Inline));
        }
        rec.emit(&RunEvent::PhaseChange {
            round: 5,
            phase: "work",
        });
        for r in 5..12 {
            rec.emit(&round(r, 1, 8, RouteMode::Inline));
        }
        rec.emit(&RunEvent::Done {
            rounds: 12,
            messages: 12,
        });
        let phases = rec.phase_rounds();
        assert_eq!(phases.len(), 2);
        assert_eq!((phases[0].phase, phases[0].rounds), ("setup", 5));
        assert_eq!((phases[1].phase, phases[1].rounds), ("work", 7));
        assert_eq!(
            phases.iter().map(|p| p.rounds).sum::<u64>(),
            rec.rounds(),
            "phase breakdown must sum to the total round count"
        );
    }

    #[test]
    fn semantic_projection_strips_scheduling_detail() {
        let events = vec![
            round(0, 5, 4, RouteMode::Parallel),
            RunEvent::Compaction { round: 1, live: 2 },
            round(1, 1, 2, RouteMode::Inline),
        ];
        let semantic = semantic_stream(&events);
        assert_eq!(
            semantic,
            vec![
                round(0, 5, 4, RouteMode::Unspecified),
                round(1, 1, 2, RouteMode::Unspecified),
            ]
        );
    }

    #[test]
    fn emitter_dedupes_repeated_marks() {
        let mut recording = Recording::new();
        {
            let mut emitter = Emitter::new(Some(&mut recording));
            emitter.emit_marks(0, Some("setup"), Some("establish"));
            emitter.emit_marks(0, Some("setup"), Some("establish"));
            emitter.emit_marks(3, Some("setup"), Some("sort"));
            emitter.emit_marks(7, Some("work"), None);
        }
        assert_eq!(
            recording.events(),
            vec![
                RunEvent::PhaseChange {
                    round: 0,
                    phase: "setup"
                },
                RunEvent::StageTransition {
                    round: 0,
                    stage: "establish"
                },
                RunEvent::StageTransition {
                    round: 3,
                    stage: "sort"
                },
                RunEvent::PhaseChange {
                    round: 7,
                    phase: "work"
                },
            ]
        );
    }

    #[test]
    fn json_labels_are_escaped() {
        let event = RunEvent::StageTransition {
            round: 3,
            stage: "fan-in \"wide\"\\x",
        };
        assert_eq!(
            event.to_json(),
            "{\"event\":\"stage\",\"round\":3,\"stage\":\"fan-in \\\"wide\\\"\\\\x\"}"
        );
    }

    #[test]
    fn jsonl_sink_writes_one_object_per_event() {
        let mut sink = JsonlSink::new(Vec::new());
        sink.emit(&round(0, 3, 2, RouteMode::Inline));
        sink.emit(&RunEvent::Done {
            rounds: 1,
            messages: 3,
        });
        let text = String::from_utf8(sink.into_inner()).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(
            lines[0].contains("\"event\":\"round\"") && lines[0].contains("\"route\":\"inline\"")
        );
        assert!(lines[1].contains("\"event\":\"done\""));
    }
}
