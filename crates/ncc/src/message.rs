//! Messages exchanged between NCC nodes.
//!
//! A message is a small, fixed-budget record: a protocol `tag`, up to
//! [`Config::max_words`](crate::Config::max_words) data words, and up to
//! [`Config::max_addrs`](crate::Config::max_addrs) node *addresses*. Keeping
//! addresses in a dedicated field (rather than smuggling them through data
//! words) is what lets the simulator track KT0 knowledge faithfully: the
//! receiver of a message learns the sender's ID and every address the message
//! carries, and nothing else.

/// A node identifier — the node's "IP address" in the P2P reading of the
/// model. IDs are drawn from `[1, n^c]`, so they are *not* dense indices.
pub type NodeId = u64;

/// Well-known protocol tags used by the primitive and algorithm crates.
///
/// Tags exist purely to let a node demultiplex its inbox; they carry no
/// routing semantics in the engine. Higher-level crates allocate their own
/// tags starting from [`tags::USER_BASE`].
pub mod tags {
    /// Generic/unclassified payload.
    pub const GENERIC: u16 = 0;
    /// Path undirection ("here is my ID, I am your predecessor").
    pub const UNDIRECT: u16 = 1;
    /// Neighbor's-neighbor exchange on a path level.
    pub const LEVEL_LINK: u16 = 2;
    /// Controlled-BFS invitation (left child).
    pub const INVITE_LEFT: u16 = 3;
    /// Controlled-BFS invitation (right child).
    pub const INVITE_RIGHT: u16 = 4;
    /// Controlled-BFS acceptance.
    pub const ACCEPT: u16 = 5;
    /// Subtree-size convergecast.
    pub const SUBTREE_SIZE: u16 = 6;
    /// Inorder-interval top-down assignment.
    pub const INORDER: u16 = 7;
    /// Tree broadcast payload.
    pub const BCAST: u16 = 8;
    /// Tree aggregation payload.
    pub const AGGREGATE: u16 = 9;
    /// Pipelined collection payload.
    pub const COLLECT: u16 = 10;
    /// Pointer-doubling contact-table construction.
    pub const CONTACT: u16 = 11;
    /// Bitonic sort compare-exchange.
    pub const SORT_XCHG: u16 = 12;
    /// Sorted-path neighbor notification.
    pub const SORT_LINK: u16 = 13;
    /// Interval multicast payload.
    pub const IMCAST: u16 = 14;
    /// Prefix-sum doubling payload.
    pub const PREFIX: u16 = 15;
    /// Staggered token delivery.
    pub const TOKEN: u16 = 16;
    /// Realization: "store my ID in your neighbor list".
    pub const EDGE: u16 = 17;
    /// Realization: explicit-edge acknowledgement (reverse direction).
    pub const EDGE_ACK: u16 = 18;
    /// Randomized sort: sample pair(s) pipelined up the tree.
    pub const RSORT_UP: u16 = 19;
    /// Randomized sort: splitter/leader pair(s) pipelined down the tree.
    pub const RSORT_SPLIT: u16 = 20;
    /// Randomized sort: a record scattered to its bucket leader.
    pub const RSORT_REC: u16 = 21;
    /// Randomized sort: leader hypercube-scan exchange.
    pub const RSORT_SCAN: u16 = 22;
    /// Randomized sort: rank notification (carries the end round).
    pub const RSORT_RANK: u16 = 23;
    /// Randomized sort: sibling sub-leader count/extrema report.
    pub const RSORT_CNT: u16 = 24;
    /// Randomized sort: primary's go signal to its sibling sub-leaders.
    pub const RSORT_GO: u16 = 25;
    /// Randomized sort: sub-leader subset exchange record(s).
    pub const RSORT_XCH: u16 = 26;
    /// First tag value available to user protocols.
    pub const USER_BASE: u16 = 64;
}

/// A message: tag + bounded data words + bounded addresses.
///
/// The total information content is `O(log n)` bits — each word and each
/// address is one machine word, and the engine enforces the per-message
/// budgets from the [`Config`](crate::Config).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Msg {
    /// Protocol tag for inbox demultiplexing.
    pub tag: u16,
    /// Data words (bounded by `Config::max_words`).
    pub words: Vec<u64>,
    /// Node addresses carried by this message (bounded by
    /// `Config::max_addrs`). The receiver *learns* these IDs.
    pub addrs: Vec<NodeId>,
}

impl Msg {
    /// An empty message carrying only a tag (a pure signal).
    pub fn signal(tag: u16) -> Self {
        Msg {
            tag,
            words: Vec::new(),
            addrs: Vec::new(),
        }
    }

    /// A message carrying data words only.
    pub fn words(tag: u16, words: impl Into<Vec<u64>>) -> Self {
        Msg {
            tag,
            words: words.into(),
            addrs: Vec::new(),
        }
    }

    /// A message carrying a single data word.
    pub fn word(tag: u16, w: u64) -> Self {
        Msg {
            tag,
            words: vec![w],
            addrs: Vec::new(),
        }
    }

    /// A message carrying a single address.
    pub fn addr(tag: u16, a: NodeId) -> Self {
        Msg {
            tag,
            words: Vec::new(),
            addrs: vec![a],
        }
    }

    /// A message carrying one address and some data words.
    pub fn addr_words(tag: u16, a: NodeId, words: impl Into<Vec<u64>>) -> Self {
        Msg {
            tag,
            words: words.into(),
            addrs: vec![a],
        }
    }

    /// Adds a data word (builder style).
    pub fn with_word(mut self, w: u64) -> Self {
        self.words.push(w);
        self
    }

    /// Adds an address (builder style).
    pub fn with_addr(mut self, a: NodeId) -> Self {
        self.addrs.push(a);
        self
    }

    /// Size of this message in machine words (tag counts as one word),
    /// used for bandwidth metrics.
    pub fn size_words(&self) -> usize {
        1 + self.words.len() + self.addrs.len()
    }
}

/// A received message together with its sender.
///
/// The NCC model makes the sender's ID visible to the receiver (this is how
/// knowledge spreads in KT0), so the engine stamps every delivery with `src`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Envelope {
    /// ID of the sending node.
    pub src: NodeId,
    /// The message itself.
    pub msg: Msg,
}

impl Envelope {
    /// First data word, panicking with a protocol-bug message if absent.
    pub fn word(&self) -> u64 {
        *self
            .msg
            .words
            .first()
            .expect("protocol bug: expected a data word")
    }

    /// First address, panicking with a protocol-bug message if absent.
    pub fn addr(&self) -> NodeId {
        *self
            .msg
            .addrs
            .first()
            .expect("protocol bug: expected an address")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builders_compose() {
        let m = Msg::signal(tags::GENERIC).with_word(7).with_addr(42);
        assert_eq!(m.words, vec![7]);
        assert_eq!(m.addrs, vec![42]);
        assert_eq!(m.size_words(), 3);
    }

    #[test]
    fn size_counts_tag_words_addrs() {
        assert_eq!(Msg::signal(0).size_words(), 1);
        assert_eq!(Msg::words(0, vec![1, 2, 3]).size_words(), 4);
        assert_eq!(Msg::addr_words(0, 9, vec![1]).size_words(), 3);
    }

    #[test]
    fn envelope_accessors() {
        let env = Envelope {
            src: 5,
            msg: Msg::addr_words(1, 10, vec![99]),
        };
        assert_eq!(env.word(), 99);
        assert_eq!(env.addr(), 10);
    }

    #[test]
    #[should_panic(expected = "protocol bug")]
    fn envelope_word_panics_when_empty() {
        let env = Envelope {
            src: 5,
            msg: Msg::signal(0),
        };
        let _ = env.word();
    }
}
