//! Simulation errors and model-constraint violations.

use crate::message::NodeId;
use std::fmt;

/// A violation of the NCC model constraints, attributed to a node and round.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Violation {
    /// The round in which the violation occurred (0-based).
    pub round: u64,
    /// The offending node.
    pub node: NodeId,
    /// What went wrong.
    pub kind: ViolationKind,
}

/// The kinds of model-constraint violations the engine detects.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ViolationKind {
    /// Node sent more than `cap` messages in one round.
    SendCapacity { sent: usize, cap: usize },
    /// Node would receive more than `cap` messages in one round.
    ReceiveCapacity { received: usize, cap: usize },
    /// Message exceeded the word budget.
    MessageTooLarge { words: usize, addrs: usize },
    /// Node addressed an ID it has not learned (KT0 illegality).
    UnknownAddressee { dst: NodeId },
    /// Node attached an address it has not learned to a message payload.
    UnknownCarriedAddress { carried: NodeId },
    /// Message addressed to an ID that does not exist in the network.
    NoSuchNode { dst: NodeId },
    /// Message addressed to a node that already terminated.
    DeadRecipient { dst: NodeId },
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "round {} node {}: ", self.round, self.node)?;
        match &self.kind {
            ViolationKind::SendCapacity { sent, cap } => {
                write!(f, "sent {sent} messages, capacity is {cap}")
            }
            ViolationKind::ReceiveCapacity { received, cap } => {
                write!(f, "would receive {received} messages, capacity is {cap}")
            }
            ViolationKind::MessageTooLarge { words, addrs } => {
                write!(f, "message too large ({words} words, {addrs} addrs)")
            }
            ViolationKind::UnknownAddressee { dst } => {
                write!(f, "sent to unknown ID {dst} (KT0 violation)")
            }
            ViolationKind::UnknownCarriedAddress { carried } => {
                write!(f, "carried unknown address {carried} (KT0 violation)")
            }
            ViolationKind::NoSuchNode { dst } => write!(f, "no such node {dst}"),
            ViolationKind::DeadRecipient { dst } => {
                write!(f, "recipient {dst} already terminated")
            }
        }
    }
}

/// A fatal simulation error.
#[derive(Debug)]
pub enum SimError {
    /// A model violation under [`CapacityPolicy::Strict`](crate::CapacityPolicy::Strict).
    Violation(Violation),
    /// The protocol exceeded [`Config::max_rounds`](crate::Config::max_rounds).
    RoundLimitExceeded { limit: u64 },
    /// A node thread panicked; the payload is the panic message when it was a
    /// string.
    NodePanic { node: NodeId, message: String },
    /// The requested engine is not compiled in (the `threaded` feature is
    /// off and [`EngineKind::Threaded`](crate::EngineKind) was asked for).
    EngineUnavailable,
    /// The configured [`Scenario`](crate::Scenario) is inconsistent with
    /// the run it was attached to (node outside the participant mask,
    /// recovery scheduled at or before its crash, reorder faults without
    /// the queue policy, or the threaded oracle asked to run one). The
    /// payload names the offending schedule entry.
    InvalidScenario(String),
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Violation(v) => write!(f, "model violation: {v}"),
            SimError::RoundLimitExceeded { limit } => {
                write!(f, "round limit exceeded ({limit} rounds)")
            }
            SimError::NodePanic { node, message } => {
                write!(f, "node {node} panicked: {message}")
            }
            SimError::EngineUnavailable => {
                write!(
                    f,
                    "threaded oracle engine not compiled in (feature `threaded`)"
                )
            }
            SimError::InvalidScenario(why) => write!(f, "invalid scenario: {why}"),
        }
    }
}

impl std::error::Error for SimError {}

/// Extracts a printable message from a panic payload (shared by both
/// engines' panic-to-[`SimError::NodePanic`] conversion).
pub(crate) fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn violations_render() {
        let v = Violation {
            round: 3,
            node: 17,
            kind: ViolationKind::SendCapacity { sent: 12, cap: 8 },
        };
        let s = v.to_string();
        assert!(s.contains("round 3"));
        assert!(s.contains("node 17"));
        assert!(s.contains("12"));
    }

    #[test]
    fn sim_errors_render() {
        let e = SimError::RoundLimitExceeded { limit: 10 };
        assert!(e.to_string().contains("10"));
        let e = SimError::NodePanic {
            node: 1,
            message: "boom".into(),
        };
        assert!(e.to_string().contains("boom"));
    }
}
