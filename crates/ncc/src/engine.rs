//! The threaded **oracle** engine: a coordinator that implements the
//! synchronous barrier, routes messages, enforces the model constraints,
//! and gathers metrics, with one OS thread per simulated node.
//!
//! This is the original thread-per-node design, kept behind the `threaded`
//! feature for two jobs: it is the only engine able to run *direct-style*
//! protocols (blocking closures over [`NodeHandle`](crate::NodeHandle)),
//! and it serves as the differential-testing oracle for the batched
//! step-function executor in [`batch`](crate::batch) — the two must
//! produce identical transcripts and metrics. Do not optimize this engine;
//! its value is being obviously correct.
//!
//! The coordinator runs on the thread that called
//! [`Network::run`](crate::Network::run); node protocols run on their own
//! threads and talk to the coordinator through crossbeam channels. One
//! *round* is: every live node submits an outbox, the coordinator
//! validates and routes, every live node receives its inbox.

use crate::config::{CapacityPolicy, Config, Model};
use crate::error::{SimError, Violation, ViolationKind};
use crate::event::{Emitter, RouteMode, RunEvent, Sink};
use crate::knowledge::KnowledgeTracker;
use crate::message::{Envelope, Msg, NodeId};
use crate::metrics::{EngineStats, RunMetrics};
use crossbeam::channel::{Receiver, Sender};
use std::collections::{HashMap, VecDeque};

/// What a node thread sends to the coordinator.
pub(crate) enum Submission {
    /// The node's outbox for this round (possibly empty), plus any
    /// phase/stage marks the step staged.
    Step {
        index: usize,
        out: Vec<(NodeId, Msg)>,
        marks: (Option<&'static str>, Option<&'static str>),
    },
    /// The node's protocol function returned; it no longer participates.
    Done { index: usize },
    /// The node's protocol panicked (bug); carries the panic message.
    Panicked { index: usize, message: String },
}

/// What the coordinator sends back to a node thread.
pub(crate) enum Delivery {
    /// The node's inbox for the next round.
    Inbox(Vec<Envelope>),
    /// Fatal engine error: the node thread must unwind immediately.
    Poison,
}

pub(crate) struct Coordinator<'s> {
    config: Config,
    n: usize,
    cap: usize,
    ids: Vec<NodeId>,
    id_to_index: HashMap<NodeId, usize>,
    knowledge: KnowledgeTracker,
    from_nodes: Receiver<Submission>,
    to_nodes: Vec<Sender<Delivery>>,
    alive: Vec<bool>,
    live_count: usize,
    /// Receive queues (only used under `CapacityPolicy::Queue`).
    queues: Vec<VecDeque<Envelope>>,
    pub(crate) metrics: RunMetrics,
    /// First node panic observed, if any.
    pub(crate) panic: Option<(NodeId, String)>,
    /// Event emission (the always-on recorder plus the caller's sink).
    emitter: Emitter<'s>,
    /// Per-index phase/stage marks collected this round.
    marks: Vec<(Option<&'static str>, Option<&'static str>)>,
    any_marked: bool,
}

impl<'s> Coordinator<'s> {
    pub(crate) fn new(
        config: Config,
        ids: Vec<NodeId>,
        alive: Vec<bool>,
        from_nodes: Receiver<Submission>,
        to_nodes: Vec<Sender<Delivery>>,
        sink: Option<&'s mut dyn Sink>,
    ) -> Self {
        let n = ids.len();
        assert_eq!(alive.len(), n, "alive mask length must equal n");
        let cap = config.capacity(n);
        let mut id_to_index = HashMap::with_capacity(n);
        for (i, &id) in ids.iter().enumerate() {
            if alive[i] {
                id_to_index.insert(id, i);
            }
        }
        let track = config.track_knowledge && config.model == Model::Ncc0;
        let mut knowledge = KnowledgeTracker::new(n, track);
        // Initial knowledge graph G_k: each live node's out-neighbor is the
        // next *live* node on the path — dead/filtered indices are skipped,
        // consistent with `alive` (they are not part of the network).
        crate::knowledge::seed_path(&mut knowledge, &ids, |i| alive[i]);
        let queues = if config.capacity_policy == CapacityPolicy::Queue {
            vec![VecDeque::new(); n]
        } else {
            Vec::new()
        };
        let metrics = RunMetrics {
            capacity: cap,
            ..RunMetrics::default()
        };
        let live_count = alive.iter().filter(|&&a| a).count();
        Coordinator {
            config,
            n,
            cap,
            ids,
            id_to_index,
            knowledge,
            from_nodes,
            to_nodes,
            alive,
            live_count,
            queues,
            metrics,
            panic: None,
            emitter: Emitter::new(sink),
            marks: vec![(None, None); n],
            any_marked: false,
        }
    }

    /// The stream-derived executor statistics (all-zero for this engine:
    /// it never compacts and has no adaptive router — but derived through
    /// the same fold as the batched executor's, not hard-coded).
    pub(crate) fn engine_stats(&self) -> EngineStats {
        self.emitter.recorder.engine_stats()
    }

    /// Runs rounds until every node has terminated (or an error occurs).
    // Index-based loops are kept deliberately: the oracle's routing code
    // mirrors the batched engine's canonical dense-index order, and this
    // engine's value is being obviously correct, not idiomatic.
    #[allow(clippy::needless_range_loop)]
    pub(crate) fn run_rounds(&mut self) -> Result<(), SimError> {
        let mut outboxes: Vec<Option<Vec<(NodeId, Msg)>>> = vec![None; self.n];
        let mut inboxes: Vec<Vec<Envelope>> = vec![Vec::new(); self.n];

        while self.live_count > 0 {
            // --- Collect one submission from every live node. ---
            let mut expected = self.live_count;
            for slot in outboxes.iter_mut() {
                *slot = None;
            }
            // (`marks` needs no clearing here: the emission pass below
            // `take`s every entry before the next collection round.)
            while expected > 0 {
                match self.from_nodes.recv() {
                    Ok(Submission::Step { index, out, marks }) => {
                        debug_assert!(self.alive[index], "step from dead node");
                        outboxes[index] = Some(out);
                        if marks.0.is_some() || marks.1.is_some() {
                            self.marks[index] = marks;
                            self.any_marked = true;
                        }
                        expected -= 1;
                    }
                    Ok(Submission::Done { index }) => {
                        self.alive[index] = false;
                        self.live_count -= 1;
                        expected -= 1;
                    }
                    Ok(Submission::Panicked { index, message }) => {
                        if self.panic.is_none() {
                            self.panic = Some((self.ids[index], message));
                        }
                        self.alive[index] = false;
                        self.live_count -= 1;
                        expected -= 1;
                    }
                    Err(_) => {
                        // All senders dropped: treat as everyone done.
                        self.live_count = 0;
                        expected = 0;
                    }
                }
            }
            if let Some((node, message)) = self.panic.take() {
                self.poison_all();
                return Err(SimError::NodePanic { node, message });
            }
            if self.live_count == 0 {
                break;
            }
            // --- Protocol marks: emit in dense index order (the same
            // canonical order — and the same deduplication — as the
            // batched executor's slot walk, so streams stay identical).
            if self.any_marked {
                for index in 0..self.n {
                    let (phase, stage) = std::mem::take(&mut self.marks[index]);
                    if phase.is_some() || stage.is_some() {
                        self.emitter.emit_marks(self.metrics.rounds, phase, stage);
                    }
                }
                self.any_marked = false;
            }

            // --- Route: validate every message and append to inboxes. ---
            for inbox in inboxes.iter_mut() {
                inbox.clear();
            }
            let mut round_messages: u64 = 0;
            for src_index in 0..self.n {
                let Some(out) = outboxes[src_index].take() else {
                    continue;
                };
                let src_id = self.ids[src_index];
                let attempted = out.len();
                for (dst, msg) in out {
                    // Under the lenient policies a violating message is still
                    // delivered when physically possible (the violation is
                    // counted); under Strict, `record` aborts the run.
                    let dst_index = match self.validate(src_index, src_id, dst, &msg) {
                        Ok(i) => Some(i),
                        Err(v) => {
                            self.record(v)?;
                            self.id_to_index
                                .get(&dst)
                                .copied()
                                .filter(|&i| self.alive[i])
                        }
                    };
                    if let Some(dst_index) = dst_index {
                        round_messages += 1;
                        self.metrics.words += msg.size_words() as u64;
                        inboxes[dst_index].push(Envelope { src: src_id, msg });
                    }
                }
                if attempted > self.cap {
                    self.record(Violation {
                        round: self.metrics.rounds,
                        node: src_id,
                        kind: ViolationKind::SendCapacity {
                            sent: attempted,
                            cap: self.cap,
                        },
                    })?;
                }
                self.metrics.max_sent_per_round = self.metrics.max_sent_per_round.max(attempted);
            }

            // --- Apply the receive-side capacity policy. ---
            if self.config.capacity_policy == CapacityPolicy::Queue {
                for i in 0..self.n {
                    self.queues[i].extend(inboxes[i].drain(..));
                    let take = self.queues[i].len().min(self.cap);
                    inboxes[i].extend(self.queues[i].drain(..take));
                    self.metrics.max_queue_len =
                        self.metrics.max_queue_len.max(self.queues[i].len());
                }
            } else {
                for i in 0..self.n {
                    if inboxes[i].len() > self.cap {
                        self.record(Violation {
                            round: self.metrics.rounds,
                            node: self.ids[i],
                            kind: ViolationKind::ReceiveCapacity {
                                received: inboxes[i].len(),
                                cap: self.cap,
                            },
                        })?;
                    }
                }
            }

            // --- Knowledge propagation + delivery metrics. ---
            for i in 0..self.n {
                let delivered = inboxes[i].len();
                self.metrics.max_received_per_round =
                    self.metrics.max_received_per_round.max(delivered);
                if self.knowledge.enabled() {
                    for env in &inboxes[i] {
                        self.knowledge.learn(i, env.src);
                        for &a in &env.msg.addrs {
                            self.knowledge.learn(i, a);
                        }
                    }
                }
            }

            let round = self.metrics.rounds;
            self.metrics.record_round(round_messages);
            self.emitter.emit(RunEvent::RoundCompleted {
                round,
                delivered: round_messages,
                live: self.live_count,
                route_mode: RouteMode::Unspecified,
            });
            if self.metrics.rounds > self.config.max_rounds {
                self.poison_all();
                return Err(SimError::RoundLimitExceeded {
                    limit: self.config.max_rounds,
                });
            }

            // --- Deliver. ---
            for i in 0..self.n {
                if self.alive[i] {
                    let inbox = std::mem::take(&mut inboxes[i]);
                    // A send error here means the node thread died abnormally;
                    // the panic will surface on the next collection pass.
                    let _ = self.to_nodes[i].send(Delivery::Inbox(inbox));
                } else if !inboxes[i].is_empty() {
                    // Messages routed to a node that terminated this very
                    // round (validation saw it alive). Count as undelivered.
                    self.metrics.undelivered += inboxes[i].len() as u64;
                    inboxes[i].clear();
                }
            }
        }

        // Undrained queues mean some protocol stopped listening too early.
        for q in &self.queues {
            self.metrics.undelivered += q.len() as u64;
        }
        if self.knowledge.enabled() {
            self.metrics.max_knowledge = (0..self.n)
                .map(|i| self.knowledge.knowledge_size(i))
                .max()
                .unwrap_or(0);
        }
        self.emitter.emit(RunEvent::Done {
            rounds: self.metrics.rounds,
            messages: self.metrics.messages,
        });
        self.metrics.phase_rounds = self.emitter.recorder.phase_rounds();
        Ok(())
    }

    /// Validates a single message; returns the destination index on success.
    fn validate(
        &self,
        src_index: usize,
        src_id: NodeId,
        dst: NodeId,
        msg: &Msg,
    ) -> Result<usize, Violation> {
        let round = self.metrics.rounds;
        let fail = |kind| Violation {
            round,
            node: src_id,
            kind,
        };
        if msg.words.len() > self.config.max_words || msg.addrs.len() > self.config.max_addrs {
            return Err(fail(ViolationKind::MessageTooLarge {
                words: msg.words.len(),
                addrs: msg.addrs.len(),
            }));
        }
        let Some(&dst_index) = self.id_to_index.get(&dst) else {
            return Err(fail(ViolationKind::NoSuchNode { dst }));
        };
        if !self.alive[dst_index] {
            return Err(fail(ViolationKind::DeadRecipient { dst }));
        }
        if !self.knowledge.knows(src_index, dst) {
            return Err(fail(ViolationKind::UnknownAddressee { dst }));
        }
        for &a in &msg.addrs {
            if !self.knowledge.knows(src_index, a) {
                return Err(fail(ViolationKind::UnknownCarriedAddress { carried: a }));
            }
        }
        Ok(dst_index)
    }

    /// Records a violation; fatal under the strict policy.
    fn record(&mut self, v: Violation) -> Result<(), SimError> {
        let strict = self.config.capacity_policy == CapacityPolicy::Strict;
        let outcome = self.metrics.record_violation(strict, v);
        if outcome.is_err() {
            self.poison_all();
        }
        outcome
    }

    /// Tells every live node thread to unwind.
    fn poison_all(&mut self) {
        for i in 0..self.n {
            if self.alive[i] {
                let _ = self.to_nodes[i].send(Delivery::Poison);
            }
        }
    }
}
