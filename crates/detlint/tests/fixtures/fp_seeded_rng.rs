//! False-positive guard: seeded RNG, ordered maps, pure lookups.

use std::collections::{BTreeMap, HashMap};

fn run(seed: u64, index: &HashMap<u64, usize>, ordered: &BTreeMap<u64, u64>) -> usize {
    let rng = SmallRng::seed_from_u64(seed);
    let _ = rng;
    let mut hits = 0;
    for (_, v) in ordered.iter() {
        hits += index.get(v).copied().unwrap_or(0);
    }
    hits
}
