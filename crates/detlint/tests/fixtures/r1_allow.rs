//! R1 allow fixture: justified iteration of an unordered container.

use std::collections::HashMap;

fn checksum(counts: &HashMap<u64, u64>) -> u64 {
    // detlint: allow(unordered-iteration) — XOR-folded checksum: the fold is
    // commutative and associative, so visitation order cannot change it
    counts.values().fold(0, |acc, v| acc ^ v)
}
