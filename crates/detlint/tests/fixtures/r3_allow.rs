//! R3 allow fixture: justified order-independent shared mutation.

fn sweep(vals: &[u64], done: &AtomicUsize) {
    vals.par_iter().for_each(|_| {
        // detlint: allow(relaxed-atomic) — commutative done-count:
        // addition order cannot change the sum, read after the barrier
        done.fetch_add(1, Ordering::Relaxed);
    });
}

fn shared() {
    // detlint: allow(relaxed-atomic) — single writer: the engine emits
    // sequentially from the round loop; the lock guards reader snapshots
    let cell = std::sync::Mutex::new(Vec::new());
    let _ = cell;
}
