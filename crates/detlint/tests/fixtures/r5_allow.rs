//! R5 allow fixture: justified exact float accumulation.

fn total(chunks: &[Vec<u64>]) -> f64 {
    // detlint: allow(float-accumulation) — chunk lengths are integers far
    // below 2^53, so the f64 sum is exact in every association order
    let sum: f64 = chunks.par_iter().map(|c| c.len() as f64).sum();
    sum
}
