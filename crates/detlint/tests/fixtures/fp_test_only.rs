//! False-positive guard: `#[cfg(test)]` code is exempt from every rule.

#[cfg(test)]
mod tests {
    use std::collections::HashMap;

    #[test]
    fn order_probe() {
        let m: HashMap<u64, u64> = HashMap::new();
        for k in m.keys() {
            let _ = k;
        }
        let t = std::time::Instant::now();
        let _ = t;
    }
}
