//! R5 fixture: floating-point accumulation inside parallel folds.

fn mean_degree(chunks: &[Vec<u64>]) -> f64 {
    let total: f64 = chunks.par_iter().map(|c| c.len() as f64).sum();
    total
}

fn partial_sums(vals: &[f32]) -> f32 {
    vals.par_iter().fold(|| 0.0f32, |acc: f32, v| acc + v).sum::<f32>()
}

fn sequential_mean(vals: &[f64]) -> f64 {
    // Sequential float accumulation: deterministic, not a finding.
    vals.iter().sum::<f64>() / vals.len() as f64
}
