//! R4 fixture: emission from a sweep closure outside the journal files.

fn sweep(nodes: &mut [Node]) {
    nodes.par_iter_mut().for_each(|node| {
        ctx.send(node.peer, Message::Degree(node.degree));
        node.events.emit(RunEvent::RoundStart);
    });
}

fn round_loop(nodes: &mut [Node]) {
    // Sequential emission outside any sweep: not a finding.
    for node in nodes.iter_mut() {
        node.events.emit(RunEvent::RoundEnd);
    }
}
