//! R1 fixture: unordered-container iteration on a transcript path.

use std::collections::{HashMap, HashSet};

struct Router {
    known: HashSet<u64>,
}

fn degrees(rho: &HashMap<u64, usize>) -> usize {
    let mut total = 0;
    for (_, d) in rho.iter() {
        total += d;
    }
    for id in &rho {
        let _ = id;
    }
    total
}

impl Router {
    fn flush(&mut self) {
        for k in self.known.iter() {
            let _ = k;
        }
    }
}
