//! R2 fixture: ambient entropy sources.

fn seed_badly() -> u64 {
    let mut rng = rand::thread_rng();
    let alt = SmallRng::from_entropy();
    let stamp = std::time::SystemTime::now();
    let t0 = std::time::Instant::now();
    let _ = (&mut rng, alt, stamp, t0);
    0
}
