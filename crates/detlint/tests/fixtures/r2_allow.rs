//! R2 allow fixture: seeded RNG and a justified metrics timer.

fn seed_well(seed: u64) -> u64 {
    let rng = SmallRng::seed_from_u64(seed);
    let _ = rng;
    // detlint: allow(ambient-entropy) — per-phase wall-clock timer: the
    // elapsed nanos feed stats only and never a transcript
    let t0 = std::time::Instant::now();
    let _ = t0;
    0
}
