//! R3 fixture: relaxed atomics inside a sweep, unjustified lock state.

fn sweep(vals: &[u64], done: &AtomicUsize) {
    vals.par_iter().for_each(|_| {
        done.fetch_add(1, Ordering::Relaxed);
    });
}

fn sequential(done: &AtomicUsize) {
    // Relaxed outside any sweep fn: not a finding (single-threaded).
    done.store(0, Ordering::Relaxed);
}

fn shared() -> std::sync::Mutex<Vec<u64>> {
    std::sync::Mutex::new(Vec::new())
}
