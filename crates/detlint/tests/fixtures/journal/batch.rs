//! R4 journal-file guard: this fixture is named `batch.rs`, one of the
//! journal-replay owners, so in-sweep sends are the pattern itself and
//! must not fire.

fn drain(nodes: &mut [Node]) {
    nodes.par_iter_mut().for_each(|node| {
        ctx.send(node.peer, Message::Degree(node.degree));
        node.events.emit(RunEvent::RoundStart);
    });
}
