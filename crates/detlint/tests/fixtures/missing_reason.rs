//! A suppression with no written justification must still fire.

fn timer() {
    // detlint: allow(ambient-entropy)
    let t0 = std::time::Instant::now();
    let _ = t0;
}
