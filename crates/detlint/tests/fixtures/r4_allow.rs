//! R4 allow fixture: a justified direct send inside a sweep.

fn sweep(nodes: &mut [Node]) {
    nodes.par_iter_mut().for_each(|node| {
        // detlint: allow(send-outside-journal) — self-delivery only: each
        // closure sends to its own node's queue, no cross-worker ordering
        ctx.send(node.id, Message::Nudge);
    });
}
