//! Fixture-driven rule tests: every rule has a fixture that fires and a
//! fixture whose justified allows silence it, plus false-positive guards
//! (test-only code, seeded RNGs, lookups, the journal files).
//!
//! Each `<name>.rs` fixture pairs with a `<name>.expected` file listing
//! the findings as `line:rule` (1-based line, `R1`..`R5`); `#` lines are
//! comments and a comment-only file means "scans clean".

use detlint::{scan_file, FileClass};
use std::fs;
use std::path::{Path, PathBuf};

fn fixture_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures")
}

/// Scans a fixture and flattens the findings to comparable (line, rule)
/// pairs. The fixture's relative name is passed as the scan path so the
/// journal-file basename exemption sees the right filename.
fn scan_fixture(name: &str, class: FileClass) -> Vec<(usize, String)> {
    let src = fs::read_to_string(fixture_dir().join(name)).unwrap();
    let mut out: Vec<(usize, String)> = scan_file(name, &src, class)
        .iter()
        .map(|f| (f.line, f.rule.code().to_string()))
        .collect();
    out.sort();
    out
}

fn expected(name: &str) -> Vec<(usize, String)> {
    let text = fs::read_to_string(fixture_dir().join(name)).unwrap();
    let mut out: Vec<(usize, String)> = text
        .lines()
        .map(str::trim)
        .filter(|l| !l.is_empty() && !l.starts_with('#'))
        .map(|l| {
            let (line, code) = l.split_once(':').expect("expected `line:rule`");
            (line.parse().expect("line number"), code.to_string())
        })
        .collect();
    out.sort();
    out
}

#[test]
fn fixtures_match_expected_findings() {
    use FileClass::{Observer, TranscriptAffecting};
    let cases: &[(&str, &str, FileClass)] = &[
        // Each rule: one fixture that fires...
        ("r1_fires.rs", "r1_fires.expected", TranscriptAffecting),
        ("r2_fires.rs", "r2_fires.expected", TranscriptAffecting),
        ("r3_fires.rs", "r3_fires.expected", TranscriptAffecting),
        ("r4_fires.rs", "r4_fires.expected", TranscriptAffecting),
        ("r5_fires.rs", "r5_fires.expected", TranscriptAffecting),
        // ...and one whose justified allows silence it.
        ("r1_allow.rs", "r1_allow.expected", TranscriptAffecting),
        ("r2_allow.rs", "r2_allow.expected", TranscriptAffecting),
        ("r3_allow.rs", "r3_allow.expected", TranscriptAffecting),
        ("r4_allow.rs", "r4_allow.expected", TranscriptAffecting),
        ("r5_allow.rs", "r5_allow.expected", TranscriptAffecting),
        // Class sensitivity: observers keep their wall clocks.
        ("r2_fires.rs", "r2_fires.observer.expected", Observer),
        // False-positive guards.
        (
            "fp_test_only.rs",
            "fp_test_only.expected",
            TranscriptAffecting,
        ),
        (
            "fp_seeded_rng.rs",
            "fp_seeded_rng.expected",
            TranscriptAffecting,
        ),
        (
            "journal/batch.rs",
            "journal/batch.expected",
            TranscriptAffecting,
        ),
        // A reasonless suppression does not suppress.
        (
            "missing_reason.rs",
            "missing_reason.expected",
            TranscriptAffecting,
        ),
    ];
    for (src, exp, class) in cases {
        assert_eq!(
            scan_fixture(src, *class),
            expected(exp),
            "fixture {src} (as {class:?}) diverged from {exp}"
        );
    }
}

#[test]
fn reasonless_suppression_is_called_out() {
    let src = fs::read_to_string(fixture_dir().join("missing_reason.rs")).unwrap();
    let findings = scan_file("missing_reason.rs", &src, FileClass::TranscriptAffecting);
    assert_eq!(findings.len(), 1);
    assert!(
        findings[0].message.contains("missing its justification"),
        "message should point at the empty reason: {}",
        findings[0].message
    );
}

#[test]
fn exempt_class_scans_nothing() {
    let src = fs::read_to_string(fixture_dir().join("r1_fires.rs")).unwrap();
    assert!(scan_file("r1_fires.rs", &src, FileClass::Exempt).is_empty());
}
