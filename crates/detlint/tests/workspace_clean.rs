//! The gate the CI step re-runs: the workspace itself must scan clean.
//!
//! Every suppression in first-party code carries a written
//! order-independence justification, so a finding here means either new
//! code broke the determinism discipline or an annotation lost its
//! reason. Fix the code (or justify the site) rather than loosening the
//! rule.

use detlint::{check_workspace, report};
use std::path::Path;

#[test]
fn workspace_upholds_the_determinism_discipline() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let result = check_workspace(&root).expect("workspace walk");
    assert!(
        result.files_scanned > 50,
        "suspiciously few files scanned ({}); classification drift?",
        result.files_scanned
    );
    assert!(
        result.findings.is_empty(),
        "detlint findings in the workspace:\n{}",
        report::text(&result.findings, result.files_scanned)
    );
}
