//! **detlint** — the workspace determinism linter.
//!
//! Every guarantee this repository ships — bit-identical transcripts
//! across engines, worker counts, shards and scenario schedules — is
//! enforced *dynamically* by differential test matrices. The rules those
//! matrices police are mechanical, and this crate makes them **static**:
//! a zero-dependency, hand-rolled lexer + line-oriented scanner that
//! walks every first-party `.rs` file and reports violations of the
//! determinism discipline at `cargo run -p detlint -- check` time,
//! instead of as a flaky 8-worker×4-shard diff three PRs later.
//!
//! The rules (see [`rules::Rule`] and `ARCHITECTURE.md`, "Static
//! determinism discipline"):
//!
//! | code | slug                   | discipline |
//! |------|------------------------|------------|
//! | R1   | `unordered-iteration`  | no `HashMap`/`HashSet` iteration on transcript-affecting paths |
//! | R2   | `ambient-entropy`      | all randomness from `Config::seed`; wall clocks only as declared metrics timers |
//! | R3   | `relaxed-atomic`       | relaxed atomics in sweeps / lock-guarded state carry a written order-independence proof |
//! | R4   | `send-outside-journal` | no sends/event emission from sweep closures outside the journal-replay files |
//! | R5   | `float-accumulation`   | no float accumulation inside parallel folds |
//!
//! Findings are suppressible only via an inline comment carrying a
//! justification; see [`lexer::Allow`]. Test code (`#[cfg(test)]` spans,
//! `tests/`, `benches/`) is exempt; observer code (the bench harness,
//! this crate, `examples/`) is held only to the entropy-source rules.

pub mod lexer;
pub mod report;
pub mod rules;
pub mod scan;
pub mod workspace;

pub use lexer::{Allow, Lexed};
pub use rules::Rule;
pub use scan::{scan_file, FileClass, Finding};
pub use workspace::{check_workspace, classify, CheckResult};
