//! Human-readable and machine-readable (JSON) rendering of findings.
//!
//! The JSON serializer is hand-rolled (the build environment is offline;
//! detlint has zero dependencies by design) and emits a stable schema:
//!
//! ```json
//! {
//!   "files_scanned": 120,
//!   "findings": [
//!     {"rule": "R1", "slug": "unordered-iteration", "file": "crates/x/src/y.rs",
//!      "line": 42, "message": "...", "snippet": "..."}
//!   ]
//! }
//! ```

use crate::rules::ALL;
use crate::scan::Finding;
use std::fmt::Write as _;

/// Renders the human report. Findings are grouped in (file, line) order.
pub fn text(findings: &[Finding], files_scanned: usize) -> String {
    let mut out = String::new();
    let mut sorted: Vec<&Finding> = findings.iter().collect();
    sorted.sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    for f in &sorted {
        let _ = writeln!(
            out,
            "{}:{}: [{} {}] {}\n    {}",
            f.file,
            f.line,
            f.rule.code(),
            f.rule.slug(),
            f.message,
            f.snippet
        );
    }
    if findings.is_empty() {
        let _ = writeln!(
            out,
            "detlint: {files_scanned} files scanned, no findings — the workspace \
             upholds the determinism discipline"
        );
    } else {
        let _ = writeln!(
            out,
            "detlint: {} finding{} in {} files scanned",
            findings.len(),
            if findings.len() == 1 { "" } else { "s" },
            files_scanned
        );
    }
    out
}

/// Renders the rule catalogue (for `detlint rules`).
pub fn rules_text() -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "detlint rules (suppress with a justified allow comment):"
    );
    for r in ALL {
        let _ = writeln!(out, "  {} {:<22} {}", r.code(), r.slug(), r.describe());
    }
    let needle = concat!("detlint: ", "allow(<slug>)");
    let _ = writeln!(
        out,
        "\nSuppression syntax (same line or the comment block above):"
    );
    let _ = writeln!(out, "  // {needle} — <why this site is order-independent>");
    out
}

/// Renders the JSON report.
pub fn json(findings: &[Finding], files_scanned: usize) -> String {
    let mut sorted: Vec<&Finding> = findings.iter().collect();
    sorted.sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    let mut out = String::from("{\n");
    let _ = writeln!(out, "  \"files_scanned\": {files_scanned},");
    let _ = writeln!(out, "  \"finding_count\": {},", sorted.len());
    out.push_str("  \"findings\": [");
    for (i, f) in sorted.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("\n    {");
        let _ = write!(
            out,
            "\"rule\": {}, \"slug\": {}, \"file\": {}, \"line\": {}, \"message\": {}, \"snippet\": {}",
            escape(f.rule.code()),
            escape(f.rule.slug()),
            escape(&f.file),
            f.line,
            escape(&f.message),
            escape(&f.snippet)
        );
        out.push('}');
    }
    if !sorted.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str("]\n}\n");
    out
}

/// JSON string escaping (quotes, backslashes, control characters).
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::Rule;

    fn finding() -> Finding {
        Finding {
            rule: Rule::UnorderedIteration,
            file: "a/b.rs".into(),
            line: 7,
            message: "say \"no\"".into(),
            snippet: "for x in m {".into(),
        }
    }

    #[test]
    fn json_escapes_and_counts() {
        let j = json(&[finding()], 3);
        assert!(j.contains("\"files_scanned\": 3"));
        assert!(j.contains("\\\"no\\\""));
        assert!(j.contains("\"slug\": \"unordered-iteration\""));
    }

    #[test]
    fn empty_report_is_valid_json() {
        let j = json(&[], 0);
        assert!(j.contains("\"findings\": []"));
    }

    #[test]
    fn text_mentions_clean_sweep() {
        assert!(text(&[], 5).contains("no findings"));
        assert!(text(&[finding()], 5).contains("[R1 unordered-iteration]"));
    }
}
