//! The determinism rules, their slugs and documentation.
//!
//! Every guarantee this workspace ships — bit-identical transcripts
//! across engines, worker counts, shards and scenario schedules — is a
//! consequence of a small set of mechanical disciplines. Each rule below
//! names one of them; the scanner (`crate::scan`) enforces them
//! lexically, and `// detlint: allow(<slug>) — <reason>` suppresses a
//! finding *with a written proof of why the site is order-independent*.

/// A rule identifier.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Rule {
    /// R1: iteration over `HashMap`/`HashSet` on transcript-affecting
    /// paths. Hash iteration order is seeded per process; anything that
    /// flows from it (graph assembly order, first-violation blame,
    /// message order) silently varies run to run.
    UnorderedIteration,
    /// R2: ambient entropy. All randomness must derive from
    /// `Config::seed`/`scenario_seed`; wall-clock reads
    /// (`Instant::now`/`SystemTime::now`) are only legitimate as
    /// metrics timers and must say so.
    AmbientEntropy,
    /// R3: relaxed atomics inside parallel sweeps and lock-guarded
    /// shared state (`Mutex`/`RwLock`) on transcript-affecting paths —
    /// both legal only when the protected mutation is provably
    /// order-independent, and the justification must be written down.
    RelaxedAtomic,
    /// R4: event emission / `ctx.send` inside a parallel sweep outside
    /// the journal-replay pattern (`batch.rs`/`shard.rs`/`route.rs` own
    /// that pattern; everywhere else, emission from worker closures
    /// races the stream order).
    SendOutsideJournal,
    /// R5: floating-point accumulation inside parallel folds — float
    /// addition is not associative, so chunk boundaries change results.
    FloatAccumulation,
}

/// All rules, in report order.
pub const ALL: [Rule; 5] = [
    Rule::UnorderedIteration,
    Rule::AmbientEntropy,
    Rule::RelaxedAtomic,
    Rule::SendOutsideJournal,
    Rule::FloatAccumulation,
];

impl Rule {
    /// Short code (`R1`..`R5`).
    pub fn code(self) -> &'static str {
        match self {
            Rule::UnorderedIteration => "R1",
            Rule::AmbientEntropy => "R2",
            Rule::RelaxedAtomic => "R3",
            Rule::SendOutsideJournal => "R4",
            Rule::FloatAccumulation => "R5",
        }
    }

    /// The slug used in `allow(...)` annotations and JSON output.
    pub fn slug(self) -> &'static str {
        match self {
            Rule::UnorderedIteration => "unordered-iteration",
            Rule::AmbientEntropy => "ambient-entropy",
            Rule::RelaxedAtomic => "relaxed-atomic",
            Rule::SendOutsideJournal => "send-outside-journal",
            Rule::FloatAccumulation => "float-accumulation",
        }
    }

    /// One-line description for `detlint rules` and reports.
    pub fn describe(self) -> &'static str {
        match self {
            Rule::UnorderedIteration => {
                "iteration over HashMap/HashSet on a transcript-affecting path \
                 (hash order is per-process random; use BTreeMap/BTreeSet or sort)"
            }
            Rule::AmbientEntropy => {
                "ambient entropy (thread_rng/from_entropy/SystemTime::now, or \
                 Instant::now outside an annotated metrics timer); derive all \
                 randomness from Config::seed/scenario_seed"
            }
            Rule::RelaxedAtomic => {
                "Ordering::Relaxed inside a parallel sweep, or Mutex/RwLock \
                 shared state on a transcript-affecting path, without a written \
                 order-independence justification"
            }
            Rule::SendOutsideJournal => {
                "ctx.send/event emission inside a parallel sweep outside the \
                 journal-replay pattern (batch.rs/shard.rs/route.rs)"
            }
            Rule::FloatAccumulation => {
                "floating-point accumulation inside a parallel fold (float \
                 addition is non-associative; accumulate integers or fold \
                 sequentially in canonical order)"
            }
        }
    }

    /// Looks a rule up by its slug.
    pub fn from_slug(slug: &str) -> Option<Rule> {
        ALL.into_iter().find(|r| r.slug() == slug)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slugs_round_trip() {
        for r in ALL {
            assert_eq!(Rule::from_slug(r.slug()), Some(r));
        }
        assert_eq!(Rule::from_slug("nope"), None);
    }
}
