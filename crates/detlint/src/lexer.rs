//! A hand-rolled line-oriented Rust lexer: just enough tokenization to
//! blank out comments, string/char literals and doc text so the rule
//! patterns only ever match *code*, while the comment text itself is kept
//! per line for `detlint: allow(...)` annotation parsing.
//!
//! The build environment is offline (no `syn`, no `proc-macro2`), and the
//! determinism rules are deliberately lexical — see `ARCHITECTURE.md`,
//! "Static determinism discipline". The lexer handles the constructs that
//! would otherwise cause false positives or missed annotations:
//!
//! * line comments, nested block comments;
//! * string literals, raw strings (`r#".."#` with any hash count), byte
//!   and byte-raw strings;
//! * char literals vs. lifetimes (`'a'` vs `<'a>`);
//! * `#[cfg(test)]` / `#[cfg(all(test, ..))]` / `#[test]` item spans,
//!   which the rules exempt entirely.

/// One `detlint: allow(<rule>) — <reason>` annotation parsed from a
/// comment.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Allow {
    /// The rule slug inside the parentheses, e.g. `unordered-iteration`.
    pub rule: String,
    /// The free-text justification after the dash. Empty = missing — a
    /// finding suppressed without a reason is still reported.
    pub reason: String,
}

/// One lexed source line.
#[derive(Clone, Debug)]
pub struct Line {
    /// The source text with comment bodies and literal contents replaced
    /// by spaces (structure — quotes, braces — preserved as spaces too).
    pub code: String,
    /// The original line, verbatim (used for snippets).
    pub raw: String,
    /// Comment text that appears on this line (line + block comments).
    pub comment: String,
    /// True when the line carries no code at all (blank or comment-only).
    pub comment_only: bool,
    /// Allow annotations written on this line.
    pub allows: Vec<Allow>,
    /// True when the line falls inside a `#[cfg(test)]`/`#[test]` span.
    pub in_test: bool,
}

/// A lexed file: lines plus derived spans.
#[derive(Debug)]
pub struct Lexed {
    pub lines: Vec<Line>,
}

#[derive(Clone, Copy, PartialEq)]
enum State {
    Normal,
    Block(u32),  // nested block comment depth
    Str,         // "..."
    RawStr(u32), // r##"..."## with hash count
    Char,        // '...'
}

impl Lexed {
    /// Lexes full source text.
    pub fn lex(src: &str) -> Lexed {
        let mut lines = Vec::new();
        let mut state = State::Normal;
        for raw in src.lines() {
            let (code, comment, next) = lex_line(raw, state);
            state = next;
            let comment_only = code.trim().is_empty();
            let allows = parse_allows(&comment);
            lines.push(Line {
                code,
                raw: raw.to_string(),
                comment,
                comment_only,
                allows,
                in_test: false,
            });
        }
        let mut lexed = Lexed { lines };
        lexed.mark_test_spans();
        lexed
    }

    /// The allow annotations that govern a finding on `line` (0-based):
    /// annotations on the line itself, or on the contiguous run of
    /// comment-only lines immediately above it.
    pub fn allows_for(&self, line: usize) -> Vec<&Allow> {
        let mut out: Vec<&Allow> = self.lines[line].allows.iter().collect();
        let mut i = line;
        while i > 0 && self.lines[i - 1].comment_only {
            i -= 1;
            out.extend(self.lines[i].allows.iter());
        }
        out
    }

    /// Marks every line covered by a `#[cfg(test)]`-like attribute's item
    /// as test code. The span runs from the attribute to the matching
    /// close brace of the item's body (or the terminating `;` for
    /// brace-less items).
    fn mark_test_spans(&mut self) {
        let starts: Vec<usize> = self
            .lines
            .iter()
            .enumerate()
            .filter(|(_, l)| is_test_attr(&l.code))
            .map(|(i, _)| i)
            .collect();
        for start in starts {
            let end = self.item_span_end(start).min(self.lines.len() - 1);
            for line in &mut self.lines[start..=end] {
                line.in_test = true;
            }
        }
    }

    /// Finds the last line of the item that starts at (or directly
    /// follows) `start`: brace-matches from the first `{` at depth 0, or
    /// stops at a `;` before any brace opens.
    fn item_span_end(&self, start: usize) -> usize {
        let mut depth: i64 = 0;
        let mut opened = false;
        for (i, line) in self.lines.iter().enumerate().skip(start) {
            for ch in line.code.chars() {
                match ch {
                    '{' => {
                        depth += 1;
                        opened = true;
                    }
                    '}' => {
                        depth -= 1;
                        if opened && depth == 0 {
                            return i;
                        }
                    }
                    ';' if !opened && depth == 0 && i > start => return i,
                    _ => {}
                }
            }
        }
        self.lines.len() - 1
    }
}

/// Does this code line open a test-only item?
fn is_test_attr(code: &str) -> bool {
    let t = code.trim_start();
    t.starts_with("#[cfg(test)]")
        || t.starts_with("#[cfg(all(test")
        || t.starts_with("#[cfg(any(test")
        || t.starts_with("#[test]")
        || t.starts_with("#[cfg(all(test,")
        || t.starts_with("#[cfg_attr(test")
}

/// Lexes one line given the state carried over from the previous line.
/// Returns (blanked code, collected comment text, state after the line).
fn lex_line(raw: &str, mut state: State) -> (String, String, State) {
    let bytes: Vec<char> = raw.chars().collect();
    let mut code = String::with_capacity(raw.len());
    let mut comment = String::new();
    let mut i = 0usize;
    while i < bytes.len() {
        let c = bytes[i];
        let next = bytes.get(i + 1).copied();
        match state {
            State::Normal => {
                if c == '/' && next == Some('/') {
                    // Line comment: capture the rest, blank it in code.
                    comment.push_str(&raw[char_offset(raw, i)..]);
                    for _ in i..bytes.len() {
                        code.push(' ');
                    }
                    i = bytes.len();
                    continue;
                } else if c == '/' && next == Some('*') {
                    state = State::Block(1);
                    code.push(' ');
                    code.push(' ');
                    i += 2;
                    continue;
                } else if c == '"' {
                    state = State::Str;
                    code.push(' ');
                    i += 1;
                    continue;
                } else if (c == 'r' || c == 'b') && raw_string_hashes(&bytes, i).is_some() {
                    let (hashes, skip) = raw_string_hashes(&bytes, i).unwrap();
                    state = State::RawStr(hashes);
                    for _ in 0..skip {
                        code.push(' ');
                    }
                    i += skip;
                    continue;
                } else if c == '\'' {
                    // Lifetime (`'a`, `'static`) vs char literal. A
                    // lifetime is `'` + ident not closed by another `'`.
                    let is_lifetime = matches!(next, Some(n) if n.is_alphabetic() || n == '_')
                        && bytes.get(i + 2).copied() != Some('\'');
                    if is_lifetime {
                        code.push(' ');
                        i += 1;
                        continue;
                    }
                    state = State::Char;
                    code.push(' ');
                    i += 1;
                    continue;
                }
                code.push(c);
                i += 1;
            }
            State::Block(depth) => {
                if c == '*' && next == Some('/') {
                    state = if depth == 1 {
                        State::Normal
                    } else {
                        State::Block(depth - 1)
                    };
                    comment.push(' ');
                    code.push(' ');
                    code.push(' ');
                    i += 2;
                } else if c == '/' && next == Some('*') {
                    state = State::Block(depth + 1);
                    code.push(' ');
                    code.push(' ');
                    i += 2;
                } else {
                    comment.push(c);
                    code.push(' ');
                    i += 1;
                }
            }
            State::Str => {
                if c == '\\' {
                    code.push(' ');
                    if next.is_some() {
                        code.push(' ');
                        i += 2;
                    } else {
                        i += 1;
                    }
                } else if c == '"' {
                    state = State::Normal;
                    code.push(' ');
                    i += 1;
                } else {
                    code.push(' ');
                    i += 1;
                }
            }
            State::RawStr(hashes) => {
                if c == '"' && closes_raw(&bytes, i, hashes) {
                    state = State::Normal;
                    for _ in 0..=(hashes as usize) {
                        code.push(' ');
                    }
                    i += 1 + hashes as usize;
                } else {
                    code.push(' ');
                    i += 1;
                }
            }
            State::Char => {
                if c == '\\' {
                    code.push(' ');
                    if next.is_some() {
                        code.push(' ');
                        i += 2;
                    } else {
                        i += 1;
                    }
                } else if c == '\'' {
                    state = State::Normal;
                    code.push(' ');
                    i += 1;
                } else {
                    code.push(' ');
                    i += 1;
                }
            }
        }
    }
    // Line comments, strings and chars do not span lines; a string's
    // closing quote on a later line would be malformed Rust anyway, but
    // never leave the lexer stuck on it.
    if state == State::Str || state == State::Char {
        state = State::Normal;
    }
    (code, comment, state)
}

/// Byte offset of the `i`-th char of `raw`.
fn char_offset(raw: &str, i: usize) -> usize {
    raw.char_indices().nth(i).map_or(raw.len(), |(o, _)| o)
}

/// If position `i` starts a raw-string opener (`r"`, `r#"`, `br##"` …),
/// returns (hash count, chars consumed by the opener).
fn raw_string_hashes(bytes: &[char], i: usize) -> Option<(u32, usize)> {
    let mut j = i;
    if bytes.get(j) == Some(&'b') {
        j += 1;
    }
    if bytes.get(j) != Some(&'r') {
        return None;
    }
    j += 1;
    let mut hashes = 0u32;
    while bytes.get(j) == Some(&'#') {
        hashes += 1;
        j += 1;
    }
    if bytes.get(j) == Some(&'"') {
        Some((hashes, j - i + 1))
    } else {
        None
    }
}

/// Does the `"` at position `i` close a raw string with `hashes` hashes?
fn closes_raw(bytes: &[char], i: usize, hashes: u32) -> bool {
    (1..=hashes as usize).all(|k| bytes.get(i + k) == Some(&'#'))
}

/// Parses every allow annotation out of a line's comment text. The
/// syntax is `detlint: allow(<rule>) — <reason>` (an ASCII `-` or `:`
/// also separates the reason).
fn parse_allows(comment: &str) -> Vec<Allow> {
    // Built by concatenation so detlint's own sources never contain the
    // annotation needle in comment position.
    let needle = concat!("detlint: ", "allow(");
    let mut out = Vec::new();
    let mut rest = comment;
    while let Some(pos) = rest.find(needle) {
        let after = &rest[pos + needle.len()..];
        let Some(close) = after.find(')') else { break };
        let rule = after[..close].trim().to_string();
        let tail = &after[close + 1..];
        // The reason follows an em-dash, hyphen or colon separator.
        let reason = tail
            .trim_start()
            .trim_start_matches(['—', '-', ':', ' '])
            .trim()
            .to_string();
        // A later annotation on the same line ends this one's reason.
        let reason = match reason.find(needle) {
            Some(p) => reason[..p].trim_end_matches("//").trim().to_string(),
            None => reason,
        };
        if !rule.is_empty() {
            out.push(Allow { rule, reason });
        }
        rest = tail;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn blanks_strings_and_comments() {
        let l = Lexed::lex("let x = \"HashMap iter\"; // HashMap comment");
        assert!(!l.lines[0].code.contains("HashMap"));
        assert!(l.lines[0].comment.contains("HashMap comment"));
    }

    #[test]
    fn raw_strings_and_chars() {
        let l = Lexed::lex("let s = r#\"thread_rng()\"#; let c = '\"'; let d = x.iter();");
        assert!(!l.lines[0].code.contains("thread_rng"));
        assert!(l.lines[0].code.contains(".iter()"));
    }

    #[test]
    fn lifetimes_are_not_chars() {
        let l = Lexed::lex("fn f<'a>(x: &'a HashMap<u8, u8>) { x.keys(); }");
        assert!(l.lines[0].code.contains("HashMap"));
        assert!(l.lines[0].code.contains(".keys()"));
    }

    #[test]
    fn nested_block_comments() {
        let src = "a /* outer /* inner */ still */ b";
        let l = Lexed::lex(src);
        let code = &l.lines[0].code;
        assert!(code.contains('a') && code.contains('b'));
        assert!(!code.contains("inner") && !code.contains("still"));
    }

    #[test]
    fn cfg_test_span_is_marked() {
        let src = "fn live() {}\n#[cfg(test)]\nmod tests {\n    fn t() {}\n}\nfn after() {}";
        let l = Lexed::lex(src);
        assert!(!l.lines[0].in_test);
        assert!(l.lines[1].in_test && l.lines[3].in_test && l.lines[4].in_test);
        assert!(!l.lines[5].in_test);
    }

    #[test]
    fn allow_parsing_with_reason() {
        let needle = concat!("// detlint: ", "allow(ambient-entropy) — wall-clock only");
        let l = Lexed::lex(&format!("let t = now(); {needle}"));
        let allows = l.allows_for(0);
        assert_eq!(allows.len(), 1);
        assert_eq!(allows[0].rule, "ambient-entropy");
        assert_eq!(allows[0].reason, "wall-clock only");
    }

    #[test]
    fn allow_on_preceding_comment_line_attaches() {
        let needle = concat!("// detlint: ", "allow(relaxed-atomic) — count only");
        let src = format!("{needle}\nx.store(1, Ordering::Relaxed);");
        let l = Lexed::lex(&src);
        assert_eq!(l.allows_for(1).len(), 1);
        assert!(l.allows_for(1)[0].reason.contains("count only"));
    }

    #[test]
    fn allow_without_reason_is_empty_reason() {
        let needle = concat!("// detlint: ", "allow(unordered-iteration)");
        let l = Lexed::lex(needle);
        let allows = &l.lines[0].allows;
        assert_eq!(allows.len(), 1);
        assert!(allows[0].reason.is_empty());
    }
}
