//! The `detlint` CLI.
//!
//! ```text
//! detlint check [--root <dir>] [--json <path>]   # scan, exit 1 on findings
//! detlint rules                                  # print the rule catalogue
//! ```
//!
//! `check` walks the workspace (default: the current directory), applies
//! the determinism rules to every first-party `.rs` file, prints the
//! human report to stdout and — with `--json` — writes the
//! machine-readable report for CI artifact upload. Exit codes: 0 clean,
//! 1 findings, 2 usage or I/O error.

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut cmd = None;
    let mut root = PathBuf::from(".");
    let mut json_path: Option<PathBuf> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "check" | "rules" if cmd.is_none() => cmd = Some(args[i].clone()),
            "--root" => {
                i += 1;
                match args.get(i) {
                    Some(p) => root = PathBuf::from(p),
                    None => return usage("--root needs a directory"),
                }
            }
            "--json" => {
                i += 1;
                match args.get(i) {
                    Some(p) => json_path = Some(PathBuf::from(p)),
                    None => return usage("--json needs a file path"),
                }
            }
            other => return usage(&format!("unknown argument `{other}`")),
        }
        i += 1;
    }
    match cmd.as_deref() {
        Some("rules") => {
            print!("{}", detlint::report::rules_text());
            ExitCode::SUCCESS
        }
        Some("check") | None => {
            let result = match detlint::check_workspace(&root) {
                Ok(r) => r,
                Err(e) => {
                    eprintln!("detlint: cannot scan {}: {e}", root.display());
                    return ExitCode::from(2);
                }
            };
            print!(
                "{}",
                detlint::report::text(&result.findings, result.files_scanned)
            );
            if let Some(path) = json_path {
                let json = detlint::report::json(&result.findings, result.files_scanned);
                if let Err(e) = std::fs::write(&path, json) {
                    eprintln!("detlint: cannot write {}: {e}", path.display());
                    return ExitCode::from(2);
                }
            }
            if result.findings.is_empty() {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        _ => usage("expected `check` or `rules`"),
    }
}

fn usage(err: &str) -> ExitCode {
    eprintln!("detlint: {err}");
    eprintln!("usage: detlint check [--root <dir>] [--json <path>] | detlint rules");
    ExitCode::from(2)
}
