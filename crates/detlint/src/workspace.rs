//! Workspace walking and file classification.
//!
//! The classification encodes which parts of the repository can reach a
//! run transcript (see `ARCHITECTURE.md`):
//!
//! * **transcript-affecting** — the engine (`crates/ncc`), the protocol
//!   stack (`crates/primitives`), the drivers (`crates/core`,
//!   `crates/trees`, `crates/connectivity`), the verification substrate
//!   (`crates/graph`, `crates/graphgen`) and the facade (`src/`). All
//!   rules apply.
//! * **observer** — the bench harness (`crates/bench`), this linter, and
//!   `examples/`: code whose *job* is wall-clock measurement and
//!   demonstration. Only the ambient-entropy sources are checked.
//! * **exempt** — test code (`tests/`, `benches/`, `#[cfg(test)]`
//!   spans), the offline dependency shims (`crates/shims/`, third-party
//!   API surface, not first-party discipline) and the linter's own rule
//!   fixtures.

use crate::scan::{scan_file, FileClass, Finding};
use std::fs;
use std::path::{Path, PathBuf};

/// Outcome of a workspace check.
#[derive(Debug)]
pub struct CheckResult {
    pub findings: Vec<Finding>,
    pub files_scanned: usize,
}

/// Classifies a workspace-relative path (forward slashes).
pub fn classify(rel: &str) -> FileClass {
    if rel.starts_with("target/")
        || rel.contains("/target/")
        || rel.starts_with("crates/shims/")
        || rel.contains("/fixtures/")
    {
        return FileClass::Exempt;
    }
    // Test and bench *directories* are exempt wholesale; `#[cfg(test)]`
    // spans inside library code are handled by the lexer.
    if rel.starts_with("tests/") || rel.contains("/tests/") || rel.contains("/benches/") {
        return FileClass::Exempt;
    }
    if rel.starts_with("crates/bench/")
        || rel.starts_with("crates/detlint/")
        || rel.starts_with("examples/")
        || rel.contains("/examples/")
    {
        return FileClass::Observer;
    }
    FileClass::TranscriptAffecting
}

/// Walks `root` and checks every `.rs` file against its class.
///
/// # Errors
///
/// Propagates I/O errors from the directory walk or file reads.
pub fn check_workspace(root: &Path) -> Result<CheckResult, std::io::Error> {
    let mut files = Vec::new();
    collect_rs_files(root, root, &mut files)?;
    files.sort();
    let mut findings = Vec::new();
    let mut files_scanned = 0usize;
    for rel in &files {
        let class = classify(rel);
        if class == FileClass::Exempt {
            continue;
        }
        let src = fs::read_to_string(root.join(rel))?;
        files_scanned += 1;
        findings.extend(scan_file(rel, &src, class));
    }
    Ok(CheckResult {
        findings,
        files_scanned,
    })
}

/// Recursively collects workspace-relative `.rs` paths, skipping
/// directories that can never hold first-party sources.
fn collect_rs_files(root: &Path, dir: &Path, out: &mut Vec<String>) -> Result<(), std::io::Error> {
    let mut entries: Vec<PathBuf> = fs::read_dir(dir)?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .collect();
    entries.sort();
    for path in entries {
        let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
        if path.is_dir() {
            if name == "target" || name == ".git" || name == ".github" {
                continue;
            }
            collect_rs_files(root, &path, out)?;
        } else if name.ends_with(".rs") {
            if let Ok(rel) = path.strip_prefix(root) {
                out.push(rel.to_string_lossy().replace('\\', "/"));
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification_matrix() {
        assert_eq!(
            classify("crates/ncc/src/batch.rs"),
            FileClass::TranscriptAffecting
        );
        assert_eq!(classify("src/lib.rs"), FileClass::TranscriptAffecting);
        assert_eq!(classify("crates/bench/src/lib.rs"), FileClass::Observer);
        assert_eq!(classify("examples/chaos.rs"), FileClass::Observer);
        assert_eq!(
            classify("crates/ncc/tests/differential.rs"),
            FileClass::Exempt
        );
        assert_eq!(classify("crates/shims/rand/src/lib.rs"), FileClass::Exempt);
        assert_eq!(
            classify("crates/detlint/tests/fixtures/r1_fires.rs"),
            FileClass::Exempt
        );
        assert_eq!(classify("crates/bench/benches/trees.rs"), FileClass::Exempt);
    }
}
