//! The scanner: applies the rules to one lexed file.
//!
//! Everything here is lexical, on comment/string-blanked code lines (see
//! [`crate::lexer`]). Two derived structures make the rules precise
//! enough to run clean on a real workspace:
//!
//! * **declared unordered names** — identifiers bound with a
//!   `HashMap`/`HashSet` type anywhere on the line (let bindings, fn
//!   params, struct fields, turbofish collects). R1 only fires when one
//!   of *those names* is iterated, so `map.get(..)` lookups and ordered
//!   containers never trip it.
//! * **fn spans** — brace-matched `fn` bodies. A span whose text contains
//!   a parallel-sweep marker (`par_iter`, `par_chunks`, `.install(`,
//!   `spawn(` …) is a *sweep fn*; R3/R4/R5 fire only inside sweep fns.

use crate::lexer::Lexed;
use crate::rules::Rule;

/// How a file relates to the determinism discipline.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FileClass {
    /// Engine/protocol/driver code: everything it computes can reach a
    /// transcript. All rules apply.
    TranscriptAffecting,
    /// Observer code (bench harness, the linter itself, examples): only
    /// the ambient-entropy sources (R2 minus the `Instant::now` arm)
    /// apply — wall-clock timers are its job.
    Observer,
    /// Not scanned (tests, fixtures, third-party shims).
    Exempt,
}

/// One finding.
#[derive(Clone, Debug)]
pub struct Finding {
    pub rule: Rule,
    /// Path as given to the scanner (workspace-relative in the CLI).
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    pub message: String,
    /// The offending source line, trimmed.
    pub snippet: String,
}

/// A half-open line span of one `fn` body, plus whether it contains a
/// parallel-sweep marker.
struct FnSpan {
    start: usize,
    end: usize,
    sweep: bool,
}

const SWEEP_MARKERS: [&str; 7] = [
    "par_iter",
    "par_chunks",
    "into_par_iter",
    "par_bridge",
    ".install(",
    "spawn(",
    "scope(",
];

/// Files that own the journal-replay pattern: worker-side sends/emits
/// there are collected into per-worker journals and replayed in
/// canonical order, so R4 does not apply to them.
const JOURNAL_FILES: [&str; 3] = ["batch.rs", "shard.rs", "route.rs"];

/// Scans one file.
pub fn scan_file(path: &str, src: &str, class: FileClass) -> Vec<Finding> {
    if class == FileClass::Exempt {
        return Vec::new();
    }
    let lexed = Lexed::lex(src);
    let names = declared_unordered_names(&lexed);
    let spans = fn_spans(&lexed);
    let basename = path.rsplit('/').next().unwrap_or(path);
    let journal_file = JOURNAL_FILES.contains(&basename);
    let transcript = class == FileClass::TranscriptAffecting;

    let mut findings = Vec::new();
    for (i, line) in lexed.lines.iter().enumerate() {
        if line.in_test {
            continue;
        }
        let code = line.code.as_str();
        let in_sweep = spans
            .iter()
            .filter(|s| s.start <= i && i < s.end)
            .min_by_key(|s| s.end - s.start)
            .is_some_and(|s| s.sweep);

        let mut push = |rule: Rule, message: String| {
            findings.push(Finding {
                rule,
                file: path.to_string(),
                line: i + 1,
                message,
                snippet: line.raw.trim().to_string(),
            });
        };

        // R1 — unordered iteration (transcript-affecting files only).
        if transcript {
            for name in iterated_names(code, &names) {
                push(
                    Rule::UnorderedIteration,
                    format!(
                        "`{name}` is a HashMap/HashSet and its iteration order is \
                         per-process random; iterate a BTreeMap/BTreeSet or sort first"
                    ),
                );
            }
        }

        // R2 — ambient entropy. The entropy sources apply to every
        // scanned class; the Instant::now arm only to transcript code
        // (observers exist to measure wall time).
        for pat in ["thread_rng", "from_entropy"] {
            if has_word(code, pat) {
                push(
                    Rule::AmbientEntropy,
                    format!("`{pat}` draws OS entropy; seed from Config::seed/scenario_seed"),
                );
            }
        }
        if code.contains("SystemTime::now") {
            push(
                Rule::AmbientEntropy,
                "`SystemTime::now` is ambient wall-clock state".to_string(),
            );
        }
        if transcript && code.contains("Instant::now") {
            push(
                Rule::AmbientEntropy,
                "`Instant::now` on a transcript-affecting path; metrics timers \
                 must be annotated as such"
                    .to_string(),
            );
        }

        if transcript {
            // R3 — relaxed atomics in sweeps + shared lock state.
            if in_sweep && code.contains("Ordering::Relaxed") {
                push(
                    Rule::RelaxedAtomic,
                    "relaxed atomic inside a parallel sweep; justify why the \
                     access order cannot reach the transcript"
                        .to_string(),
                );
            }
            if !code.trim_start().starts_with("use ")
                && ["Mutex<", "Mutex::new", "RwLock<", "RwLock::new"]
                    .iter()
                    .any(|p| code.contains(p))
            {
                push(
                    Rule::RelaxedAtomic,
                    "lock-guarded shared state on a transcript-affecting path; \
                     justify why the protected mutation is order-independent"
                        .to_string(),
                );
            }

            // R4 — send/emit inside sweeps, outside the journal files.
            if in_sweep
                && !journal_file
                && ["ctx.send(", ".emit(", "emitter."]
                    .iter()
                    .any(|p| code.contains(p))
            {
                push(
                    Rule::SendOutsideJournal,
                    "send/event emission inside a parallel sweep outside the \
                     journal-replay pattern; collect into per-worker journals \
                     and replay in canonical order"
                        .to_string(),
                );
            }

            // R5 — float accumulation in parallel folds.
            if in_sweep
                && (has_word(code, "f32") || has_word(code, "f64"))
                && ["+=", ".sum()", ".sum::<", "fold("]
                    .iter()
                    .any(|p| code.contains(p))
            {
                push(
                    Rule::FloatAccumulation,
                    "floating-point accumulation inside a parallel sweep; float \
                     addition is non-associative across chunk boundaries"
                        .to_string(),
                );
            }
        }
    }

    // Apply suppressions: an allow for the rule's slug on the finding's
    // line (or the comment block directly above) suppresses it — but only
    // with a non-empty written justification.
    findings.retain(|f| {
        let allows = lexed.allows_for(f.line - 1);
        match allows.iter().find(|a| a.rule == f.rule.slug()) {
            Some(a) if !a.reason.is_empty() => false,
            Some(_) => true, // annotation present but no justification
            None => true,
        }
    });
    // Upgrade the message for reasonless suppressions.
    for f in &mut findings {
        let allows = lexed.allows_for(f.line - 1);
        if allows
            .iter()
            .any(|a| a.rule == f.rule.slug() && a.reason.is_empty())
        {
            f.message = format!(
                "{} (suppression present but missing its justification — write \
                 `allow({}) — <why this is order-independent>`)",
                f.message,
                f.rule.slug()
            );
        }
    }
    findings
}

/// Collects identifiers declared with an unordered-container type
/// anywhere in the file: `name: [&][mut] [std::collections::]HashMap<…`
/// (covers let bindings, fn params and struct fields), plus
/// `let name = …HashMap::new/with_capacity…` and
/// `let name … = … collect::<HashMap…>`.
fn declared_unordered_names(lexed: &Lexed) -> Vec<String> {
    let mut names = Vec::new();
    for line in &lexed.lines {
        let code = &line.code;
        if !code.contains("HashMap") && !code.contains("HashSet") {
            continue;
        }
        let toks = tokens(code);
        for (ti, tok) in toks.iter().enumerate() {
            if tok != "HashMap" && tok != "HashSet" {
                continue;
            }
            // Walk left over path/reference noise to the `:` separator.
            let mut j = ti;
            while j > 0 {
                let prev = &toks[j - 1];
                if prev == "::"
                    || prev == "std"
                    || prev == "collections"
                    || prev == "&"
                    || prev == "mut"
                {
                    j -= 1;
                } else {
                    break;
                }
            }
            if j >= 2 && toks[j - 1] == ":" && is_ident(&toks[j - 2]) {
                names.push(toks[j - 2].clone());
                continue;
            }
            // `let name = HashMap::new()` / `= x.collect::<HashMap…>()`.
            if let (Some(let_pos), Some(eq_pos)) = (
                toks.iter().position(|t| t == "let"),
                toks.iter().position(|t| t == "="),
            ) {
                if eq_pos < ti && let_pos < eq_pos {
                    // The bound name is the last ident before `=` that is
                    // not `mut` (patterns richer than that don't bind a
                    // single map anyway).
                    if let Some(name) = toks[let_pos + 1..eq_pos]
                        .iter()
                        .rev()
                        .find(|t| is_ident(t) && *t != "mut")
                    {
                        names.push(name.clone());
                    }
                }
            }
        }
    }
    names.sort();
    names.dedup();
    names
}

/// Names from `names` that this line iterates.
fn iterated_names(code: &str, names: &[String]) -> Vec<String> {
    if names.is_empty() {
        return Vec::new();
    }
    let mut out = Vec::new();
    let toks = tokens(code);
    const ITER_METHODS: [&str; 8] = [
        "iter",
        "iter_mut",
        "keys",
        "values",
        "values_mut",
        "into_iter",
        "drain",
        "retain",
    ];
    for (i, tok) in toks.iter().enumerate() {
        if !names.contains(tok) {
            continue;
        }
        // `name.iter()` and friends.
        if toks.get(i + 1).map(String::as_str) == Some(".")
            && toks
                .get(i + 2)
                .is_some_and(|m| ITER_METHODS.contains(&m.as_str()))
        {
            out.push(tok.clone());
            continue;
        }
        // `for … in [&[mut]] name {` / end of line.
        let mut j = i;
        while j > 0 && (toks[j - 1] == "&" || toks[j - 1] == "mut") {
            j -= 1;
        }
        if j > 0 && toks[j - 1] == "in" {
            let next = toks.get(i + 1).map(String::as_str);
            if next.is_none() || next == Some("{") {
                out.push(tok.clone());
            }
        }
    }
    out.sort();
    out.dedup();
    out
}

/// Brace-matched `fn` body spans (end is exclusive, in lines), with the
/// sweep-marker flag. Bodies are found from each `fn` keyword's first
/// `{` at or after it; nested fns produce nested spans and the scanner
/// takes the innermost.
fn fn_spans(lexed: &Lexed) -> Vec<FnSpan> {
    let mut spans = Vec::new();
    let n = lexed.lines.len();
    for start in 0..n {
        let toks = tokens(&lexed.lines[start].code);
        if !toks.iter().any(|t| t == "fn") {
            continue;
        }
        // Find the first `{` from the fn keyword onward, then match it.
        let mut depth: i64 = 0;
        let mut opened = false;
        let mut end = n;
        'outer: for (i, line) in lexed.lines.iter().enumerate().skip(start) {
            for ch in line.code.chars() {
                match ch {
                    '{' => {
                        depth += 1;
                        opened = true;
                    }
                    '}' => {
                        depth -= 1;
                        if opened && depth == 0 {
                            end = i + 1;
                            break 'outer;
                        }
                    }
                    // A `;` before any `{`: trait method signature or
                    // extern decl — no body, no span.
                    ';' if !opened => {
                        end = start;
                        break 'outer;
                    }
                    _ => {}
                }
            }
        }
        if end > start {
            let sweep = lexed.lines[start..end]
                .iter()
                .any(|l| SWEEP_MARKERS.iter().any(|m| l.code.contains(m)));
            spans.push(FnSpan { start, end, sweep });
        }
    }
    spans
}

/// Splits blanked code into ident and punctuation tokens.
fn tokens(code: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut cur = String::new();
    let mut chars = code.chars().peekable();
    while let Some(c) = chars.next() {
        if c.is_alphanumeric() || c == '_' {
            cur.push(c);
            continue;
        }
        if !cur.is_empty() {
            out.push(std::mem::take(&mut cur));
        }
        match c {
            ' ' | '\t' => {}
            ':' if chars.peek() == Some(&':') => {
                chars.next();
                out.push("::".to_string());
            }
            _ => out.push(c.to_string()),
        }
    }
    if !cur.is_empty() {
        out.push(cur);
    }
    out
}

fn is_ident(tok: &str) -> bool {
    tok.chars()
        .next()
        .is_some_and(|c| c.is_alphabetic() || c == '_')
}

fn has_word(code: &str, word: &str) -> bool {
    let bytes = code.as_bytes();
    let mut from = 0;
    while let Some(pos) = code[from..].find(word) {
        let start = from + pos;
        let end = start + word.len();
        let left_ok =
            start == 0 || !(bytes[start - 1].is_ascii_alphanumeric() || bytes[start - 1] == b'_');
        let right_ok =
            end == bytes.len() || !(bytes[end].is_ascii_alphanumeric() || bytes[end] == b'_');
        if left_ok && right_ok {
            return true;
        }
        from = end;
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scan(src: &str) -> Vec<Finding> {
        scan_file("x.rs", src, FileClass::TranscriptAffecting)
    }

    #[test]
    fn r1_fires_on_declared_map_iteration() {
        let src = "fn f(lists: &HashMap<u64, Vec<u64>>) {\n    for (k, v) in lists {\n        drop((k, v));\n    }\n}";
        let f = scan(src);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, Rule::UnorderedIteration);
        assert_eq!(f[0].line, 2);
    }

    #[test]
    fn r1_ignores_lookups_and_btree() {
        let src = "fn f(m: &HashMap<u64, u64>, b: &BTreeMap<u64, u64>) {\n    let _ = m.get(&1);\n    for x in b.keys() { drop(x); }\n}";
        assert!(scan(src).is_empty());
    }

    #[test]
    fn r1_field_iteration() {
        let src = "struct S { known: HashSet<u64> }\nimpl S {\n    fn f(&self) { for k in self.known.iter() { drop(k); } }\n}";
        let f = scan(src);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].line, 3);
    }

    #[test]
    fn r2_instant_only_for_transcript_class() {
        let src = "fn f() { let t = Instant::now(); drop(t); }";
        assert_eq!(scan(src).len(), 1);
        assert!(scan_file("x.rs", src, FileClass::Observer).is_empty());
        let sys = "fn f() { let t = SystemTime::now(); drop(t); }";
        assert_eq!(scan_file("x.rs", sys, FileClass::Observer).len(), 1);
    }

    #[test]
    fn r3_relaxed_only_in_sweep_fns() {
        let seq = "fn f(x: &AtomicUsize) { x.load(Ordering::Relaxed); }";
        assert!(scan(seq).is_empty());
        let par = "fn f(x: &AtomicUsize, v: &[u8]) {\n    v.par_iter().for_each(|_| {\n        x.fetch_add(1, Ordering::Relaxed);\n    });\n}";
        let f = scan(par);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, Rule::RelaxedAtomic);
    }

    #[test]
    fn r4_send_in_sweep_fires_except_journal_files() {
        let src = "fn f(v: &[u8]) {\n    v.par_iter().for_each(|_| {\n        ctx.send(1, msg);\n    });\n}";
        assert_eq!(scan(src).len(), 1);
        assert!(scan_file("batch.rs", src, FileClass::TranscriptAffecting).is_empty());
    }

    #[test]
    fn r5_float_fold_in_sweep() {
        let src = "fn f(v: &[f64]) {\n    v.par_iter().for_each(|x| {\n        let mut acc: f64 = 0.0; acc += x;\n    });\n}";
        let f = scan(src);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, Rule::FloatAccumulation);
    }

    #[test]
    fn allow_with_reason_suppresses_without_reason_does_not() {
        let with = format!(
            "fn f() {{\n    {} — timer feeds stats only\n    let t = Instant::now();\n    drop(t);\n}}",
            concat!("// detlint: ", "allow(ambient-entropy)")
        );
        assert!(scan(&with).is_empty());
        let without = format!(
            "fn f() {{\n    {}\n    let t = Instant::now();\n    drop(t);\n}}",
            concat!("// detlint: ", "allow(ambient-entropy)")
        );
        let f = scan(&without);
        assert_eq!(f.len(), 1);
        assert!(f[0].message.contains("missing its justification"));
    }

    #[test]
    fn cfg_test_code_is_exempt() {
        let src = "#[cfg(test)]\nmod tests {\n    fn f(m: &HashMap<u64, u64>) { for x in m.keys() { drop(x); } }\n}";
        assert!(scan(src).is_empty());
    }
}
