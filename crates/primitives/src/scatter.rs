//! Milestone scan: a sorted-order *segmented broadcast* in `O(log² n)`
//! rounds — the primitive behind Algorithm 5's child assignment.
//!
//! ## Problem
//!
//! Nodes on a path hold *records* with totally ordered keys. Some records
//! are **milestones** carrying an address; the rest are **fillers**. Every
//! filler must learn the address of the latest milestone preceding it in
//! key order. This expresses "node of sorted rank `r` learns the ID of the
//! unique source whose interval `[a_i, b_i]` contains `r`" without any
//! node knowing the interval boundaries of others: source `i` emits a
//! milestone keyed just before `a_i`, rank `r` emits a filler keyed at `r`,
//! and the scan hands every rank its covering source.
//!
//! The twist is that one node may need to act as both a source (emit a
//! milestone) *and* a covered rank (emit a filler) — Algorithm 5's internal
//! tree nodes are both parents and children. So the primitive lets **every
//! node emit two records**, hosted on `2n` virtual slots (node at position
//! `p` hosts slots `2p` and `2p+1`).
//!
//! ## Mechanics
//!
//! 1. The records are sorted by `(key, origin, slot)` with the same
//!    odd-even mergesort network as [`crate::sort`], run over virtual
//!    slots: a comparator at virtual distance `2^j` connects hosts at
//!    physical distance `2^(j-1)` (or the same/adjacent node for `j = 0`),
//!    so the ordinary contact table provides all addressing and each node
//!    runs at most two comparators per stage.
//! 2. A Hillis–Steele doubling scan over the sorted virtual order
//!    propagates "latest milestone so far".
//! 3. Each slot returns the scanned value to its record's origin.

#[cfg(feature = "threaded")]
use crate::contacts::ContactTable;
#[cfg(feature = "threaded")]
use crate::sort::comparator_at;
#[cfg(feature = "threaded")]
use crate::vpath::VPath;
use dgr_ncc::NodeId;
#[cfg(feature = "threaded")]
use dgr_ncc::{tags, Msg, NodeHandle};

/// A record emitted into the scan.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ScanRecord {
    /// A milestone: fillers after it (until the next milestone) learn
    /// `addr`.
    Milestone {
        /// Sort key.
        key: u64,
        /// The address this milestone announces.
        addr: NodeId,
    },
    /// A filler: wants the latest milestone address before `key`.
    Filler {
        /// Sort key.
        key: u64,
    },
    /// No record — sorts to the very end and receives nothing.
    Absent,
}

#[cfg(feature = "threaded")]
impl ScanRecord {
    fn key(&self) -> u64 {
        match self {
            ScanRecord::Milestone { key, .. } | ScanRecord::Filler { key } => *key,
            ScanRecord::Absent => u64::MAX,
        }
    }
}

/// A record in flight: sort key, origin + emission slot (for total order
/// and final delivery), and the milestone payload if any.
#[cfg(feature = "threaded")]
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
struct Flight {
    key: u64,
    origin: NodeId,
    slot: u8,
    milestone: Option<NodeId>,
}

#[cfg(feature = "threaded")]
impl Flight {
    fn order(&self) -> (u64, NodeId, u8) {
        (self.key, self.origin, self.slot)
    }
}

/// Tag words distinguishing the sub-protocols in flight.
#[cfg(feature = "threaded")]
const W_EXCHANGE: u64 = 0;
#[cfg(feature = "threaded")]
const W_SCAN: u64 = 1;
#[cfg(feature = "threaded")]
const W_DELIVER: u64 = 2;

/// Number of rounds [`milestone_scan`] takes on a path of `len` nodes.
pub fn rounds_for(len: usize) -> u64 {
    let virt = 2 * len;
    crate::sort::stage_count(virt) as u64          // comparator network
        + crate::levels_for(virt) as u64           // doubling scan
        + 1 // origin delivery
}

/// Encodes a flight record into a message. Flags word packs the slot and
/// presence bits; `addrs[0]` = origin, `addrs[1]` = milestone (if any).
#[cfg(feature = "threaded")]
fn encode(tag_word: u64, vpos: u64, f: &Flight) -> Msg {
    let flags = u64::from(f.slot) | (u64::from(f.milestone.is_some()) << 1);
    let mut m = Msg::words(tags::SORT_XCHG, vec![tag_word, vpos, f.key, flags]).with_addr(f.origin);
    if let Some(a) = f.milestone {
        m = m.with_addr(a);
    }
    m
}

#[cfg(feature = "threaded")]
fn decode(msg: &Msg) -> (u64, u64, Flight) {
    let tag_word = msg.words[0];
    let vpos = msg.words[1];
    let key = msg.words[2];
    let flags = msg.words[3];
    let origin = msg.addrs[0];
    let milestone = (flags & 2 != 0).then(|| msg.addrs[1]);
    (
        tag_word,
        vpos,
        Flight {
            key,
            origin,
            slot: (flags & 1) as u8,
            milestone,
        },
    )
}

/// The host path position of a virtual slot.
#[cfg(feature = "threaded")]
fn host(vpos: usize) -> usize {
    vpos / 2
}

/// Runs the milestone scan. Every member emits exactly two records (use
/// [`ScanRecord::Absent`] to pad); the return value gives, for each
/// emitted record in order, the latest milestone address strictly... —
/// precisely: for a [`ScanRecord::Filler`], the address of the milestone
/// with the greatest `(key, origin, slot)` smaller than the filler's, or
/// `None` if no milestone precedes it. Milestone and absent records return
/// their own/no address and should be ignored by callers.
///
/// Keys need not be distinct across nodes; ties are broken by
/// `(origin, slot)`. Non-members idle.
///
/// Rounds: exactly [`rounds_for`]`(vp.len)`.
#[cfg(feature = "threaded")]
pub fn milestone_scan(
    h: &mut NodeHandle,
    vp: &VPath,
    contacts: &ContactTable,
    position: usize,
    records: [ScanRecord; 2],
) -> [Option<NodeId>; 2] {
    let len = vp.len;
    if !vp.member {
        h.idle_quiet(rounds_for(len));
        return [None, None];
    }
    let virt = 2 * len;

    // My two hosted slots start holding my own two records.
    let mut held: [Flight; 2] = std::array::from_fn(|s| Flight {
        key: records[s].key(),
        origin: h.id(),
        slot: s as u8,
        milestone: match records[s] {
            ScanRecord::Milestone { addr, .. } => Some(addr),
            _ => None,
        },
    });

    // The ID of the node hosting the virtual slot at the given distance
    // from one of my slots (None off the ends).
    let my_host = position;
    let host_id = |target_host: usize, h_id: NodeId| -> Option<NodeId> {
        use std::cmp::Ordering;
        match target_host.cmp(&my_host) {
            Ordering::Equal => Some(h_id),
            Ordering::Greater => {
                let d = target_host - my_host;
                debug_assert!(d.is_power_of_two());
                contacts.ahead(d.trailing_zeros() as usize)
            }
            Ordering::Less => {
                let d = my_host - target_host;
                debug_assert!(d.is_power_of_two());
                contacts.behind(d.trailing_zeros() as usize)
            }
        }
    };

    // --- Phase 1: odd-even mergesort over the 2·len virtual slots. ---
    let my_id = h.id();
    for (p, k) in crate::sort::stages_of(virt) {
        // Comparators touching my slots; handle same-node pairs locally.
        let mut out = Vec::new();
        let mut plan: [Option<(usize, bool)>; 2] = [None, None];
        for s in 0..2 {
            let v = 2 * position + s;
            if let Some((partner, i_am_low)) = comparator_at(v, virt, p, k) {
                if host(partner) == my_host {
                    // Local comparator between my own two slots.
                    if s == 0 {
                        let (lo, hi) = (held[0], held[1]);
                        debug_assert!(partner == v + 1 && i_am_low);
                        if lo.order() > hi.order() {
                            held.swap(0, 1);
                        }
                    }
                } else {
                    plan[s] = Some((partner, i_am_low));
                    let target =
                        host_id(host(partner), my_id).expect("comparator partner off the path");
                    out.push((target, encode(W_EXCHANGE, v as u64, &held[s])));
                }
            }
        }
        let inbox = h.step(out);
        for env in inbox.iter().filter(|e| e.msg.tag == tags::SORT_XCHG) {
            let (w, partner_vpos, theirs) = decode(&env.msg);
            debug_assert_eq!(w, W_EXCHANGE);
            // Which of my slots has this partner?
            let s = (0..2)
                .find(|&s| {
                    plan[s] == Some((partner_vpos as usize, true))
                        || plan[s] == Some((partner_vpos as usize, false))
                })
                .expect("unexpected exchange partner");
            let (_, i_am_low) = plan[s].unwrap();
            held[s] = if i_am_low {
                if held[s].order() <= theirs.order() {
                    held[s]
                } else {
                    theirs
                }
            } else if held[s].order() > theirs.order() {
                held[s]
            } else {
                theirs
            };
        }
    }

    // --- Phase 2: Hillis–Steele scan of "latest milestone so far" over
    // the sorted virtual order. acc[s] starts as the slot's own milestone;
    // at step k, slot v pushes its acc to slot v + 2^k, where an incoming
    // Some overrides (the sender is earlier, so it only fills gaps). ---
    let mut acc: [Option<NodeId>; 2] = std::array::from_fn(|s| held[s].milestone);
    // Incoming accumulators override only if I have nothing: wrong — the
    // *latest* milestone wins, and later positions are further right, so
    // my own Some always beats an incoming one. Incoming fills None only.
    for k in 0..crate::levels_for(virt) {
        let mut out = Vec::new();
        for (s, &slot_acc) in acc.iter().enumerate() {
            let v = 2 * position + s;
            let tv = v + (1 << k);
            if tv < virt {
                if let Some(a) = slot_acc {
                    let target = host_id(host(tv), my_id).expect("scan target off the path");
                    let msg = Msg::words(tags::PREFIX, vec![W_SCAN, tv as u64]).with_addr(a);
                    out.push((target, msg));
                }
            }
        }
        let inbox = h.step(out);
        for env in inbox.iter().filter(|e| e.msg.tag == tags::PREFIX) {
            let tv = env.msg.words[1] as usize;
            let s = tv - 2 * position;
            debug_assert!(s < 2);
            if acc[s].is_none() {
                acc[s] = Some(env.addr());
            }
        }
    }

    // --- Phase 3: deliver each slot's result to its record's origin. ---
    let mut out = Vec::new();
    let mut result: [Option<NodeId>; 2] = [None, None];
    for s in 0..2 {
        // A filler's answer excludes itself automatically (it is not a
        // milestone); a milestone slot's acc is itself — callers ignore it.
        let value = acc[s];
        if held[s].origin == my_id {
            result[held[s].slot as usize] = value;
        } else {
            let mut msg = Msg::words(
                tags::TOKEN,
                vec![
                    W_DELIVER,
                    u64::from(held[s].slot),
                    u64::from(value.is_some()),
                ],
            );
            if let Some(a) = value {
                msg = msg.with_addr(a);
            }
            out.push((held[s].origin, msg));
        }
    }
    let inbox = h.step(out);
    for env in inbox.iter().filter(|e| e.msg.tag == tags::TOKEN) {
        let s = env.msg.words[1] as usize;
        if env.msg.words[2] != 0 {
            result[s] = Some(env.msg.addrs[0]);
        }
    }
    result
}

#[cfg(all(test, feature = "threaded"))]
mod tests {
    use super::*;
    use crate::ctx::PathCtx;
    use dgr_ncc::{Config, Network};

    /// Sources at every multiple of w announce themselves for the w-1
    /// following ranks — but *every* node (including sources) must learn
    /// the announcement covering its own rank: exactly the two-role case.
    #[test]
    fn two_role_segmented_broadcast() {
        let n = 24;
        let w = 4;
        let net = Network::new(n, Config::ncc0(81));
        let result = net
            .run(move |h| {
                let ctx = PathCtx::establish(h);
                let r = ctx.position as u64;
                let rec0 = if ctx.position.is_multiple_of(w) {
                    // Milestone just before my own filler key: covers me too.
                    ScanRecord::Milestone {
                        key: 2 * r,
                        addr: h.id(),
                    }
                } else {
                    ScanRecord::Absent
                };
                let rec1 = ScanRecord::Filler { key: 2 * r + 1 };
                let got = milestone_scan(h, &ctx.vp, &ctx.contacts, ctx.position, [rec0, rec1]);
                got[1]
            })
            .unwrap();
        assert!(result.metrics.is_clean());
        let order = result.gk_order();
        for (i, (_, got)) in result.outputs.iter().enumerate() {
            let src = order[(i / w) * w];
            assert_eq!(*got, Some(src), "rank {i}");
        }
    }

    #[test]
    fn filler_before_all_milestones_gets_none() {
        let n = 9;
        let net = Network::new(n, Config::ncc0(82));
        let result = net
            .run(move |h| {
                let ctx = PathCtx::establish(h);
                let r = ctx.position as u64;
                // One milestone in the middle (rank 4).
                let rec0 = if ctx.position == 4 {
                    ScanRecord::Milestone {
                        key: 9,
                        addr: h.id(),
                    }
                } else {
                    ScanRecord::Absent
                };
                let rec1 = ScanRecord::Filler { key: 2 * r };
                milestone_scan(h, &ctx.vp, &ctx.contacts, ctx.position, [rec0, rec1])[1]
            })
            .unwrap();
        let order = result.gk_order();
        for (i, (_, got)) in result.outputs.iter().enumerate() {
            if i <= 4 {
                assert_eq!(*got, None, "rank {i} (key {} < 9)", 2 * i);
            } else {
                assert_eq!(*got, Some(order[4]), "rank {i}");
            }
        }
    }

    #[test]
    fn single_node_path() {
        let net = Network::new(1, Config::ncc0(83));
        let result = net
            .run(|h| {
                let ctx = PathCtx::establish(h);
                milestone_scan(
                    h,
                    &ctx.vp,
                    &ctx.contacts,
                    ctx.position,
                    [
                        ScanRecord::Milestone {
                            key: 0,
                            addr: h.id(),
                        },
                        ScanRecord::Filler { key: 1 },
                    ],
                )[1]
            })
            .unwrap();
        assert_eq!(result.outputs[0].1, Some(result.outputs[0].0));
    }

    #[test]
    fn round_budget_matches() {
        let n = 20;
        let net = Network::new(n, Config::ncc0(84));
        let result = net
            .run(move |h| {
                let ctx = PathCtx::establish(h);
                let before = h.round();
                milestone_scan(
                    h,
                    &ctx.vp,
                    &ctx.contacts,
                    ctx.position,
                    [ScanRecord::Absent, ScanRecord::Filler { key: 0 }],
                );
                h.round() - before
            })
            .unwrap();
        for (_, spent) in &result.outputs {
            assert_eq!(*spent, rounds_for(n));
        }
    }
}
