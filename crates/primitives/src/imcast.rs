//! Interval multicast: a source delivers a payload to a contiguous range of
//! ranks *adjacent to itself* on a virtual path, in `O(log n)` rounds via
//! doubling cover — our congestion-free substitute for the butterfly
//! multicast of Theorem 7 (see `DESIGN.md` §4).
//!
//! The realization algorithms only ever multicast to contiguous rank
//! intervals headed (or tailed) by the source: Algorithm 3's groups are
//! `[i, i+δ]` with source `t_i` at rank `i`; Algorithm 6 phase 2 covers the
//! `ρ(x_i)` *predecessors* of `x_i`. Where the paper needs a source to reach
//! a distant interval (Algorithms 4/5), our implementations first re-sort so
//! that every group becomes contiguous with its source at its head — after
//! which this primitive applies directly.
//!
//! Cover protocol ("after" side): a node at rank `r` responsible for the
//! `c` ranks after it jumps its payload to the contact `2^k` ahead
//! (`2^k = ⌊c⌋₂`, the largest power of two ≤ c), delegating the trailing
//! `c - 2^k` ranks, and keeps the leading `2^k - 1`. Both residues are less
//! than `2^k`, so the responsibility halves every round: `O(log c)` rounds,
//! at most one send and one receive per node per round as long as different
//! sources' intervals are disjoint.

#[cfg(feature = "threaded")]
use crate::contacts::ContactTable;
#[cfg(feature = "threaded")]
use crate::vpath::VPath;
use dgr_ncc::NodeId;
#[cfg(feature = "threaded")]
use dgr_ncc::{tags, Msg, NodeHandle};

/// Which side of the source the covered interval lies on.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CoverSide {
    /// Cover the `count` ranks immediately after the source.
    After,
    /// Cover the `count` ranks immediately before the source.
    Before,
}

/// A multicast payload: one address (typically the source's ID — this is
/// how realization edges are announced) plus one data word.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Payload {
    /// Address carried to every covered node.
    pub addr: NodeId,
    /// Data word carried to every covered node.
    pub word: u64,
}

/// Number of rounds [`interval_multicast`] takes on a path of `len` nodes.
pub fn rounds_for(len: usize) -> u64 {
    crate::levels_for(len) as u64 + 1
}

/// Runs one interval-multicast epoch. `task` is `Some` at sources:
/// `(side, count, payload)` covers the `count` ranks adjacent to this node
/// on `side`. Intervals of distinct sources must be disjoint and must not
/// contain any source. Returns the payload this node received, if any.
///
/// Rounds: exactly [`rounds_for`]`(vp.len)`.
#[cfg(feature = "threaded")]
pub fn interval_multicast(
    h: &mut NodeHandle,
    vp: &VPath,
    contacts: &ContactTable,
    task: Option<(CoverSide, usize, Payload)>,
) -> Option<Payload> {
    let rounds = rounds_for(vp.len);
    if !vp.member {
        h.idle_quiet(rounds);
        return None;
    }
    // (side, remaining count, payload) this node is responsible for.
    let mut duty: Option<(CoverSide, usize, Payload)> = task.filter(|t| t.1 > 0);
    let mut received: Option<Payload> = None;
    for _ in 0..rounds {
        let mut out = Vec::new();
        if let Some((side, count, payload)) = duty {
            debug_assert!(count >= 1);
            let k = usize::BITS as usize - 1 - count.leading_zeros() as usize;
            let forward = side == CoverSide::After;
            let target = contacts
                .at_offset(k, forward)
                .expect("interval multicast ran off the path");
            let delegated = count - (1 << k);
            let side_word = match side {
                CoverSide::After => 0u64,
                CoverSide::Before => 1,
            };
            out.push((
                target,
                Msg::addr_words(
                    tags::IMCAST,
                    payload.addr,
                    vec![payload.word, delegated as u64, side_word],
                ),
            ));
            let keep = (1 << k) - 1;
            duty = (keep > 0).then_some((side, keep, payload));
        }
        let inbox = h.step(out);
        for env in inbox.iter().filter(|e| e.msg.tag == tags::IMCAST) {
            debug_assert!(received.is_none(), "overlapping multicast intervals");
            let payload = Payload {
                addr: env.addr(),
                word: env.msg.words[0],
            };
            received = Some(payload);
            let delegated = env.msg.words[1] as usize;
            let side = if env.msg.words[2] == 0 {
                CoverSide::After
            } else {
                CoverSide::Before
            };
            debug_assert!(duty.is_none(), "covered node already had a duty");
            duty = (delegated > 0).then_some((side, delegated, payload));
        }
    }
    debug_assert!(duty.is_none(), "multicast round budget too small");
    received
}

#[cfg(all(test, feature = "threaded"))]
mod tests {
    use super::*;
    use crate::ctx::PathCtx;
    use dgr_ncc::{Config, Network};

    /// Disjoint groups of width w: source at rank q*w covers the w-1 ranks
    /// after it; every covered node must learn the source's ID.
    fn check_after(n: usize, w: usize, seed: u64) {
        let net = Network::new(n, Config::ncc0(seed));
        let result = net
            .run(move |h| {
                let ctx = PathCtx::establish(h);
                let r = ctx.position;
                let task = r.is_multiple_of(w).then(|| {
                    let count = (w - 1).min(n - 1 - r);
                    (
                        CoverSide::After,
                        count,
                        Payload {
                            addr: h.id(),
                            word: r as u64,
                        },
                    )
                });
                let got = interval_multicast(h, &ctx.vp, &ctx.contacts, task);
                (r, got)
            })
            .unwrap();
        assert!(result.metrics.is_clean(), "n={n} w={w}");
        let order = result.gk_order();
        for (_, (r, got)) in &result.outputs {
            if r % w == 0 {
                assert_eq!(*got, None, "source must not receive");
            } else {
                let src_rank = (r / w) * w;
                let want = Payload {
                    addr: order[src_rank],
                    word: src_rank as u64,
                };
                assert_eq!(*got, Some(want), "n={n} w={w} rank={r}");
            }
        }
    }

    #[test]
    fn disjoint_after_groups() {
        check_after(40, 5, 61);
        check_after(64, 8, 62);
        check_after(37, 7, 63);
        check_after(16, 16, 64);
        check_after(9, 1, 65); // every node a source, nothing covered
    }

    #[test]
    fn before_side_covers_predecessors() {
        // The tail covers the whole rest of the path backwards.
        let n = 23;
        let net = Network::new(n, Config::ncc0(66));
        let result = net
            .run(move |h| {
                let ctx = PathCtx::establish(h);
                let task = (ctx.position == n - 1).then(|| {
                    (
                        CoverSide::Before,
                        n - 1,
                        Payload {
                            addr: h.id(),
                            word: 9,
                        },
                    )
                });
                interval_multicast(h, &ctx.vp, &ctx.contacts, task)
            })
            .unwrap();
        assert!(result.metrics.is_clean());
        let tail = *result.gk_order().last().unwrap();
        for (id, got) in &result.outputs {
            if *id == tail {
                assert_eq!(*got, None);
            } else {
                assert_eq!(
                    *got,
                    Some(Payload {
                        addr: tail,
                        word: 9
                    })
                );
            }
        }
    }

    #[test]
    fn zero_count_task_is_a_noop() {
        let net = Network::new(8, Config::ncc0(67));
        let result = net
            .run(|h| {
                let ctx = PathCtx::establish(h);
                let task = Some((
                    CoverSide::After,
                    0,
                    Payload {
                        addr: h.id(),
                        word: 0,
                    },
                ));
                interval_multicast(h, &ctx.vp, &ctx.contacts, task)
            })
            .unwrap();
        assert!(result.outputs.iter().all(|(_, got)| got.is_none()));
    }
}
