//! Structural and computational primitives for the NCC0/NCC1 models
//! (Section 3 of *Distributed Graph Realizations*, IPDPS 2020).
//!
//! All primitives operate on a [`VPath`] — a *virtual path*: any linked
//! arrangement of a subset of nodes, starting from the physical knowledge
//! path `G_k` and later including sorted paths and sorted-path prefixes.
//! This one abstraction is what lets the realization algorithms re-sort and
//! recurse on sub-networks (Algorithm 6 runs a full degree realization on the
//! first `d₀+1` nodes of a sorted path) without any special cases.
//!
//! Every primitive runs a number of rounds that is a *deterministic function
//! of the path length* (padding with idle rounds where needed). This is the
//! **synchronous composability** invariant: because all nodes can compute the
//! same round counts from commonly known values, an algorithm is simply a
//! sequence of primitive calls executed by every node, and everything stays
//! in lockstep. Data-dependent control flow (e.g. the while-loop of
//! Algorithm 3) is always driven by globally broadcast values.
//!
//! Implemented primitives and their paper sources:
//!
//! | Primitive | Paper | Rounds |
//! |---|---|---|
//! | [`vpath::undirect`] | §3.1 | 1 |
//! | [`warmup::build`] (Fig. 1 tree) | §3.1.1 | `O(log n)` |
//! | [`bbst::build`] (Alg. 1, Fig. 2) | §3.1.1, Thm 1 | `O(log n)` |
//! | [`traversal::positions`] (Cor. 2) | §3.1.1 | `O(log n)` |
//! | [`ops::aggregate_broadcast`] (Thm 4) | §3.2.1 | `O(log n)` |
//! | [`ops::collect`] (Thm 5) | §3.2.2 | `O(k + log n)` |
//! | [`contacts::build`] (pointer doubling) | — | `O(log n)` |
//! | [`sort::sort_at`] (Thm 3) | §3.1.2 | `O(log² n)` |
//! | [`prefix::prefix_sum`] | §5 | `O(log n)` |
//! | [`imcast::interval_multicast`] (Thm 7) | §3.2.3 | `O(log n)` |
//! | [`stagger::staggered_send`] (Thm 8) | §3.2.3 | `O(k/cap + log n)` |
//!
//! The sorting and multicast primitives substitute the paper's machinery
//! with same-complexity-class constructions (bitonic networks and interval
//! doubling instead of recursive merge and butterflies); see `DESIGN.md` §4
//! for the substitution rationale.
//!
//! The primitives above are written in *direct style* (blocking closures on
//! the threaded oracle engine). The [`proto`] module holds their
//! step-function ports — [`dgr_ncc::NodeProtocol`] state machines driven
//! through a [`dgr_ncc::RoundCtx`] by the batched executor — which run the
//! same constructions at million-node scale; see `ARCHITECTURE.md` for the
//! porting recipe.

pub mod bbst;
pub mod contacts;
pub mod ctx;
pub mod imcast;
pub mod ops;
pub mod prefix;
pub mod proto;
pub mod scatter;
pub mod sort;
pub mod stagger;
pub mod traversal;
pub mod vpath;
pub mod warmup;

pub use bbst::Bbst;
pub use contacts::ContactTable;
pub use ctx::PathCtx;
pub use proto::{PathToClique, Undirect};
pub use sort::{Order, SortBackend, SortedPath};
pub use vpath::VPath;

/// `ceil(log2(len))`, the number of doubling levels for a path of `len`
/// nodes; 0 for `len <= 1`.
pub fn levels_for(len: usize) -> usize {
    if len <= 1 {
        0
    } else {
        usize::BITS as usize - (len - 1).leading_zeros() as usize
    }
}

#[cfg(test)]
mod tests {
    use super::levels_for;

    #[test]
    fn levels() {
        assert_eq!(levels_for(0), 0);
        assert_eq!(levels_for(1), 0);
        assert_eq!(levels_for(2), 1);
        assert_eq!(levels_for(3), 2);
        assert_eq!(levels_for(4), 2);
        assert_eq!(levels_for(5), 3);
        assert_eq!(levels_for(8), 3);
        assert_eq!(levels_for(9), 4);
        assert_eq!(levels_for(1024), 10);
    }
}
