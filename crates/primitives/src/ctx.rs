//! [`PathCtx`]: the bundle of structures every algorithm establishes on a
//! path before doing real work — contact table, BBST and positions.
//!
//! Two ways to establish it: `PathCtx::establish` is direct-style (it
//! blocks through `NodeHandle::step`, so it needs the threaded oracle
//! engine, feature `threaded`); [`crate::proto::EstablishCtx`] is the
//! same chain — undirect, contacts, BBST, traversal — as a step-function
//! sub-protocol for the batched executor, round-for-round identical and
//! composable with the other [`crate::proto::Step`] ports.

use crate::bbst::{self, Bbst};
use crate::contacts::{self, ContactTable};
use crate::traversal::{self, Traversal};
#[cfg(feature = "threaded")]
use crate::vpath;
use crate::vpath::VPath;
#[cfg(feature = "threaded")]
use dgr_ncc::NodeHandle;
use std::sync::Arc;

/// Everything a node knows about one virtual path after the standard
/// `O(log n)`-round setup: the path view itself, its power-of-two contacts,
/// the balanced binary search tree, and its exact position.
///
/// The heap-backed structures — the contact table and the tree — are
/// **interned** behind `Arc`s: they are built exactly once per
/// establishment and every consumer (the sort network, the interval
/// multicast, the global aggregations, each phase of a realization
/// driver) holds a reference-counted handle instead of a deep copy. A
/// composite stage machine's transition therefore moves two pointers, not
/// kilobytes of table — the memory discipline that carries the batched
/// drivers from 2·10⁵ to 10⁶ nodes. The scalar members ([`VPath`],
/// [`Traversal`], the position) stay plain `Copy` data.
#[derive(Clone, Debug)]
pub struct PathCtx {
    /// The path view this context was built on.
    pub vp: VPath,
    /// Power-of-two contacts along the path (interned; clone = handle).
    pub contacts: Arc<ContactTable>,
    /// The balanced binary search tree (Algorithm 1; interned).
    pub tree: Arc<Bbst>,
    /// This node's position on the path (inorder number, Corollary 2).
    pub position: usize,
    /// Full traversal data (subtree sizes).
    pub traversal: Traversal,
}

/// Rounds for [`PathCtx::establish_on`] on a path of `len` nodes.
pub fn rounds_on(len: usize) -> u64 {
    contacts::rounds_for(len) + bbst::rounds_for(len) + traversal::rounds_for(len)
}

/// Rounds for [`PathCtx::establish`] (includes the 1-round undirection).
pub fn rounds_for(len: usize) -> u64 {
    1 + rounds_on(len)
}

#[cfg(feature = "threaded")]
impl PathCtx {
    /// Establishes the full context on the physical knowledge path `G_k`:
    /// undirection, contact table, BBST, positions.
    ///
    /// Rounds: exactly [`rounds_for`]`(h.n())`.
    pub fn establish(h: &mut NodeHandle) -> PathCtx {
        let vp = vpath::undirect(h);
        Self::establish_on(h, vp)
    }

    /// Establishes the context on an arbitrary, already-linked virtual path
    /// (e.g. a sorted path or a sorted-path prefix). Non-members idle.
    ///
    /// Rounds: exactly [`rounds_on`]`(vp.len)`.
    pub fn establish_on(h: &mut NodeHandle, vp: VPath) -> PathCtx {
        let contacts = Arc::new(contacts::build(h, &vp));
        let tree = Arc::new(bbst::build(h, &vp, &contacts));
        let traversal = traversal::positions(h, &vp, &tree);
        PathCtx {
            position: traversal.position,
            vp,
            contacts,
            tree,
            traversal,
        }
    }
}

#[cfg(all(test, feature = "threaded"))]
mod tests {
    use super::*;
    use dgr_ncc::{Config, Network};

    #[test]
    fn establish_round_budget_matches() {
        let n = 48;
        let net = Network::new(n, Config::ncc0(21));
        let result = net
            .run(|h| {
                let ctx = PathCtx::establish(h);
                (h.round(), ctx.position)
            })
            .unwrap();
        assert!(result.metrics.is_clean());
        for (i, (_, (rounds, pos))) in result.outputs.iter().enumerate() {
            assert_eq!(*rounds, rounds_for(n));
            assert_eq!(*pos, i);
        }
    }

    #[test]
    fn establish_is_o_log_n_rounds() {
        // The total setup cost grows logarithmically: quadrupling n adds
        // only a constant number of levels' worth of rounds.
        let r1 = rounds_for(64);
        let r2 = rounds_for(256);
        assert!(r2 > r1);
        assert!(r2 - r1 <= 14, "setup rounds grew too fast: {r1} -> {r2}");
    }
}
