//! Global computational primitives over the BBST: broadcast, distributive
//! aggregation (Theorem 4) and pipelined token collection (Theorem 5).
//!
//! All operations run on a [`VPath`] + [`Bbst`] pair in a fixed,
//! commonly-computable number of rounds.

use crate::bbst::sweep_rounds;
#[cfg(feature = "threaded")]
use crate::bbst::Bbst;
#[cfg(feature = "threaded")]
use crate::vpath::VPath;
#[cfg(feature = "threaded")]
use dgr_ncc::NodeId;
#[cfg(feature = "threaded")]
use dgr_ncc::{tags, Msg, NodeHandle};

/// Number of rounds for one root-to-leaves broadcast on a path of `len`.
pub fn broadcast_rounds(len: usize) -> u64 {
    sweep_rounds(len)
}

/// Number of rounds for one leaves-to-root aggregation on a path of `len`.
pub fn aggregate_rounds(len: usize) -> u64 {
    sweep_rounds(len)
}

/// Number of rounds for [`aggregate_broadcast`] / [`broadcast_word`] /
/// [`broadcast_addr`] / [`median`] on a path of `len` nodes (one up sweep +
/// one down sweep) — the Theorem 4 `O(log n)` bound made concrete.
pub fn rounds_for(len: usize) -> u64 {
    2 * sweep_rounds(len)
}

/// Pushes a value from the root down to every tree member. Only the root's
/// `value` matters (it must be `Some` there). Returns the value at every
/// member; non-members idle and return 0.
///
/// Rounds: exactly [`broadcast_rounds`]`(vp.len)`.
#[cfg(feature = "threaded")]
pub fn broadcast_down(h: &mut NodeHandle, vp: &VPath, tree: &Bbst, value: Option<u64>) -> u64 {
    let rounds = broadcast_rounds(vp.len);
    if !vp.member {
        h.idle_quiet(rounds);
        return 0;
    }
    debug_assert_eq!(
        tree.is_root,
        value.is_some(),
        "only the root supplies a value"
    );
    let mut got = value;
    let mut sent = tree.is_root && tree.child_count() == 0;
    for _ in 0..rounds {
        let mut out = Vec::new();
        if let (Some(v), false) = (got, sent) {
            for child in [tree.left, tree.right].into_iter().flatten() {
                out.push((child, Msg::word(tags::BCAST, v)));
            }
            sent = true;
        }
        let inbox = h.step(out);
        for env in inbox.iter().filter(|e| e.msg.tag == tags::BCAST) {
            got = Some(env.word());
        }
    }
    got.expect("broadcast did not reach node")
}

/// Aggregates every member's `value` to the root with a distributive
/// aggregate function `op` (must be associative and commutative, e.g. sum,
/// max, min). Returns `Some(total)` at the root, `None` elsewhere.
///
/// Rounds: exactly [`aggregate_rounds`]`(vp.len)`.
#[cfg(feature = "threaded")]
pub fn aggregate_up(
    h: &mut NodeHandle,
    vp: &VPath,
    tree: &Bbst,
    value: u64,
    op: impl Fn(u64, u64) -> u64,
) -> Option<u64> {
    let rounds = aggregate_rounds(vp.len);
    if !vp.member {
        h.idle_quiet(rounds);
        return None;
    }
    let mut acc = value;
    let mut pending = tree.child_count();
    let mut sent = false;
    for _ in 0..rounds {
        let mut out = Vec::new();
        if pending == 0 && !sent {
            if let Some(p) = tree.parent {
                out.push((p, Msg::word(tags::AGGREGATE, acc)));
            }
            sent = true;
        }
        let inbox = h.step(out);
        for env in inbox.iter().filter(|e| e.msg.tag == tags::AGGREGATE) {
            acc = op(acc, env.word());
            pending -= 1;
        }
    }
    debug_assert!(sent || tree.is_root, "aggregation did not finish");
    if tree.is_root {
        Some(acc)
    } else {
        None
    }
}

/// Aggregation followed by a broadcast of the result: every member learns
/// `op` over all members' values — the workhorse of Theorem 4.
///
/// Rounds: exactly [`rounds_for`]`(vp.len)`.
#[cfg(feature = "threaded")]
pub fn aggregate_broadcast(
    h: &mut NodeHandle,
    vp: &VPath,
    tree: &Bbst,
    value: u64,
    op: impl Fn(u64, u64) -> u64,
) -> u64 {
    let total = aggregate_up(h, vp, tree, value, op);
    broadcast_down(h, vp, tree, total)
}

/// Broadcasts a value held by (at most) one member to every member: the
/// holders' values are aggregated as "any present value" (ties: minimum) and
/// pushed back down. This implements "leader `ℓ` broadcasts a token" without
/// anyone needing to know where `ℓ` sits in the tree.
///
/// Rounds: exactly [`rounds_for`]`(vp.len)`.
#[cfg(feature = "threaded")]
pub fn broadcast_word(h: &mut NodeHandle, vp: &VPath, tree: &Bbst, value: Option<u64>) -> u64 {
    // Encode Option<u64> as (present, value): combiner keeps the smaller
    // present value. u64::MAX is the identity.
    let enc = value.unwrap_or(u64::MAX);
    let got = aggregate_broadcast(h, vp, tree, enc, u64::min);
    debug_assert_ne!(got, u64::MAX, "broadcast_word: no member held a value");
    got
}

/// Like [`broadcast_word`], but the value is a node *address*: it travels in
/// the message address field so that KT0 knowledge tracking sees every node
/// legitimately learn the broadcast ID.
///
/// Rounds: exactly [`rounds_for`]`(vp.len)`.
#[cfg(feature = "threaded")]
pub fn broadcast_addr(
    h: &mut NodeHandle,
    vp: &VPath,
    tree: &Bbst,
    value: Option<NodeId>,
) -> NodeId {
    let rounds = rounds_for(vp.len);
    if !vp.member {
        h.idle_quiet(rounds);
        return 0;
    }
    // Up sweep: forward any seen address to the parent once children have
    // reported (children may report "nothing" implicitly — we wait for all
    // children like an aggregation, with an explicit presence word).
    let mut acc: Option<NodeId> = value;
    let mut pending = tree.child_count();
    let mut sent = false;
    for _ in 0..sweep_rounds(vp.len) {
        let mut out = Vec::new();
        if pending == 0 && !sent {
            if let Some(p) = tree.parent {
                let msg = match acc {
                    Some(a) => Msg::addr(tags::AGGREGATE, a),
                    None => Msg::signal(tags::AGGREGATE),
                };
                out.push((p, msg));
            }
            sent = true;
        }
        let inbox = h.step(out);
        for env in inbox.iter().filter(|e| e.msg.tag == tags::AGGREGATE) {
            if let Some(&a) = env.msg.addrs.first() {
                acc = Some(match acc {
                    Some(b) => a.min(b),
                    None => a,
                });
            }
            pending -= 1;
        }
    }
    // Down sweep.
    let mut got = if tree.is_root {
        Some(acc.expect("broadcast_addr: no member held an address"))
    } else {
        None
    };
    let mut sent = tree.is_root && tree.child_count() == 0;
    for _ in 0..sweep_rounds(vp.len) {
        let mut out = Vec::new();
        if let (Some(a), false) = (got, sent) {
            for child in [tree.left, tree.right].into_iter().flatten() {
                out.push((child, Msg::addr(tags::BCAST, a)));
            }
            sent = true;
        }
        let inbox = h.step(out);
        for env in inbox.iter().filter(|e| e.msg.tag == tags::BCAST) {
            got = Some(env.addr());
        }
    }
    got.expect("broadcast_addr did not reach node")
}

/// Corollary 2 (second part): makes the median node's address common
/// knowledge. `position` is this node's path position from
/// [`crate::traversal::positions`].
///
/// Rounds: exactly [`rounds_for`]`(vp.len)`.
#[cfg(feature = "threaded")]
pub fn median(h: &mut NodeHandle, vp: &VPath, tree: &Bbst, position: usize) -> NodeId {
    let target = (vp.len - 1) / 2;
    let mine = (vp.member && position == target).then(|| h.id());
    broadcast_addr(h, vp, tree, mine)
}

/// Number of rounds for [`collect`] with `k_bound` tokens on a path of
/// `len` nodes, at per-round capacity `cap` — the Theorem 5
/// `O(k + log n)` bound made concrete.
pub fn collect_rounds(len: usize, k_bound: usize, cap: usize) -> u64 {
    let batch = (cap / 2).max(1) as u64;
    sweep_rounds(len) + (k_bound as u64).div_ceil(batch) + 2
}

/// Global collection (Theorem 5): every member holding a token sends it to
/// the root; the root returns the full list of `(origin, value)` pairs.
/// Tokens are pipelined up the tree in batches of `cap/2` per node per
/// round, so a parent receives at most `cap` per round from its two
/// children.
///
/// `k_bound` must be a commonly-known upper bound on the number of tokens
/// (callers typically obtain it by an [`aggregate_broadcast`] count first).
///
/// Rounds: exactly [`collect_rounds`]`(vp.len, k_bound, h.capacity())`.
#[cfg(feature = "threaded")]
pub fn collect(
    h: &mut NodeHandle,
    vp: &VPath,
    tree: &Bbst,
    token: Option<u64>,
    k_bound: usize,
) -> Vec<(NodeId, u64)> {
    let cap = h.capacity();
    let rounds = collect_rounds(vp.len, k_bound, cap);
    if !vp.member {
        h.idle_quiet(rounds);
        return Vec::new();
    }
    let batch = (cap / 2).max(1);
    let mut buffer: Vec<(NodeId, u64)> = Vec::new();
    if let Some(t) = token {
        buffer.push((h.id(), t));
    }
    let mut collected: Vec<(NodeId, u64)> = Vec::new();
    for _ in 0..rounds {
        let mut out = Vec::new();
        if let Some(p) = tree.parent {
            for (origin, value) in buffer.drain(..buffer.len().min(batch)) {
                out.push((p, Msg::addr_words(tags::COLLECT, origin, vec![value])));
            }
        }
        let inbox = h.step(out);
        for env in inbox.iter().filter(|e| e.msg.tag == tags::COLLECT) {
            let pair = (env.addr(), env.word());
            if tree.is_root {
                collected.push(pair);
            } else {
                buffer.push(pair);
            }
        }
    }
    if tree.is_root {
        // The root's own token, if any, never traveled.
        collected.append(&mut buffer);
        collected.sort_unstable();
    } else {
        debug_assert!(buffer.is_empty(), "collection round budget too small");
    }
    collected
}

#[cfg(all(test, feature = "threaded"))]
mod tests {
    use super::*;
    use crate::ctx::PathCtx;
    use dgr_ncc::{Config, Network};

    #[test]
    fn aggregate_broadcast_computes_global_sum_and_max() {
        let net = Network::new(50, Config::ncc0(11));
        let result = net
            .run(|h| {
                let ctx = PathCtx::establish(h);
                let sum = aggregate_broadcast(h, &ctx.vp, &ctx.tree, h.id() % 100, |a, b| a + b);
                let max = aggregate_broadcast(h, &ctx.vp, &ctx.tree, h.id() % 100, u64::max);
                (sum, max)
            })
            .unwrap();
        assert!(result.metrics.is_clean());
        let ids = result.gk_order();
        let want_sum: u64 = ids.iter().map(|i| i % 100).sum();
        let want_max: u64 = ids.iter().map(|i| i % 100).max().unwrap();
        for (_, (sum, max)) in &result.outputs {
            assert_eq!(*sum, want_sum);
            assert_eq!(*max, want_max);
        }
    }

    #[test]
    fn broadcast_word_reaches_everyone_from_any_holder() {
        let net = Network::new(33, Config::ncc0(12));
        let order = net.ids_in_path_order().to_vec();
        let holder = order[17]; // arbitrary interior node
        let result = net
            .run(move |h| {
                let ctx = PathCtx::establish(h);
                let v = (h.id() == holder).then_some(777);
                broadcast_word(h, &ctx.vp, &ctx.tree, v)
            })
            .unwrap();
        assert!(result.outputs.iter().all(|(_, v)| *v == 777));
    }

    #[test]
    fn broadcast_addr_is_kt0_legal() {
        // The tail's ID becomes common knowledge; knowledge tracking is on,
        // so a clean run proves the address spread legally.
        let net = Network::new(40, Config::ncc0(13));
        let tail = *net.ids_in_path_order().last().unwrap();
        let result = net
            .run(move |h| {
                let ctx = PathCtx::establish(h);
                let v = (h.id() == tail).then_some(h.id());
                broadcast_addr(h, &ctx.vp, &ctx.tree, v)
            })
            .unwrap();
        assert!(result.metrics.is_clean());
        assert!(result.outputs.iter().all(|(_, v)| *v == tail));
    }

    #[test]
    fn median_is_common_knowledge() {
        for n in [1usize, 2, 9, 24, 31] {
            let net = Network::new(n, Config::ncc0(14));
            let order = net.ids_in_path_order().to_vec();
            let result = net
                .run(|h| {
                    let ctx = PathCtx::establish(h);
                    median(h, &ctx.vp, &ctx.tree, ctx.position)
                })
                .unwrap();
            let want = order[(n - 1) / 2];
            assert!(
                result.outputs.iter().all(|(_, m)| *m == want),
                "n={n}: median mismatch"
            );
        }
    }

    #[test]
    fn collect_gathers_all_tokens_at_root() {
        let net = Network::new(60, Config::ncc0(15));
        let result = net
            .run(|h| {
                let ctx = PathCtx::establish(h);
                // Every third position holds a token.
                let token = ctx
                    .position
                    .is_multiple_of(3)
                    .then_some(ctx.position as u64);
                let k_bound = 60usize.div_ceil(3);
                let got = collect(h, &ctx.vp, &ctx.tree, token, k_bound);
                (ctx.tree.is_root, got)
            })
            .unwrap();
        assert!(result.metrics.is_clean());
        let order = net.ids_in_path_order();
        let mut want: Vec<(u64, u64)> = (0..60)
            .filter(|p| p % 3 == 0)
            .map(|p| (order[p], p as u64))
            .collect();
        want.sort_unstable();
        let (_, (_, got)) = result
            .outputs
            .iter()
            .find(|(_, (is_root, _))| *is_root)
            .expect("no root");
        assert_eq!(got, &want);
    }

    #[test]
    fn theorem5_rounds_scale_linearly_in_k() {
        // collect_rounds is Θ(k/cap + log n): doubling k roughly doubles
        // the k-term.
        let cap = 8;
        let base = collect_rounds(256, 0, cap);
        let r1 = collect_rounds(256, 64, cap) - base;
        let r2 = collect_rounds(256, 128, cap) - base;
        assert_eq!(r1 * 2, r2);
    }
}
