//! Randomly staggered point-to-point delivery — our Las Vegas substitute
//! for the butterfly token collection of Theorem 8 (see `DESIGN.md` §4).
//!
//! When many nodes must deliver tokens to a common target (the hand-off
//! that turns an implicit realization into an explicit one, Theorem 12),
//! sending them all at once would exceed the target's receive capacity.
//! Instead every sender delays each message by an independent uniform
//! number of rounds in `[0, spread)`; with `spread = Θ(k/cap)` each round
//! carries `O(cap)` expected messages per target, and the receive-side
//! [`Queue`](dgr_ncc::CapacityPolicy::Queue) policy absorbs the whp
//! `O(log n)` overflow. Senders additionally pace themselves to at most
//! `cap` sends per round (deterministic re-queueing), so send capacity is
//! never violated regardless of the random draws.
//!
//! The epoch length `spread + drain` is a deterministic function of
//! commonly known quantities, preserving lockstep; `drain` must cover the
//! worst-case queue drain (`⌈k_max/cap⌉` rounds suffice *unconditionally*,
//! because a target receiving `k` messages drains them in `⌈k/cap⌉`
//! rounds).

#[cfg(feature = "threaded")]
use dgr_ncc::{Envelope, Msg, NodeHandle, NodeId};
#[cfg(feature = "threaded")]
use rand::Rng;

/// Rounds for a staggered epoch with the given parameters.
pub fn rounds_for(spread: u64, drain: u64) -> u64 {
    spread + drain
}

/// Recommended `(spread, drain)` for an epoch where each target receives at
/// most `k_max` tokens, at per-round capacity `cap`:
/// `spread = 2⌈k_max/cap⌉` (keeps expected per-round fan-in at `cap/2`) and
/// `drain = ⌈k_max/cap⌉ + 2` (unconditional worst-case queue drain).
pub fn plan(k_max: usize, cap: usize) -> (u64, u64) {
    let base = (k_max as u64).div_ceil(cap as u64);
    (2 * base + 1, base + 2)
}

/// Sends every `(target, message)` pair at an independently random round in
/// `[0, spread)`, paced to the send capacity, then idles through the drain
/// window. Returns everything received during the epoch.
///
/// Rounds: exactly [`rounds_for`]`(spread, drain)`. All participants of the
/// epoch must use the same `spread` and `drain`.
#[cfg(feature = "threaded")]
pub fn staggered_send(
    h: &mut NodeHandle,
    sends: Vec<(NodeId, Msg)>,
    spread: u64,
    drain: u64,
) -> Vec<Envelope> {
    let cap = h.capacity();
    // Schedule: (round, target, msg), sorted by round; the per-round budget
    // re-queues overflow deterministically.
    let mut schedule: Vec<(u64, NodeId, Msg)> = sends
        .into_iter()
        .map(|(t, m)| (h.rng().gen_range(0..spread.max(1)), t, m))
        .collect();
    schedule.sort_by_key(|(r, ..)| *r);
    schedule.reverse(); // pop from the back = earliest first

    let mut received = Vec::new();
    for round in 0..rounds_for(spread, drain) {
        let mut out = Vec::new();
        while out.len() < cap {
            match schedule.last() {
                Some((r, ..)) if *r <= round => {
                    let (_, t, m) = schedule.pop().unwrap();
                    out.push((t, m));
                }
                _ => break,
            }
        }
        received.extend(h.step(out));
    }
    debug_assert!(
        schedule.is_empty(),
        "staggered epoch too short to send everything"
    );
    received
}

#[cfg(all(test, feature = "threaded"))]
mod tests {
    use super::*;
    use dgr_ncc::{tags, Config, Network};

    #[test]
    fn all_tokens_arrive_under_queue_policy() {
        // Everyone sends one token to the head: k = n-1 fan-in.
        let n = 128;
        let net = Network::new(n, Config::ncc0(71).with_queueing());
        let cap = net.capacity();
        let head = net.ids_in_path_order()[0];
        let (spread, drain) = plan(n - 1, cap);
        let result = net
            .run(move |h| {
                let sends = if h.id() == head {
                    vec![]
                } else {
                    vec![(head, Msg::word(tags::TOKEN, h.id() % 1000))]
                };
                // Everyone must know the head's address for this test.
                staggered_send(h, sends, spread, drain).len()
            })
            .unwrap();
        assert_eq!(*result.output_of(head).unwrap(), n - 1);
        assert_eq!(result.metrics.undelivered, 0);
        // Receive capacity was never exceeded at delivery time.
        assert!(result.metrics.max_received_per_round <= cap);
    }

    #[test]
    fn send_capacity_is_self_paced() {
        // One node sends 10x its capacity worth of messages to distinct
        // targets under the STRICT policy: pacing must keep it legal.
        let n = 64;
        let mut config = Config::ncc0(72);
        config.track_knowledge = false; // sender addresses everyone directly
        let net = Network::new(n, config);
        let cap = net.capacity();
        let head = net.ids_in_path_order()[0];
        let targets: Vec<_> = net.ids_in_path_order()[1..].to_vec();
        let k = targets.len();
        let (spread, drain) = plan(k, cap);
        let result = net
            .run(move |h| {
                let sends = if h.id() == head {
                    targets
                        .iter()
                        .map(|&t| (t, Msg::word(tags::TOKEN, 1)))
                        .collect()
                } else {
                    vec![]
                };
                staggered_send(h, sends, spread, drain).len()
            })
            .unwrap();
        assert!(result.metrics.max_sent_per_round <= cap);
        let delivered: usize = result.outputs.iter().map(|(_, c)| *c).sum();
        assert_eq!(delivered, k);
    }

    #[test]
    fn plan_scales_inversely_with_capacity() {
        let (s1, d1) = plan(1000, 10);
        let (s2, d2) = plan(1000, 20);
        assert!(s2 < s1 && d2 <= d1);
        let (s0, d0) = plan(0, 10);
        assert_eq!((s0, d0), (1, 2));
    }
}
