//! Virtual paths: the universal substrate for all primitives.
//!
//! A [`VPath`] describes one node's view of a linked path over some subset of
//! the network: its predecessor and successor on that path, the path's total
//! length, and whether this node is a member at all. The initial knowledge
//! graph `G_k` yields the first virtual path (via [`undirect`]); sorting
//! yields new ones; taking a prefix of a sorted path yields sub-network
//! paths for recursive algorithms.
//!
//! Non-members still participate in the *rounds* of any primitive run on the
//! path (idling in lockstep) — they simply never send or receive. This keeps
//! the whole network synchronized through sub-network computations, which is
//! how Algorithm 6 runs a degree realization on only its first `d₀+1` nodes.

use dgr_ncc::NodeId;
#[cfg(feature = "threaded")]
use dgr_ncc::{tags, Msg, NodeHandle};

/// One node's view of a virtual path.
///
/// Deliberately `Copy`: a path view is four machine words, and the
/// composite stage machines pass it between sub-protocol stages every
/// phase — it is a *handle*, not a table (the heap-backed per-path state
/// — contact tables, trees — is interned behind `Arc`s instead; see
/// [`crate::ctx::PathCtx`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct VPath {
    /// Is this node on the path? Non-members only idle through primitives.
    pub member: bool,
    /// ID of the previous node on the path (None for the head, and for
    /// non-members).
    pub pred: Option<NodeId>,
    /// ID of the next node on the path (None for the tail, and for
    /// non-members).
    pub succ: Option<NodeId>,
    /// Total number of nodes on the path — common knowledge among all
    /// participants of the primitives run on it.
    pub len: usize,
}

impl VPath {
    /// A view for a node that is not on the path but must stay in lockstep.
    pub fn non_member(len: usize) -> Self {
        VPath {
            member: false,
            pred: None,
            succ: None,
            len,
        }
    }

    /// True if this node is the path's head (member with no predecessor).
    pub fn is_head(&self) -> bool {
        self.member && self.pred.is_none()
    }

    /// True if this node is the path's tail (member with no successor).
    pub fn is_tail(&self) -> bool {
        self.member && self.succ.is_none()
    }

    /// Number of doubling levels for this path: `ceil(log2(len))`.
    pub fn levels(&self) -> usize {
        crate::levels_for(self.len)
    }
}

/// Converts the directed initial knowledge path `G_k` into an undirected
/// (but still ordered) [`VPath`] — the 1-round construction from §3.1 of the
/// paper: every node sends its ID to its out-neighbor, so each node learns
/// its predecessor; a node that receives nothing learns it is the head.
///
/// Rounds: exactly 1.
#[cfg(feature = "threaded")]
pub fn undirect(h: &mut NodeHandle) -> VPath {
    let out = h
        .initial_successor()
        .map(|s| (s, Msg::signal(tags::UNDIRECT)))
        .into_iter()
        .collect();
    let inbox = h.step(out);
    let pred = inbox
        .iter()
        .find(|e| e.msg.tag == tags::UNDIRECT)
        .map(|e| e.src);
    VPath {
        member: true,
        pred,
        succ: h.initial_successor(),
        len: h.participants(),
    }
}

#[cfg(all(test, feature = "threaded"))]
mod tests {
    use super::*;
    use dgr_ncc::{Config, Network};

    #[test]
    fn undirect_reconstructs_the_path() {
        let net = Network::new(10, Config::ncc0(5));
        let result = net.run(undirect).unwrap();
        assert!(result.metrics.is_clean());
        assert_eq!(result.metrics.rounds, 1);
        let order = result.gk_order();
        for (i, (_, vp)) in result.outputs.iter().enumerate() {
            assert!(vp.member);
            assert_eq!(vp.len, 10);
            assert_eq!(vp.pred, if i == 0 { None } else { Some(order[i - 1]) });
            assert_eq!(vp.succ, if i == 9 { None } else { Some(order[i + 1]) });
        }
    }

    #[test]
    fn head_and_tail_predicates() {
        let vp = VPath {
            member: true,
            pred: None,
            succ: Some(3),
            len: 4,
        };
        assert!(vp.is_head());
        assert!(!vp.is_tail());
        let vp = VPath {
            member: true,
            pred: Some(2),
            succ: None,
            len: 4,
        };
        assert!(vp.is_tail());
        let vp = VPath::non_member(4);
        assert!(!vp.is_head() && !vp.is_tail());
    }

    #[test]
    fn single_node_path() {
        let net = Network::new(1, Config::ncc0(5));
        let result = net.run(undirect).unwrap();
        let vp = &result.outputs[0].1;
        assert!(vp.is_head() && vp.is_tail());
        assert_eq!(vp.levels(), 0);
    }
}
