//! Tree traversal computations on the BBST: subtree sizes (bottom-up
//! convergecast) and inorder numbers (top-down), giving every node its
//! *position* on the path — Corollary 2 of the paper.
//!
//! Both phases are event-driven inside a fixed round budget derived from the
//! Theorem-1 height bound, so the whole computation takes `O(log n)` rounds
//! and at most two messages per node per round.

#[cfg(feature = "threaded")]
use crate::bbst::Bbst;
#[cfg(feature = "threaded")]
use crate::vpath::VPath;
#[cfg(feature = "threaded")]
use dgr_ncc::{tags, Msg, NodeHandle};

/// A node's traversal-derived data.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Traversal {
    /// This node's position on the path (inorder number), 0-based.
    pub position: usize,
    /// Size of this node's subtree (including itself).
    pub subtree_size: usize,
    /// Size of the left child's subtree (0 if none).
    pub left_size: usize,
    /// Size of the right child's subtree (0 if none).
    pub right_size: usize,
}

use crate::bbst::sweep_rounds;

/// Number of rounds [`positions`] takes on a path of `len` nodes.
pub fn rounds_for(len: usize) -> u64 {
    2 * sweep_rounds(len)
}

/// Computes subtree sizes and inorder positions for every tree member.
/// Non-members idle in lockstep.
///
/// Rounds: exactly [`rounds_for`]`(vp.len)`.
#[cfg(feature = "threaded")]
pub fn positions(h: &mut NodeHandle, vp: &VPath, tree: &Bbst) -> Traversal {
    let up = sweep_rounds(vp.len);
    let down = sweep_rounds(vp.len);
    if !vp.member {
        h.idle_quiet(up + down);
        return Traversal::default();
    }

    // --- Bottom-up: subtree sizes (convergecast). ---
    let mut t = Traversal {
        subtree_size: 1,
        ..Traversal::default()
    };
    let mut have_left = tree.left.is_none();
    let mut have_right = tree.right.is_none();
    let mut sent_up = false;
    for _ in 0..up {
        let ready = have_left && have_right;
        let mut out = Vec::new();
        if ready && !sent_up {
            if let Some(p) = tree.parent {
                out.push((p, Msg::word(tags::SUBTREE_SIZE, t.subtree_size as u64)));
            }
            sent_up = true;
        }
        let inbox = h.step(out);
        for env in inbox.iter().filter(|e| e.msg.tag == tags::SUBTREE_SIZE) {
            let size = env.word() as usize;
            if Some(env.src) == tree.left {
                t.left_size = size;
                have_left = true;
            } else if Some(env.src) == tree.right {
                t.right_size = size;
                have_right = true;
            } else {
                unreachable!("subtree size from non-child");
            }
            t.subtree_size += size;
        }
    }
    debug_assert!(sent_up || tree.is_root, "convergecast did not finish");
    debug_assert!(
        !tree.is_root || t.subtree_size == vp.len,
        "root sees subtree of {} != path length {}",
        t.subtree_size,
        vp.len
    );

    // --- Top-down: inorder numbers. The root's interval starts at 0; a
    // node's inorder number is its interval start plus its left subtree
    // size; children inherit the sub-intervals. ---
    let mut interval_start: Option<usize> = if tree.is_root { Some(0) } else { None };
    let mut sent_down = false;
    for _ in 0..down {
        let mut out = Vec::new();
        if let (Some(lo), false) = (interval_start, sent_down) {
            if let Some(l) = tree.left {
                out.push((l, Msg::word(tags::INORDER, lo as u64)));
            }
            if let Some(r) = tree.right {
                let r_lo = lo + t.left_size + 1;
                out.push((r, Msg::word(tags::INORDER, r_lo as u64)));
            }
            sent_down = true;
        }
        let inbox = h.step(out);
        for env in inbox.iter().filter(|e| e.msg.tag == tags::INORDER) {
            debug_assert_eq!(Some(env.src), tree.parent);
            interval_start = Some(env.word() as usize);
        }
    }
    t.position = interval_start.expect("inorder sweep did not reach node") + t.left_size;
    t
}

#[cfg(all(test, feature = "threaded"))]
mod tests {
    use super::*;
    use crate::{bbst, contacts, vpath};
    use dgr_ncc::{Config, Network};

    fn check(n: usize, seed: u64) {
        let net = Network::new(n, Config::ncc0(seed));
        let result = net
            .run(|h| {
                let vp = vpath::undirect(h);
                let ct = contacts::build(h, &vp);
                let tree = bbst::build(h, &vp, &ct);
                positions(h, &vp, &tree)
            })
            .unwrap();
        assert!(result.metrics.is_clean(), "n={n}");
        // Corollary 2: every node knows its exact path position.
        for (i, (_, t)) in result.outputs.iter().enumerate() {
            assert_eq!(t.position, i, "n={n}: wrong position");
        }
        // Subtree sizes partition correctly.
        for (_, t) in &result.outputs {
            assert_eq!(t.subtree_size, t.left_size + t.right_size + 1);
        }
    }

    #[test]
    fn positions_are_exact() {
        for &n in &[1, 2, 3, 4, 5, 7, 8, 9, 16, 33, 64, 100, 129] {
            check(n, n as u64 * 7 + 1);
        }
    }

    #[test]
    fn corollary2_round_count_is_logarithmic() {
        // Rounds for the position computation alone must match the
        // deterministic schedule and be O(log n).
        let n = 512;
        let net = Network::new(n, Config::ncc0(3));
        let result = net
            .run(|h| {
                let vp = vpath::undirect(h);
                let ct = contacts::build(h, &vp);
                let tree = bbst::build(h, &vp, &ct);
                let before = h.round();
                positions(h, &vp, &tree);
                h.round() - before
            })
            .unwrap();
        let expected = rounds_for(n);
        for (_, spent) in &result.outputs {
            assert_eq!(*spent, expected);
        }
        assert_eq!(expected, 2 * (crate::levels_for(n) as u64 + 2));
    }
}
