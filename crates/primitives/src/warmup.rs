//! The warm-up balanced binary tree of §3.1.1 (Figure 1) — *not* a search
//! tree, but a simple `O(log n)`-round recursive construction.
//!
//! In every recursion step, the left-most node `r` of each live path makes
//! its immediate neighbor `a` its left child and `a`'s other neighbor `b`
//! its right child, then removes itself; the remaining path decomposes into
//! the two grand-neighbor sub-paths headed by `a` and `b`, and the step
//! repeats in parallel on both. Path lengths halve per step, so the
//! recursion terminates after `O(log n)` levels and the resulting tree has
//! height `O(log n)`.

#[cfg(feature = "threaded")]
use crate::vpath::VPath;
use dgr_ncc::NodeId;
#[cfg(feature = "threaded")]
use dgr_ncc::{tags, Msg, NodeHandle};

/// Child-assignment messages (distinct from the controlled-BFS invites).
#[cfg(feature = "threaded")]
const CHILD_LEFT: u64 = 0;
#[cfg(feature = "threaded")]
const CHILD_RIGHT: u64 = 1;

/// One node's view of the warm-up tree.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct WarmupTree {
    /// True for the overall root (the head of the original path).
    pub is_root: bool,
    /// Parent ID (None for the root and non-members).
    pub parent: Option<NodeId>,
    /// Left child (the former immediate neighbor).
    pub left: Option<NodeId>,
    /// Right child (the former neighbor's neighbor).
    pub right: Option<NodeId>,
    /// Recursion level at which this node became a path head (root = 0);
    /// equals its depth in the tree.
    pub depth: u64,
}

/// Number of recursion levels (and half the rounds) for a path of `len`
/// nodes: path lengths roughly halve per level.
pub fn levels(len: usize) -> u64 {
    crate::levels_for(len) as u64 + 1
}

/// Number of rounds [`build`] takes: two per recursion level.
pub fn rounds_for(len: usize) -> u64 {
    2 * levels(len)
}

/// Builds the warm-up balanced binary tree (Figure 1). Non-members idle.
///
/// Rounds: exactly [`rounds_for`]`(vp.len)`.
#[cfg(feature = "threaded")]
pub fn build(h: &mut NodeHandle, vp: &VPath) -> WarmupTree {
    let total_levels = levels(vp.len);
    if !vp.member {
        h.idle_quiet(rounds_for(vp.len));
        return WarmupTree::default();
    }
    let mut tree = WarmupTree {
        is_root: vp.is_head(),
        ..WarmupTree::default()
    };
    let mut pred = vp.pred;
    let mut succ = vp.succ;
    let mut removed = false;

    for level in 0..total_levels {
        // --- Round 1: grand-neighbor exchange on every live path. ---
        let mut out = Vec::new();
        if !removed {
            if let (Some(p), Some(s)) = (pred, succ) {
                // Tell my successor who my predecessor is and vice versa.
                out.push((s, Msg::addr_words(tags::LEVEL_LINK, p, vec![CHILD_LEFT])));
                out.push((p, Msg::addr_words(tags::LEVEL_LINK, s, vec![CHILD_RIGHT])));
            }
        }
        let inbox = h.step(out);
        let mut grand_pred = None;
        let mut grand_succ = None;
        for env in inbox.iter().filter(|e| e.msg.tag == tags::LEVEL_LINK) {
            match env.word() {
                CHILD_LEFT => grand_pred = Some(env.addr()),
                CHILD_RIGHT => grand_succ = Some(env.addr()),
                other => unreachable!("bad link word {other}"),
            }
        }

        // --- Round 2: each path head adopts `a` (its neighbor) as left
        // child and `b` (its grand-successor) as right child, then leaves. ---
        let mut out = Vec::new();
        if !removed && pred.is_none() {
            if let Some(a) = succ {
                out.push((a, Msg::word(tags::INVITE_LEFT, level)));
                tree.left = Some(a);
            }
            if let Some(b) = grand_succ {
                out.push((b, Msg::word(tags::INVITE_RIGHT, level)));
                tree.right = Some(b);
            }
            removed = true;
        }
        let inbox = h.step(out);
        let mut became_head = false;
        for env in inbox.iter() {
            match env.msg.tag {
                tags::INVITE_LEFT => {
                    tree.parent = Some(env.src);
                    tree.depth = env.word() + 1;
                    became_head = true;
                }
                tags::INVITE_RIGHT => {
                    tree.parent = Some(env.src);
                    tree.depth = env.word() + 1;
                    became_head = true;
                }
                _ => {}
            }
        }
        // --- Local restructure: the path splits into grand-neighbor
        // sub-paths; the freshly adopted children are the new heads. ---
        if !removed {
            pred = if became_head { None } else { grand_pred };
            succ = grand_succ;
        }
    }
    debug_assert!(removed, "node {} never became a path head", h.id());
    tree
}

#[cfg(all(test, feature = "threaded"))]
mod tests {
    use super::*;
    use crate::vpath;
    use dgr_ncc::{Config, Network, RunResult};
    use std::collections::HashMap;

    fn run(n: usize, seed: u64) -> RunResult<WarmupTree> {
        let net = Network::new(n, Config::ncc0(seed));
        net.run(|h| {
            let vp = vpath::undirect(h);
            build(h, &vp)
        })
        .unwrap()
    }

    fn check(n: usize, seed: u64) {
        let result = run(n, seed);
        assert!(result.metrics.is_clean(), "n={n}");
        let view: HashMap<NodeId, &WarmupTree> =
            result.outputs.iter().map(|(id, t)| (*id, t)).collect();
        // Exactly one root: the head of G_k.
        let roots: Vec<_> = result.outputs.iter().filter(|(_, t)| t.is_root).collect();
        assert_eq!(roots.len(), 1);
        assert_eq!(roots[0].0, result.gk_order()[0]);
        // Tree is spanning: walking parents reaches the root from everywhere,
        // and depth decreases along the way.
        for (id, t) in &result.outputs {
            let mut cur = *id;
            let mut hops = 0;
            while let Some(p) = view[&cur].parent {
                assert!(view[&p].depth + 1 == view[&cur].depth);
                cur = p;
                hops += 1;
                assert!(hops <= n, "parent cycle at node {id}");
            }
            assert!(view[&cur].is_root);
            // Balanced: depth is O(log n).
            assert!(
                t.depth <= levels(n),
                "n={n}: depth {} exceeds {}",
                t.depth,
                levels(n)
            );
        }
        // Parent/child agreement and binary-ness.
        for (id, t) in &result.outputs {
            for c in [t.left, t.right].into_iter().flatten() {
                assert_eq!(view[&c].parent, Some(*id));
            }
        }
    }

    #[test]
    fn warmup_tree_is_balanced_and_spanning() {
        for &n in &[1, 2, 3, 4, 5, 6, 7, 8, 9, 15, 16, 17, 50, 64, 100, 128] {
            check(n, n as u64 + 70);
        }
    }

    /// Figure 1 of the paper: the warm-up tree on the path 1..8.
    /// Derived by hand from the recursive rule: 1 adopts 2 (left) and 3
    /// (right); the remainder splits into (2,4,6,8) and (3,5,7); 2 adopts
    /// 4 and 6; 3 adopts 5 and 7; (4,8) leaves 8 under 4.
    #[test]
    fn fig1_exact_shape() {
        let net = Network::new(8, Config::ncc0(0).with_sequential_ids());
        let result = net
            .run(|h| {
                let vp = vpath::undirect(h);
                build(h, &vp)
            })
            .unwrap();
        let view: HashMap<NodeId, &WarmupTree> =
            result.outputs.iter().map(|(id, t)| (*id, t)).collect();
        assert!(view[&1].is_root);
        assert_eq!((view[&1].left, view[&1].right), (Some(2), Some(3)));
        assert_eq!((view[&2].left, view[&2].right), (Some(4), Some(6)));
        assert_eq!((view[&3].left, view[&3].right), (Some(5), Some(7)));
        assert_eq!((view[&4].left, view[&4].right), (Some(8), None));
        for leaf in [5, 6, 7, 8] {
            assert_eq!((view[&leaf].left, view[&leaf].right), (None, None));
        }
    }

    #[test]
    fn rounds_are_logarithmic() {
        let result = run(128, 3);
        assert_eq!(result.metrics.rounds, 1 + rounds_for(128));
        assert_eq!(rounds_for(128), 2 * 8);
    }
}
