//! Balanced binary *search* tree on a virtual path — Algorithm 1 of the
//! paper (§3.1.1, Theorem 1, Figure 2).
//!
//! The paper first builds the structure `L`: level `L_0` is the path itself
//! and level `L_i` splits every level-`(i-1)` path into its odd- and
//! even-position sub-paths. A node's neighbors at level `i` are therefore
//! exactly the nodes `2^i` positions away on the original path — i.e. **the
//! structure `L` is the power-of-two contact table** ([`crate::contacts`]),
//! which we reuse directly.
//!
//! The tree is then produced by the *controlled BFS* of Algorithm 1: the
//! path's head is the root; iterating levels from high to low, every node in
//! `S_p` with a level-`i` predecessor invites it as its left child, every
//! node in `S_s` with a level-`i` successor invites it as its right child,
//! and invited nodes not yet in the tree accept exactly one invitation.
//!
//! Guarantees (Theorem 1): the result is a binary tree of height at most
//! `⌈log n⌉ + 1` whose inorder traversal is the original path order — a
//! balanced binary *search* tree over path positions, built in `O(log n)`
//! rounds.

#[cfg(feature = "threaded")]
use crate::contacts::ContactTable;
#[cfg(feature = "threaded")]
use crate::vpath::VPath;
use dgr_ncc::NodeId;
#[cfg(feature = "threaded")]
use dgr_ncc::{tags, Msg, NodeHandle};

/// Which side of its parent a node hangs on.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Side {
    /// The node precedes its parent on the path.
    Left,
    /// The node succeeds its parent on the path.
    Right,
}

/// One node's view of the balanced binary search tree.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Bbst {
    /// True for the tree's root (the path's head).
    pub is_root: bool,
    /// Parent ID (None for the root and for non-members).
    pub parent: Option<NodeId>,
    /// Which child of the parent this node is.
    pub side: Option<Side>,
    /// Left child, if any.
    pub left: Option<NodeId>,
    /// Right child, if any.
    pub right: Option<NodeId>,
    /// Distance from the root (root = 0).
    pub depth: u64,
    /// Is this node a tree member (i.e. was it a path member)?
    pub member: bool,
}

impl Bbst {
    #[cfg(feature = "threaded")]
    fn non_member() -> Self {
        Bbst {
            is_root: false,
            parent: None,
            side: None,
            left: None,
            right: None,
            depth: 0,
            member: false,
        }
    }

    /// Number of children (0, 1 or 2).
    pub fn child_count(&self) -> usize {
        usize::from(self.left.is_some()) + usize::from(self.right.is_some())
    }

    /// Upper bound on the tree depth for a path of `len` nodes
    /// (Theorem 1: height ≤ `⌈log n⌉ + 1`).
    pub fn depth_bound(len: usize) -> u64 {
        crate::levels_for(len) as u64 + 1
    }
}

/// Number of rounds [`build`] takes on a path of `len` nodes: two rounds
/// (invite + accept) per doubling level.
pub fn rounds_for(len: usize) -> u64 {
    2 * crate::levels_for(len) as u64
}

/// Round budget for one full sweep of the tree (root-to-leaves or
/// leaves-to-root) on a path of `len` nodes: the Theorem-1 depth bound plus
/// one completion round.
pub fn sweep_rounds(len: usize) -> u64 {
    Bbst::depth_bound(len) + 1
}

/// Builds the balanced binary search tree by controlled BFS (Algorithm 1).
/// Requires the contact table for the same path. Non-members idle.
///
/// Rounds: exactly [`rounds_for`]`(vp.len)`.
#[cfg(feature = "threaded")]
pub fn build(h: &mut NodeHandle, vp: &VPath, contacts: &ContactTable) -> Bbst {
    let levels = vp.levels();
    if !vp.member {
        h.idle_quiet(rounds_for(vp.len));
        return Bbst::non_member();
    }

    let mut tree = Bbst {
        is_root: vp.is_head(),
        parent: None,
        side: None,
        left: None,
        right: None,
        depth: 0,
        member: true,
    };
    let mut in_tree = tree.is_root;
    // S_p / S_s membership: the root starts in both (Algorithm 1 line 1).
    let mut in_sp = tree.is_root;
    let mut in_ss = tree.is_root;

    // `level_neighbor(i, …)`: this node's predecessor/successor at level
    // L_i of the structure L = its contact 2^i away on the path.
    let pred_at = |i: usize| -> Option<NodeId> {
        if i == 0 {
            vp.pred
        } else {
            contacts.behind(i)
        }
    };
    let succ_at = |i: usize| -> Option<NodeId> {
        if i == 0 {
            vp.succ
        } else {
            contacts.ahead(i)
        }
    };

    for i in (0..levels).rev() {
        // --- Invitation round (Algorithm 1 lines 3-10). ---
        let mut out = Vec::new();
        if in_sp {
            if let Some(p) = pred_at(i) {
                out.push((p, Msg::word(tags::INVITE_LEFT, tree.depth + 1)));
                in_sp = false;
            }
        }
        if in_ss {
            if let Some(s) = succ_at(i) {
                out.push((s, Msg::word(tags::INVITE_RIGHT, tree.depth + 1)));
                in_ss = false;
            }
        }
        let inbox = h.step(out);

        // --- Acceptance round (lines 11-15). ---
        let mut out = Vec::new();
        if !in_tree {
            let mut invites: Vec<_> = inbox
                .iter()
                .filter(|e| e.msg.tag == tags::INVITE_LEFT || e.msg.tag == tags::INVITE_RIGHT)
                .collect();
            // Deterministic choice among simultaneous invitations: prefer
            // becoming a left child, then the smaller inviter ID. (At most
            // one invite of each kind can arrive per iteration, since the
            // level-i predecessor/successor are unique.)
            invites.sort_by_key(|e| (e.msg.tag != tags::INVITE_LEFT, e.src));
            if let Some(env) = invites.first() {
                let side = if env.msg.tag == tags::INVITE_LEFT {
                    Side::Left
                } else {
                    Side::Right
                };
                tree.parent = Some(env.src);
                tree.side = Some(side);
                tree.depth = env.word();
                in_tree = true;
                in_sp = true;
                in_ss = true;
                let side_word = match side {
                    Side::Left => 0,
                    Side::Right => 1,
                };
                out.push((env.src, Msg::word(tags::ACCEPT, side_word)));
            }
        }
        let inbox = h.step(out);
        for env in inbox.iter().filter(|e| e.msg.tag == tags::ACCEPT) {
            match env.word() {
                0 => tree.left = Some(env.src),
                1 => tree.right = Some(env.src),
                other => unreachable!("bad accept side word {other}"),
            }
        }
    }

    debug_assert!(in_tree, "node {} never joined the BFS tree", h.id());
    tree
}

#[cfg(all(test, feature = "threaded"))]
mod tests {
    use super::*;
    use crate::{contacts, vpath};
    use dgr_ncc::{Config, Network, RunResult};
    use std::collections::HashMap;

    fn build_tree(n: usize, seed: u64) -> RunResult<Bbst> {
        let net = Network::new(n, Config::ncc0(seed));
        net.run(|h| {
            let vp = vpath::undirect(h);
            let ct = contacts::build(h, &vp);
            build(h, &vp, &ct)
        })
        .unwrap()
    }

    /// Recovers the inorder traversal of the tree from the per-node views.
    fn inorder(result: &RunResult<Bbst>) -> Vec<NodeId> {
        let view: HashMap<NodeId, &Bbst> = result.outputs.iter().map(|(id, b)| (*id, b)).collect();
        let root = result
            .outputs
            .iter()
            .find(|(_, b)| b.is_root)
            .map(|(id, _)| *id)
            .expect("no root");
        let mut order = Vec::new();
        fn walk(id: NodeId, view: &HashMap<NodeId, &Bbst>, order: &mut Vec<NodeId>) {
            let b = view[&id];
            if let Some(l) = b.left {
                walk(l, view, order);
            }
            order.push(id);
            if let Some(r) = b.right {
                walk(r, view, order);
            }
        }
        walk(root, &view, &mut order);
        order
    }

    fn check(n: usize, seed: u64) {
        let result = build_tree(n, seed);
        assert!(result.metrics.is_clean(), "n={n}: violations");
        // Theorem 1: inorder traversal recovers G_k.
        assert_eq!(inorder(&result), result.gk_order(), "n={n} inorder");
        // Theorem 1: height bound and structural sanity.
        let bound = Bbst::depth_bound(n);
        let mut roots = 0;
        for (_, b) in &result.outputs {
            assert!(b.depth <= bound, "n={n}: depth {} > {bound}", b.depth);
            roots += usize::from(b.is_root);
            if !b.is_root {
                assert!(b.parent.is_some());
            }
        }
        assert_eq!(roots, 1);
        // Parent/child views agree.
        let view: HashMap<NodeId, &Bbst> = result.outputs.iter().map(|(id, b)| (*id, b)).collect();
        for (id, b) in &result.outputs {
            if let Some(l) = b.left {
                assert_eq!(view[&l].parent, Some(*id));
                assert_eq!(view[&l].side, Some(Side::Left));
                assert_eq!(view[&l].depth, b.depth + 1);
            }
            if let Some(r) = b.right {
                assert_eq!(view[&r].parent, Some(*id));
                assert_eq!(view[&r].side, Some(Side::Right));
            }
        }
    }

    #[test]
    fn theorem1_small_sizes() {
        for n in 1..=17 {
            check(n, 42 + n as u64);
        }
    }

    #[test]
    fn theorem1_medium_sizes() {
        for &n in &[31, 32, 33, 63, 64, 100, 127, 128, 200, 255, 256] {
            check(n, n as u64);
        }
    }

    #[test]
    fn theorem1_round_count_is_logarithmic() {
        let result = build_tree(256, 1);
        // 1 (undirect) + (levels-1) (contacts) + 2*levels (BFS).
        let levels = crate::levels_for(256) as u64;
        assert_eq!(result.metrics.rounds, 1 + (levels - 1) + 2 * levels);
    }

    /// Figure 2 of the paper: the BBST built on the path 1..8 (sequential
    /// IDs along G_k). Expected tree: 1 is the root with right child 5;
    /// 5 has children 3 and 7; 3 has children 2 and 4; 7 has 6 and 8.
    #[test]
    fn fig2_exact_shape() {
        let net = Network::new(8, Config::ncc0(0).with_sequential_ids());
        let result = net
            .run(|h| {
                let vp = vpath::undirect(h);
                let ct = contacts::build(h, &vp);
                build(h, &vp, &ct)
            })
            .unwrap();
        let view: HashMap<NodeId, &Bbst> = result.outputs.iter().map(|(id, b)| (*id, b)).collect();
        assert!(view[&1].is_root);
        assert_eq!(view[&1].left, None);
        assert_eq!(view[&1].right, Some(5));
        assert_eq!(view[&5].left, Some(3));
        assert_eq!(view[&5].right, Some(7));
        assert_eq!(view[&3].left, Some(2));
        assert_eq!(view[&3].right, Some(4));
        assert_eq!(view[&7].left, Some(6));
        assert_eq!(view[&7].right, Some(8));
        for leaf in [2, 4, 6, 8] {
            assert_eq!(view[&leaf].child_count(), 0);
        }
        // Height ⌈log 8⌉ + 1 = 4 (i.e. max depth 3).
        assert_eq!(
            result.outputs.iter().map(|(_, b)| b.depth).max().unwrap(),
            3
        );
    }

    #[test]
    fn single_and_pair() {
        let r = build_tree(1, 9);
        assert!(r.outputs[0].1.is_root);
        assert_eq!(r.outputs[0].1.child_count(), 0);
        let r = build_tree(2, 9);
        let order = r.gk_order();
        assert!(r.output_of(order[0]).unwrap().is_root);
        assert_eq!(r.output_of(order[0]).unwrap().right, Some(order[1]));
    }
}
