//! Step-function port of [`traversal::positions`](crate::traversal::positions):
//! subtree sizes bottom-up, inorder numbers top-down (Corollary 2).

use crate::bbst::{sweep_rounds, Bbst};
use crate::proto::step::{Poll, Step};
use crate::traversal::Traversal;
use crate::vpath::VPath;
use dgr_ncc::{tags, RoundCtx, WireMsg};
use std::sync::Arc;

/// Corollary 2 as a [`Step`].
///
/// Rounds: exactly
/// [`traversal::rounds_for`](crate::traversal::rounds_for)`(vp.len)`.
#[derive(Debug)]
pub struct TraversalStep {
    vp: VPath,
    tree: Arc<Bbst>,
    t: u64,
    out: Traversal,
    have_left: bool,
    have_right: bool,
    sent_up: bool,
    interval_start: Option<usize>,
    sent_down: bool,
}

impl TraversalStep {
    /// Builds the step over an established tree.
    pub fn new(vp: VPath, tree: Arc<Bbst>) -> Self {
        let have_left = tree.left.is_none();
        let have_right = tree.right.is_none();
        let interval_start = tree.is_root.then_some(0);
        TraversalStep {
            vp,
            tree,
            t: 0,
            out: Traversal {
                subtree_size: 1,
                ..Traversal::default()
            },
            have_left,
            have_right,
            sent_up: false,
            interval_start,
            sent_down: false,
        }
    }

    fn absorb(&mut self, ctx: &RoundCtx<'_>) {
        for env in ctx.inbox() {
            match env.msg.tag {
                tags::SUBTREE_SIZE => {
                    let size = env.word() as usize;
                    if Some(env.src) == self.tree.left {
                        self.out.left_size = size;
                        self.have_left = true;
                    } else if Some(env.src) == self.tree.right {
                        self.out.right_size = size;
                        self.have_right = true;
                    } else {
                        unreachable!("subtree size from non-child");
                    }
                    self.out.subtree_size += size;
                }
                tags::INORDER => {
                    debug_assert_eq!(Some(env.src), self.tree.parent);
                    self.interval_start = Some(env.word() as usize);
                }
                _ => {}
            }
        }
    }
}

impl Step for TraversalStep {
    type Out = Traversal;

    fn poll(&mut self, ctx: &mut RoundCtx<'_>) -> Poll<Traversal> {
        let up = sweep_rounds(self.vp.len);
        let down = sweep_rounds(self.vp.len);
        if !self.vp.member {
            if self.t == up + down {
                return Poll::Ready(Traversal::default());
            }
            self.t += 1;
            return Poll::Pending;
        }
        if self.t > 0 {
            self.absorb(ctx);
        }
        if self.t == up + down {
            debug_assert!(self.sent_up || self.tree.is_root);
            self.out.position = self
                .interval_start
                .expect("inorder sweep did not reach node")
                + self.out.left_size;
            return Poll::Ready(std::mem::take(&mut self.out));
        }
        if self.t < up {
            // Bottom-up convergecast round.
            let ready = self.have_left && self.have_right;
            if ready && !self.sent_up {
                if let Some(p) = self.tree.parent {
                    ctx.send(
                        p,
                        WireMsg::word(tags::SUBTREE_SIZE, self.out.subtree_size as u64),
                    );
                }
                self.sent_up = true;
            }
        } else {
            // Top-down inorder round.
            if let (Some(lo), false) = (self.interval_start, self.sent_down) {
                if let Some(l) = self.tree.left {
                    ctx.send(l, WireMsg::word(tags::INORDER, lo as u64));
                }
                if let Some(r) = self.tree.right {
                    let r_lo = lo + self.out.left_size + 1;
                    ctx.send(r, WireMsg::word(tags::INORDER, r_lo as u64));
                }
                self.sent_down = true;
            }
        }
        self.t += 1;
        Poll::Pending
    }
}
