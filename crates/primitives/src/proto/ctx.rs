//! Batched-engine [`PathCtx`] establishment: the undirect → contacts →
//! BBST → traversal chain as a single [`Step`], so composite protocols
//! (the realization drivers) get the full path context without ever
//! touching the threaded engine.
//!
//! Round-for-round identical to the direct-style
//! [`PathCtx::establish`](crate::ctx::PathCtx) /
//! [`establish_on`](crate::ctx::PathCtx): exactly
//! [`ctx::rounds_for`](crate::ctx::rounds_for)`(n)` (or
//! [`rounds_on`](crate::ctx::rounds_on) when starting from an existing
//! path view).

use crate::bbst::Bbst;
use crate::contacts::ContactTable;
use crate::ctx::PathCtx;
use crate::proto::bbst::BbstStep;
use crate::proto::contacts::ContactsStep;
use crate::proto::step::{Poll, Step};
use crate::proto::traversal::TraversalStep;
use crate::vpath::VPath;
use dgr_ncc::{tags, RoundCtx, WireMsg};
use std::sync::Arc;

/// Step-function port of [`vpath::undirect`](crate::vpath::undirect): the
/// 1-round undirection of `G_k`, chainable ahead of the other primitives.
#[derive(Debug)]
pub struct UndirectStep {
    sent: bool,
}

impl UndirectStep {
    /// Builds the step.
    pub fn new() -> Self {
        UndirectStep { sent: false }
    }
}

impl Default for UndirectStep {
    fn default() -> Self {
        Self::new()
    }
}

impl Step for UndirectStep {
    type Out = VPath;

    fn poll(&mut self, ctx: &mut RoundCtx<'_>) -> Poll<VPath> {
        if !self.sent {
            if let Some(succ) = ctx.initial_successor() {
                ctx.send(succ, WireMsg::signal(tags::UNDIRECT));
            }
            self.sent = true;
            return Poll::Pending;
        }
        let pred = ctx
            .inbox()
            .iter()
            .find(|env| env.msg.tag == tags::UNDIRECT)
            .map(|env| env.src);
        Poll::Ready(VPath {
            member: true,
            pred,
            succ: ctx.initial_successor(),
            // The G_k path spans the *participating* nodes — on a masked
            // sub-network run that is fewer than n, and every round budget
            // downstream keys off this length.
            len: ctx.participants(),
        })
    }
}

enum Stage {
    Undirect(UndirectStep),
    Contacts(ContactsStep),
    Bbst(BbstStep),
    Traversal(TraversalStep),
}

/// The full `O(log n)`-round context establishment as one chainable
/// [`Step`] producing a [`PathCtx`]. The contact table and the tree are
/// built once and passed on as interned `Arc` handles — every stage
/// transition here (and in the composite drivers downstream) moves
/// pointers, never tables.
pub struct EstablishCtx {
    stage: Stage,
    vp: VPath,
    contacts: Option<Arc<ContactTable>>,
    tree: Option<Arc<Bbst>>,
}

impl EstablishCtx {
    /// Establishes the context on the physical knowledge path `G_k`
    /// (undirection first) — the batched image of [`PathCtx::establish`].
    pub fn new() -> Self {
        EstablishCtx {
            stage: Stage::Undirect(UndirectStep::new()),
            // Placeholder until undirection completes.
            vp: VPath::non_member(0),
            contacts: None,
            tree: None,
        }
    }

    /// Establishes the context on an already-linked virtual path (e.g. a
    /// sorted path) — the batched image of [`PathCtx::establish_on`].
    /// Non-members idle in lockstep.
    pub fn on(vp: VPath) -> Self {
        EstablishCtx {
            stage: Stage::Contacts(ContactsStep::new(vp)),
            vp,
            contacts: None,
            tree: None,
        }
    }
}

impl Default for EstablishCtx {
    fn default() -> Self {
        Self::new()
    }
}

impl Step for EstablishCtx {
    type Out = PathCtx;

    fn poll(&mut self, ctx: &mut RoundCtx<'_>) -> Poll<PathCtx> {
        loop {
            match &mut self.stage {
                Stage::Undirect(s) => match s.poll(ctx) {
                    Poll::Pending => return Poll::Pending,
                    Poll::Ready(vp) => {
                        self.vp = vp;
                        self.stage = Stage::Contacts(ContactsStep::new(vp));
                    }
                },
                Stage::Contacts(s) => match s.poll(ctx) {
                    Poll::Pending => return Poll::Pending,
                    Poll::Ready(table) => {
                        self.contacts = Some(table.clone());
                        self.stage = Stage::Bbst(BbstStep::new(self.vp, table));
                    }
                },
                Stage::Bbst(s) => match s.poll(ctx) {
                    Poll::Pending => return Poll::Pending,
                    Poll::Ready(tree) => {
                        self.tree = Some(tree.clone());
                        self.stage = Stage::Traversal(TraversalStep::new(self.vp, tree));
                    }
                },
                Stage::Traversal(s) => match s.poll(ctx) {
                    Poll::Pending => return Poll::Pending,
                    Poll::Ready(traversal) => {
                        return Poll::Ready(PathCtx {
                            position: traversal.position,
                            vp: std::mem::replace(&mut self.vp, VPath::non_member(0)),
                            contacts: self.contacts.take().expect("contacts stage skipped"),
                            tree: self.tree.take().expect("tree stage skipped"),
                            traversal,
                        });
                    }
                },
            }
        }
    }
}

/// A whole-run protocol that establishes the [`PathCtx`] and then runs one
/// more [`Step`] built from it: `make(&ctx, round_ctx)` is called in the
/// very round the establishment completes, exactly like a direct-style
/// closure calling the next primitive — so the total round count is the
/// sum of the two budgets. The work-horse for running a single primitive
/// standalone on the batched engine (tests, benches).
pub struct WithCtx<S: Step, F> {
    establish: EstablishCtx,
    make: Option<F>,
    stage: Option<S>,
}

impl<S: Step, F> WithCtx<S, F> {
    /// Builds the protocol; `make` constructs the second stage from the
    /// established context.
    pub fn new(make: F) -> Self {
        WithCtx {
            establish: EstablishCtx::new(),
            make: Some(make),
            stage: None,
        }
    }
}

impl<S, F> dgr_ncc::NodeProtocol for WithCtx<S, F>
where
    S: Step,
    S::Out: Send,
    F: FnOnce(&PathCtx, &mut RoundCtx<'_>) -> S + Send,
{
    type Output = S::Out;

    fn step(&mut self, rctx: &mut RoundCtx<'_>) -> dgr_ncc::Status<S::Out> {
        loop {
            if let Some(stage) = &mut self.stage {
                return match stage.poll(rctx) {
                    Poll::Pending => dgr_ncc::Status::Continue,
                    Poll::Ready(out) => dgr_ncc::Status::Done(out),
                };
            }
            match self.establish.poll(rctx) {
                Poll::Pending => return dgr_ncc::Status::Continue,
                Poll::Ready(ctx) => {
                    let make = self.make.take().expect("stage built twice");
                    // The context is dropped here: the stage keeps what it
                    // needs, so the per-node tables do not outlive setup.
                    self.stage = Some(make(&ctx, rctx));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::proto::step::StepProtocol;
    use dgr_ncc::{Config, Network};

    #[test]
    fn batched_establish_matches_the_round_budget() {
        let n = 48;
        let net = Network::new(n, Config::ncc0(21));
        let result = net
            .run_protocol(|_| StepProtocol::new(EstablishCtx::new()))
            .unwrap();
        assert!(result.metrics.is_clean());
        assert_eq!(result.metrics.rounds, crate::ctx::rounds_for(n));
        for (i, (_, ctx)) in result.outputs.iter().enumerate() {
            assert_eq!(ctx.position, i);
            assert!(ctx.traversal.subtree_size > 0);
        }
    }

    #[cfg(feature = "threaded")]
    #[test]
    fn batched_establish_equals_direct_style() {
        let n = 53;
        let net = Network::new(n, Config::ncc0(8));
        let batched = net
            .run_protocol(|_| StepProtocol::new(EstablishCtx::new()))
            .unwrap();
        let direct = net.run(PathCtx::establish).unwrap();
        assert_eq!(batched.metrics.rounds, direct.metrics.rounds);
        assert_eq!(batched.metrics.messages, direct.metrics.messages);
        assert_eq!(batched.metrics.words, direct.metrics.words);
        for ((ida, a), (idb, b)) in batched.outputs.iter().zip(direct.outputs.iter()) {
            assert_eq!(ida, idb);
            assert_eq!(a.vp, b.vp);
            assert_eq!(a.contacts, b.contacts);
            assert_eq!(a.tree, b.tree);
            assert_eq!(a.traversal, b.traversal);
        }
    }
}
