//! Step-function port of [`sort::sort_at`](crate::sort::sort_at): the
//! Batcher odd-even mergesort network over path positions plus the 2-round
//! epilogue that links the sorted path (Theorem 3).

use crate::contacts::ContactTable;
use crate::proto::step::{Poll, Step};
use crate::sort::{comparator_at, Order, SortedPath};
use crate::vpath::VPath;
use dgr_ncc::{tags, NodeId, RoundCtx, WireMsg};
use std::sync::Arc;

/// A record traveling through the comparator network (mirrors the private
/// `Record` of the direct-style module).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
struct Record {
    key: u64,
    origin: NodeId,
}

/// Incremental iterator over the comparator stages `(p, k)` of Batcher's
/// odd-even mergesort — the same sequence as `sort::stages`, without
/// materializing the `O(log² n)` list per node.
#[derive(Clone, Copy, Debug)]
pub(crate) struct StageIter {
    p: usize,
    k: usize,
    len: usize,
}

impl StageIter {
    pub(crate) fn new(len: usize) -> Self {
        StageIter { p: 1, k: 1, len }
    }

    /// The current stage, or `None` when the network is exhausted.
    pub(crate) fn current(&self) -> Option<(usize, usize)> {
        (self.p < self.len).then_some((self.p, self.k))
    }

    pub(crate) fn advance(&mut self) {
        if self.k > 1 {
            self.k /= 2;
        } else {
            self.p *= 2;
            self.k = self.p;
        }
    }
}

/// Theorem 3 as a [`Step`], dispatching between the two
/// [`SortBackend`](crate::sort::SortBackend)s. Ties break by node ID,
/// making the result deterministic (and, on the bitonic backend,
/// identical to the direct-style twin).
///
/// [`SortStep::new`] always builds the bitonic network (rounds: exactly
/// [`sort::rounds_for`](crate::sort::rounds_for)`(vp.len)`);
/// [`SortStep::on_ctx`] selects the backend.
#[derive(Debug)]
pub struct SortStep {
    inner: SortImpl,
}

#[derive(Debug)]
enum SortImpl {
    Bitonic(BitonicSortStep),
    // Boxed: the randomized backend's state dwarfs the bitonic's, and
    // every driver stage machine embeds a SortStep by value.
    Rand(Box<crate::proto::rand_sort::RandSortStep>),
}

impl SortStep {
    /// Builds the Batcher odd-even mergesort network (the default
    /// backend; legal for non-member views and under the strict policy).
    pub fn new(
        vp: VPath,
        contacts: Arc<ContactTable>,
        position: usize,
        key: u64,
        order: Order,
        my_id: NodeId,
    ) -> Self {
        SortStep {
            inner: SortImpl::Bitonic(BitonicSortStep::new(
                vp, contacts, position, key, order, my_id,
            )),
        }
    }

    /// Builds the sort over an established [`PathCtx`](crate::ctx::PathCtx)
    /// with an explicit [`SortBackend`](crate::sort::SortBackend). The
    /// randomized backend needs the context's tree and traversal data;
    /// below [`RAND_MIN`](crate::proto::rand_sort::RAND_MIN) nodes (or
    /// with [`SortBackend::Bitonic`](crate::sort::SortBackend)) this is
    /// the bitonic network.
    ///
    /// # Panics
    ///
    /// Panics if the randomized backend is selected at or above the
    /// threshold on a non-member context (see
    /// [`rand_sort`](crate::proto::rand_sort)).
    pub fn on_ctx(
        ctx: &crate::ctx::PathCtx,
        key: u64,
        order: Order,
        my_id: NodeId,
        backend: crate::sort::SortBackend,
    ) -> Self {
        match backend {
            crate::sort::SortBackend::RandomizedLogN { seed }
                if ctx.vp.len >= crate::proto::rand_sort::RAND_MIN =>
            {
                SortStep {
                    inner: SortImpl::Rand(Box::new(crate::proto::rand_sort::RandSortStep::new(
                        ctx, key, order, my_id, seed,
                    ))),
                }
            }
            _ => Self::new(
                ctx.vp,
                ctx.contacts.clone(),
                ctx.position,
                key,
                order,
                my_id,
            ),
        }
    }
}

impl Step for SortStep {
    type Out = SortedPath;

    fn poll(&mut self, ctx: &mut RoundCtx<'_>) -> Poll<SortedPath> {
        match &mut self.inner {
            SortImpl::Bitonic(s) => s.poll(ctx),
            SortImpl::Rand(s) => s.poll(ctx),
        }
    }
}

/// The Batcher odd-even mergesort backend (see [`SortStep`]).
#[derive(Debug)]
pub struct BitonicSortStep {
    vp: VPath,
    contacts: Arc<ContactTable>,
    x: usize,
    stage_count: u64,
    t: u64,
    it: StageIter,
    held: Record,
    /// The in-flight comparator staged last round.
    cmp: Option<(usize, bool)>,
    pred_origin: Option<NodeId>,
    succ_origin: Option<NodeId>,
}

impl BitonicSortStep {
    /// Builds the step: sort the members of `vp` by `key` (this node's
    /// `position` comes from the traversal primitive).
    pub fn new(
        vp: VPath,
        contacts: Arc<ContactTable>,
        position: usize,
        key: u64,
        order: Order,
        my_id: NodeId,
    ) -> Self {
        let len = vp.len;
        BitonicSortStep {
            x: position,
            stage_count: crate::sort::stage_count(len) as u64,
            t: 0,
            it: StageIter::new(len),
            held: Record {
                key: order.encode_key(key),
                origin: my_id,
            },
            cmp: None,
            pred_origin: None,
            succ_origin: None,
            vp,
            contacts,
        }
    }

    /// Consumes the previous comparator round's exchange.
    fn absorb_exchange(&mut self, ctx: &RoundCtx<'_>) {
        if let Some((_, i_am_low)) = self.cmp.take() {
            let env = ctx
                .inbox()
                .iter()
                .find(|e| e.msg.tag == tags::SORT_XCHG)
                .expect("comparator partner did not exchange");
            let theirs = Record {
                key: env.word(),
                origin: env.addr(),
            };
            self.held = if i_am_low {
                self.held.min(theirs)
            } else {
                self.held.max(theirs)
            };
        } else {
            debug_assert!(ctx.inbox().iter().all(|e| e.msg.tag != tags::SORT_XCHG));
        }
    }

    /// Stages the comparator of the current network stage, if any.
    fn stage_comparator(&mut self, ctx: &mut RoundCtx<'_>) {
        let (p, k) = self.it.current().expect("comparator stage out of range");
        self.it.advance();
        let cmp = comparator_at(self.x, self.vp.len, p, k);
        if let Some((partner, _)) = cmp {
            let level = k.trailing_zeros() as usize;
            debug_assert_eq!(1 << level, k);
            let partner_id = self
                .contacts
                .at_offset(level, partner > self.x)
                .expect("comparator partner outside contact table");
            ctx.send(
                partner_id,
                WireMsg::addr_word(tags::SORT_XCHG, self.held.origin, self.held.key),
            );
        }
        self.cmp = cmp;
    }
}

impl Step for BitonicSortStep {
    type Out = SortedPath;

    fn poll(&mut self, ctx: &mut RoundCtx<'_>) -> Poll<SortedPath> {
        let len = self.vp.len;
        let rounds = crate::sort::rounds_for(len);
        if !self.vp.member {
            if self.t == rounds {
                return Poll::Ready(SortedPath {
                    rank: 0,
                    vp: VPath::non_member(len),
                });
            }
            self.t += 1;
            return Poll::Pending;
        }
        let s = self.stage_count;
        if self.t > 0 && self.t <= s {
            self.absorb_exchange(ctx);
        }
        if self.t < s {
            self.stage_comparator(ctx);
        } else if self.t == s {
            // Epilogue round 1: exchange held origins with path neighbors.
            for nb in [self.vp.pred, self.vp.succ].into_iter().flatten() {
                ctx.send(nb, WireMsg::addr(tags::SORT_LINK, self.held.origin));
            }
        } else if self.t == s + 1 {
            for env in ctx.inbox().iter().filter(|e| e.msg.tag == tags::SORT_LINK) {
                if Some(env.src) == self.vp.pred {
                    self.pred_origin = Some(env.addr());
                } else if Some(env.src) == self.vp.succ {
                    self.succ_origin = Some(env.addr());
                }
            }
            // Epilogue round 2: tell the held record's origin its rank and
            // sorted neighbors (flags: bit0 = has pred, bit1 = has succ).
            let flags = u64::from(self.pred_origin.is_some())
                | (u64::from(self.succ_origin.is_some()) << 1);
            let mut msg = WireMsg::words(tags::SORT_LINK, &[self.x as u64, flags]);
            if let Some(a) = self.pred_origin {
                msg = msg.with_addr(a);
            }
            if let Some(a) = self.succ_origin {
                msg = msg.with_addr(a);
            }
            ctx.send(self.held.origin, msg);
        } else {
            let env = ctx
                .inbox()
                .iter()
                .find(|e| e.msg.tag == tags::SORT_LINK)
                .expect("no rank notification received");
            let rank = env.msg.words_slice()[0] as usize;
            let flags = env.msg.words_slice()[1];
            let mut addrs = env.msg.addrs_slice().iter().copied();
            let pred = (flags & 1 != 0).then(|| addrs.next().unwrap());
            let succ = (flags & 2 != 0).then(|| addrs.next().unwrap());
            return Poll::Ready(SortedPath {
                rank,
                vp: VPath {
                    member: true,
                    pred,
                    succ,
                    len,
                },
            });
        }
        self.t += 1;
        Poll::Pending
    }
}

#[cfg(test)]
mod tests {
    use super::StageIter;

    #[test]
    fn stage_iter_matches_the_materialized_schedule() {
        for len in 0..80 {
            let mut it = StageIter::new(len);
            let mut got = Vec::new();
            while let Some(stage) = it.current() {
                got.push(stage);
                it.advance();
            }
            assert_eq!(got.len(), crate::sort::stage_count(len), "len={len}");
            // The schedule is (p, k) with p doubling and k halving from p.
            for w in got.windows(2) {
                let ((p0, k0), (p1, k1)) = (w[0], w[1]);
                if k0 > 1 {
                    assert_eq!((p1, k1), (p0, k0 / 2));
                } else {
                    assert_eq!((p1, k1), (2 * p0, 2 * p0));
                }
            }
        }
    }
}
