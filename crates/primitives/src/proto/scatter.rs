//! Step-function port of
//! [`scatter::milestone_scan`](crate::scatter::milestone_scan): the
//! two-records-per-node segmented broadcast (sort over `2n` virtual slots,
//! Hillis–Steele scan, origin delivery) behind Algorithm 5.

use crate::contacts::ContactTable;
use crate::proto::sort::StageIter;
use crate::proto::step::{Poll, Step};
use crate::scatter::ScanRecord;
use crate::vpath::VPath;
use dgr_ncc::{tags, NodeId, RoundCtx, WireMsg};
use std::sync::Arc;

/// Sub-protocol words (identical to the direct-style module).
const W_EXCHANGE: u64 = 0;
const W_SCAN: u64 = 1;
const W_DELIVER: u64 = 2;

/// A record in flight (mirrors the direct module's `Flight`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
struct Flight {
    key: u64,
    origin: NodeId,
    slot: u8,
    milestone: Option<NodeId>,
}

impl Flight {
    fn order(&self) -> (u64, NodeId, u8) {
        (self.key, self.origin, self.slot)
    }
}

fn encode(tag_word: u64, vpos: u64, f: &Flight) -> WireMsg {
    let flags = u64::from(f.slot) | (u64::from(f.milestone.is_some()) << 1);
    let mut m =
        WireMsg::words(tags::SORT_XCHG, &[tag_word, vpos, f.key, flags]).with_addr(f.origin);
    if let Some(a) = f.milestone {
        m = m.with_addr(a);
    }
    m
}

fn decode(msg: &WireMsg) -> (u64, u64, Flight) {
    let words = msg.words_slice();
    let addrs = msg.addrs_slice();
    let flags = words[3];
    (
        words[0],
        words[1],
        Flight {
            key: words[2],
            origin: addrs[0],
            slot: (flags & 1) as u8,
            milestone: (flags & 2 != 0).then(|| addrs[1]),
        },
    )
}

/// The host path position of a virtual slot.
fn host(vpos: usize) -> usize {
    vpos / 2
}

/// The milestone scan as a [`Step`].
///
/// Rounds: exactly [`scatter::rounds_for`](crate::scatter::rounds_for)`
/// (vp.len)`.
#[derive(Debug)]
pub struct ScanStep {
    vp: VPath,
    contacts: Arc<ContactTable>,
    position: usize,
    t: u64,
    it: StageIter,
    stage_count: u64,
    scan_levels: u64,
    held: [Flight; 2],
    plan: [Option<(usize, bool)>; 2],
    acc: [Option<NodeId>; 2],
    result: [Option<NodeId>; 2],
}

impl ScanStep {
    /// Builds the step; every member emits exactly two records.
    pub fn new(
        vp: VPath,
        contacts: Arc<ContactTable>,
        position: usize,
        records: [ScanRecord; 2],
        my_id: NodeId,
    ) -> Self {
        let virt = 2 * vp.len;
        let held = std::array::from_fn(|s| Flight {
            key: match records[s] {
                ScanRecord::Milestone { key, .. } | ScanRecord::Filler { key } => key,
                ScanRecord::Absent => u64::MAX,
            },
            origin: my_id,
            slot: s as u8,
            milestone: match records[s] {
                ScanRecord::Milestone { addr, .. } => Some(addr),
                _ => None,
            },
        });
        ScanStep {
            vp,
            contacts,
            position,
            t: 0,
            it: StageIter::new(virt),
            stage_count: crate::sort::stage_count(virt) as u64,
            scan_levels: crate::levels_for(virt) as u64,
            held,
            plan: [None, None],
            acc: [None, None],
            result: [None, None],
        }
    }

    /// The ID of the node hosting `target_host` (a power-of-two distance
    /// from this node's position, or itself).
    fn host_id(&self, target_host: usize, my_id: NodeId) -> Option<NodeId> {
        use std::cmp::Ordering;
        match target_host.cmp(&self.position) {
            Ordering::Equal => Some(my_id),
            Ordering::Greater => {
                let d = target_host - self.position;
                debug_assert!(d.is_power_of_two());
                self.contacts.ahead(d.trailing_zeros() as usize)
            }
            Ordering::Less => {
                let d = self.position - target_host;
                debug_assert!(d.is_power_of_two());
                self.contacts.behind(d.trailing_zeros() as usize)
            }
        }
    }

    fn absorb_exchange(&mut self, ctx: &RoundCtx<'_>) {
        for env in ctx.inbox().iter().filter(|e| e.msg.tag == tags::SORT_XCHG) {
            let (w, partner_vpos, theirs) = decode(&env.msg);
            debug_assert_eq!(w, W_EXCHANGE);
            let s = (0..2)
                .find(|&s| {
                    self.plan[s] == Some((partner_vpos as usize, true))
                        || self.plan[s] == Some((partner_vpos as usize, false))
                })
                .expect("unexpected exchange partner");
            let (_, i_am_low) = self.plan[s].unwrap();
            self.held[s] = if i_am_low {
                if self.held[s].order() <= theirs.order() {
                    self.held[s]
                } else {
                    theirs
                }
            } else if self.held[s].order() > theirs.order() {
                self.held[s]
            } else {
                theirs
            };
        }
    }

    fn stage_comparators(&mut self, ctx: &mut RoundCtx<'_>) {
        let virt = 2 * self.vp.len;
        let (p, k) = self.it.current().expect("scan stage out of range");
        self.it.advance();
        let my_id = ctx.id();
        self.plan = [None, None];
        for s in 0..2 {
            let v = 2 * self.position + s;
            if let Some((partner, i_am_low)) = crate::sort::comparator_at(v, virt, p, k) {
                if host(partner) == self.position {
                    // Local comparator between my own two slots.
                    if s == 0 {
                        debug_assert!(partner == v + 1 && i_am_low);
                        if self.held[0].order() > self.held[1].order() {
                            self.held.swap(0, 1);
                        }
                    }
                } else {
                    self.plan[s] = Some((partner, i_am_low));
                    let target = self
                        .host_id(host(partner), my_id)
                        .expect("comparator partner off the path");
                    ctx.send(target, encode(W_EXCHANGE, v as u64, &self.held[s]));
                }
            }
        }
    }

    fn absorb_scan(&mut self, ctx: &RoundCtx<'_>) {
        for env in ctx.inbox().iter().filter(|e| e.msg.tag == tags::PREFIX) {
            let tv = env.msg.words_slice()[1] as usize;
            let s = tv - 2 * self.position;
            debug_assert!(s < 2);
            if self.acc[s].is_none() {
                self.acc[s] = Some(env.addr());
            }
        }
    }

    fn stage_scan(&mut self, level: u64, ctx: &mut RoundCtx<'_>) {
        let virt = 2 * self.vp.len;
        let my_id = ctx.id();
        for (s, &slot_acc) in self.acc.iter().enumerate() {
            let v = 2 * self.position + s;
            let tv = v + (1usize << level);
            if tv < virt {
                if let Some(a) = slot_acc {
                    let target = self
                        .host_id(host(tv), my_id)
                        .expect("scan target off the path");
                    ctx.send(
                        target,
                        WireMsg::words(tags::PREFIX, &[W_SCAN, tv as u64]).with_addr(a),
                    );
                }
            }
        }
    }

    fn stage_delivery(&mut self, ctx: &mut RoundCtx<'_>) {
        let my_id = ctx.id();
        for s in 0..2 {
            let value = self.acc[s];
            if self.held[s].origin == my_id {
                self.result[self.held[s].slot as usize] = value;
            } else {
                let mut msg = WireMsg::words(
                    tags::TOKEN,
                    &[
                        W_DELIVER,
                        u64::from(self.held[s].slot),
                        u64::from(value.is_some()),
                    ],
                );
                if let Some(a) = value {
                    msg = msg.with_addr(a);
                }
                ctx.send(self.held[s].origin, msg);
            }
        }
    }
}

impl Step for ScanStep {
    type Out = [Option<NodeId>; 2];

    fn poll(&mut self, ctx: &mut RoundCtx<'_>) -> Poll<[Option<NodeId>; 2]> {
        let rounds = crate::scatter::rounds_for(self.vp.len);
        if !self.vp.member {
            if self.t == rounds {
                return Poll::Ready([None, None]);
            }
            self.t += 1;
            return Poll::Pending;
        }
        let s_end = self.stage_count;
        let scan_end = s_end + self.scan_levels;
        if self.t > 0 && self.t <= s_end {
            self.absorb_exchange(ctx);
            if self.t == s_end {
                // The network is sorted; seed the scan accumulators.
                self.acc = std::array::from_fn(|s| self.held[s].milestone);
            }
        } else if self.t > s_end && self.t <= scan_end {
            self.absorb_scan(ctx);
        } else if self.t == rounds {
            for env in ctx.inbox().iter().filter(|e| e.msg.tag == tags::TOKEN) {
                let s = env.msg.words_slice()[1] as usize;
                if env.msg.words_slice()[2] != 0 {
                    self.result[s] = Some(env.msg.addrs_slice()[0]);
                }
            }
            return Poll::Ready(self.result);
        }
        if self.t < s_end {
            self.stage_comparators(ctx);
        } else if self.t < scan_end {
            self.stage_scan(self.t - s_end, ctx);
        } else {
            debug_assert_eq!(self.t, scan_end);
            self.stage_delivery(ctx);
        }
        self.t += 1;
        Poll::Pending
    }
}
