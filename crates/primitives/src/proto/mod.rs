//! Step-function ports of the primitives: [`NodeProtocol`] state machines
//! and composable [`Step`] sub-protocols for the batched executor.
//!
//! The direct-style primitives in the sibling modules block inside
//! `NodeHandle::step` and therefore need the threaded oracle engine. The
//! ports here are the same algorithms unrolled into explicit state
//! machines — one poll per round — so they run on the batched executor at
//! scales the threaded engine cannot touch (hundreds of thousands to
//! millions of nodes), and on the threaded oracle for differential
//! testing.
//!
//! Two layers:
//!
//! * [`step::Step`] — a primitive as a pollable sub-protocol that can be
//!   *chained* with others inside one run (the [`step`] module documents
//!   the polling discipline). This is what the realization drivers in
//!   `dgr-core`, `dgr-trees` and `dgr-connectivity` compose.
//! * [`NodeProtocol`] — a whole-run protocol. Single primitives run
//!   standalone through [`step::StepProtocol`]; bespoke whole-run
//!   protocols ([`Undirect`], [`PathToClique`]) remain for the warm-up
//!   benchmarks.
//!
//! Every port is round-for-round and message-for-message identical to its
//! direct-style twin (same budgets, same tags, same payloads, same RNG
//! draws), which `crates/primitives/tests/proto_differential.rs` asserts.
//!
//! | Step | Direct-style twin | Rounds |
//! |---|---|---|
//! | [`ctx::UndirectStep`] | [`vpath::undirect`](crate::vpath::undirect) | 1 |
//! | [`contacts::ContactsStep`] | [`contacts::build`](crate::contacts::build) | `ceil(log2 n) - 1` |
//! | [`bbst::BbstStep`] | [`bbst::build`](crate::bbst::build) | `2 ceil(log2 n)` |
//! | [`traversal::TraversalStep`] | [`traversal::positions`](crate::traversal::positions) | `O(log n)` |
//! | [`ops::AggBcastStep`] | [`ops::aggregate_broadcast`](crate::ops::aggregate_broadcast) | `O(log n)` |
//! | [`ops::BroadcastAddrStep`] | [`ops::broadcast_addr`](crate::ops::broadcast_addr) | `O(log n)` |
//! | [`ops::CollectStep`] | [`ops::collect`](crate::ops::collect) | `O(k + log n)` |
//! | [`sort::SortStep`] | [`sort::sort_at`](crate::sort::sort_at) | `O(log² n)` |
//! | [`prefix::PrefixStep`] | [`prefix::prefix_sum`](crate::prefix::prefix_sum) | `O(log n)` |
//! | [`imcast::ImcastStep`] | [`imcast::interval_multicast`](crate::imcast::interval_multicast) | `O(log n)` |
//! | [`scatter::ScanStep`] | [`scatter::milestone_scan`](crate::scatter::milestone_scan) | `O(log² n)` |
//! | [`stagger::StaggerStep`] | [`stagger::staggered_send`](crate::stagger::staggered_send) | `spread + drain` |
//! | [`ctx::EstablishCtx`] | [`PathCtx::establish`](crate::ctx::PathCtx::establish) | `O(log n)` |
//!
//! [`NodeProtocol`]: dgr_ncc::NodeProtocol

pub mod bbst;
pub mod clique;
pub mod contacts;
pub mod ctx;
pub mod imcast;
pub mod ops;
pub mod prefix;
pub mod rand_sort;
pub mod scatter;
pub mod sort;
pub mod stagger;
pub mod step;
pub mod traversal;
pub mod undirect;

pub use clique::PathToClique;
pub use ctx::{EstablishCtx, WithCtx};
pub use step::{AggOp, Poll, Step, StepProtocol};
pub use undirect::Undirect;
