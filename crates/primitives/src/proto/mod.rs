//! Step-function ports of the primitives: [`NodeProtocol`] state machines
//! for the batched executor.
//!
//! The direct-style primitives in the sibling modules block inside
//! `NodeHandle::step` and therefore need the threaded oracle engine. The
//! protocols here are the same algorithms unrolled into explicit state
//! machines — one [`NodeProtocol::step`] call per round — so they run on
//! the batched executor at scales the threaded engine cannot touch
//! (millions of nodes), and on the threaded oracle for differential
//! testing. Each protocol's step function is allocation-free after
//! construction: all per-node state is pre-sized, which is what keeps the
//! executor's round loop off the allocator end to end.
//!
//! Ported so far:
//!
//! | Protocol | Direct-style twin | Rounds |
//! |---|---|---|
//! | [`undirect::Undirect`] | [`vpath::undirect`](crate::vpath::undirect) | 1 |
//! | [`clique::PathToClique`] | [`vpath::undirect`](crate::vpath::undirect) + [`contacts::build`](crate::contacts::build) | `ceil(log2 n)` |
//!
//! [`NodeProtocol`]: dgr_ncc::NodeProtocol
//! [`NodeProtocol::step`]: dgr_ncc::NodeProtocol::step

pub mod clique;
pub mod undirect;

pub use clique::PathToClique;
pub use undirect::Undirect;
