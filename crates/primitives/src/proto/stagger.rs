//! Step-function port of
//! [`stagger::staggered_send`](crate::stagger::staggered_send): randomly
//! staggered point-to-point delivery (the Las Vegas Theorem 8 substitute).
//! Draws the same per-node RNG stream as the direct twin, so both engines
//! produce the identical schedule.

use crate::proto::step::{Poll, Step};
use dgr_ncc::{NodeId, RoundCtx, WireMsg};
use rand::Rng;

/// One staggered epoch as a [`Step`]. Returns everything received during
/// the epoch as `(sender, message)` pairs in delivery order (callers
/// filter by tag).
///
/// Rounds: exactly [`stagger::rounds_for`](crate::stagger::rounds_for)`
/// (spread, drain)`.
#[derive(Debug)]
pub struct StaggerStep {
    /// Sends not yet scheduled (drawn on the first poll, where the RNG
    /// lives).
    sends: Vec<(NodeId, WireMsg)>,
    /// `(round, target, msg)`, reverse-sorted so the earliest pops last.
    schedule: Vec<(u64, NodeId, WireMsg)>,
    spread: u64,
    drain: u64,
    t: u64,
    received: Vec<(NodeId, WireMsg)>,
}

impl StaggerStep {
    /// Builds the step. All participants of the epoch must use the same
    /// `spread` and `drain` (see [`stagger::plan`](crate::stagger::plan)).
    pub fn new(sends: Vec<(NodeId, WireMsg)>, spread: u64, drain: u64) -> Self {
        StaggerStep {
            schedule: Vec::with_capacity(sends.len()),
            sends,
            spread,
            drain,
            t: 0,
            received: Vec::new(),
        }
    }
}

impl Step for StaggerStep {
    type Out = Vec<(NodeId, WireMsg)>;

    fn poll(&mut self, ctx: &mut RoundCtx<'_>) -> Poll<Vec<(NodeId, WireMsg)>> {
        let rounds = crate::stagger::rounds_for(self.spread, self.drain);
        if self.t == 0 {
            // Identical draw order to the direct twin: one range sample per
            // send, in send order.
            let spread = self.spread.max(1);
            for (target, msg) in self.sends.drain(..) {
                let r = ctx.rng().gen_range(0..spread);
                self.schedule.push((r, target, msg));
            }
            self.schedule.sort_by_key(|(r, ..)| *r);
            self.schedule.reverse(); // pop from the back = earliest first
        } else {
            self.received
                .extend(ctx.inbox().iter().map(|e| (e.src, e.msg)));
        }
        if self.t == rounds {
            debug_assert!(
                self.schedule.is_empty(),
                "staggered epoch too short to send everything"
            );
            return Poll::Ready(std::mem::take(&mut self.received));
        }
        let cap = ctx.capacity();
        let mut staged = 0;
        while staged < cap {
            match self.schedule.last() {
                Some((r, ..)) if *r <= self.t => {
                    let (_, target, msg) = self.schedule.pop().unwrap();
                    ctx.send(target, msg);
                    staged += 1;
                }
                _ => break,
            }
        }
        self.t += 1;
        Poll::Pending
    }
}
