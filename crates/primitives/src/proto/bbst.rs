//! Step-function port of [`bbst::build`](crate::bbst::build): the
//! controlled BFS of Algorithm 1, two rounds (invite + accept) per
//! doubling level, exactly as the direct-style twin schedules them.

use crate::bbst::{Bbst, Side};
use crate::contacts::ContactTable;
use crate::proto::step::{Poll, Step};
use crate::vpath::VPath;
use dgr_ncc::{tags, NodeId, RoundCtx, WireMsg};
use std::sync::Arc;

/// Algorithm 1 as a [`Step`].
///
/// Rounds: exactly [`bbst::rounds_for`](crate::bbst::rounds_for)`(vp.len)`.
#[derive(Debug)]
pub struct BbstStep {
    vp: VPath,
    contacts: Arc<ContactTable>,
    levels: usize,
    /// Polls completed so far; even = invite round, odd = accept round.
    t: u64,
    tree: Bbst,
    in_tree: bool,
    in_sp: bool,
    in_ss: bool,
}

impl BbstStep {
    /// Builds the step. `contacts` must be the contact table of the same
    /// path (the structure `L` of the paper).
    pub fn new(vp: VPath, contacts: Arc<ContactTable>) -> Self {
        let levels = vp.levels();
        let is_root = vp.is_head();
        BbstStep {
            vp,
            contacts,
            levels,
            t: 0,
            tree: Bbst {
                is_root,
                parent: None,
                side: None,
                left: None,
                right: None,
                depth: 0,
                member: true,
            },
            in_tree: is_root,
            in_sp: is_root,
            in_ss: is_root,
        }
    }

    fn pred_at(&self, i: usize) -> Option<NodeId> {
        if i == 0 {
            self.vp.pred
        } else {
            self.contacts.behind(i)
        }
    }

    fn succ_at(&self, i: usize) -> Option<NodeId> {
        if i == 0 {
            self.vp.succ
        } else {
            self.contacts.ahead(i)
        }
    }

    /// Stages the invitations of BFS level `i` (Algorithm 1 lines 3-10).
    fn stage_invites(&mut self, i: usize, ctx: &mut RoundCtx<'_>) {
        if self.in_sp {
            if let Some(p) = self.pred_at(i) {
                ctx.send(p, WireMsg::word(tags::INVITE_LEFT, self.tree.depth + 1));
                self.in_sp = false;
            }
        }
        if self.in_ss {
            if let Some(s) = self.succ_at(i) {
                ctx.send(s, WireMsg::word(tags::INVITE_RIGHT, self.tree.depth + 1));
                self.in_ss = false;
            }
        }
    }

    /// Consumes invitations and stages an acceptance (lines 11-15).
    fn stage_accept(&mut self, ctx: &mut RoundCtx<'_>) {
        if self.in_tree {
            return;
        }
        // Deterministic choice among simultaneous invitations: prefer
        // becoming a left child, then the smaller inviter ID (at most one
        // invite of each kind can arrive per level).
        let mut best: Option<(bool, NodeId, u64)> = None;
        for env in ctx.inbox().iter() {
            let is_left = match env.msg.tag {
                tags::INVITE_LEFT => true,
                tags::INVITE_RIGHT => false,
                _ => continue,
            };
            let key = (!is_left, env.src);
            if best.is_none_or(|(l, s, _)| key < (!l, s)) {
                best = Some((is_left, env.src, env.word()));
            }
        }
        if let Some((is_left, src, depth)) = best {
            let side = if is_left { Side::Left } else { Side::Right };
            self.tree.parent = Some(src);
            self.tree.side = Some(side);
            self.tree.depth = depth;
            self.in_tree = true;
            self.in_sp = true;
            self.in_ss = true;
            let side_word = match side {
                Side::Left => 0,
                Side::Right => 1,
            };
            ctx.send(src, WireMsg::word(tags::ACCEPT, side_word));
        }
    }

    /// Consumes acceptances from the previous round.
    fn absorb_accepts(&mut self, ctx: &RoundCtx<'_>) {
        for env in ctx.inbox().iter().filter(|e| e.msg.tag == tags::ACCEPT) {
            match env.word() {
                0 => self.tree.left = Some(env.src),
                1 => self.tree.right = Some(env.src),
                other => unreachable!("bad accept side word {other}"),
            }
        }
    }
}

impl Step for BbstStep {
    type Out = Arc<Bbst>;

    fn poll(&mut self, ctx: &mut RoundCtx<'_>) -> Poll<Arc<Bbst>> {
        let rounds = crate::bbst::rounds_for(self.vp.len);
        if !self.vp.member {
            if self.t == rounds {
                return Poll::Ready(Arc::new(Bbst {
                    is_root: false,
                    parent: None,
                    side: None,
                    left: None,
                    right: None,
                    depth: 0,
                    member: false,
                }));
            }
            self.t += 1;
            return Poll::Pending;
        }
        if self.t == rounds {
            // Final accept round just delivered.
            if rounds > 0 {
                self.absorb_accepts(ctx);
            }
            debug_assert!(self.in_tree, "node {} never joined the BFS tree", ctx.id());
            return Poll::Ready(Arc::new(self.tree.clone()));
        }
        if self.t.is_multiple_of(2) {
            // Invite round for level i = levels - 1 - t/2; first consume the
            // previous level's acceptances.
            if self.t > 0 {
                self.absorb_accepts(ctx);
            }
            let i = self.levels - 1 - (self.t as usize) / 2;
            self.stage_invites(i, ctx);
        } else {
            self.stage_accept(ctx);
        }
        self.t += 1;
        Poll::Pending
    }
}
