//! Step-function port of [`contacts::build`](crate::contacts::build):
//! power-of-two contact tables by pointer doubling on an arbitrary virtual
//! path (the [`PathToClique`](crate::proto::PathToClique) warm-up hardcodes
//! the `G_k` path; this step runs on sorted paths too, which is what the
//! realization drivers need after every re-sort).

use crate::contacts::ContactTable;
use crate::proto::step::{Poll, Step};
use crate::vpath::VPath;
use dgr_ncc::{tags, NodeId, RoundCtx, WireMsg};
use std::sync::Arc;

/// Direction words (identical to the direct-style module).
const SET_FWD: u64 = 0;
const SET_BWD: u64 = 1;

/// Pointer-doubling contact construction as a [`Step`]. The finished
/// table is handed out interned (`Arc`) so downstream steps share one
/// copy per node instead of cloning it at every stage transition.
///
/// Rounds: exactly [`contacts::rounds_for`](crate::contacts::rounds_for)`
/// (vp.len)` — the same budget as the direct-style twin.
#[derive(Debug)]
pub struct ContactsStep {
    vp: VPath,
    levels: usize,
    /// Polls completed so far (== rounds entered).
    t: u64,
    fwd: Vec<Option<NodeId>>,
    bwd: Vec<Option<NodeId>>,
}

impl ContactsStep {
    /// Builds the step for one node's view of the path.
    pub fn new(vp: VPath) -> Self {
        let levels = vp.levels();
        ContactsStep {
            vp,
            levels,
            t: 0,
            fwd: Vec::with_capacity(levels),
            bwd: Vec::with_capacity(levels),
        }
    }

    /// Stages the level-`k` doubling exchange (`1 <= k < levels`).
    fn send_level(&self, k: usize, ctx: &mut RoundCtx<'_>) {
        if let (Some(b), Some(f)) = (self.bwd[k - 1], self.fwd[k - 1]) {
            ctx.send(b, WireMsg::addr_word(tags::CONTACT, f, SET_FWD));
            ctx.send(f, WireMsg::addr_word(tags::CONTACT, b, SET_BWD));
        }
    }

    /// Consumes one round's CONTACT messages into a new table level.
    fn absorb_level(&mut self, ctx: &RoundCtx<'_>) {
        let mut new_fwd = None;
        let mut new_bwd = None;
        for env in ctx.inbox().iter().filter(|e| e.msg.tag == tags::CONTACT) {
            match env.word() {
                SET_FWD => new_fwd = Some(env.addr()),
                SET_BWD => new_bwd = Some(env.addr()),
                other => unreachable!("bad contact direction word {other}"),
            }
        }
        self.fwd.push(new_fwd);
        self.bwd.push(new_bwd);
    }
}

impl Step for ContactsStep {
    type Out = Arc<ContactTable>;

    fn poll(&mut self, ctx: &mut RoundCtx<'_>) -> Poll<Arc<ContactTable>> {
        let rounds = crate::contacts::rounds_for(self.vp.len);
        if !self.vp.member {
            // Idle in lockstep like the direct twin's `idle_quiet`.
            if self.t == rounds {
                return Poll::Ready(Arc::new(ContactTable::default()));
            }
            self.t += 1;
            return Poll::Pending;
        }
        if self.t == 0 {
            if self.levels == 0 {
                return Poll::Ready(Arc::new(ContactTable::default()));
            }
            self.fwd.push(self.vp.succ);
            self.bwd.push(self.vp.pred);
            if self.levels == 1 {
                return Poll::Ready(Arc::new(ContactTable {
                    fwd: std::mem::take(&mut self.fwd),
                    bwd: std::mem::take(&mut self.bwd),
                }));
            }
            self.send_level(1, ctx);
            self.t = 1;
            return Poll::Pending;
        }
        // Poll t consumes the level-t exchange; levels 1..levels arrive at
        // polls 1..levels-1.
        self.absorb_level(ctx);
        let next = self.t as usize + 1;
        if next < self.levels {
            self.send_level(next, ctx);
            self.t += 1;
            return Poll::Pending;
        }
        Poll::Ready(Arc::new(ContactTable {
            fwd: std::mem::take(&mut self.fwd),
            bwd: std::mem::take(&mut self.bwd),
        }))
    }
}
