//! Step-function ports of the global tree operations in
//! [`ops`](crate::ops): aggregate + broadcast (Theorem 4), single-holder
//! address broadcast, the median, and pipelined collection (Theorem 5).

use crate::bbst::{sweep_rounds, Bbst};
use crate::proto::step::{AggOp, Poll, Step};
use crate::vpath::VPath;
use dgr_ncc::{tags, NodeId, RoundCtx, WireMsg};
use std::sync::Arc;

/// [`ops::aggregate_broadcast`](crate::ops::aggregate_broadcast) as a
/// [`Step`]: one up sweep folding `value` with `op`, one down sweep pushing
/// the total to every member.
///
/// Rounds: exactly [`ops::rounds_for`](crate::ops::rounds_for)`(vp.len)`.
#[derive(Debug)]
pub struct AggBcastStep {
    vp: VPath,
    tree: Arc<Bbst>,
    op: AggOp,
    t: u64,
    acc: u64,
    pending: usize,
    sent_up: bool,
    got: Option<u64>,
    sent_down: bool,
}

impl AggBcastStep {
    /// Builds the step; `value` is this node's contribution.
    pub fn new(vp: VPath, tree: Arc<Bbst>, value: u64, op: AggOp) -> Self {
        let pending = if vp.member { tree.child_count() } else { 0 };
        AggBcastStep {
            vp,
            tree,
            op,
            t: 0,
            acc: value,
            pending,
            sent_up: false,
            got: None,
            sent_down: false,
        }
    }
}

impl Step for AggBcastStep {
    type Out = u64;

    fn poll(&mut self, ctx: &mut RoundCtx<'_>) -> Poll<u64> {
        let sweep = sweep_rounds(self.vp.len);
        let rounds = 2 * sweep;
        if !self.vp.member {
            if self.t == rounds {
                return Poll::Ready(0);
            }
            self.t += 1;
            return Poll::Pending;
        }
        if self.t > 0 {
            for env in ctx.inbox() {
                match env.msg.tag {
                    tags::AGGREGATE => {
                        self.acc = self.op.apply(self.acc, env.word());
                        self.pending -= 1;
                    }
                    tags::BCAST => self.got = Some(env.word()),
                    _ => {}
                }
            }
        }
        if self.t == sweep {
            // The up sweep just completed; the root seeds the down sweep.
            debug_assert!(self.sent_up || self.tree.is_root);
            if self.tree.is_root {
                self.got = Some(self.acc);
            }
            // Mirror broadcast_down's initial `sent` for a childless root.
            self.sent_down = self.tree.is_root && self.tree.child_count() == 0;
        }
        if self.t == rounds {
            return Poll::Ready(self.got.expect("broadcast did not reach node"));
        }
        if self.t < sweep {
            if self.pending == 0 && !self.sent_up {
                if let Some(p) = self.tree.parent {
                    ctx.send(p, WireMsg::word(tags::AGGREGATE, self.acc));
                }
                self.sent_up = true;
            }
        } else if let (Some(v), false) = (self.got, self.sent_down) {
            for child in [self.tree.left, self.tree.right].into_iter().flatten() {
                ctx.send(child, WireMsg::word(tags::BCAST, v));
            }
            self.sent_down = true;
        }
        self.t += 1;
        Poll::Pending
    }
}

/// [`ops::broadcast_addr`](crate::ops::broadcast_addr) as a [`Step`]: the
/// (at most one) holder's address becomes common knowledge, traveling in
/// the address field so KT0 tracking sees every hop.
///
/// Rounds: exactly [`ops::rounds_for`](crate::ops::rounds_for)`(vp.len)`.
#[derive(Debug)]
pub struct BroadcastAddrStep {
    vp: VPath,
    tree: Arc<Bbst>,
    t: u64,
    acc: Option<NodeId>,
    pending: usize,
    sent_up: bool,
    got: Option<NodeId>,
    sent_down: bool,
}

impl BroadcastAddrStep {
    /// Builds the step; `value` is `Some` at (at most) one member.
    pub fn new(vp: VPath, tree: Arc<Bbst>, value: Option<NodeId>) -> Self {
        let pending = if vp.member { tree.child_count() } else { 0 };
        BroadcastAddrStep {
            vp,
            tree,
            t: 0,
            acc: value,
            pending,
            sent_up: false,
            got: None,
            sent_down: false,
        }
    }

    /// The Corollary 2 median broadcast: the node whose `position` is the
    /// median rank announces its own ID.
    pub fn median(vp: VPath, tree: Arc<Bbst>, position: usize, my_id: NodeId) -> Self {
        let target = (vp.len - 1) / 2;
        let mine = (vp.member && position == target).then_some(my_id);
        Self::new(vp, tree, mine)
    }
}

impl Step for BroadcastAddrStep {
    type Out = NodeId;

    fn poll(&mut self, ctx: &mut RoundCtx<'_>) -> Poll<NodeId> {
        let sweep = sweep_rounds(self.vp.len);
        let rounds = 2 * sweep;
        if !self.vp.member {
            if self.t == rounds {
                return Poll::Ready(0);
            }
            self.t += 1;
            return Poll::Pending;
        }
        if self.t > 0 {
            for env in ctx.inbox() {
                match env.msg.tag {
                    tags::AGGREGATE => {
                        if let Some(&a) = env.msg.addrs_slice().first() {
                            self.acc = Some(match self.acc {
                                Some(b) => a.min(b),
                                None => a,
                            });
                        }
                        self.pending -= 1;
                    }
                    tags::BCAST => self.got = Some(env.addr()),
                    _ => {}
                }
            }
        }
        if self.t == sweep {
            if self.tree.is_root {
                self.got = Some(self.acc.expect("broadcast_addr: no member held an address"));
            }
            self.sent_down = self.tree.is_root && self.tree.child_count() == 0;
        }
        if self.t == rounds {
            return Poll::Ready(self.got.expect("broadcast_addr did not reach node"));
        }
        if self.t < sweep {
            if self.pending == 0 && !self.sent_up {
                if let Some(p) = self.tree.parent {
                    let msg = match self.acc {
                        Some(a) => WireMsg::addr(tags::AGGREGATE, a),
                        None => WireMsg::signal(tags::AGGREGATE),
                    };
                    ctx.send(p, msg);
                }
                self.sent_up = true;
            }
        } else if let (Some(a), false) = (self.got, self.sent_down) {
            for child in [self.tree.left, self.tree.right].into_iter().flatten() {
                ctx.send(child, WireMsg::addr(tags::BCAST, a));
            }
            self.sent_down = true;
        }
        self.t += 1;
        Poll::Pending
    }
}

/// [`ops::collect`](crate::ops::collect) as a [`Step`]: every member's
/// token pipelined to the root in batches of `cap/2` (Theorem 5). Only the
/// root's output is populated.
///
/// Rounds: exactly [`ops::collect_rounds`](crate::ops::collect_rounds)`
/// (vp.len, k_bound, capacity)`.
#[derive(Debug)]
pub struct CollectStep {
    vp: VPath,
    tree: Arc<Bbst>,
    k_bound: usize,
    t: u64,
    buffer: Vec<(NodeId, u64)>,
    collected: Vec<(NodeId, u64)>,
}

impl CollectStep {
    /// Builds the step; `token` is this node's contribution, `k_bound` a
    /// commonly known upper bound on the total token count, `my_id` the
    /// node's own ID.
    pub fn new(
        vp: VPath,
        tree: Arc<Bbst>,
        token: Option<u64>,
        k_bound: usize,
        my_id: NodeId,
    ) -> Self {
        let mut buffer = Vec::new();
        if vp.member {
            if let Some(t) = token {
                buffer.push((my_id, t));
            }
        }
        CollectStep {
            vp,
            tree,
            k_bound,
            t: 0,
            buffer,
            collected: Vec::new(),
        }
    }
}

impl Step for CollectStep {
    type Out = Vec<(NodeId, u64)>;

    fn poll(&mut self, ctx: &mut RoundCtx<'_>) -> Poll<Vec<(NodeId, u64)>> {
        let cap = ctx.capacity();
        let rounds = crate::ops::collect_rounds(self.vp.len, self.k_bound, cap);
        if !self.vp.member {
            if self.t == rounds {
                return Poll::Ready(Vec::new());
            }
            self.t += 1;
            return Poll::Pending;
        }
        if self.t > 0 {
            for env in ctx.inbox().iter().filter(|e| e.msg.tag == tags::COLLECT) {
                let pair = (env.addr(), env.word());
                if self.tree.is_root {
                    self.collected.push(pair);
                } else {
                    self.buffer.push(pair);
                }
            }
        }
        if self.t == rounds {
            if self.tree.is_root {
                self.collected.append(&mut self.buffer);
                self.collected.sort_unstable();
            } else {
                debug_assert!(self.buffer.is_empty(), "collection round budget too small");
            }
            return Poll::Ready(std::mem::take(&mut self.collected));
        }
        let batch = (cap / 2).max(1);
        if let Some(p) = self.tree.parent {
            for (origin, value) in self.buffer.drain(..self.buffer.len().min(batch)) {
                ctx.send(p, WireMsg::addr_word(tags::COLLECT, origin, value));
            }
        }
        self.t += 1;
        Poll::Pending
    }
}
