//! Step-function port of
//! [`imcast::interval_multicast`](crate::imcast::interval_multicast): the
//! doubling-cover multicast to a contiguous rank interval adjacent to its
//! source (the Theorem 7 substitute).

use crate::contacts::ContactTable;
use crate::imcast::{CoverSide, Payload};
use crate::proto::step::{Poll, Step};
use crate::vpath::VPath;
use dgr_ncc::{tags, RoundCtx, WireMsg};
use std::sync::Arc;

/// One interval-multicast epoch as a [`Step`].
///
/// Rounds: exactly [`imcast::rounds_for`](crate::imcast::rounds_for)`
/// (vp.len)`.
#[derive(Debug)]
pub struct ImcastStep {
    vp: VPath,
    contacts: Arc<ContactTable>,
    t: u64,
    duty: Option<(CoverSide, usize, Payload)>,
    received: Option<Payload>,
}

impl ImcastStep {
    /// Builds the step; `task` is `Some((side, count, payload))` at the
    /// multicast sources (intervals of distinct sources must be disjoint).
    pub fn new(
        vp: VPath,
        contacts: Arc<ContactTable>,
        task: Option<(CoverSide, usize, Payload)>,
    ) -> Self {
        ImcastStep {
            vp,
            contacts,
            t: 0,
            duty: task.filter(|t| t.1 > 0),
            received: None,
        }
    }

    fn absorb(&mut self, ctx: &RoundCtx<'_>) {
        for env in ctx.inbox().iter().filter(|e| e.msg.tag == tags::IMCAST) {
            debug_assert!(self.received.is_none(), "overlapping multicast intervals");
            let payload = Payload {
                addr: env.addr(),
                word: env.msg.words_slice()[0],
            };
            self.received = Some(payload);
            let delegated = env.msg.words_slice()[1] as usize;
            let side = if env.msg.words_slice()[2] == 0 {
                CoverSide::After
            } else {
                CoverSide::Before
            };
            debug_assert!(self.duty.is_none(), "covered node already had a duty");
            self.duty = (delegated > 0).then_some((side, delegated, payload));
        }
    }
}

impl Step for ImcastStep {
    type Out = Option<Payload>;

    fn poll(&mut self, ctx: &mut RoundCtx<'_>) -> Poll<Option<Payload>> {
        let rounds = crate::imcast::rounds_for(self.vp.len);
        if !self.vp.member {
            if self.t == rounds {
                return Poll::Ready(None);
            }
            self.t += 1;
            return Poll::Pending;
        }
        if self.t > 0 {
            self.absorb(ctx);
        }
        if self.t == rounds {
            debug_assert!(self.duty.is_none(), "multicast round budget too small");
            return Poll::Ready(self.received);
        }
        if let Some((side, count, payload)) = self.duty {
            debug_assert!(count >= 1);
            let k = usize::BITS as usize - 1 - count.leading_zeros() as usize;
            let forward = side == CoverSide::After;
            let target = self
                .contacts
                .at_offset(k, forward)
                .expect("interval multicast ran off the path");
            let delegated = count - (1 << k);
            let side_word = match side {
                CoverSide::After => 0u64,
                CoverSide::Before => 1,
            };
            ctx.send(
                target,
                WireMsg::addr(tags::IMCAST, payload.addr)
                    .with_word(payload.word)
                    .with_word(delegated as u64)
                    .with_word(side_word),
            );
            let keep = (1 << k) - 1;
            self.duty = (keep > 0).then_some((side, keep, payload));
        }
        self.t += 1;
        Poll::Pending
    }
}
