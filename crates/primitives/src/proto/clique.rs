//! Step-function port of the NCC₀ **path-to-clique warm-up**: undirection
//! followed by pointer-doubling contact construction — the `O(log n)`-round
//! phase that turns the bare knowledge path into a richly connected overlay
//! (power-of-two contacts in both directions), the addressing backbone of
//! every later primitive.
//!
//! This is the standard scale benchmark for the batched executor: its
//! traffic is `2` messages per node per round (well under capacity), its
//! round count is `ceil(log2 n)`, and its per-node state is two pre-sized
//! contact tables — so a step never allocates, and a 10⁶-node warm-up is
//! routine (see `crates/bench/src/bin/engine_bench.rs` and
//! `crates/ncc/tests/zero_alloc.rs`).

use crate::contacts::ContactTable;
use crate::vpath::VPath;
use dgr_ncc::{tags, NodeId, NodeProtocol, NodeSeed, RoundCtx, Status, WireMsg};

/// Direction words used in contact-construction messages (identical to the
/// direct-style [`contacts`](crate::contacts) module).
const SET_FWD: u64 = 0;
const SET_BWD: u64 = 1;

/// One node's result of the warm-up.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CliqueWarmup {
    /// The undirected path view.
    pub vp: VPath,
    /// Power-of-two contacts along the path.
    pub contacts: ContactTable,
}

/// Total rounds of the warm-up on an `n`-node network: 1 (undirect) +
/// `ceil(log2 n) - 1` (doubling levels beyond the first).
pub fn rounds_for(n: usize) -> u64 {
    1 + crate::contacts::rounds_for(n)
}

/// The warm-up protocol. Build one per node with [`PathToClique::new`].
#[derive(Debug)]
pub struct PathToClique {
    /// Levels of the contact table (`ceil(log2 n)`).
    levels: usize,
    fwd: Vec<Option<NodeId>>,
    bwd: Vec<Option<NodeId>>,
    pred: Option<NodeId>,
}

impl PathToClique {
    /// Builds the protocol for one node.
    pub fn new(seed: &NodeSeed<'_>) -> Self {
        // The G_k path spans the participating nodes (== n unmasked).
        let levels = crate::levels_for(seed.participants);
        PathToClique {
            levels,
            fwd: Vec::with_capacity(levels),
            bwd: Vec::with_capacity(levels),
            pred: None,
        }
    }

    /// Sends the level-`k` doubling messages: tell my `2^(k-1)`-behind
    /// contact who sits `2^(k-1)` ahead of me, and vice versa.
    fn send_level(&self, k: usize, ctx: &mut RoundCtx<'_>) {
        if let (Some(b), Some(f)) = (self.bwd[k - 1], self.fwd[k - 1]) {
            ctx.send(b, WireMsg::addr_word(tags::CONTACT, f, SET_FWD));
            ctx.send(f, WireMsg::addr_word(tags::CONTACT, b, SET_BWD));
        }
    }
}

impl NodeProtocol for PathToClique {
    type Output = CliqueWarmup;

    fn step(&mut self, ctx: &mut RoundCtx<'_>) -> Status<CliqueWarmup> {
        let round = ctx.round() as usize;
        if round == 0 {
            // Undirection: signal my successor so it learns its predecessor.
            if let Some(succ) = ctx.initial_successor() {
                ctx.send(succ, WireMsg::signal(tags::UNDIRECT));
            }
            return Status::Continue;
        }
        if round == 1 {
            self.pred = ctx
                .inbox()
                .iter()
                .find(|env| env.msg.tag == tags::UNDIRECT)
                .map(|env| env.src);
            if self.levels > 0 {
                self.fwd.push(ctx.initial_successor());
                self.bwd.push(self.pred);
            }
        } else {
            // Inbox holds the level-(round-1) exchange.
            let mut new_fwd = None;
            let mut new_bwd = None;
            for env in ctx.inbox().iter().filter(|e| e.msg.tag == tags::CONTACT) {
                match env.word() {
                    SET_FWD => new_fwd = Some(env.addr()),
                    SET_BWD => new_bwd = Some(env.addr()),
                    other => unreachable!("bad contact direction word {other}"),
                }
            }
            self.fwd.push(new_fwd);
            self.bwd.push(new_bwd);
        }
        // Next doubling level to send is `round`; levels 1..levels exist.
        if round < self.levels {
            self.send_level(round, ctx);
            return Status::Continue;
        }
        let vp = VPath {
            member: true,
            pred: self.pred,
            succ: ctx.initial_successor(),
            len: ctx.participants(),
        };
        Status::Done(CliqueWarmup {
            vp,
            contacts: ContactTable {
                fwd: std::mem::take(&mut self.fwd),
                bwd: std::mem::take(&mut self.bwd),
            },
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dgr_ncc::{Config, Network};

    fn check_tables(n: usize, seed: u64) {
        let net = Network::new(n, Config::ncc0(seed));
        let result = net.run_protocol(PathToClique::new).unwrap();
        assert!(
            result.metrics.is_clean(),
            "n={n}: {:?}",
            result.metrics.violations
        );
        assert_eq!(result.metrics.rounds, rounds_for(n));
        let order = result.gk_order();
        let levels = crate::levels_for(n);
        for (i, (_, out)) in result.outputs.iter().enumerate() {
            assert_eq!(out.contacts.fwd.len(), levels, "n={n} i={i}");
            for k in 0..levels {
                let d = 1usize << k;
                assert_eq!(
                    out.contacts.ahead(k),
                    order.get(i + d).copied(),
                    "n={n} i={i} fwd[{k}]"
                );
                let expect_b = i.checked_sub(d).map(|j| order[j]);
                assert_eq!(out.contacts.behind(k), expect_b, "n={n} i={i} bwd[{k}]");
            }
            assert_eq!(out.vp.pred, i.checked_sub(1).map(|j| order[j]));
            assert_eq!(out.vp.succ, order.get(i + 1).copied());
        }
    }

    #[test]
    fn tables_are_exact_across_sizes() {
        for &(n, seed) in &[(1, 3), (2, 3), (3, 3), (7, 4), (16, 1), (33, 5), (100, 6)] {
            check_tables(n, seed);
        }
    }

    /// The warm-up at five digits of nodes — far beyond what the threaded
    /// engine can spawn — in strict KT0 mode, proving the construction
    /// legal at scale.
    #[test]
    fn warmup_at_n_50k_is_clean() {
        let n = 50_000;
        let net = Network::new(n, Config::ncc0(11));
        let result = net.run_protocol(PathToClique::new).unwrap();
        assert!(result.metrics.is_clean());
        assert_eq!(result.metrics.rounds, rounds_for(n));
        assert!(result.metrics.max_sent_per_round <= 2);
        // Spot-check the middle of the path.
        let order = result.gk_order();
        let mid = n / 2;
        let out = result.output_of(order[mid]).unwrap();
        assert_eq!(out.contacts.ahead(10), Some(order[mid + 1024]));
        assert_eq!(out.contacts.behind(10), Some(order[mid - 1024]));
    }

    #[test]
    fn matches_direct_style_twin() {
        use crate::{contacts, vpath};
        let n = 96;
        let net = Network::new(n, Config::ncc0(21));
        let batched = net.run_protocol(PathToClique::new).unwrap();
        let direct = net
            .run(|h| {
                let vp = vpath::undirect(h);
                contacts::build(h, &vp)
            })
            .unwrap();
        assert_eq!(batched.metrics.rounds, direct.metrics.rounds);
        assert_eq!(batched.metrics.messages, direct.metrics.messages);
        assert_eq!(batched.metrics.words, direct.metrics.words);
        for ((id_a, warm), (id_b, table)) in batched.outputs.iter().zip(direct.outputs.iter()) {
            assert_eq!(id_a, id_b);
            assert_eq!(&warm.contacts, table);
        }
    }
}
