//! The Theorem 3 **randomized** sort backend: a seeded sample-splitter
//! sort over a full-member path, selected via
//! [`SortBackend::RandomizedLogN`](crate::sort::SortBackend).
//!
//! The bitonic backend pays `O(log² n)` comparator stages because every
//! record learns its rank one comparison per round. This backend instead
//! spends the per-round capacity `κ = Θ(log n)` on *data movement*:
//!
//! 1. **Sample** — `S₀ = 3S` path positions are chosen by a seeded
//!    stride rotation (the knowledge path is a uniformly random
//!    permutation of the nodes, so positional samples are uniform node
//!    samples); each carries its `(key, id)` pair.
//! 2. **All-gather** — every node learns every sample pair by a
//!    `⌈log n⌉`-stage doubling all-gather over the power-of-two contact
//!    table: at stage `j` each node trades the halves of its sample
//!    window that its `±2^j` partners lack, two pairs per message,
//!    rate-limited to the capacity. The schedule is a fixed function of
//!    `(n, S₀, κ)`, latency `log n` plus a bandwidth tail of
//!    `~S₀/κ` rounds — no tree funnel, no root bottleneck, and
//!    KT0-legal (the addresses ride in message payloads). Sorted
//!    locally, every third pair is a *bucket boundary* (ties broken by
//!    the sampled node's ID, so equal-key inputs still split uniformly),
//!    and each bucket's three consecutive sample origins form its
//!    **sub-leader trio**.
//! 3. **Scatter** — every node sends its record to a hash-chosen member
//!    of its bucket's trio, at a random round in a spread window that
//!    opens the moment its own splitter list completes (the Las Vegas
//!    Theorem 8 pattern). Hash-splitting — unlike more splitters — cuts
//!    *inside* sample-free key gaps, so the heaviest sub-leader load is
//!    close to a third of the heaviest bucket; receive-side bursts are
//!    absorbed by the **queueing capacity policy**, which this backend
//!    requires. Siblings continuously report their count and extrema to
//!    the bucket's primary.
//! 4. **Scan** — the `S` primaries run hypercube prefix scans (`log S`
//!    rounds per scan, repeated back to back) over the reported bucket
//!    counts. A scan whose grand total equals the path length proves
//!    every record has been delivered *and* reported — and, because
//!    undelivered traffic is exactly what delays scan messages in the
//!    FIFO queues, such a scan is automatically skew-free and unanimous:
//!    either every primary sees the full total or none does. The
//!    successful scan also yields each bucket's exclusive rank offset,
//!    the maximum sub-leader load, and the boundary neighbors across
//!    empty buckets.
//! 5. **Merge + notify** — each primary hands its siblings the bucket
//!    offset and the commonly computed **end round**; the trio exchanges
//!    subsets, so each sub-leader ranks and notifies its own arrivals in
//!    parallel. Every node returns its [`SortedPath`] in lockstep at the
//!    end round.
//!
//! Round complexity: `O(S/κ + n/(Sκ) + log n)` = `O(√n/κ + log n)` at
//! `S ≈ √(n/2)` — asymptotically `o(log² n)`, and concretely below the
//! bitonic stage count from `n ≈ 2¹⁴` (see `engine_bench`'s `sort+rand`
//! rows). The schedule is deterministic for a fixed seed: identical
//! transcripts on both engines and for every worker count.
//!
//! Contract differences from the bitonic backend (enforced by
//! [`SortStep::on_ctx`](crate::proto::sort::SortStep::on_ctx)):
//! the path must be full-member (the total round count is data-dependent,
//! so a non-member cannot idle through it), and the run must use a
//! queueing or recording capacity policy. Below [`RAND_MIN`] nodes the
//! dispatcher silently uses the bitonic network instead.

use crate::contacts::ContactTable;
use crate::ctx::PathCtx;
use crate::proto::step::{Poll, Step};
use crate::sort::{Order, SortedPath};
use crate::vpath::VPath;
use dgr_ncc::{tags, NodeId, RoundCtx, WireMsg};
use rand::Rng;
use std::sync::Arc;

/// Below this path length the randomized backend delegates to the bitonic
/// network: the sample/scatter pipeline only amortizes once the
/// comparator network's `O(log² n)` stage count hurts.
pub const RAND_MIN: usize = 1024;

/// Samples per bucket: the bucket boundary plus two interior samples
/// whose origins complete the sub-leader trio.
const OVERSAMPLE: usize = 3;

/// A record: order-encoded key plus its origin's ID (the tie-breaker).
type Rec = (u64, NodeId);

/// splitmix64 — seeds the sampling rotation and the sub-leader hash.
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Number of buckets (and hypercube scan participants) for a path of
/// `len` nodes: the power of two near `√(len/2)` (clamped), balancing the
/// root-funnelled sample pipeline against the per-trio bucket drain.
pub fn bucket_count(len: usize) -> usize {
    let root = ((len / 2) as f64).sqrt() as usize;
    root.next_power_of_two().clamp(16, 2048)
}

/// Stride-sampled positions in rotated coordinates: position `q` of `len`
/// is sampled iff the Bresenham accumulator `⌊(q+1)·s0/len⌋` advances.
fn sampled_q(q: usize, s0: usize, len: usize) -> bool {
    ((q as u64 + 1) * s0 as u64) / len as u64 > (q as u64 * s0 as u64) / len as u64
}

/// Number of sampled positions with rotated coordinate in `[a, b]`.
fn sampled_in_q(a: usize, b: usize, s0: usize, len: usize) -> usize {
    debug_assert!(a <= b && b < len);
    (((b as u64 + 1) * s0 as u64) / len as u64 - (a as u64 * s0 as u64) / len as u64) as usize
}

/// One subcube aggregate of the primary scan: record count, maximum
/// sub-leader load, and the origins of the subcube's first and last
/// records.
#[derive(Clone, Copy, Debug, Default)]
struct Agg {
    count: u64,
    max: u64,
    first: Option<NodeId>,
    last: Option<NodeId>,
}

impl Agg {
    /// Concatenation `lo ++ hi` of two aggregates over disjoint,
    /// index-ordered bucket ranges.
    fn concat(lo: Agg, hi: Agg) -> Agg {
        Agg {
            count: lo.count + hi.count,
            max: lo.max.max(hi.max),
            first: lo.first.or(hi.first),
            last: hi.last.or(lo.last),
        }
    }
}

/// In-flight hypercube scan state at a primary.
#[derive(Clone, Copy, Debug)]
struct Scan {
    /// Aggregate of my `j`-subcube so far.
    sub: Agg,
    /// Aggregate of all buckets strictly below mine (exclusive prefix).
    pre: Agg,
    /// Aggregate of all buckets strictly above mine (exclusive suffix).
    suf: Agg,
    /// Whether any expected partner message failed to arrive on time.
    incomplete: bool,
}

/// One sub-leader subset summary: count and extreme records.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
struct SubStat {
    count: u64,
    min: Option<Rec>,
    max: Option<Rec>,
}

impl SubStat {
    fn absorb(&mut self, r: Rec) {
        self.count += 1;
        self.min = Some(self.min.map_or(r, |m| m.min(r)));
        self.max = Some(self.max.map_or(r, |m| m.max(r)));
    }
}

/// What phase the step is in (schedule-driven; see the module docs).
#[derive(Debug, PartialEq, Eq)]
enum Phase {
    /// The doubling all-gather of the sample pairs.
    Gather,
    /// Scatter + primary scans until the full total is proven.
    Settle,
    /// Sub-leaders only: subset exchange, ranking, notification.
    Finish,
}

/// The randomized sort as a [`Step`]. Construct through
/// [`SortStep::on_ctx`](crate::proto::sort::SortStep::on_ctx).
#[derive(Debug)]
pub struct RandSortStep {
    // --- immutable setup ---
    vp: VPath,
    contacts: Arc<ContactTable>,
    my_rec: Rec,
    position: usize,
    /// Bucket count (power of two).
    s: usize,
    /// Sample count (`OVERSAMPLE · s`).
    s0: usize,
    phi: usize,
    // --- schedule (internal rounds) ---
    t: u64,
    /// Per-stage round budgets of the all-gather (`r_j` send rounds each,
    /// plus one absorb round).
    stage_rounds: Vec<u64>,
    /// First round after the all-gather completes everywhere.
    gather_end: u64,
    spread: u64,
    delta: u64,
    // --- phase A: doubling all-gather of the samples ---
    /// Sample pairs gathered so far, in *position* order; covers the
    /// contiguous sample-index interval starting at `have_lo`.
    have: Vec<Rec>,
    have_lo: usize,
    /// Current stage and its first round.
    stage: usize,
    stage_start: u64,
    /// Arrivals from the left partner this stage (ascending; merged in
    /// front of `have` when the stage closes).
    left_in: Vec<Rec>,
    /// Per-direction send cursors (absolute sample indices): next and
    /// one-past-last. `[left, right]`.
    send_next: [usize; 2],
    send_end: [usize; 2],
    /// All `s0` sample pairs sorted by record, once the gather is done;
    /// every `OVERSAMPLE`-th is a bucket boundary, each triple's origins
    /// a sub-leader trio.
    samples: Vec<Rec>,
    // --- phase C/D: scatter + sub-leader state ---
    scatter_round: Option<u64>,
    /// My global sample index, if I am a sub-leader.
    my_gi: Option<usize>,
    /// My subset of scattered records (sub-leaders).
    sub: Vec<Rec>,
    own_stat: SubStat,
    /// Primary only: the latest sibling reports (slots 1 and 2).
    sib: [SubStat; 2],
    /// Sibling only: the last report sent.
    reported: SubStat,
    scan: Option<Scan>,
    // --- phase E: merge + notify ---
    /// Bucket rank offset, boundary origins, expected exchange records.
    go: Option<(u64, Option<NodeId>, Option<NodeId>, u64)>,
    merged: Vec<Rec>,
    exch_next: [usize; 2],
    notify: Vec<(NodeId, u64, Option<NodeId>, Option<NodeId>)>,
    ranked: bool,
    my_rank: Option<(usize, Option<NodeId>, Option<NodeId>)>,
    t_end: Option<u64>,
    phase: Phase,
}

impl RandSortStep {
    /// Builds the step from an established [`PathCtx`].
    ///
    /// # Panics
    ///
    /// Panics if the context is not a member view — the randomized
    /// backend's round count is data-dependent, so non-members cannot
    /// idle through it (use the bitonic backend for sub-path sorts).
    pub fn new(ctx: &PathCtx, key: u64, order: Order, my_id: NodeId, seed: u64) -> Self {
        assert!(
            ctx.vp.member,
            "randomized sort requires a full-member path (non-members cannot \
             idle through a data-dependent round count)"
        );
        let len = ctx.vp.len;
        let s = bucket_count(len);
        let s0 = OVERSAMPLE * s;
        debug_assert!(s0 <= len, "sample count exceeds the path");
        let phi = (mix(seed) % len as u64) as usize;
        RandSortStep {
            vp: ctx.vp,
            contacts: ctx.contacts.clone(),
            my_rec: (order.encode_key(key), my_id),
            position: ctx.position,
            s,
            s0,
            phi,
            t: 0,
            stage_rounds: Vec::new(),
            gather_end: 0,
            spread: 0,
            delta: s.trailing_zeros() as u64 + 1,
            have: Vec::new(),
            have_lo: 0,
            stage: 0,
            stage_start: 0,
            left_in: Vec::new(),
            send_next: [0; 2],
            send_end: [0; 2],
            samples: Vec::new(),
            scatter_round: None,
            my_gi: None,
            sub: Vec::new(),
            own_stat: SubStat::default(),
            sib: [SubStat::default(); 2],
            reported: SubStat::default(),
            scan: None,
            go: None,
            merged: Vec::new(),
            exch_next: [0; 2],
            notify: Vec::new(),
            ranked: false,
            my_rank: None,
            t_end: None,
            phase: Phase::Gather,
        }
    }

    /// Is rotated-coordinate sampling active at `position`?
    fn sampled(&self, position: usize) -> bool {
        let len = self.vp.len;
        sampled_q((position + self.phi) % len, self.s0, len)
    }

    /// Samples inside the inclusive position interval `[lo, hi]`.
    fn samples_in(&self, lo: usize, hi: usize) -> usize {
        let len = self.vp.len;
        let a = (lo + self.phi) % len;
        let b = (hi + self.phi) % len;
        if a <= b {
            sampled_in_q(a, b, self.s0, len)
        } else {
            sampled_in_q(a, len - 1, self.s0, len) + sampled_in_q(0, b, self.s0, len)
        }
    }

    /// The bucket of a record: index of the greatest boundary sample
    /// `≤` it (records below every boundary share bucket 0).
    fn bucket_of(&self, rec: Rec) -> usize {
        let p = self.samples.partition_point(|s| *s <= rec);
        p.saturating_sub(1) / OVERSAMPLE
    }

    /// The sub-leader trio of a bucket (origins of its three samples).
    fn trio(&self, bucket: usize) -> [NodeId; 3] {
        let base = bucket * OVERSAMPLE;
        [
            self.samples[base].1,
            self.samples[base + 1].1,
            self.samples[base + 2].1,
        ]
    }

    /// The hash-chosen sub-leader for a record (its scatter target).
    fn sub_target(&self, rec: Rec) -> NodeId {
        let bucket = self.bucket_of(rec);
        self.trio(bucket)[(mix(rec.1) % OVERSAMPLE as u64) as usize]
    }

    /// Sample-index prefix: number of sampled positions strictly below
    /// position `x`.
    fn si(&self, x: usize) -> usize {
        if x == 0 {
            0
        } else {
            self.samples_in(0, x.min(self.vp.len) - 1)
        }
    }

    /// Per-direction message budget of one all-gather round (a node
    /// exchanges with both its stage partners, plus two rounds of slack
    /// for unrelated traffic).
    fn gather_batch(cap: usize) -> u64 {
        (cap.saturating_sub(2) / 2).max(1) as u64
    }

    /// Fixed schedule, derivable once the capacity is known.
    fn set_budgets(&mut self, cap: usize) {
        let len = self.vp.len;
        let bd = Self::gather_batch(cap);
        self.stage_rounds = (0..self.vp.levels())
            .map(|j| {
                // Worst-case pairs handed to one partner in stage j: the
                // samples in a window of 2^j positions (stride bound).
                let pairs = ((1u64 << j) * self.s0 as u64) / len as u64 + 1;
                pairs.div_ceil(2).div_ceil(bd).max(1)
            })
            .collect();
        self.gather_end = self.stage_rounds.iter().map(|r| r + 1).sum();
        let bbar = (len as u64).div_ceil(self.s as u64);
        self.spread = bbar.div_ceil(OVERSAMPLE as u64 * cap as u64).max(1);
    }

    /// Opens all-gather stage `j`: computes the two directed send ranges
    /// (sample-index intervals) from the window geometry.
    fn begin_stage(&mut self, j: usize) {
        let (p, len, w) = (self.position, self.vp.len, 1usize << j);
        self.stage = j;
        self.left_in.clear();
        // To the left partner: my positions [p, p + w - 1] (its missing
        // right half); to the right partner: [p - w + 1, p] (its missing
        // left half). Both are within my current window.
        let left_range = (self.si(p), self.si((p + w - 1).min(len - 1) + 1));
        let right_range = (self.si(p.saturating_sub(w - 1)), self.si(p + 1));
        let has_left = self.contacts.behind(j).is_some();
        let has_right = self.contacts.ahead(j).is_some();
        self.send_next = [left_range.0, right_range.0];
        self.send_end = [
            if has_left { left_range.1 } else { left_range.0 },
            if has_right {
                right_range.1
            } else {
                right_range.0
            },
        ];
    }

    /// One all-gather round: absorb partner slices, stream my own.
    fn gather_round(&mut self, ctx: &mut RoundCtx<'_>) {
        let j = self.stage;
        let (left, right) = (self.contacts.behind(j), self.contacts.ahead(j));
        for env in ctx.inbox().iter().filter(|e| e.msg.tag == tags::RSORT_UP) {
            let words = env.msg.words_slice();
            let addrs = env.msg.addrs_slice();
            let pairs = words.iter().zip(addrs.iter()).map(|(w, a)| (*w, *a));
            if Some(env.src) == left {
                self.left_in.extend(pairs);
            } else {
                debug_assert_eq!(Some(env.src), right, "gather message off-stage");
                self.have.extend(pairs);
            }
        }
        if self.t >= self.stage_start + self.stage_rounds[j] {
            return; // the stage's absorb round: no more sends
        }
        let bd = Self::gather_batch(ctx.capacity());
        for dir in 0..2 {
            let Some(partner) = (if dir == 0 { left } else { right }) else {
                continue;
            };
            let mut staged = 0;
            while staged < bd && self.send_next[dir] < self.send_end[dir] {
                let at = self.send_next[dir] - self.have_lo;
                let a = self.have[at];
                let b = (self.send_next[dir] + 1 < self.send_end[dir]).then(|| self.have[at + 1]);
                let mut msg = WireMsg::addr_word(tags::RSORT_UP, a.1, a.0);
                if let Some(b) = b {
                    msg = msg.with_word(b.0).with_addr(b.1);
                }
                ctx.send(partner, msg);
                self.send_next[dir] += if b.is_some() { 2 } else { 1 };
                staged += 1;
            }
        }
    }

    /// Closes the current stage (its absorb round has run): merges the
    /// left arrivals in front and advances. Returns true when the gather
    /// is complete.
    fn close_stage(&mut self) -> bool {
        self.have_lo -= self.left_in.len();
        let mut merged = std::mem::take(&mut self.left_in);
        merged.append(&mut self.have);
        self.have = merged;
        if self.stage + 1 < self.stage_rounds.len() {
            let next = self.stage + 1;
            self.begin_stage(next);
            self.stage_start = self.t + 1;
            return false;
        }
        assert_eq!(self.have.len(), self.s0, "all-gather missed samples");
        self.samples = std::mem::take(&mut self.have);
        self.samples.sort_unstable();
        true
    }

    /// Sample list complete (lockstep): discover a sub-leader role and
    /// schedule (or locally apply) the scatter.
    fn on_samples_complete(&mut self, ctx: &mut RoundCtx<'_>) {
        debug_assert_eq!(self.samples.len(), self.s0);
        self.my_gi = self.samples.iter().position(|&(_, o)| o == self.my_rec.1);
        let target = self.sub_target(self.my_rec);
        if target == self.my_rec.1 {
            self.sub.push(self.my_rec);
            self.own_stat.absorb(self.my_rec);
        } else {
            let r = ctx.rng().gen_range(0..self.spread);
            self.scatter_round = Some(self.t + 1 + r);
        }
    }

    /// Absorb scattered records (sub-leaders may receive them before
    /// their own sample list completes, so absorption is unconditional).
    fn absorb_records(&mut self, ctx: &RoundCtx<'_>) {
        for env in ctx.inbox().iter().filter(|e| e.msg.tag == tags::RSORT_REC) {
            let rec = (env.word(), env.src);
            self.sub.push(rec);
            self.own_stat.absorb(rec);
        }
    }

    /// Primary: absorb sibling count/extrema reports.
    fn absorb_reports(&mut self, ctx: &RoundCtx<'_>) {
        for env in ctx.inbox().iter().filter(|e| e.msg.tag == tags::RSORT_CNT) {
            let (Some(gi), true) = (self.my_gi, self.samples.len() == self.s0) else {
                continue;
            };
            let trio = self.trio(gi / OVERSAMPLE);
            let slot = if env.src == trio[1] {
                0
            } else if env.src == trio[2] {
                1
            } else {
                continue;
            };
            let words = env.msg.words_slice();
            let addrs = env.msg.addrs_slice();
            self.sib[slot] = SubStat {
                count: words[0],
                min: addrs.first().map(|&a| (words[1], a)),
                max: addrs.get(1).map(|&a| (words[2], a)),
            };
        }
    }

    /// Sibling: report count/extrema to the primary when they changed.
    fn report_round(&mut self, ctx: &mut RoundCtx<'_>) {
        let Some(gi) = self.my_gi else { return };
        if gi % OVERSAMPLE == 0 || self.go.is_some() || self.own_stat == self.reported {
            return;
        }
        let primary = self.trio(gi / OVERSAMPLE)[0];
        let stat = self.own_stat;
        let (min, max) = (stat.min.expect("count>0"), stat.max.expect("count>0"));
        let msg = WireMsg::words(tags::RSORT_CNT, &[stat.count, min.0, max.0])
            .with_addr(min.1)
            .with_addr(max.1);
        ctx.send(primary, msg);
        self.reported = stat;
    }

    /// The bucket-level stat a primary scans with: its own subset plus
    /// the latest sibling reports.
    fn bucket_stat(&self) -> (u64, u64, Option<Rec>, Option<Rec>) {
        let mut count = self.own_stat.count;
        let mut maxload = self.own_stat.count;
        let mut min = self.own_stat.min;
        let mut max = self.own_stat.max;
        for s in &self.sib {
            count += s.count;
            maxload = maxload.max(s.count);
            min = match (min, s.min) {
                (Some(a), Some(b)) => Some(a.min(b)),
                (a, b) => a.or(b),
            };
            max = match (max, s.max) {
                (Some(a), Some(b)) => Some(a.max(b)),
                (a, b) => a.or(b),
            };
        }
        (count, maxload, min, max)
    }

    /// The scan's step-`j` partner exchange; returns success at `j = d`.
    fn scan_round(&mut self, ctx: &mut RoundCtx<'_>, scan_idx: u64, j: u64) -> bool {
        let b = (self.my_gi.expect("scan at a non-leader") / OVERSAMPLE) as u64;
        let d = self.s.trailing_zeros() as u64;
        if j == 0 {
            let (count, maxload, min, max) = self.bucket_stat();
            self.scan = Some(Scan {
                sub: Agg {
                    count,
                    max: maxload,
                    first: min.map(|m| m.1),
                    last: max.map(|m| m.1),
                },
                pre: Agg::default(),
                suf: Agg::default(),
                incomplete: false,
            });
        } else {
            // Absorb the step-(j-1) partner message.
            let expected = b ^ (1 << (j - 1));
            let mut scan = self.scan.take().expect("scan state missing");
            let env = ctx.inbox().iter().find(|e| {
                e.msg.tag == tags::RSORT_SCAN
                    && e.msg.words_slice()[0] == scan_idx
                    && e.msg.words_slice()[1] == expected
            });
            match env {
                None => scan.incomplete = true,
                Some(env) => {
                    let words = env.msg.words_slice();
                    let addrs = env.msg.addrs_slice();
                    let partner = Agg {
                        count: words[2],
                        max: words[3],
                        first: addrs.first().copied(),
                        last: addrs.get(1).copied(),
                    };
                    if expected < b {
                        scan.pre = Agg::concat(partner, scan.pre);
                        scan.sub = Agg::concat(partner, scan.sub);
                    } else {
                        scan.suf = Agg::concat(scan.suf, partner);
                        scan.sub = Agg::concat(scan.sub, partner);
                    }
                }
            }
            self.scan = Some(scan);
        }
        if j == d {
            let scan = self.scan.expect("scan state missing");
            return !scan.incomplete && scan.sub.count == self.vp.len as u64;
        }
        // Send my current subcube aggregate to the step-j partner.
        let scan = self.scan.as_ref().expect("scan state missing");
        let partner = (b ^ (1 << j)) as usize;
        let partner_id = self.samples[partner * OVERSAMPLE].1;
        let mut msg = WireMsg::words(
            tags::RSORT_SCAN,
            &[scan_idx, b, scan.sub.count, scan.sub.max],
        );
        if let Some(first) = scan.sub.first {
            msg = msg.with_addr(first);
            msg = msg.with_addr(scan.sub.last.expect("first without last"));
        }
        ctx.send(partner_id, msg);
        false
    }

    /// Successful scan at a primary: fix the end round, hand the bucket
    /// offset to the siblings, and enter the merge phase.
    fn succeed(&mut self, ctx: &mut RoundCtx<'_>) {
        let scan = self.scan.expect("success without a scan");
        let cap = ctx.capacity().max(1) as u64;
        let exch = scan
            .sub
            .max
            .div_ceil(2)
            .div_ceil((cap.saturating_sub(2) / 2).max(1));
        let notify = scan.sub.max.div_ceil(cap.saturating_sub(2).max(1));
        let t_end = ctx.round() + exch + notify + 8;
        self.t_end = Some(t_end);
        let gi = self.my_gi.expect("primary without a sample index");
        let trio = self.trio(gi / OVERSAMPLE);
        let offset = scan.pre.count;
        for (slot, &sib_id) in trio.iter().enumerate().skip(1) {
            // Each sibling learns the two *other* subset counts so it can
            // detect the completion of its own merge.
            let others = match slot {
                1 => self.own_stat.count << 32 | self.sib[1].count,
                _ => self.own_stat.count << 32 | self.sib[0].count,
            };
            let flags = (u64::from(scan.pre.last.is_some()) << 62)
                | (u64::from(scan.suf.first.is_some()) << 63);
            let mut msg = WireMsg::words(tags::RSORT_GO, &[offset | flags, t_end, others]);
            if let Some(p) = scan.pre.last {
                msg = msg.with_addr(p);
            }
            if let Some(s) = scan.suf.first {
                msg = msg.with_addr(s);
            }
            ctx.send(sib_id, msg);
        }
        let expected = self.sib[0].count + self.sib[1].count;
        self.go = Some((offset, scan.pre.last, scan.suf.first, expected));
        self.phase = Phase::Finish;
    }

    /// Sibling: absorb the primary's go signal.
    fn absorb_go(&mut self, ctx: &RoundCtx<'_>) {
        if self.go.is_some() {
            return;
        }
        if let Some(env) = ctx.inbox().iter().find(|e| e.msg.tag == tags::RSORT_GO) {
            let words = env.msg.words_slice();
            let offset = words[0] & ((1 << 62) - 1);
            let flags = words[0] >> 62;
            let mut addrs = env.msg.addrs_slice().iter().copied();
            let pre = (flags & 1 != 0).then(|| addrs.next().expect("missing pre address"));
            let suf = (flags & 2 != 0).then(|| addrs.next().expect("missing suf address"));
            let expected = (words[2] >> 32) + (words[2] & 0xFFFF_FFFF);
            self.t_end = Some(words[1]);
            self.go = Some((offset, pre, suf, expected));
            self.phase = Phase::Finish;
        }
    }

    /// Sub-leaders: absorb exchanged subset records.
    fn absorb_exchange(&mut self, ctx: &RoundCtx<'_>) {
        for env in ctx.inbox().iter().filter(|e| e.msg.tag == tags::RSORT_XCH) {
            let words = env.msg.words_slice();
            let addrs = env.msg.addrs_slice();
            for (w, a) in words.iter().zip(addrs.iter()) {
                self.merged.push((*w, *a));
            }
        }
    }

    /// Finish phase: stream my subset to both siblings, and once the
    /// merge is complete, rank my own arrivals and notify them.
    fn finish_round(&mut self, ctx: &mut RoundCtx<'_>) {
        let gi = self.my_gi.expect("finish at a non-leader");
        let trio = self.trio(gi / OVERSAMPLE);
        let slot = gi % OVERSAMPLE;
        let siblings: Vec<NodeId> = (0..OVERSAMPLE)
            .filter(|&i| i != slot)
            .map(|i| trio[i])
            .collect();
        // Per-sibling exchange batch, leaving slack for a straggling
        // scatter/report message in the same round.
        let batch = (ctx.capacity().saturating_sub(2) / 2).max(1);
        let mut sent_exch = 0;
        for (k, &sib_id) in siblings.iter().enumerate() {
            let mut staged = 0;
            while staged < batch && self.exch_next[k] < self.sub.len() {
                let a = self.sub[self.exch_next[k]];
                let b = self.sub.get(self.exch_next[k] + 1).copied();
                let mut msg = WireMsg::addr_word(tags::RSORT_XCH, a.1, a.0);
                if let Some(b) = b {
                    msg = msg.with_word(b.0).with_addr(b.1);
                }
                ctx.send(sib_id, msg);
                self.exch_next[k] += if b.is_some() { 2 } else { 1 };
                staged += 1;
            }
            sent_exch += staged;
        }
        let (offset, pre, suf, expected) = self.go.expect("finish without go data");
        if !self.ranked && self.merged.len() as u64 == expected {
            self.ranked = true;
            let mut full: Vec<Rec> = self.sub.iter().chain(self.merged.iter()).copied().collect();
            full.sort_unstable();
            let mine: std::collections::HashSet<Rec> = self.sub.iter().copied().collect();
            let last = full.len().saturating_sub(1);
            for (i, &rec) in full.iter().enumerate() {
                if !mine.contains(&rec) {
                    continue;
                }
                let rank = offset as usize + i;
                let p = if i > 0 { Some(full[i - 1].1) } else { pre };
                let s = if i < last { Some(full[i + 1].1) } else { suf };
                if rec.1 == self.my_rec.1 {
                    self.my_rank = Some((rank, p, s));
                } else {
                    self.notify.push((rec.1, rank as u64, p, s));
                }
            }
            self.notify.reverse(); // drain from the back = rank order
        }
        // Notify only in rounds where no exchange records were staged, so
        // the combined sends of one round never exceed the capacity.
        if self.ranked && sent_exch == 0 {
            let nb = (ctx.capacity().saturating_sub(2)).max(1);
            let t_end = self.t_end.expect("notify without an end round");
            for _ in 0..nb.min(self.notify.len()) {
                let (origin, rank, pred, succ) = self.notify.pop().unwrap();
                let flags = (u64::from(pred.is_some()) << 62) | (u64::from(succ.is_some()) << 63);
                let mut msg = WireMsg::words(tags::RSORT_RANK, &[rank | flags, t_end]);
                if let Some(p) = pred {
                    msg = msg.with_addr(p);
                }
                if let Some(s) = succ {
                    msg = msg.with_addr(s);
                }
                ctx.send(origin, msg);
            }
        }
    }

    /// Non-leaders (and sub-leaders, harmlessly): absorb a rank
    /// notification.
    fn absorb_rank(&mut self, ctx: &RoundCtx<'_>) {
        if self.my_rank.is_some() {
            return;
        }
        if let Some(env) = ctx.inbox().iter().find(|e| e.msg.tag == tags::RSORT_RANK) {
            let words = env.msg.words_slice();
            let (packed, t_end) = (words[0], words[1]);
            let rank = (packed & ((1 << 62) - 1)) as usize;
            let mut addrs = env.msg.addrs_slice().iter().copied();
            let pred = (packed >> 62) & 1 != 0;
            let succ = (packed >> 63) & 1 != 0;
            let pred = pred.then(|| addrs.next().expect("missing pred address"));
            let succ = succ.then(|| addrs.next().expect("missing succ address"));
            self.my_rank = Some((rank, pred, succ));
            self.t_end = Some(t_end);
        }
    }
}

impl Step for RandSortStep {
    type Out = SortedPath;

    fn poll(&mut self, ctx: &mut RoundCtx<'_>) -> Poll<SortedPath> {
        if self.t == 0 {
            self.set_budgets(ctx.capacity());
            self.have_lo = self.si(self.position);
            if self.sampled(self.position) {
                self.have.push(self.my_rec);
            }
            self.begin_stage(0);
            self.stage_start = 0;
        }
        // Scatter/report/exchange traffic is event-driven, so these
        // absorb unconditionally in every phase.
        self.absorb_records(ctx);
        self.absorb_reports(ctx);
        self.absorb_rank(ctx);
        if self.phase == Phase::Settle {
            self.absorb_go(ctx);
        }
        self.absorb_exchange(ctx);
        match self.phase {
            Phase::Gather => {
                self.gather_round(ctx);
                let stage_close = self.stage_start + self.stage_rounds[self.stage];
                if self.t == stage_close && self.close_stage() {
                    self.phase = Phase::Settle;
                    self.on_samples_complete(ctx);
                }
            }
            Phase::Settle => {
                self.report_round(ctx);
                let is_primary = self.my_gi.is_some_and(|gi| gi % OVERSAMPLE == 0);
                if is_primary && self.t >= self.gather_end {
                    let rel = self.t - self.gather_end;
                    let (scan_idx, j) = (rel / self.delta, rel % self.delta);
                    let d = self.s.trailing_zeros() as u64;
                    if j <= d && self.scan_round(ctx, scan_idx, j) {
                        self.succeed(ctx);
                    }
                }
            }
            Phase::Finish => {
                self.finish_round(ctx);
            }
        }
        if self.scatter_round == Some(self.t) {
            let target = self.sub_target(self.my_rec);
            ctx.send(target, WireMsg::word(tags::RSORT_REC, self.my_rec.0));
            self.scatter_round = None;
        }
        self.t += 1;
        if let (Some(t_end), Some((rank, pred, succ))) = (self.t_end, self.my_rank) {
            if ctx.round() + 1 == t_end {
                debug_assert!(self.notify.is_empty(), "notifications outlived the epoch");
                return Poll::Ready(SortedPath {
                    rank,
                    vp: VPath {
                        member: true,
                        pred,
                        succ,
                        len: self.vp.len,
                    },
                });
            }
        }
        Poll::Pending
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stride_sampling_is_exact() {
        for len in [1024usize, 1100, 4096, 100_000] {
            let s = bucket_count(len);
            let s0 = OVERSAMPLE * s;
            let count = (0..len).filter(|&q| sampled_q(q, s0, len)).count();
            assert_eq!(count, s0, "len={len}");
            // Interval counts agree with the predicate.
            let f = |a: usize, b: usize| sampled_in_q(a, b, s0, len);
            assert_eq!(f(0, len - 1), s0);
            let mid = len / 3;
            assert_eq!(
                f(0, mid) + f(mid + 1, len - 1),
                s0,
                "interval split disagrees (len={len})"
            );
        }
    }

    #[test]
    fn bucket_count_scales_like_root_n() {
        assert_eq!(bucket_count(1024), 32);
        assert_eq!(bucket_count(16_384), 128);
        assert_eq!(bucket_count(100_000), 256);
        assert_eq!(bucket_count(1 << 23), 2048); // clamped
    }

    #[test]
    fn agg_concat_orders_boundaries() {
        let lo = Agg {
            count: 2,
            max: 2,
            first: Some(10),
            last: Some(11),
        };
        let hi = Agg {
            count: 1,
            max: 1,
            first: Some(20),
            last: Some(20),
        };
        let both = Agg::concat(lo, hi);
        assert_eq!(both.count, 3);
        assert_eq!(both.first, Some(10));
        assert_eq!(both.last, Some(20));
        // Empty blocks are transparent on either side.
        let empty = Agg::default();
        let a = Agg::concat(empty, hi);
        assert_eq!((a.first, a.last), (Some(20), Some(20)));
        let b = Agg::concat(lo, empty);
        assert_eq!((b.first, b.last), (Some(10), Some(11)));
    }

    use crate::proto::sort::SortStep;
    use crate::proto::WithCtx;
    use crate::sort::SortBackend;
    use dgr_ncc::{Config, Network};

    /// Runs the randomized sort end to end on the batched engine and
    /// checks the full [`SortedPath`] contract.
    fn run_rand_sort(n: usize, seed: u64, order: Order, key_of: impl Fn(NodeId) -> u64 + Sync) {
        let config = Config::ncc0(seed).with_queueing();
        let net = Network::new(n, config);
        let key_of = &key_of;
        let result = net
            .run_protocol(|_| {
                WithCtx::new(move |ctx: &PathCtx, rctx: &mut RoundCtx<'_>| {
                    SortStep::on_ctx(
                        ctx,
                        key_of(rctx.id()),
                        order,
                        rctx.id(),
                        SortBackend::RandomizedLogN { seed: 7 },
                    )
                })
            })
            .unwrap();
        assert!(
            result.metrics.is_clean(),
            "n={n}: {:?}",
            result.metrics.violations
        );
        // Ranks are a permutation, keys are ordered, links match ranks.
        let mut by_rank: Vec<(usize, u64, NodeId, SortedPath)> = result
            .outputs
            .iter()
            .map(|(id, sp)| (sp.rank, key_of(*id), *id, *sp))
            .collect();
        by_rank.sort_unstable_by_key(|(r, ..)| *r);
        for (want, (got, ..)) in by_rank.iter().enumerate() {
            assert_eq!(*got, want, "ranks not a permutation (n={n})");
        }
        for w in by_rank.windows(2) {
            let ((_, k0, id0, _), (_, k1, id1, _)) = (w[0], w[1]);
            match order {
                Order::Ascending => assert!((k0, id0) < (k1, id1)),
                Order::Descending => assert!(k0 > k1 || (k0 == k1 && id0 < id1)),
            }
        }
        for (i, (_, _, _, sp)) in by_rank.iter().enumerate() {
            let want_pred = (i > 0).then(|| by_rank[i - 1].2);
            let want_succ = (i + 1 < n).then(|| by_rank[i + 1].2);
            assert_eq!(sp.vp.pred, want_pred, "rank {i} pred (n={n})");
            assert_eq!(sp.vp.succ, want_succ, "rank {i} succ (n={n})");
            assert!(sp.vp.member);
            assert_eq!(sp.vp.len, n);
        }
    }

    #[test]
    fn randomized_sort_small_and_medium() {
        run_rand_sort(1024, 5, Order::Ascending, |id| id % 97);
        run_rand_sort(1500, 6, Order::Descending, |id| id % 13);
        run_rand_sort(2048, 7, Order::Ascending, |id| id);
    }

    #[test]
    fn randomized_sort_survives_all_equal_keys() {
        // Ties split by ID through the splitter tie-break: no bucket
        // collapses even when every key is identical.
        run_rand_sort(2048, 8, Order::Descending, |_| 42);
    }

    #[test]
    fn randomized_sort_is_deterministic_and_engine_invariant() {
        let run = |workers: usize| {
            let config = Config::ncc0(11)
                .with_queueing()
                .with_worker_threads(workers);
            let net = Network::new(1200, config);
            let result = net
                .run_protocol(|_| {
                    WithCtx::new(|ctx: &PathCtx, rctx: &mut RoundCtx<'_>| {
                        SortStep::on_ctx(
                            ctx,
                            rctx.id() % 31,
                            Order::Ascending,
                            rctx.id(),
                            SortBackend::RandomizedLogN { seed: 3 },
                        )
                    })
                })
                .unwrap();
            let ranks: Vec<(NodeId, usize)> = result
                .outputs
                .iter()
                .map(|(id, sp)| (*id, sp.rank))
                .collect();
            (ranks, result.metrics)
        };
        let (r1, m1) = run(1);
        let (r4, m4) = run(4);
        assert_eq!(r1, r4, "worker count changed the outcome");
        assert_eq!(m1, m4, "worker count changed the transcript metrics");
    }

    #[test]
    #[ignore = "five-digit n; run with --ignored (release recommended)"]
    fn randomized_sort_beats_bitonic_rounds_at_2_pow_14() {
        let n = 1 << 14;
        let run = |backend: SortBackend| {
            let net = Network::new(n, Config::ncc0(44).with_queueing());
            net.run_protocol(|_| {
                WithCtx::new(move |ctx: &PathCtx, rctx: &mut RoundCtx<'_>| {
                    SortStep::on_ctx(ctx, rctx.id() % 1000, Order::Descending, rctx.id(), backend)
                })
            })
            .unwrap()
            .metrics
            .rounds
        };
        let bitonic = run(SortBackend::Bitonic);
        let rand = run(SortBackend::RandomizedLogN { seed: 9 });
        assert!(
            rand < bitonic,
            "randomized sort did not beat bitonic at n=2^14: {rand} >= {bitonic}"
        );
    }
}
