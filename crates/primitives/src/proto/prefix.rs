//! Step-function port of [`prefix`](crate::prefix): inclusive/exclusive
//! prefix sums by pointer doubling.

use crate::contacts::ContactTable;
use crate::proto::step::{Poll, Step};
use crate::vpath::VPath;
use dgr_ncc::{tags, RoundCtx, WireMsg};
use std::sync::Arc;

/// The parallel-prefix doubling scan as a [`Step`].
///
/// Rounds: exactly [`prefix::rounds_for`](crate::prefix::rounds_for)`
/// (vp.len)`.
#[derive(Debug)]
pub struct PrefixStep {
    vp: VPath,
    contacts: Arc<ContactTable>,
    t: u64,
    acc: u64,
    value: u64,
    exclusive: bool,
}

impl PrefixStep {
    /// Inclusive prefix sum of `value` along the path.
    pub fn new(vp: VPath, contacts: Arc<ContactTable>, value: u64) -> Self {
        PrefixStep {
            vp,
            contacts,
            t: 0,
            acc: value,
            value,
            exclusive: false,
        }
    }

    /// Exclusive prefix sum (sum over strictly earlier positions).
    pub fn exclusive(vp: VPath, contacts: Arc<ContactTable>, value: u64) -> Self {
        PrefixStep {
            exclusive: true,
            ..Self::new(vp, contacts, value)
        }
    }
}

impl Step for PrefixStep {
    type Out = u64;

    fn poll(&mut self, ctx: &mut RoundCtx<'_>) -> Poll<u64> {
        let levels = self.vp.levels() as u64;
        if !self.vp.member {
            if self.t == levels {
                return Poll::Ready(0);
            }
            self.t += 1;
            return Poll::Pending;
        }
        if self.t > 0 {
            for env in ctx.inbox().iter().filter(|e| e.msg.tag == tags::PREFIX) {
                self.acc += env.word();
            }
        }
        if self.t == levels {
            let own = if self.exclusive { self.value } else { 0 };
            return Poll::Ready(self.acc - own);
        }
        if let Some(target) = self.contacts.ahead(self.t as usize) {
            ctx.send(target, WireMsg::word(tags::PREFIX, self.acc));
        }
        self.t += 1;
        Poll::Pending
    }
}
