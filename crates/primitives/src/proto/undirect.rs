//! Step-function port of [`vpath::undirect`](crate::vpath::undirect): the
//! 1-round path undirection from §3.1 of the paper.

use crate::vpath::VPath;
use dgr_ncc::{tags, NodeProtocol, NodeSeed, RoundCtx, Status, WireMsg};

/// Undirects the knowledge path: every node signals its successor, so each
/// node learns its predecessor; the node that hears nothing is the head.
///
/// Rounds: exactly 1. Output: this node's [`VPath`] view of `G_k`.
#[derive(Debug)]
pub struct Undirect {
    sent: bool,
}

impl Undirect {
    /// Builds the protocol for one node (ignores the seed — the context
    /// carries everything this protocol needs).
    pub fn new(_seed: &NodeSeed<'_>) -> Self {
        Undirect { sent: false }
    }
}

impl NodeProtocol for Undirect {
    type Output = VPath;

    fn step(&mut self, ctx: &mut RoundCtx<'_>) -> Status<VPath> {
        if !self.sent {
            if let Some(succ) = ctx.initial_successor() {
                ctx.send(succ, WireMsg::signal(tags::UNDIRECT));
            }
            self.sent = true;
            return Status::Continue;
        }
        let pred = ctx
            .inbox()
            .iter()
            .find(|env| env.msg.tag == tags::UNDIRECT)
            .map(|env| env.src);
        Status::Done(VPath {
            member: true,
            pred,
            succ: ctx.initial_successor(),
            len: ctx.participants(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dgr_ncc::{Config, Network};

    #[test]
    fn undirect_reconstructs_the_path_batched() {
        let net = Network::new(100, Config::ncc0(5));
        let result = net.run_protocol(Undirect::new).unwrap();
        assert!(result.metrics.is_clean());
        assert_eq!(result.metrics.rounds, 1);
        let order = result.gk_order();
        for (i, (_, vp)) in result.outputs.iter().enumerate() {
            assert!(vp.member);
            assert_eq!(vp.len, 100);
            assert_eq!(vp.pred, if i == 0 { None } else { Some(order[i - 1]) });
            assert_eq!(vp.succ, order.get(i + 1).copied(),);
        }
    }

    #[test]
    fn batched_and_threaded_agree() {
        let net = Network::new(64, Config::ncc0(9));
        let a = net.run_protocol(Undirect::new).unwrap();
        let b = net.run_protocol_threaded(Undirect::new).unwrap();
        assert_eq!(a.outputs, b.outputs);
        assert_eq!(a.metrics.rounds, b.metrics.rounds);
        assert_eq!(a.metrics.messages, b.metrics.messages);
    }

    #[test]
    fn masked_run_links_across_dead_nodes() {
        let net = Network::new(10, Config::ncc0(7));
        // Odd path positions are filtered out of the network.
        let mask: Vec<bool> = (0..10).map(|i| i % 2 == 0).collect();
        let result = net.run_protocol_masked(&mask, Undirect::new).unwrap();
        assert!(result.metrics.is_clean());
        assert_eq!(result.outputs.len(), 5);
        let order = result.gk_order();
        let full: Vec<_> = net.ids_in_path_order().to_vec();
        // Participants are the even positions, in path order.
        let expected: Vec<_> = (0..10).step_by(2).map(|i| full[i]).collect();
        assert_eq!(order, expected);
        // The filtered path is seamless: pred/succ skip dead nodes.
        for (i, (_, vp)) in result.outputs.iter().enumerate() {
            assert_eq!(vp.pred, if i == 0 { None } else { Some(order[i - 1]) });
            assert_eq!(vp.succ, order.get(i + 1).copied());
        }
    }
}
