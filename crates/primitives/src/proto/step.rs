//! The composable sub-protocol layer of the batched primitive stack.
//!
//! A [`dgr_ncc::NodeProtocol`] is one state machine per node
//! for a *whole run*. The realization algorithms, however, are sequences of
//! primitives (sort, then broadcast, then multicast, …), so porting them
//! wholesale would mean re-writing every primitive inline, per algorithm.
//! Instead each primitive is ported once as a [`Step`]: a state machine
//! polled once per round through the same [`RoundCtx`], which signals
//! completion *without consuming the round* — so a composite protocol can
//! poll the next primitive in the very same round, exactly like a
//! direct-style closure that calls one primitive function after another.
//!
//! ## The polling discipline
//!
//! A step with a (commonly computable) budget of `R` rounds is polled
//! `R + 1` times:
//!
//! * poll `0`: stage the first round's sends; **do not** read the inbox
//!   (it still belongs to the previous step) → [`Poll::Pending`];
//! * poll `k` (`0 < k < R`): consume the round-`k-1` delivery, stage the
//!   round-`k` sends → [`Poll::Pending`];
//! * poll `R`: consume the final delivery, stage **nothing**, return
//!   [`Poll::Ready`] — the caller may immediately poll the next step in
//!   the same `RoundCtx`.
//!
//! This is the exact image of the direct-style calling convention (one
//! `h.step(out) -> inbox` per round, a function return between two
//! primitives costs no round), which is why the batched compositions in
//! this module tree run in *bit-for-bit the same rounds and messages* as
//! their direct-style twins — the differential tests in
//! `crates/primitives/tests/proto_differential.rs` hold them to it.

use dgr_ncc::{NodeProtocol, RoundCtx, Status};

/// What a sub-protocol reports after one poll.
#[derive(Debug)]
pub enum Poll<T> {
    /// The step staged this round's sends and participates in the round.
    Pending,
    /// The step is complete. It staged nothing this poll; the caller owns
    /// the rest of the round.
    Ready(T),
}

/// A primitive as a pollable state machine (see the module docs for the
/// polling discipline).
pub trait Step: Send {
    /// The primitive's result at this node.
    type Out;

    /// Advances one round: consume `ctx.inbox()` (previous round), stage
    /// this round's sends via `ctx.send`.
    fn poll(&mut self, ctx: &mut RoundCtx<'_>) -> Poll<Self::Out>;
}

/// Idles through a fixed number of rounds, staging and expecting nothing —
/// the step image of `NodeHandle::idle_quiet`, used by path non-members to
/// stay in lockstep through primitives they do not participate in.
#[derive(Debug)]
pub struct Idle {
    remaining: u64,
}

impl Idle {
    /// An idle step spanning exactly `rounds` rounds.
    pub fn new(rounds: u64) -> Self {
        Idle { remaining: rounds }
    }
}

impl Step for Idle {
    type Out = ();

    fn poll(&mut self, _ctx: &mut RoundCtx<'_>) -> Poll<()> {
        if self.remaining == 0 {
            return Poll::Ready(());
        }
        self.remaining -= 1;
        Poll::Pending
    }
}

/// A distributive aggregate operator, as data (the direct-style primitives
/// take closures; steps carry the operator in their state, so it must be a
/// plain value). All operators are associative and commutative.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AggOp {
    /// Addition.
    Sum,
    /// Maximum.
    Max,
    /// Minimum.
    Min,
    /// Bitwise or (used for global boolean flags).
    Or,
}

impl AggOp {
    /// Applies the operator.
    #[inline]
    pub fn apply(self, a: u64, b: u64) -> u64 {
        match self {
            AggOp::Sum => a + b,
            AggOp::Max => a.max(b),
            AggOp::Min => a.min(b),
            AggOp::Or => a | b,
        }
    }
}

/// Adapter running a single [`Step`] as a full [`NodeProtocol`]: `Pending`
/// maps to [`Status::Continue`], `Ready` to [`Status::Done`].
#[derive(Debug)]
pub struct StepProtocol<S: Step> {
    inner: S,
}

impl<S: Step> StepProtocol<S> {
    /// Wraps a step for standalone execution.
    pub fn new(inner: S) -> Self {
        StepProtocol { inner }
    }
}

impl<S: Step> NodeProtocol for StepProtocol<S>
where
    S::Out: Send,
{
    type Output = S::Out;

    fn step(&mut self, ctx: &mut RoundCtx<'_>) -> Status<S::Out> {
        match self.inner.poll(ctx) {
            Poll::Pending => Status::Continue,
            Poll::Ready(out) => Status::Done(out),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dgr_ncc::{Config, Network};

    #[test]
    fn idle_spans_exact_rounds() {
        let net = Network::new(4, Config::ncc0(1));
        let result = net
            .run_protocol(|_| StepProtocol::new(Idle::new(5)))
            .unwrap();
        assert_eq!(result.metrics.rounds, 5);
        assert_eq!(result.metrics.messages, 0);
    }

    #[test]
    fn zero_round_idle_finishes_immediately() {
        let net = Network::new(2, Config::ncc0(2));
        let result = net
            .run_protocol(|_| StepProtocol::new(Idle::new(0)))
            .unwrap();
        assert_eq!(result.metrics.rounds, 0);
    }

    #[test]
    fn agg_ops_apply() {
        assert_eq!(AggOp::Sum.apply(2, 3), 5);
        assert_eq!(AggOp::Max.apply(2, 3), 3);
        assert_eq!(AggOp::Min.apply(2, 3), 2);
        assert_eq!(AggOp::Or.apply(1, 2), 3);
    }
}
