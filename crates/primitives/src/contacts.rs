//! Power-of-two contact tables via pointer doubling.
//!
//! After `O(log n)` rounds every node on a virtual path knows the IDs of the
//! nodes exactly `2^k` positions ahead and behind it, for every `k`. These
//! tables are the addressing backbone for the bitonic sorting network
//! ([`crate::sort`]), interval multicast ([`crate::imcast`]) and prefix sums
//! ([`crate::prefix`]): all of those primitives only ever talk across
//! power-of-two distances.
//!
//! KT0-legality: at level `k` a node forwards the *address* of its
//! `2^(k-1)`-ahead contact to its `2^(k-1)`-behind contact (and vice versa);
//! both were learned in earlier levels, so every carried address is known to
//! the sender — the doubling construction is exactly how knowledge spreads
//! in the model.

#[cfg(feature = "threaded")]
use crate::vpath::VPath;
use dgr_ncc::NodeId;
#[cfg(feature = "threaded")]
use dgr_ncc::{tags, Msg, NodeHandle};

/// Direction words used in contact-construction messages.
#[cfg(feature = "threaded")]
const SET_FWD: u64 = 0;
#[cfg(feature = "threaded")]
const SET_BWD: u64 = 1;

/// A node's power-of-two contacts on a virtual path.
///
/// `fwd[k]` is the ID of the node `2^k` positions ahead (toward the tail),
/// `bwd[k]` the node `2^k` behind (toward the head); `None` where the path
/// ends first. Tables have [`VPath::levels`] entries.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ContactTable {
    /// Contacts toward the tail; `fwd[k]` sits `2^k` ahead.
    pub fwd: Vec<Option<NodeId>>,
    /// Contacts toward the head; `bwd[k]` sits `2^k` behind.
    pub bwd: Vec<Option<NodeId>>,
}

impl ContactTable {
    /// The contact `2^k` ahead, if both the table level and the node exist.
    pub fn ahead(&self, k: usize) -> Option<NodeId> {
        self.fwd.get(k).copied().flatten()
    }

    /// The contact `2^k` behind, if both the table level and the node exist.
    pub fn behind(&self, k: usize) -> Option<NodeId> {
        self.bwd.get(k).copied().flatten()
    }

    /// The contact at signed power-of-two offset `±2^k`.
    pub fn at_offset(&self, k: usize, forward: bool) -> Option<NodeId> {
        if forward {
            self.ahead(k)
        } else {
            self.behind(k)
        }
    }
}

/// Number of rounds [`build`] takes on a path of `len` nodes.
pub fn rounds_for(len: usize) -> u64 {
    crate::levels_for(len).saturating_sub(1) as u64
}

/// Builds the power-of-two contact table on a virtual path by pointer
/// doubling. Non-members idle in lockstep.
///
/// Rounds: exactly [`rounds_for`]`(vp.len)` = `ceil(log2 len) - 1`.
#[cfg(feature = "threaded")]
pub fn build(h: &mut NodeHandle, vp: &VPath) -> ContactTable {
    let levels = vp.levels();
    if !vp.member {
        h.idle_quiet(rounds_for(vp.len));
        return ContactTable::default();
    }
    let mut fwd: Vec<Option<NodeId>> = Vec::with_capacity(levels);
    let mut bwd: Vec<Option<NodeId>> = Vec::with_capacity(levels);
    if levels == 0 {
        return ContactTable { fwd, bwd };
    }
    fwd.push(vp.succ);
    bwd.push(vp.pred);
    for k in 1..levels {
        let mut out = Vec::new();
        // Tell the node 2^(k-1) behind me who sits 2^(k-1) ahead of me (its
        // new fwd[k]) and vice versa. An endpoint simply has nothing to
        // forward in one of the directions.
        if let Some(b) = bwd[k - 1] {
            if let Some(f) = fwd[k - 1] {
                out.push((b, Msg::addr_words(tags::CONTACT, f, vec![SET_FWD])));
                out.push((f, Msg::addr_words(tags::CONTACT, b, vec![SET_BWD])));
            }
        }
        let inbox = h.step(out);
        let mut new_fwd = None;
        let mut new_bwd = None;
        for env in inbox.iter().filter(|e| e.msg.tag == tags::CONTACT) {
            match env.word() {
                SET_FWD => new_fwd = Some(env.addr()),
                SET_BWD => new_bwd = Some(env.addr()),
                other => unreachable!("bad contact direction word {other}"),
            }
        }
        fwd.push(new_fwd);
        bwd.push(new_bwd);
    }
    ContactTable { fwd, bwd }
}

#[cfg(all(test, feature = "threaded"))]
mod tests {
    use super::*;
    use crate::vpath;
    use dgr_ncc::{Config, Network};

    fn check_tables(n: usize, seed: u64) {
        let net = Network::new(n, Config::ncc0(seed));
        let result = net
            .run(|h| {
                let vp = vpath::undirect(h);
                build(h, &vp)
            })
            .unwrap();
        assert!(
            result.metrics.is_clean(),
            "n={n}: {:?}",
            result.metrics.violations
        );
        assert_eq!(result.metrics.rounds, 1 + rounds_for(n));
        let order = result.gk_order();
        let levels = crate::levels_for(n);
        for (i, (_, table)) in result.outputs.iter().enumerate() {
            assert_eq!(table.fwd.len(), levels, "n={n} i={i}");
            for k in 0..levels {
                let d = 1usize << k;
                assert_eq!(
                    table.ahead(k),
                    order.get(i + d).copied(),
                    "n={n} i={i} fwd[{k}]"
                );
                let expect_b = i.checked_sub(d).map(|j| order[j]);
                assert_eq!(table.behind(k), expect_b, "n={n} i={i} bwd[{k}]");
            }
        }
    }

    #[test]
    fn tables_are_exact_for_powers_of_two() {
        check_tables(16, 1);
        check_tables(64, 2);
    }

    #[test]
    fn tables_are_exact_for_odd_sizes() {
        check_tables(1, 3);
        check_tables(2, 3);
        check_tables(3, 3);
        check_tables(7, 4);
        check_tables(33, 5);
        check_tables(100, 6);
    }

    #[test]
    fn offsets_api() {
        let t = ContactTable {
            fwd: vec![Some(5), None],
            bwd: vec![None, Some(9)],
        };
        assert_eq!(t.at_offset(0, true), Some(5));
        assert_eq!(t.at_offset(1, true), None);
        assert_eq!(t.at_offset(1, false), Some(9));
        assert_eq!(t.at_offset(7, true), None); // out of table
    }
}
