//! Distributed prefix sums along a virtual path by pointer doubling —
//! the `O(log n)`-round computation behind the tree-realization algorithms
//! (Algorithms 4 and 5 compute prefix sums `p_i` over sorted degrees).
//!
//! The classic parallel-prefix invariant: after step `k`, node at position
//! `r` holds the sum of values at positions `(r - 2^k, r]`. At step `k` each
//! node sends its running sum to the node `2^k` ahead, which adds it.
//! `⌈log n⌉` steps, one message per node per round.

#[cfg(feature = "threaded")]
use crate::contacts::ContactTable;
#[cfg(feature = "threaded")]
use crate::vpath::VPath;
#[cfg(feature = "threaded")]
use dgr_ncc::{tags, Msg, NodeHandle};

/// Number of rounds [`prefix_sum`] takes on a path of `len` nodes.
pub fn rounds_for(len: usize) -> u64 {
    crate::levels_for(len) as u64
}

/// Computes the *inclusive* prefix sum of `value` along the path: the
/// returned number at the node of position `r` is `Σ value_i` over positions
/// `i ≤ r`. Non-members idle and return 0.
///
/// Rounds: exactly [`rounds_for`]`(vp.len)`.
#[cfg(feature = "threaded")]
pub fn prefix_sum(h: &mut NodeHandle, vp: &VPath, contacts: &ContactTable, value: u64) -> u64 {
    let levels = vp.levels();
    if !vp.member {
        h.idle_quiet(rounds_for(vp.len));
        return 0;
    }
    let mut acc = value;
    for k in 0..levels {
        let out = contacts
            .ahead(k)
            .map(|t| (t, Msg::word(tags::PREFIX, acc)))
            .into_iter()
            .collect();
        let inbox = h.step(out);
        for env in inbox.iter().filter(|e| e.msg.tag == tags::PREFIX) {
            acc += env.word();
        }
    }
    acc
}

/// Exclusive prefix sum: sum of `value` over positions strictly before this
/// node. Convenience wrapper over [`prefix_sum`].
#[cfg(feature = "threaded")]
pub fn prefix_sum_exclusive(
    h: &mut NodeHandle,
    vp: &VPath,
    contacts: &ContactTable,
    value: u64,
) -> u64 {
    prefix_sum(h, vp, contacts, value) - if vp.member { value } else { 0 }
}

#[cfg(all(test, feature = "threaded"))]
mod tests {
    use super::*;
    use crate::ctx::PathCtx;
    use dgr_ncc::{Config, Network};

    #[test]
    fn inclusive_prefix_sums_are_exact() {
        for &n in &[1usize, 2, 3, 7, 16, 33, 100] {
            let net = Network::new(n, Config::ncc0(31));
            let result = net
                .run(|h| {
                    let ctx = PathCtx::establish(h);
                    let v = (ctx.position as u64 % 5) + 1;
                    (v, prefix_sum(h, &ctx.vp, &ctx.contacts, v))
                })
                .unwrap();
            assert!(result.metrics.is_clean());
            let mut running = 0;
            for (_, (v, got)) in &result.outputs {
                running += v;
                assert_eq!(*got, running, "n={n}");
            }
        }
    }

    #[test]
    fn exclusive_prefix_shifts_by_own_value() {
        let net = Network::new(20, Config::ncc0(32));
        let result = net
            .run(|h| {
                let ctx = PathCtx::establish(h);
                let v = ctx.position as u64;
                prefix_sum_exclusive(h, &ctx.vp, &ctx.contacts, v)
            })
            .unwrap();
        let mut running = 0u64;
        for (i, (_, got)) in result.outputs.iter().enumerate() {
            assert_eq!(*got, running);
            running += i as u64;
        }
    }
}
