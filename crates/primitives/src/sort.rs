//! Distributed sorting into a *sorted path* — the Theorem 3 primitive.
//!
//! The paper sorts by recursively merging sorted sub-paths with median
//! splitting (`O(log³ n)` rounds). We substitute a **Batcher odd-even
//! mergesort network** over path positions, which achieves the same
//! primitive contract in `O(log² n)` rounds (see `DESIGN.md` §4):
//!
//! * every comparator connects two positions a power-of-two apart, so the
//!   [`ContactTable`] provides the addressing;
//! * every comparator points the same way (minimum to the lower position),
//!   so the network is correct for arbitrary `n` with no virtual padding;
//! * records `(key, origin)` migrate between positions; the nodes
//!   themselves never move.
//!
//! A 2-round epilogue then tells each record's origin its *rank* and the IDs
//! of its sorted predecessor/successor — producing a new [`VPath`] in sorted
//! order, on which every other primitive (contacts, BBST, multicast,
//! prefix sums) can be established. This "sorted path handle" is exactly
//! what the realization algorithms consume.

#[cfg(feature = "threaded")]
use crate::contacts::ContactTable;
use crate::vpath::VPath;
#[cfg(feature = "threaded")]
use dgr_ncc::NodeId;
#[cfg(feature = "threaded")]
use dgr_ncc::{tags, Msg, NodeHandle};

/// Which distributed sorting algorithm realizes the Theorem 3 primitive.
///
/// Both backends fulfil the same contract — every member ends up knowing
/// its rank and its sorted predecessor/successor IDs ([`SortedPath`]) —
/// and both are transcript-deterministic for a fixed configuration seed.
/// They differ in round complexity and in the capacity policy they need:
///
/// * [`SortBackend::Bitonic`] — the Batcher odd-even mergesort network,
///   `O(log² n)` rounds, legal under the strict capacity policy, supports
///   non-member (idling) path views. The default.
/// * [`SortBackend::RandomizedLogN`] — the paper's Theorem 3 randomized
///   sort, realized as a seeded sample-splitter sort (see
///   [`rand_sort`](crate::proto::rand_sort)): positional sampling →
///   splitter/leader broadcast → staggered scatter → leader hypercube
///   scans → rank notification. `O(√n/κ + log n)` rounds at per-round
///   capacity `κ = Θ(log n)` — asymptotically `o(log² n)` and measurably
///   below the bitonic round count from `n ≈ 2¹⁴` (`engine_bench`).
///   Requires a queueing (or recording) capacity policy for the scatter
///   fan-in and a full-member path; below
///   [`RAND_MIN`](crate::proto::rand_sort::RAND_MIN) nodes it silently
///   delegates to the bitonic network.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum SortBackend {
    /// Batcher odd-even mergesort (`O(log² n)` rounds, strict-legal).
    #[default]
    Bitonic,
    /// Theorem 3 randomized sort (sample-splitter; queueing policy).
    /// `seed` drives the sampling rotation; transcripts are deterministic
    /// for a fixed seed.
    RandomizedLogN {
        /// Schedule seed (common knowledge, like the network seed).
        seed: u64,
    },
}

/// Sort direction. The paper's algorithms sort by *non-increasing* degree,
/// i.e. [`Order::Descending`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Order {
    /// Smallest key at rank 0.
    Ascending,
    /// Largest key at rank 0.
    Descending,
}

impl Order {
    /// Transforms a key so that ascending order on the transformed key
    /// realizes this order on the original key.
    pub(crate) fn encode_key(self, key: u64) -> u64 {
        match self {
            Order::Ascending => key,
            Order::Descending => !key,
        }
    }
}

/// The sorted-path handle a node receives for its own key.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SortedPath {
    /// This node's rank in sorted order (0-based; rank 0 = head).
    pub rank: usize,
    /// The sorted path as a [`VPath`]: predecessor = rank-1 node,
    /// successor = rank+1 node.
    pub vp: VPath,
}

/// A record traveling through the comparator network.
#[cfg(any(test, feature = "threaded"))]
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
struct Record {
    key: u64,
    origin: NodeId,
}

/// The comparator schedule of Batcher's odd-even mergesort: a list of
/// `(p, k)` stages; within a stage, position `x` compares with `x ± k`.
/// Shared with the double-width network of [`crate::scatter`].
#[cfg(feature = "threaded")]
pub(crate) fn stages_of(len: usize) -> Vec<(usize, usize)> {
    stages(len)
}

fn stages(len: usize) -> Vec<(usize, usize)> {
    let mut out = Vec::new();
    let mut p = 1;
    while p < len {
        let mut k = p;
        while k > 0 {
            out.push((p, k));
            k /= 2;
        }
        p *= 2;
    }
    out
}

/// Number of comparator stages for a path of `len` nodes: `O(log² len)`.
pub fn stage_count(len: usize) -> usize {
    stages(len).len()
}

/// Number of rounds [`sort_at`] takes on a path of `len` nodes: one per
/// comparator stage plus the 2-round epilogue.
pub fn rounds_for(len: usize) -> u64 {
    stage_count(len) as u64 + 2
}

/// Whether position `x` participates in stage `(p, k)` of the network, and
/// with which partner. Returns `(partner_position, i_am_low)`.
///
/// Derived from the classic triple loop
/// `for j in (k%p..).step_by(2k) { for i in 0..k { compare(i+j, i+j+k) if
/// same 2p-block } }` — solved for `x` in O(1).
pub(crate) fn comparator_at(x: usize, len: usize, p: usize, k: usize) -> Option<(usize, bool)> {
    let j0 = k % p;
    let two_k = 2 * k;
    // Is `lo` the low endpoint of a stage comparator? lo = i + j with
    // i ∈ [0, k), j ≡ j0 (mod 2k), j ≥ j0 — equivalently lo ≥ j0 and
    // (lo - j0) mod 2k < k — and lo, lo+k must share a 2p-block.
    let is_low = |lo: usize| -> bool {
        lo >= j0 && (lo - j0) % two_k < k && lo + k < len && lo / (2 * p) == (lo + k) / (2 * p)
    };
    if is_low(x) {
        return Some((x + k, true));
    }
    if x >= k && is_low(x - k) {
        return Some((x - k, false));
    }
    None
}

/// Sorts the members of a virtual path by `key` into a new sorted path.
/// Each member supplies its key and its path `position` (from
/// [`crate::traversal::positions`]); ties break by node ID (ascending),
/// making the order total and the result deterministic. Non-members idle.
///
/// Returns the node's [`SortedPath`] handle. Rounds: exactly
/// [`rounds_for`]`(vp.len)`.
#[cfg(feature = "threaded")]
pub fn sort_at(
    h: &mut NodeHandle,
    vp: &VPath,
    contacts: &ContactTable,
    position: usize,
    key: u64,
    order: Order,
) -> SortedPath {
    let len = vp.len;
    if !vp.member {
        h.idle_quiet(rounds_for(len));
        return SortedPath {
            rank: 0,
            vp: VPath::non_member(len),
        };
    }

    let mut held = Record {
        key: order.encode_key(key),
        origin: h.id(),
    };
    let x = position;

    // --- Comparator network. ---
    for (p, k) in stages(len) {
        let cmp = comparator_at(x, len, p, k);
        let mut out = Vec::new();
        if let Some((partner, _)) = cmp {
            let level = k.trailing_zeros() as usize;
            debug_assert_eq!(1 << level, k);
            let partner_id = contacts
                .at_offset(level, partner > x)
                .expect("comparator partner outside contact table");
            out.push((
                partner_id,
                Msg::addr_words(tags::SORT_XCHG, held.origin, vec![held.key]),
            ));
        }
        let inbox = h.step(out);
        if let Some((_, i_am_low)) = cmp {
            let env = inbox
                .iter()
                .find(|e| e.msg.tag == tags::SORT_XCHG)
                .expect("comparator partner did not exchange");
            let theirs = Record {
                key: env.word(),
                origin: env.addr(),
            };
            // All comparators keep the minimum at the low position.
            held = if i_am_low {
                held.min(theirs)
            } else {
                held.max(theirs)
            };
        } else {
            debug_assert!(inbox.iter().all(|e| e.msg.tag != tags::SORT_XCHG));
        }
    }

    // --- Epilogue round 1: learn the origins held by my path neighbors
    // (they hold the records ranked x-1 and x+1). ---
    let mut out = Vec::new();
    for nb in [vp.pred, vp.succ].into_iter().flatten() {
        out.push((nb, Msg::addr(tags::SORT_LINK, held.origin)));
    }
    let inbox = h.step(out);
    let mut pred_origin = None;
    let mut succ_origin = None;
    for env in inbox.iter().filter(|e| e.msg.tag == tags::SORT_LINK) {
        if Some(env.src) == vp.pred {
            pred_origin = Some(env.addr());
        } else if Some(env.src) == vp.succ {
            succ_origin = Some(env.addr());
        }
    }

    // --- Epilogue round 2: tell the held record's origin its rank and
    // sorted neighbors. Flags word: bit0 = has pred, bit1 = has succ. ---
    let flags = u64::from(pred_origin.is_some()) | (u64::from(succ_origin.is_some()) << 1);
    let mut msg = Msg::words(tags::SORT_LINK, vec![x as u64, flags]);
    if let Some(a) = pred_origin {
        msg = msg.with_addr(a);
    }
    if let Some(a) = succ_origin {
        msg = msg.with_addr(a);
    }
    let inbox = h.step(vec![(held.origin, msg)]);
    let env = inbox
        .iter()
        .find(|e| e.msg.tag == tags::SORT_LINK)
        .expect("no rank notification received");
    let rank = env.msg.words[0] as usize;
    let flags = env.msg.words[1];
    let mut addrs = env.msg.addrs.iter().copied();
    let pred = (flags & 1 != 0).then(|| addrs.next().unwrap());
    let succ = (flags & 2 != 0).then(|| addrs.next().unwrap());
    SortedPath {
        rank,
        vp: VPath {
            member: true,
            pred,
            succ,
            len,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ctx::PathCtx;
    use dgr_ncc::{Config, Network};
    use std::collections::HashMap;

    /// Sequential reference for the comparator network.
    fn network_sorts(len: usize, keys: &[u64]) -> Vec<u64> {
        let mut a: Vec<Record> = keys
            .iter()
            .enumerate()
            .map(|(i, &k)| Record {
                key: k,
                origin: i as u64,
            })
            .collect();
        for (p, k) in stages(len) {
            // Apply all comparators of this stage simultaneously.
            let snapshot = a.clone();
            for x in 0..len {
                if let Some((partner, i_am_low)) = comparator_at(x, len, p, k) {
                    // Sanity: the relation is symmetric.
                    let back = comparator_at(partner, len, p, k);
                    assert_eq!(back, Some((x, !i_am_low)), "p={p} k={k} x={x}");
                    let pair = (snapshot[x], snapshot[partner]);
                    a[x] = if i_am_low {
                        pair.0.min(pair.1)
                    } else {
                        pair.0.max(pair.1)
                    };
                }
            }
        }
        a.iter().map(|r| r.key).collect()
    }

    #[test]
    fn comparator_network_sorts_sequentially() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::SmallRng::seed_from_u64(99);
        for len in 1..=48 {
            for _ in 0..8 {
                let keys: Vec<u64> = (0..len).map(|_| rng.gen_range(0..32)).collect();
                let sorted = network_sorts(len, &keys);
                let mut want = keys.clone();
                want.sort_unstable();
                assert_eq!(sorted, want, "len={len} keys={keys:?}");
            }
        }
    }

    fn run_sort(n: usize, seed: u64, order: Order) {
        let net = Network::new(n, Config::ncc0(seed));
        let result = net
            .run(move |h| {
                let ctx = PathCtx::establish(h);
                let key = h.id() % 17; // plenty of ties
                let sp = sort_at(h, &ctx.vp, &ctx.contacts, ctx.position, key, order);
                (key, sp)
            })
            .unwrap();
        assert!(result.metrics.is_clean(), "n={n}");
        // Ranks form a permutation and keys are ordered along ranks.
        let mut by_rank: Vec<(usize, u64, NodeId, &SortedPath)> = result
            .outputs
            .iter()
            .map(|(id, (key, sp))| (sp.rank, *key, *id, sp))
            .collect();
        by_rank.sort_unstable_by_key(|(r, ..)| *r);
        for (want, (got, ..)) in by_rank.iter().enumerate() {
            assert_eq!(*got, want, "ranks not a permutation");
        }
        for w in by_rank.windows(2) {
            match order {
                Order::Ascending => assert!(w[0].1 <= w[1].1),
                Order::Descending => assert!(w[0].1 >= w[1].1),
            }
        }
        // The sorted-path links agree with the rank order.
        let id_at: HashMap<usize, NodeId> = by_rank.iter().map(|(r, _, id, _)| (*r, *id)).collect();
        for (rank, _, _, sp) in &by_rank {
            let want_pred = rank.checked_sub(1).map(|r| id_at[&r]);
            let want_succ = id_at.get(&(rank + 1)).copied();
            assert_eq!(sp.vp.pred, want_pred, "rank {rank} pred");
            assert_eq!(sp.vp.succ, want_succ, "rank {rank} succ");
            assert!(sp.vp.member);
            assert_eq!(sp.vp.len, n);
        }
    }

    #[test]
    fn distributed_sort_small_sizes() {
        for n in [1, 2, 3, 5, 8, 13, 16, 21] {
            run_sort(n, n as u64 + 500, Order::Ascending);
            run_sort(n, n as u64 + 900, Order::Descending);
        }
    }

    #[test]
    fn distributed_sort_medium() {
        run_sort(100, 4, Order::Descending);
        run_sort(128, 5, Order::Ascending);
    }

    #[test]
    fn theorem3_rounds_are_polylog() {
        // O(log² n): stage count for n=1024 is 10*11/2 = 55.
        assert_eq!(stage_count(1024), 55);
        assert_eq!(stage_count(1), 0);
        // Sub-quadratic growth in log n.
        assert!(stage_count(1 << 16) <= 16 * 17 / 2);
    }
}
