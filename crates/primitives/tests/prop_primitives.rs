//! Property-based tests of the NCC primitives under full simulation.
//! Case counts are modest (each case spins up a simulated network), but
//! the inputs are adversarially random: arbitrary path lengths, keys with
//! ties, random interval layouts, random milestone placements.

use dgr_ncc::{Config, Network};
use dgr_primitives::imcast::{self, CoverSide, Payload};
use dgr_primitives::scatter::{self, ScanRecord};
use dgr_primitives::sort::{self, Order};
use dgr_primitives::{ops, prefix, PathCtx};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig { cases: 12, ..ProptestConfig::default() })]

    /// Sorting: the rank assignment is a permutation, keys are ordered
    /// along ranks, and the sorted-path links are consistent — for any
    /// path length and any key multiset (dense keys force many ties).
    #[test]
    fn sort_is_a_sorted_permutation(n in 1usize..48, seed in 0u64..1000) {
        let net = Network::new(n, Config::ncc0(seed));
        let result = net
            .run(|h| {
                let c = PathCtx::establish(h);
                let key = h.id() % 5; // heavy ties
                let sp = sort::sort_at(
                    h, &c.vp, &c.contacts, c.position, key, Order::Descending,
                );
                (key, sp.rank, sp.vp.pred, sp.vp.succ)
            })
            .unwrap();
        prop_assert!(result.metrics.is_clean());
        let mut by_rank: Vec<(usize, u64, u64)> = result
            .outputs
            .iter()
            .map(|(id, (k, r, _, _))| (*r, *k, *id))
            .collect();
        by_rank.sort_unstable();
        for (want, (got, ..)) in by_rank.iter().enumerate() {
            prop_assert_eq!(*got, want);
        }
        for w in by_rank.windows(2) {
            prop_assert!(w[0].1 >= w[1].1, "descending order violated");
        }
        // Link consistency.
        let by_id: std::collections::HashMap<u64, (usize, Option<u64>, Option<u64>)> =
            result
                .outputs
                .iter()
                .map(|(id, (_, r, p, s))| (*id, (*r, *p, *s)))
                .collect();
        for (rank, _, id) in &by_rank {
            let (_, pred, succ) = by_id[id];
            let want_pred =
                rank.checked_sub(1).map(|r| by_rank[r].2);
            let want_succ = by_rank.get(rank + 1).map(|t| t.2);
            prop_assert_eq!(pred, want_pred);
            prop_assert_eq!(succ, want_succ);
        }
    }

    /// Prefix sums are exact for arbitrary values.
    #[test]
    fn prefix_sums_are_exact(n in 1usize..48, seed in 0u64..1000) {
        let net = Network::new(n, Config::ncc0(seed));
        let result = net
            .run(|h| {
                let c = PathCtx::establish(h);
                let v = h.id() % 23;
                (v, prefix::prefix_sum(h, &c.vp, &c.contacts, v))
            })
            .unwrap();
        let mut running = 0;
        for (_, (v, got)) in &result.outputs {
            running += v;
            prop_assert_eq!(*got, running);
        }
    }

    /// Interval multicast with randomly sized disjoint intervals delivers
    /// exactly inside each interval.
    #[test]
    fn imcast_random_layout(
        n in 2usize..40,
        widths in prop::collection::vec(1usize..7, 1..12),
        seed in 0u64..1000,
    ) {
        // Build a disjoint layout [start, start+w) from the widths,
        // truncated to n.
        let mut layout = Vec::new(); // (source_rank, count)
        let mut at = 0usize;
        for w in widths {
            if at >= n {
                break;
            }
            let count = (w - 1).min(n - 1 - at);
            layout.push((at, count));
            at += w;
        }
        let layout_c = layout.clone();
        let net = Network::new(n, Config::ncc0(seed));
        let result = net
            .run(move |h| {
                let c = PathCtx::establish(h);
                let task = layout_c
                    .iter()
                    .find(|(s, _)| *s == c.position)
                    .map(|&(_, count)| {
                        (CoverSide::After, count, Payload { addr: h.id(), word: 1 })
                    });
                let got = imcast::interval_multicast(h, &c.vp, &c.contacts, task);
                (c.position, got)
            })
            .unwrap();
        prop_assert!(result.metrics.is_clean());
        let order = result.gk_order();
        for (_, (pos, got)) in &result.outputs {
            let covering = layout
                .iter()
                .find(|&&(s, count)| *pos > s && *pos <= s + count);
            match covering {
                Some(&(s, _)) => {
                    prop_assert_eq!(
                        got.map(|p| p.addr),
                        Some(order[s]),
                        "pos {} expected coverage from rank {}", pos, s
                    );
                }
                None => prop_assert!(got.is_none(), "pos {} covered unexpectedly", pos),
            }
        }
    }

    /// Milestone scan: random milestone placement; every filler must learn
    /// the closest milestone at-or-before its own key.
    #[test]
    fn milestone_scan_matches_reference(
        n in 1usize..32,
        milestone_mask in prop::collection::vec(any::<bool>(), 32),
        seed in 0u64..1000,
    ) {
        let mask: Vec<bool> = (0..n).map(|i| milestone_mask[i]).collect();
        let mask_c = mask.clone();
        let net = Network::new(n, Config::ncc0(seed));
        let result = net
            .run(move |h| {
                let c = PathCtx::establish(h);
                let r = c.position as u64;
                let rec0 = if mask_c[c.position] {
                    // Milestone placed *just before* my filler: covers me.
                    ScanRecord::Milestone { key: 2 * r, addr: h.id() }
                } else {
                    ScanRecord::Absent
                };
                let rec1 = ScanRecord::Filler { key: 2 * r + 1 };
                let got = scatter::milestone_scan(
                    h, &c.vp, &c.contacts, c.position, [rec0, rec1],
                );
                (c.position, got[1])
            })
            .unwrap();
        prop_assert!(result.metrics.is_clean());
        let order = result.gk_order();
        for (_, (pos, got)) in &result.outputs {
            // Reference: the last milestone position ≤ pos.
            let want = (0..=*pos).rev().find(|&i| mask[i]).map(|i| order[i]);
            prop_assert_eq!(*got, want, "pos {}", pos);
        }
    }

    /// Aggregation with different operators agrees with the sequential
    /// fold for arbitrary values.
    #[test]
    fn aggregate_matches_fold(n in 1usize..40, seed in 0u64..1000) {
        let net = Network::new(n, Config::ncc0(seed));
        let vals: Vec<u64> =
            net.ids_in_path_order().iter().map(|i| i % 41).collect();
        let want_sum: u64 = vals.iter().sum();
        let want_max: u64 = *vals.iter().max().unwrap();
        let want_min: u64 = *vals.iter().min().unwrap();
        let result = net
            .run(|h| {
                let c = PathCtx::establish(h);
                let v = h.id() % 41;
                let s = ops::aggregate_broadcast(h, &c.vp, &c.tree, v, |a, b| a + b);
                let mx = ops::aggregate_broadcast(h, &c.vp, &c.tree, v, u64::max);
                let mn = ops::aggregate_broadcast(h, &c.vp, &c.tree, v, u64::min);
                (s, mx, mn)
            })
            .unwrap();
        for (_, (s, mx, mn)) in &result.outputs {
            prop_assert_eq!(*s, want_sum);
            prop_assert_eq!(*mx, want_max);
            prop_assert_eq!(*mn, want_min);
        }
    }
}
