//! Differential tests for the step-function primitive ports.
//!
//! Two layers of equivalence, per primitive:
//!
//! 1. **Engine differential** — the same state machine on the batched
//!    executor (`run_protocol`) and the threaded oracle
//!    (`run_protocol_threaded`) must produce identical outputs and
//!    bit-identical [`RunMetrics`].
//! 2. **Twin differential** — the port composed after
//!    [`EstablishCtx`](dgr_primitives::proto::EstablishCtx) must match
//!    the *direct-style* twin (blocking closures over `NodeHandle`)
//!    round-for-round: same outputs, same rounds, same message and word
//!    counts.

use dgr_ncc::{Config, Network, NodeProtocol, RoundCtx, RunMetrics, RunResult, WireMsg};
use dgr_primitives::imcast::{CoverSide, Payload};
use dgr_primitives::proto::imcast::ImcastStep;
use dgr_primitives::proto::ops::{AggBcastStep, BroadcastAddrStep, CollectStep};
use dgr_primitives::proto::prefix::PrefixStep;
use dgr_primitives::proto::scatter::ScanStep;
use dgr_primitives::proto::sort::SortStep;
use dgr_primitives::proto::stagger::StaggerStep;
use dgr_primitives::proto::step::AggOp;
use dgr_primitives::proto::WithCtx as CtxThen;
use dgr_primitives::scatter::ScanRecord;
use dgr_primitives::sort::Order;
use dgr_primitives::{ops, prefix, scatter, sort, stagger, PathCtx};

/// Asserts full observational equality of a protocol on both engines and
/// returns the batched run.
fn engines_agree<P, F>(net: &Network, factory: F) -> RunResult<P::Output>
where
    P: NodeProtocol,
    P::Output: PartialEq + std::fmt::Debug,
    F: Fn(&dgr_ncc::NodeSeed<'_>) -> P + Send + Sync,
{
    let batched = net.run_protocol(&factory).unwrap();
    let threaded = net.run_protocol_threaded(&factory).unwrap();
    assert_eq!(batched.outputs, threaded.outputs, "engine outputs diverge");
    assert_eq!(batched.metrics, threaded.metrics, "engine metrics diverge");
    batched
}

/// Asserts the round/message/word budget of two runs is identical.
fn same_budget(a: &RunMetrics, b: &RunMetrics) {
    assert_eq!(a.rounds, b.rounds, "rounds diverge");
    assert_eq!(a.messages, b.messages, "messages diverge");
    assert_eq!(a.words, b.words, "words diverge");
    assert_eq!(a.max_sent_per_round, b.max_sent_per_round);
    assert_eq!(a.max_received_per_round, b.max_received_per_round);
}

#[test]
fn sort_port_matches_twin_and_engines() {
    for (n, seed) in [(21usize, 1u64), (48, 2), (100, 3)] {
        let net = Network::new(n, Config::ncc0(seed));
        let batched = engines_agree(&net, |_| {
            CtxThen::new(|ctx: &PathCtx, rctx: &mut RoundCtx<'_>| {
                SortStep::new(
                    ctx.vp,
                    ctx.contacts.clone(),
                    ctx.position,
                    rctx.id() % 17,
                    Order::Descending,
                    rctx.id(),
                )
            })
        });
        let direct = net
            .run(|h| {
                let ctx = PathCtx::establish(h);
                sort::sort_at(
                    h,
                    &ctx.vp,
                    &ctx.contacts,
                    ctx.position,
                    h.id() % 17,
                    Order::Descending,
                )
            })
            .unwrap();
        assert_eq!(batched.outputs, direct.outputs, "n={n}");
        same_budget(&batched.metrics, &direct.metrics);
        assert!(batched.metrics.is_clean());
    }
}

#[test]
fn prefix_port_matches_twin_and_engines() {
    let n = 65;
    let net = Network::new(n, Config::ncc0(7));
    let batched = engines_agree(&net, |_| {
        CtxThen::new(|ctx: &PathCtx, _: &mut RoundCtx<'_>| {
            PrefixStep::new(ctx.vp, ctx.contacts.clone(), ctx.position as u64 + 1)
        })
    });
    let direct = net
        .run(|h| {
            let ctx = PathCtx::establish(h);
            prefix::prefix_sum(h, &ctx.vp, &ctx.contacts, ctx.position as u64 + 1)
        })
        .unwrap();
    assert_eq!(batched.outputs, direct.outputs);
    same_budget(&batched.metrics, &direct.metrics);
    // Inclusive prefix sums of 1..=n are the triangular numbers.
    for (i, (_, got)) in batched.outputs.iter().enumerate() {
        let k = i as u64 + 1;
        assert_eq!(*got, k * (k + 1) / 2);
    }
}

#[test]
fn exclusive_prefix_port_matches_twin() {
    let n = 40;
    let net = Network::new(n, Config::ncc0(8));
    let batched = net
        .run_protocol(|_| {
            CtxThen::new(|ctx: &PathCtx, _: &mut RoundCtx<'_>| {
                PrefixStep::exclusive(ctx.vp, ctx.contacts.clone(), ctx.position as u64)
            })
        })
        .unwrap();
    let direct = net
        .run(|h| {
            let ctx = PathCtx::establish(h);
            prefix::prefix_sum_exclusive(h, &ctx.vp, &ctx.contacts, ctx.position as u64)
        })
        .unwrap();
    assert_eq!(batched.outputs, direct.outputs);
    same_budget(&batched.metrics, &direct.metrics);
}

#[test]
fn aggregate_broadcast_port_matches_twin_and_engines() {
    for (op, f) in [
        (AggOp::Sum, (|a, b| a + b) as fn(u64, u64) -> u64),
        (AggOp::Max, u64::max),
        (AggOp::Min, u64::min),
    ] {
        let n = 50;
        let net = Network::new(n, Config::ncc0(11));
        let batched = engines_agree(&net, move |_| {
            CtxThen::new(move |ctx: &PathCtx, rctx: &mut RoundCtx<'_>| {
                AggBcastStep::new(ctx.vp, ctx.tree.clone(), rctx.id() % 100, op)
            })
        });
        let direct = net
            .run(move |h| {
                let ctx = PathCtx::establish(h);
                ops::aggregate_broadcast(h, &ctx.vp, &ctx.tree, h.id() % 100, f)
            })
            .unwrap();
        assert_eq!(batched.outputs, direct.outputs, "{op:?}");
        same_budget(&batched.metrics, &direct.metrics);
    }
}

#[test]
fn broadcast_addr_and_median_port_match_twin() {
    let n = 41;
    let net = Network::new(n, Config::ncc0(13));
    let batched = engines_agree(&net, |_| {
        CtxThen::new(|ctx: &PathCtx, rctx: &mut RoundCtx<'_>| {
            BroadcastAddrStep::median(ctx.vp, ctx.tree.clone(), ctx.position, rctx.id())
        })
    });
    let direct = net
        .run(|h| {
            let ctx = PathCtx::establish(h);
            ops::median(h, &ctx.vp, &ctx.tree, ctx.position)
        })
        .unwrap();
    assert_eq!(batched.outputs, direct.outputs);
    same_budget(&batched.metrics, &direct.metrics);
    assert!(batched.metrics.is_clean(), "KT0-legal address spread");
}

#[test]
fn collect_port_matches_twin() {
    let n: usize = 60;
    let k_bound = n.div_ceil(3);
    let net = Network::new(n, Config::ncc0(15));
    let batched = engines_agree(&net, move |_| {
        CtxThen::new(move |ctx: &PathCtx, rctx: &mut RoundCtx<'_>| {
            let token = ctx
                .position
                .is_multiple_of(3)
                .then_some(ctx.position as u64);
            CollectStep::new(ctx.vp, ctx.tree.clone(), token, k_bound, rctx.id())
        })
    });
    let direct = net
        .run(move |h| {
            let ctx = PathCtx::establish(h);
            let token = ctx
                .position
                .is_multiple_of(3)
                .then_some(ctx.position as u64);
            ops::collect(h, &ctx.vp, &ctx.tree, token, k_bound)
        })
        .unwrap();
    assert_eq!(batched.outputs, direct.outputs);
    same_budget(&batched.metrics, &direct.metrics);
}

#[test]
fn imcast_port_matches_twin_and_engines() {
    for (n, w, seed) in [(40usize, 5usize, 61u64), (37, 7, 63), (64, 8, 62)] {
        let net = Network::new(n, Config::ncc0(seed));
        let batched = engines_agree(&net, move |_| {
            CtxThen::new(move |ctx: &PathCtx, rctx: &mut RoundCtx<'_>| {
                let r = ctx.position;
                let task = r.is_multiple_of(w).then(|| {
                    let count = (w - 1).min(n - 1 - r);
                    (
                        CoverSide::After,
                        count,
                        Payload {
                            addr: rctx.id(),
                            word: r as u64,
                        },
                    )
                });
                ImcastStep::new(ctx.vp, ctx.contacts.clone(), task)
            })
        });
        let direct = net
            .run(move |h| {
                let ctx = PathCtx::establish(h);
                let r = ctx.position;
                let task = r.is_multiple_of(w).then(|| {
                    let count = (w - 1).min(n - 1 - r);
                    (
                        CoverSide::After,
                        count,
                        Payload {
                            addr: h.id(),
                            word: r as u64,
                        },
                    )
                });
                dgr_primitives::imcast::interval_multicast(h, &ctx.vp, &ctx.contacts, task)
            })
            .unwrap();
        assert_eq!(batched.outputs, direct.outputs, "n={n} w={w}");
        same_budget(&batched.metrics, &direct.metrics);
        assert!(batched.metrics.is_clean());
    }
}

#[test]
fn milestone_scan_port_matches_twin_and_engines() {
    let (n, w) = (24usize, 4usize);
    let net = Network::new(n, Config::ncc0(81));
    let records = move |position: usize, id: u64| {
        let r = position as u64;
        let rec0 = if position.is_multiple_of(w) {
            ScanRecord::Milestone {
                key: 2 * r,
                addr: id,
            }
        } else {
            ScanRecord::Absent
        };
        [rec0, ScanRecord::Filler { key: 2 * r + 1 }]
    };
    let batched = engines_agree(&net, move |_| {
        CtxThen::new(move |ctx: &PathCtx, rctx: &mut RoundCtx<'_>| {
            ScanStep::new(
                ctx.vp,
                ctx.contacts.clone(),
                ctx.position,
                records(ctx.position, rctx.id()),
                rctx.id(),
            )
        })
    });
    let direct = net
        .run(move |h| {
            let ctx = PathCtx::establish(h);
            scatter::milestone_scan(
                h,
                &ctx.vp,
                &ctx.contacts,
                ctx.position,
                records(ctx.position, h.id()),
            )
        })
        .unwrap();
    assert_eq!(batched.outputs, direct.outputs);
    same_budget(&batched.metrics, &direct.metrics);
    // Every rank learned its covering source.
    let order = batched.gk_order();
    for (i, (_, got)) in batched.outputs.iter().enumerate() {
        assert_eq!(got[1], Some(order[(i / w) * w]), "rank {i}");
    }
}

#[test]
fn stagger_port_matches_twin_and_engines() {
    // Every node staggers one token to each of its immediate path
    // neighbors; the RNG schedule must be identical across engines and
    // styles (same per-node stream, same draw order).
    let n = 48;
    let (spread, drain) = stagger::plan(2, Config::ncc0(0).capacity(n));
    let make_sends = |ctx: &PathCtx| {
        let mut sends = Vec::new();
        for nb in [ctx.vp.pred, ctx.vp.succ].into_iter().flatten() {
            sends.push((nb, WireMsg::word(dgr_ncc::tags::TOKEN, 5)));
        }
        sends
    };
    let net = Network::new(n, Config::ncc0(71).with_queueing());
    let batched = engines_agree(&net, move |_| {
        CtxThen::new(move |ctx: &PathCtx, _: &mut RoundCtx<'_>| {
            StaggerStep::new(make_sends(ctx), spread, drain)
        })
    });
    let direct = net
        .run(move |h| {
            let ctx = PathCtx::establish(h);
            let sends = make_sends(&ctx)
                .into_iter()
                .map(|(t, m)| (t, m.to_msg()))
                .collect();
            stagger::staggered_send(h, sends, spread, drain)
                .into_iter()
                .map(|e| (e.src, e.msg))
                .collect::<Vec<_>>()
        })
        .unwrap();
    // Compare delivered (sender, payload) pairs in delivery order.
    for ((ida, got_a), (idb, got_b)) in batched.outputs.iter().zip(direct.outputs.iter()) {
        assert_eq!(ida, idb);
        let a: Vec<_> = got_a
            .iter()
            .map(|(src, msg)| (*src, msg.to_msg()))
            .collect();
        assert_eq!(&a, got_b);
    }
    same_budget(&batched.metrics, &direct.metrics);
    assert_eq!(batched.metrics.undelivered, 0);
}

#[test]
fn establish_engines_agree_at_scale_of_the_oracle() {
    // The full setup chain at the threaded engine's comfortable size.
    let net = Network::new(96, Config::ncc0(5));
    let result = engines_agree(&net, |_| {
        CtxThen::new(|_ctx: &PathCtx, _: &mut RoundCtx<'_>| {
            // A trivial second stage: a zero-round idle, checking that
            // chaining across the Ready boundary costs no extra round.
            dgr_primitives::proto::step::Idle::new(0)
        })
    });
    assert_eq!(result.metrics.rounds, dgr_primitives::ctx::rounds_for(96));
}
