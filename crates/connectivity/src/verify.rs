//! Max-flow certification of threshold realizations: by Menger's theorem,
//! `Conn_G(u, v)` equals the maximum number of edge-disjoint `u`–`v`
//! paths, which Dinic computes exactly.

use dgr_graph::{Dinic, Graph};
use std::collections::BTreeMap;

/// Node identifier (matches `dgr_ncc::NodeId`).
type NodeId = u64;

/// The result of checking a realization against its thresholds.
#[derive(Clone, Debug)]
pub struct ThresholdReport {
    /// Were all checked pairs satisfied? **Vacuously true when the
    /// certification was skipped** — check [`ThresholdReport::certified`]
    /// (or `skipped`) before trusting it.
    pub satisfied: bool,
    /// True when the max-flow certification was skipped entirely
    /// (`certify(false)`): no pair was checked and `satisfied` carries no
    /// information.
    pub skipped: bool,
    /// Number of pairs checked.
    pub pairs_checked: usize,
    /// The first violated pair, if any: `(u, v, required, actual)`.
    pub first_violation: Option<(NodeId, NodeId, usize, usize)>,
    /// Edge count of the realization.
    pub edges: usize,
}

impl ThresholdReport {
    /// True when the certification actually ran and every checked pair
    /// held — the assertion-safe reading of `satisfied`.
    pub fn certified(&self) -> bool {
        !self.skipped && self.satisfied
    }
}

/// Verifies `Conn_G(u, v) ≥ min(ρ(u), ρ(v))`.
///
/// With `all_pairs = true`, every pair is flow-checked (`O(n²)` flows —
/// small instances). Otherwise the check follows the paper's own proof
/// structure: it verifies `Conn_G(w, v) ≥ ρ(v)` for the maximum-`ρ` node
/// `w` against everyone, which by Menger
/// (`Conn(u,v) ≥ min(Conn(u,w), Conn(v,w))`) implies all pairs.
pub fn check_thresholds(
    g: &Graph,
    rho: &BTreeMap<NodeId, usize>,
    all_pairs: bool,
) -> ThresholdReport {
    let mut report = ThresholdReport {
        satisfied: true,
        skipped: false,
        pairs_checked: 0,
        first_violation: None,
        edges: g.edge_count(),
    };
    let ids: Vec<NodeId> = rho.keys().copied().collect();
    if ids.len() < 2 {
        return report;
    }
    let mut dinic = Dinic::from_graph(g);
    let mut check = |u: NodeId, v: NodeId, report: &mut ThresholdReport| {
        let need = rho[&u].min(rho[&v]);
        let (ui, vi) = (g.index_of(u).unwrap(), g.index_of(v).unwrap());
        let got = dinic.max_flow(ui, vi) as usize;
        report.pairs_checked += 1;
        if got < need && report.first_violation.is_none() {
            report.satisfied = false;
            report.first_violation = Some((u, v, need, got));
        }
    };
    if all_pairs {
        for i in 0..ids.len() {
            for j in i + 1..ids.len() {
                check(ids[i], ids[j], &mut report);
            }
        }
    } else {
        let w = *ids.iter().max_by_key(|&&id| (rho[&id], id)).unwrap();
        for &v in ids.iter().filter(|&&v| v != w) {
            check(w, v, &mut report);
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cycle_satisfies_rho_two() {
        let g = Graph::from_edges(0..4, [(0, 1), (1, 2), (2, 3), (3, 0)]).unwrap();
        let rho: BTreeMap<u64, usize> = (0..4).map(|i| (i, 2)).collect();
        let r = check_thresholds(&g, &rho, true);
        assert!(r.satisfied);
        assert_eq!(r.pairs_checked, 6);
    }

    #[test]
    fn path_fails_rho_two() {
        let g = Graph::from_edges(0..3, [(0, 1), (1, 2)]).unwrap();
        let rho: BTreeMap<u64, usize> = (0..3).map(|i| (i, 2)).collect();
        let r = check_thresholds(&g, &rho, true);
        assert!(!r.satisfied);
        let (_, _, need, got) = r.first_violation.unwrap();
        assert_eq!((need, got), (2, 1));
    }

    #[test]
    fn hub_mode_agrees_with_all_pairs_here() {
        let g = Graph::from_edges(0..5, [(0, 1), (0, 2), (0, 3), (0, 4), (1, 2), (3, 4)]).unwrap();
        let mut rho: BTreeMap<u64, usize> = (1..5).map(|i| (i, 2)).collect();
        rho.insert(0, 4);
        assert!(check_thresholds(&g, &rho, true).satisfied);
        assert!(check_thresholds(&g, &rho, false).satisfied);
    }
}
