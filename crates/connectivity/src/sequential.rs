//! Centralized baseline and bounds for threshold realization.
//!
//! The baseline mirrors the structure of Frank–Chou \[15\] (and of the
//! paper's Algorithm 6): sort by `ρ` non-increasing; the maximum node
//! connects to the next `d₀` nodes... — concretely we build the same
//! two-phase graph the distributed algorithm builds, giving the
//! experiments an apples-to-apples edge-count and quality reference.

use crate::ThresholdInstance;
use dgr_core::DegreeSequence;
use dgr_graph::Graph;

/// The universal lower bound on edges: every node `v` needs degree at
/// least `ρ(v)`, so any realization has `≥ ⌈Σρ/2⌉` edges.
pub fn edge_lower_bound(inst: &ThresholdInstance) -> usize {
    inst.sum().div_ceil(2)
}

/// Builds a centralized 2-approximate threshold realization over node
/// indices `0..n`: phase 1 realizes (an upper envelope of) the `ρ`-values
/// of the `d₀+1` largest-`ρ` nodes among themselves; phase 2 connects
/// every later node to its `ρ` sorted predecessors.
pub fn sequential_realization(inst: &ThresholdInstance) -> Graph {
    let n = inst.len();
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by_key(|&i| (std::cmp::Reverse(inst.rho[i]), i));
    let rho_at = |rank: usize| inst.rho[order[rank]];
    let d0 = if n > 0 { rho_at(0) } else { 0 };
    let prefix = (d0 + 1).min(n);

    let mut g = Graph::new(0..n as u64);
    // Phase 1: realize (ρ(x₁), …, ρ(x_{d0+1})) over the prefix — via
    // Havel–Hakimi on the prefix, envelope-style: saturated nodes accept
    // extra edges (sequential mirror of Theorem 13; duplicates skipped
    // because the graph is simple).
    let prefix_degrees: Vec<usize> = (0..prefix).map(rho_at).collect();
    sequential_envelope_into(&mut g, &order[..prefix], &prefix_degrees);

    // Phase 2: rank i ≥ d0+1 connects to its ρ sorted predecessors.
    for rank in prefix..n {
        let r = rho_at(rank);
        for back in 1..=r {
            let u = order[rank] as u64;
            let v = order[rank - back] as u64;
            let _ = g.add_edge(u, v); // ignore (rare) duplicates
        }
    }
    g
}

/// Sequential upper-envelope Havel–Hakimi over a node subset: satisfy the
/// maximum-remaining-degree node by connecting it to the next-highest
/// ones; when targets run out, reuse saturated nodes (envelope growth).
fn sequential_envelope_into(g: &mut Graph, nodes: &[usize], degrees: &[usize]) {
    let k = nodes.len();
    let mut rem: Vec<(usize, usize)> = degrees.iter().enumerate().map(|(i, &d)| (d, i)).collect();
    loop {
        rem.sort_unstable_by(|a, b| b.cmp(a));
        let (d, u) = rem[0];
        if d == 0 {
            break;
        }
        rem[0].0 = 0;
        let mut connected = 0;
        for other in rem.iter_mut().take(k).skip(1) {
            if connected == d {
                break;
            }
            let v = other.1;
            let (a, b) = (nodes[u] as u64, nodes[v] as u64);
            if g.add_edge(a, b).is_ok() {
                other.0 = other.0.saturating_sub(1);
                connected += 1;
            }
        }
        // Fewer than d simple-graph slots: the envelope (multigraph)
        // theory would add parallel edges; a simple graph just leaves u
        // slightly under target — acceptable for the baseline (the
        // distributed algorithm is what the experiments certify).
    }
}

/// A `DegreeSequence` view of the instance (degrees = requirements),
/// useful for comparing against plain degree realization.
pub fn as_degree_sequence(inst: &ThresholdInstance) -> DegreeSequence {
    DegreeSequence::new(inst.rho.clone())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::check_thresholds;

    #[test]
    fn lower_bound_rounds_up() {
        assert_eq!(edge_lower_bound(&ThresholdInstance::new(vec![1, 1, 1])), 2);
        assert_eq!(edge_lower_bound(&ThresholdInstance::new(vec![2, 2, 2])), 3);
        assert_eq!(
            edge_lower_bound(&ThresholdInstance::new(vec![3, 1, 1, 1])),
            3
        );
    }

    #[test]
    fn sequential_baseline_meets_thresholds() {
        for rho in [
            vec![1usize, 1, 1, 1],
            vec![3, 3, 3, 3],
            vec![3, 2, 2, 1, 1, 1],
            vec![5, 4, 3, 2, 2, 1, 1, 1, 1, 1],
        ] {
            let inst = ThresholdInstance::new(rho.clone());
            let g = sequential_realization(&inst);
            let by_id: std::collections::BTreeMap<u64, usize> =
                (0..rho.len()).map(|i| (i as u64, rho[i])).collect();
            let report = check_thresholds(&g, &by_id, true);
            assert!(report.satisfied, "{rho:?}: {report:?}");
            // 2-approximation.
            assert!(g.edge_count() <= inst.sum(), "{rho:?}");
        }
    }
}
