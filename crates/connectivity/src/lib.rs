//! Connectivity-threshold realization (Section 6 of *Distributed Graph
//! Realizations*): construct an overlay `G` with few edges such that
//! `Conn_G(u, v) ≥ σ(u, v)` for all pairs.
//!
//! Following the paper, the algorithms target the stronger per-node form:
//! with `ρ(v) = max_u σ(u, v)`, they guarantee
//! `Conn_G(u, v) ≥ min(ρ(u), ρ(v))` using at most `Σρ ≤ 2·OPT` edges
//! (every realization needs at least `Σρ/2` edges, since each node `v`
//! needs degree ≥ `ρ(v)`).
//!
//! * [`distributed::ncc1`] — Theorem 17: `O~(1)`-round implicit
//!   realization in NCC1 (star through the maximum-`ρ` node `w`).
//! * [`distributed::ncc1_step`] — the same construction as a
//!   step-function protocol for the batched engine
//!   ([`driver::realize_ncc1_batched`]), practical at 10⁵–10⁶ nodes.
//! * [`distributed::ncc0`] — Theorem 18 / Algorithm 6: `O~(Δ)`-round
//!   explicit realization in NCC0 (and NCC1).
//! * [`distributed::ncc0_exact`] — the **paper-exact** Algorithm 6 as one
//!   composed batched protocol: masked prefix envelope recursion,
//!   distinctness patch, phase-2 pipeline, explicitness acks.
//! * [`sequential`] — the centralized Frank–Chou-style baseline and the
//!   `⌈Σρ/2⌉` lower bound.
//! * [`verify`] — max-flow certification of the pairwise thresholds.
//!
//! The non-deprecated driver entry points —
//! [`driver::realize_threshold_run`] and
//! [`driver::realize_prefix_envelope_run`] — are the engine room of the
//! `dgr::Realization` facade builder.

pub mod distributed;
pub mod driver;
pub mod sequential;
pub mod verify;

#[allow(deprecated)]
#[cfg(feature = "threaded")]
pub use driver::{realize_ncc0, realize_ncc1};
#[allow(deprecated)]
pub use driver::{realize_ncc0_batched, realize_ncc1_batched, realize_prefix_envelope_batched};
pub use driver::{
    realize_prefix_envelope_run, realize_threshold_run, ThresholdAlgo, ThresholdRealization,
    ThresholdRun,
};
pub use sequential::{edge_lower_bound, sequential_realization};
pub use verify::{check_thresholds, ThresholdReport};

/// A connectivity-threshold problem instance: `rho[i]` is the requirement
/// of the `i`-th node (assigned by knowledge-path position in the
/// drivers).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ThresholdInstance {
    /// Per-node requirements `ρ(v) ≥ 1`, each at most `n - 1`.
    pub rho: Vec<usize>,
}

impl ThresholdInstance {
    /// Wraps and validates a requirement vector.
    ///
    /// # Panics
    ///
    /// Panics if any `ρ` is 0 or ≥ `n` (no simple graph can satisfy it).
    pub fn new(rho: Vec<usize>) -> Self {
        let n = rho.len();
        assert!(
            rho.iter().all(|&r| r >= 1 && r < n.max(2)),
            "thresholds must be in [1, n-1]"
        );
        ThresholdInstance { rho }
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.rho.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.rho.is_empty()
    }

    /// The maximum requirement `d₀ = Δ`.
    pub fn max_rho(&self) -> usize {
        self.rho.iter().copied().max().unwrap_or(0)
    }

    /// Sum of requirements (twice the edge lower bound).
    pub fn sum(&self) -> usize {
        self.rho.iter().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn instance_stats() {
        let t = ThresholdInstance::new(vec![3, 2, 1, 1]);
        assert_eq!(t.max_rho(), 3);
        assert_eq!(t.sum(), 7);
        assert_eq!(t.len(), 4);
    }

    #[test]
    #[should_panic(expected = "thresholds")]
    fn rejects_zero() {
        let _ = ThresholdInstance::new(vec![1, 0, 1]);
    }

    #[test]
    #[should_panic(expected = "thresholds")]
    fn rejects_oversized() {
        let _ = ThresholdInstance::new(vec![3, 1, 1]);
    }
}
