//! Drivers: run the distributed threshold realizations on simulated
//! networks, assemble the overlay, and certify it with max-flow.
//!
//! [`realize_ncc1`] runs the direct-style Theorem 17 implementation on the
//! threaded oracle engine; [`realize_ncc1_batched`] runs the step-function
//! port ([`ncc1_step::Ncc1Star`]) on the batched executor. Both make the
//! same deterministic hub and edge choices, so they realize the same
//! overlay — `batched_and_threaded_realize_the_same_overlay` below holds
//! them to that.

#[cfg(feature = "threaded")]
use crate::distributed::{ncc0, ncc1};
use crate::distributed::{ncc0_step, ncc1_step, ThresholdOutcome};
use crate::verify::{check_thresholds, ThresholdReport};
use crate::ThresholdInstance;
use dgr_core::verify as core_verify;
use dgr_graph::Graph;
use dgr_ncc::{Config, Model, Network, NodeId, RunMetrics, SimError};
use std::collections::HashMap;

/// How many nodes at most get the full `O(n²)`-flow all-pairs check;
/// larger instances use the hub check (which the paper's own proof
/// reduces to).
const ALL_PAIRS_LIMIT: usize = 24;

/// A certified threshold realization.
#[derive(Clone, Debug)]
pub struct ThresholdRealization {
    /// The realized overlay.
    pub graph: Graph,
    /// Requirement per node.
    pub rho: HashMap<NodeId, usize>,
    /// Node IDs in knowledge-path order.
    pub path_order: Vec<NodeId>,
    /// Explicit neighbor lists (NCC0 driver only; empty for NCC1).
    pub explicit_neighbors: HashMap<NodeId, Vec<NodeId>>,
    /// The max-flow certification report.
    pub report: ThresholdReport,
    /// Simulator metrics.
    pub metrics: RunMetrics,
}

fn rho_assignment(net: &Network, inst: &ThresholdInstance) -> HashMap<NodeId, usize> {
    net.assign_in_path_order(&inst.rho)
}

/// Runs the Theorem 17 NCC1 star construction.
///
/// # Errors
///
/// Propagates simulator errors.
///
/// # Panics
///
/// Panics if `config` is not an NCC1 configuration.
#[cfg(feature = "threaded")]
pub fn realize_ncc1(
    inst: &ThresholdInstance,
    config: Config,
) -> Result<ThresholdRealization, SimError> {
    assert_eq!(config.model, Model::Ncc1, "Theorem 17 requires NCC1");
    let net = Network::new(inst.len(), config);
    let by_id = rho_assignment(&net, inst);
    let result = net.run(|h| ncc1::realize(h, by_id[&h.id()]))?;
    Ok(certify_implicit(&net, inst, by_id, result))
}

/// Runs the Theorem 17 star construction as a step-function protocol on
/// the **batched engine** — the production path; unlike the threaded
/// driver it is practical at six-digit and seven-digit `n`.
///
/// # Errors
///
/// Propagates simulator errors.
///
/// # Panics
///
/// Panics if `config` is not an NCC1 configuration.
pub fn realize_ncc1_batched(
    inst: &ThresholdInstance,
    config: Config,
) -> Result<ThresholdRealization, SimError> {
    assert_eq!(config.model, Model::Ncc1, "Theorem 17 requires NCC1");
    let net = Network::new(inst.len(), config);
    let by_id = rho_assignment(&net, inst);
    let result = net.run_protocol(|s| ncc1_step::Ncc1Star::new(s, by_id[&s.id]))?;
    Ok(certify_implicit(&net, inst, by_id, result))
}

/// Shared implicit-realization assembly + max-flow certification (both
/// engines' NCC1 runs funnel through here).
fn certify_implicit(
    net: &Network,
    inst: &ThresholdInstance,
    by_id: HashMap<NodeId, usize>,
    result: dgr_ncc::RunResult<ThresholdOutcome>,
) -> ThresholdRealization {
    let metrics = result.metrics.clone();
    // Implicit: each edge is stored at its adding endpoint.
    let assembled = core_verify::assemble_implicit(
        net.ids_in_path_order(),
        result.outputs.into_iter().map(|(id, o)| (id, o.neighbors)),
    );
    let report = check_thresholds(&assembled.graph, &by_id, inst.len() <= ALL_PAIRS_LIMIT);
    ThresholdRealization {
        graph: assembled.graph,
        rho: by_id,
        path_order: net.ids_in_path_order().to_vec(),
        explicit_neighbors: HashMap::new(),
        report,
        metrics,
    }
}

/// Runs the Algorithm 6 NCC0 explicit construction. Use a queueing
/// configuration.
///
/// # Errors
///
/// Propagates simulator errors; panics if the explicit symmetry is broken
/// (a protocol bug, not an input condition).
#[cfg(feature = "threaded")]
pub fn realize_ncc0(
    inst: &ThresholdInstance,
    config: Config,
) -> Result<ThresholdRealization, SimError> {
    let net = Network::new(inst.len(), config);
    let by_id = rho_assignment(&net, inst);
    let result = net.run(|h| ncc0::realize(h, by_id[&h.id()]))?;
    let metrics = result.metrics.clone();
    let lists: HashMap<NodeId, Vec<NodeId>> = result
        .outputs
        .into_iter()
        .map(|(id, o)| (id, o.neighbors))
        .collect();
    let assembled = core_verify::assemble_explicit(net.ids_in_path_order(), &lists)
        .expect("Algorithm 6 lost explicit symmetry");
    let report = check_thresholds(&assembled.graph, &by_id, inst.len() <= ALL_PAIRS_LIMIT);
    Ok(ThresholdRealization {
        graph: assembled.graph,
        rho: by_id,
        path_order: net.ids_in_path_order().to_vec(),
        explicit_neighbors: lists,
        report,
        metrics,
    })
}

/// Runs the Algorithm 6 NCC0 explicit construction on the **batched
/// executor** — the production engine, practical at six-digit `n`. Use a
/// queueing configuration.
///
/// # Errors
///
/// Propagates simulator errors; panics if the explicit symmetry is broken
/// (a protocol bug, not an input condition).
pub fn realize_ncc0_batched(
    inst: &ThresholdInstance,
    config: Config,
) -> Result<ThresholdRealization, SimError> {
    let net = Network::new(inst.len(), config);
    let by_id = rho_assignment(&net, inst);
    let result = net.run_protocol(|s| ncc0_step::Ncc0Threshold::new(by_id[&s.id]))?;
    let metrics = result.metrics.clone();
    let lists: HashMap<NodeId, Vec<NodeId>> = result
        .outputs
        .into_iter()
        .map(|(id, o)| (id, o.neighbors))
        .collect();
    let assembled = core_verify::assemble_explicit(net.ids_in_path_order(), &lists)
        .expect("Algorithm 6 lost explicit symmetry");
    let report = check_thresholds(&assembled.graph, &by_id, inst.len() <= ALL_PAIRS_LIMIT);
    Ok(ThresholdRealization {
        graph: assembled.graph,
        rho: by_id,
        path_order: net.ids_in_path_order().to_vec(),
        explicit_neighbors: lists,
        report,
        metrics,
    })
}

/// The **paper-exact** Algorithm 6 phase 1 at scale: realize the prefix
/// degrees `ρ(x₁) … ρ(x_{d₀+1})` by a Theorem 13 upper-envelope
/// realization run *on the prefix sub-network* — a masked batched run
/// ([`dgr_core::realize_prefix_batched`]), exactly the recursion the
/// paper prescribes — instead of the cyclic-pipeline substitute the full
/// [`realize_ncc0_batched`] driver uses (`DESIGN.md` §4 documents why the
/// substitute is the default: the envelope's multigraph semantics can
/// leave a prefix node short of *distinct* neighbors). Returns the
/// realized prefix overlay; callers can compose it with a phase 2 of
/// their choosing or study the paper variant's guarantees directly.
///
/// # Errors
///
/// Propagates simulator errors.
pub fn realize_prefix_envelope_batched(
    inst: &ThresholdInstance,
    config: Config,
) -> Result<dgr_core::DriverOutput, SimError> {
    let n = inst.len();
    // Sorted-by-ρ assignment: the prefix of the ρ-sorted order maps onto
    // the first path positions (assignment order is driver bookkeeping —
    // the nodes themselves never see it).
    let mut rho_sorted = inst.rho.clone();
    rho_sorted.sort_unstable_by(|a, b| b.cmp(a));
    let d0 = rho_sorted.first().copied().unwrap_or(0);
    let prefix = (d0 + 1).min(n);
    dgr_core::realize_prefix_batched(
        &rho_sorted,
        prefix,
        config,
        dgr_core::distributed::proto::Flavor::Envelope,
    )
}

#[cfg(all(test, feature = "threaded"))]
mod tests {
    use super::*;

    #[test]
    fn ncc1_driver_smoke() {
        let inst = ThresholdInstance::new(vec![2, 2, 1, 1, 1]);
        let out = realize_ncc1(&inst, Config::ncc1(55)).unwrap();
        assert!(out.report.satisfied);
        assert!(out.explicit_neighbors.is_empty());
    }

    #[test]
    fn batched_and_threaded_realize_the_same_overlay() {
        for rho in [
            vec![2, 2, 1, 1, 1],
            vec![4, 3, 2, 2, 1, 1, 1, 1],
            vec![3; 9],
        ] {
            let inst = ThresholdInstance::new(rho);
            let threaded = realize_ncc1(&inst, Config::ncc1(77)).unwrap();
            let batched = realize_ncc1_batched(&inst, Config::ncc1(77)).unwrap();
            assert!(batched.report.satisfied);
            assert_eq!(
                threaded.graph.edge_list(),
                batched.graph.edge_list(),
                "engines disagree on the realized overlay"
            );
        }
    }

    #[test]
    fn batched_ncc1_scales_past_the_threaded_engine() {
        // 2k nodes, fully certified (the hub check is n-1 max-flows, so
        // the six-digit-scale structural checks live in tests/scale.rs).
        let n = 2_000;
        let inst = ThresholdInstance::new(vec![3; n]);
        let out = realize_ncc1_batched(&inst, Config::ncc1(88)).unwrap();
        assert!(out.report.satisfied);
        assert!(out.metrics.is_clean());
        assert!(out.metrics.rounds <= 2 * 13);
    }

    #[test]
    #[should_panic(expected = "NCC1")]
    fn ncc1_driver_rejects_ncc0_config() {
        let inst = ThresholdInstance::new(vec![1, 1]);
        let _ = realize_ncc1(&inst, Config::ncc0(1));
    }
}
