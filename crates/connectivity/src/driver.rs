//! Drivers: run the distributed threshold realizations on simulated
//! networks, assemble the overlay, and certify it with max-flow.

use crate::distributed::{ncc0, ncc1};
use crate::verify::{check_thresholds, ThresholdReport};
use crate::ThresholdInstance;
use dgr_core::verify as core_verify;
use dgr_graph::Graph;
use dgr_ncc::{Config, Model, Network, NodeId, RunMetrics, SimError};
use std::collections::HashMap;

/// How many nodes at most get the full `O(n²)`-flow all-pairs check;
/// larger instances use the hub check (which the paper's own proof
/// reduces to).
const ALL_PAIRS_LIMIT: usize = 24;

/// A certified threshold realization.
#[derive(Clone, Debug)]
pub struct ThresholdRealization {
    /// The realized overlay.
    pub graph: Graph,
    /// Requirement per node.
    pub rho: HashMap<NodeId, usize>,
    /// Node IDs in knowledge-path order.
    pub path_order: Vec<NodeId>,
    /// Explicit neighbor lists (NCC0 driver only; empty for NCC1).
    pub explicit_neighbors: HashMap<NodeId, Vec<NodeId>>,
    /// The max-flow certification report.
    pub report: ThresholdReport,
    /// Simulator metrics.
    pub metrics: RunMetrics,
}

fn rho_assignment(
    net: &Network,
    inst: &ThresholdInstance,
) -> HashMap<NodeId, usize> {
    net.ids_in_path_order()
        .iter()
        .copied()
        .zip(inst.rho.iter().copied())
        .collect()
}

/// Runs the Theorem 17 NCC1 star construction.
///
/// # Errors
///
/// Propagates simulator errors.
///
/// # Panics
///
/// Panics if `config` is not an NCC1 configuration.
pub fn realize_ncc1(
    inst: &ThresholdInstance,
    config: Config,
) -> Result<ThresholdRealization, SimError> {
    assert_eq!(config.model, Model::Ncc1, "Theorem 17 requires NCC1");
    let net = Network::new(inst.len(), config);
    let by_id = rho_assignment(&net, inst);
    let result = net.run(|h| ncc1::realize(h, by_id[&h.id()]))?;
    let metrics = result.metrics.clone();
    // Implicit: each edge is stored at its adding endpoint.
    let assembled = core_verify::assemble_implicit(
        net.ids_in_path_order(),
        result.outputs.into_iter().map(|(id, o)| (id, o.neighbors)),
    );
    let report = check_thresholds(
        &assembled.graph,
        &by_id,
        inst.len() <= ALL_PAIRS_LIMIT,
    );
    Ok(ThresholdRealization {
        graph: assembled.graph,
        rho: by_id,
        path_order: net.ids_in_path_order().to_vec(),
        explicit_neighbors: HashMap::new(),
        report,
        metrics,
    })
}

/// Runs the Algorithm 6 NCC0 explicit construction. Use a queueing
/// configuration.
///
/// # Errors
///
/// Propagates simulator errors; panics if the explicit symmetry is broken
/// (a protocol bug, not an input condition).
pub fn realize_ncc0(
    inst: &ThresholdInstance,
    config: Config,
) -> Result<ThresholdRealization, SimError> {
    let net = Network::new(inst.len(), config);
    let by_id = rho_assignment(&net, inst);
    let result = net.run(|h| ncc0::realize(h, by_id[&h.id()]))?;
    let metrics = result.metrics.clone();
    let lists: HashMap<NodeId, Vec<NodeId>> = result
        .outputs
        .into_iter()
        .map(|(id, o)| (id, o.neighbors))
        .collect();
    let assembled =
        core_verify::assemble_explicit(net.ids_in_path_order(), &lists)
            .expect("Algorithm 6 lost explicit symmetry");
    let report = check_thresholds(
        &assembled.graph,
        &by_id,
        inst.len() <= ALL_PAIRS_LIMIT,
    );
    Ok(ThresholdRealization {
        graph: assembled.graph,
        rho: by_id,
        path_order: net.ids_in_path_order().to_vec(),
        explicit_neighbors: lists,
        report,
        metrics,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ncc1_driver_smoke() {
        let inst = ThresholdInstance::new(vec![2, 2, 1, 1, 1]);
        let out = realize_ncc1(&inst, Config::ncc1(55)).unwrap();
        assert!(out.report.satisfied);
        assert!(out.explicit_neighbors.is_empty());
    }

    #[test]
    #[should_panic(expected = "NCC1")]
    fn ncc1_driver_rejects_ncc0_config() {
        let inst = ThresholdInstance::new(vec![1, 1]);
        let _ = realize_ncc1(&inst, Config::ncc0(1));
    }
}
