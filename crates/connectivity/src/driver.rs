//! Drivers: run the distributed threshold realizations on simulated
//! networks, assemble the overlay, and certify it with max-flow.
//!
//! [`realize_ncc1`] runs the direct-style Theorem 17 implementation on the
//! threaded oracle engine; [`realize_ncc1_batched`] runs the step-function
//! port ([`ncc1_step::Ncc1Star`]) on the batched executor. Both make the
//! same deterministic hub and edge choices, so they realize the same
//! overlay — `batched_and_threaded_realize_the_same_overlay` below holds
//! them to that.

#[cfg(feature = "threaded")]
use crate::distributed::{ncc0, ncc1};
use crate::distributed::{ncc0_exact, ncc0_step, ncc1_step, ThresholdOutcome};
use crate::verify::{check_thresholds, ThresholdReport};
use crate::ThresholdInstance;
use dgr_core::verify as core_verify;
use dgr_graph::Graph;
use dgr_ncc::event::reborrow;
use dgr_ncc::{
    Config, EngineKind, EngineStats, Model, Network, NodeId, RunEvent, RunMetrics, SimError, Sink,
};
use dgr_primitives::sort::SortBackend;
use std::collections::BTreeMap;

/// How many nodes at most get the full `O(n²)`-flow all-pairs check;
/// larger instances use the hub check (which the paper's own proof
/// reduces to).
const ALL_PAIRS_LIMIT: usize = 24;

/// A certified threshold realization.
#[derive(Clone, Debug)]
pub struct ThresholdRealization {
    /// The realized overlay.
    pub graph: Graph,
    /// Requirement per node.
    pub rho: BTreeMap<NodeId, usize>,
    /// Node IDs in knowledge-path order.
    pub path_order: Vec<NodeId>,
    /// Explicit neighbor lists (NCC0 driver only; empty for NCC1).
    pub explicit_neighbors: BTreeMap<NodeId, Vec<NodeId>>,
    /// The max-flow certification report.
    pub report: ThresholdReport,
    /// Simulator metrics.
    pub metrics: RunMetrics,
}

fn rho_assignment(net: &Network, inst: &ThresholdInstance) -> BTreeMap<NodeId, usize> {
    net.assign_in_path_order(&inst.rho)
}

/// Which threshold construction the engine room runs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ThresholdAlgo {
    /// Theorem 17: the NCC1 star construction (`O~(1)` rounds; requires
    /// an NCC1 configuration; implicit overlay).
    Ncc1Star,
    /// Algorithm 6 / Theorem 18 with the default cyclic-pipeline phase 1
    /// (`O~(Δ)` rounds; explicit overlay; queueing policy).
    Ncc0Pipeline,
    /// Algorithm 6 **paper-exact**: phase 1 via the masked prefix
    /// envelope recursion, plus the distinctness patch, phase-2 pipeline
    /// and explicitness acks — see
    /// [`crate::distributed::ncc0_exact`].
    Ncc0Exact,
}

/// A completed threshold-realization run: the certified realization plus
/// the executor's internal statistics.
#[derive(Clone, Debug)]
pub struct ThresholdRun {
    /// The realized overlay with its certification report.
    pub output: ThresholdRealization,
    /// Executor-internal statistics (all-zero on the threaded oracle).
    pub engine: EngineStats,
}

/// The **engine room** of the threshold realizations — one typed entry
/// point over construction × engine × sorting backend, driven by the
/// `dgr::Realization` facade builder.
///
/// `certify = false` skips the max-flow certification (an `O(n)`-flows
/// cost that dominates at six-digit `n`); the returned report then has
/// `pairs_checked == 0`. The NCC1 star ignores the sorting backend (it
/// never sorts).
///
/// # Errors
///
/// Propagates simulator errors, and [`SimError::EngineUnavailable`] when
/// the threaded oracle is requested without the `threaded` feature.
///
/// # Panics
///
/// Panics if `algo` is [`ThresholdAlgo::Ncc1Star`] and `config` is not an
/// NCC1 configuration, or if an explicit construction loses edge symmetry
/// (a protocol bug, not an input condition).
pub fn realize_threshold_run(
    inst: &ThresholdInstance,
    config: Config,
    algo: ThresholdAlgo,
    engine: EngineKind,
    sort: SortBackend,
    certify: bool,
    mut sink: Option<&mut dyn Sink>,
) -> Result<ThresholdRun, SimError> {
    let net = Network::new(inst.len(), config);
    let by_id = rho_assignment(&net, inst);
    match algo {
        ThresholdAlgo::Ncc1Star => {
            assert_eq!(net.model(), Model::Ncc1, "Theorem 17 requires NCC1");
            #[cfg(feature = "threaded")]
            if engine == EngineKind::Threaded {
                let result =
                    net.run_observed(reborrow(&mut sink), |h| ncc1::realize(h, by_id[&h.id()]))?;
                let engine_stats = result.engine.clone();
                return Ok(ThresholdRun {
                    output: certify_implicit_run(&net, by_id, result, certify, sink),
                    engine: engine_stats,
                });
            }
            let result = net.run_protocol_on(engine, None, reborrow(&mut sink), |s| {
                ncc1_step::Ncc1Star::new(s, by_id[&s.id])
            })?;
            let engine_stats = result.engine.clone();
            Ok(ThresholdRun {
                output: certify_implicit_run(&net, by_id, result, certify, sink),
                engine: engine_stats,
            })
        }
        ThresholdAlgo::Ncc0Pipeline => {
            #[cfg(feature = "threaded")]
            if engine == EngineKind::Threaded && sort == SortBackend::Bitonic {
                let result =
                    net.run_observed(reborrow(&mut sink), |h| ncc0::realize(h, by_id[&h.id()]))?;
                let engine_stats = result.engine.clone();
                return Ok(ThresholdRun {
                    output: certify_explicit_run(&net, by_id, result, certify, sink),
                    engine: engine_stats,
                });
            }
            let result = net.run_protocol_on(engine, None, reborrow(&mut sink), |s| {
                ncc0_step::Ncc0Threshold::with_sort(by_id[&s.id], sort)
            })?;
            let engine_stats = result.engine.clone();
            Ok(ThresholdRun {
                output: certify_explicit_run(&net, by_id, result, certify, sink),
                engine: engine_stats,
            })
        }
        ThresholdAlgo::Ncc0Exact => {
            let result = net.run_protocol_on(engine, None, reborrow(&mut sink), |s| {
                ncc0_exact::Ncc0Exact::with_sort(by_id[&s.id], sort)
            })?;
            let engine_stats = result.engine.clone();
            Ok(ThresholdRun {
                output: certify_explicit_run(&net, by_id, result, certify, sink),
                engine: engine_stats,
            })
        }
    }
}

/// Shared explicit-realization assembly + optional certification. The
/// certification narrates itself into the sink (driver-level events,
/// after the engine's `Done`).
fn certify_explicit_run(
    net: &Network,
    by_id: BTreeMap<NodeId, usize>,
    result: dgr_ncc::RunResult<ThresholdOutcome>,
    certify: bool,
    sink: Option<&mut dyn Sink>,
) -> ThresholdRealization {
    let metrics = result.metrics.clone();
    let lists: BTreeMap<NodeId, Vec<NodeId>> = result
        .outputs
        .into_iter()
        .map(|(id, o)| (id, o.neighbors))
        .collect();
    let assembled = core_verify::assemble_explicit(net.ids_in_path_order(), &lists)
        .expect("Algorithm 6 lost explicit symmetry");
    let report = run_certification(&assembled.graph, &by_id, certify, sink);
    ThresholdRealization {
        graph: assembled.graph,
        rho: by_id,
        path_order: net.ids_in_path_order().to_vec(),
        explicit_neighbors: lists,
        report,
        metrics,
    }
}

/// Runs (or skips) the max-flow certification, narrating it into the
/// sink: `CertificationStarted` before the flows, `CertificationResult`
/// after. A skipped certification emits nothing — there is no event to
/// mistake for a verdict.
fn run_certification(
    graph: &Graph,
    by_id: &BTreeMap<NodeId, usize>,
    certify: bool,
    mut sink: Option<&mut dyn Sink>,
) -> ThresholdReport {
    if !certify {
        return skipped_report(graph);
    }
    if let Some(sink) = sink.as_mut() {
        sink.emit(&RunEvent::CertificationStarted { nodes: by_id.len() });
    }
    let report = check_thresholds(graph, by_id, by_id.len() <= ALL_PAIRS_LIMIT);
    if let Some(sink) = sink.as_mut() {
        sink.emit(&RunEvent::CertificationResult {
            satisfied: report.satisfied,
            pairs_checked: report.pairs_checked,
        });
    }
    report
}

/// A report marking the certification as skipped: `skipped` is set, so
/// the vacuous `satisfied` cannot be mistaken for a real verdict
/// ([`ThresholdReport::certified`] returns false).
fn skipped_report(graph: &Graph) -> ThresholdReport {
    ThresholdReport {
        satisfied: true,
        skipped: true,
        pairs_checked: 0,
        first_violation: None,
        edges: graph.edge_count(),
    }
}

/// Runs the Theorem 17 NCC1 star construction.
///
/// # Errors
///
/// Propagates simulator errors.
///
/// # Panics
///
/// Panics if `config` is not an NCC1 configuration.
#[cfg(feature = "threaded")]
#[deprecated(note = "use `dgr::Realization` (or the `realize_threshold_run` engine room)")]
pub fn realize_ncc1(
    inst: &ThresholdInstance,
    config: Config,
) -> Result<ThresholdRealization, SimError> {
    realize_threshold_run(
        inst,
        config,
        ThresholdAlgo::Ncc1Star,
        EngineKind::Threaded,
        SortBackend::Bitonic,
        true,
        None,
    )
    .map(|run| run.output)
}

/// Runs the Theorem 17 star construction as a step-function protocol on
/// the **batched engine** — the production path; unlike the threaded
/// driver it is practical at six-digit and seven-digit `n`.
///
/// # Errors
///
/// Propagates simulator errors.
///
/// # Panics
///
/// Panics if `config` is not an NCC1 configuration.
#[deprecated(note = "use `dgr::Realization` (or the `realize_threshold_run` engine room)")]
pub fn realize_ncc1_batched(
    inst: &ThresholdInstance,
    config: Config,
) -> Result<ThresholdRealization, SimError> {
    realize_threshold_run(
        inst,
        config,
        ThresholdAlgo::Ncc1Star,
        EngineKind::Batched,
        SortBackend::Bitonic,
        true,
        None,
    )
    .map(|run| run.output)
}

/// Shared implicit-realization assembly + optional max-flow
/// certification (both engines' NCC1 runs funnel through here).
fn certify_implicit_run(
    net: &Network,
    by_id: BTreeMap<NodeId, usize>,
    result: dgr_ncc::RunResult<ThresholdOutcome>,
    certify: bool,
    sink: Option<&mut dyn Sink>,
) -> ThresholdRealization {
    let metrics = result.metrics.clone();
    // Implicit: each edge is stored at its adding endpoint.
    let assembled = core_verify::assemble_implicit(
        net.ids_in_path_order(),
        result.outputs.into_iter().map(|(id, o)| (id, o.neighbors)),
    );
    let report = run_certification(&assembled.graph, &by_id, certify, sink);
    ThresholdRealization {
        graph: assembled.graph,
        rho: by_id,
        path_order: net.ids_in_path_order().to_vec(),
        explicit_neighbors: BTreeMap::new(),
        report,
        metrics,
    }
}

/// Runs the Algorithm 6 NCC0 explicit construction. Use a queueing
/// configuration.
///
/// # Errors
///
/// Propagates simulator errors; panics if the explicit symmetry is broken
/// (a protocol bug, not an input condition).
#[cfg(feature = "threaded")]
#[deprecated(note = "use `dgr::Realization` (or the `realize_threshold_run` engine room)")]
pub fn realize_ncc0(
    inst: &ThresholdInstance,
    config: Config,
) -> Result<ThresholdRealization, SimError> {
    realize_threshold_run(
        inst,
        config,
        ThresholdAlgo::Ncc0Pipeline,
        EngineKind::Threaded,
        SortBackend::Bitonic,
        true,
        None,
    )
    .map(|run| run.output)
}

/// Runs the Algorithm 6 NCC0 explicit construction on the **batched
/// executor** — the production engine, practical at six-digit `n`. Use a
/// queueing configuration.
///
/// # Errors
///
/// Propagates simulator errors; panics if the explicit symmetry is broken
/// (a protocol bug, not an input condition).
#[deprecated(note = "use `dgr::Realization` (or the `realize_threshold_run` engine room)")]
pub fn realize_ncc0_batched(
    inst: &ThresholdInstance,
    config: Config,
) -> Result<ThresholdRealization, SimError> {
    realize_threshold_run(
        inst,
        config,
        ThresholdAlgo::Ncc0Pipeline,
        EngineKind::Batched,
        SortBackend::Bitonic,
        true,
        None,
    )
    .map(|run| run.output)
}

/// The paper-exact Algorithm 6 **phase 1 in isolation**: realize the
/// prefix degrees `ρ(x₁) … ρ(x_{d₀+1})` by a Theorem 13 upper-envelope
/// realization run *on the prefix sub-network* (a masked run — exactly
/// the recursion the paper prescribes), with the ρ-sorted order baked
/// into the driver's assignment bookkeeping. Returns the realized prefix
/// overlay for studying the phase-1 guarantees directly; the fully
/// composed protocol — distributed sort included — is
/// [`ThresholdAlgo::Ncc0Exact`].
///
/// # Errors
///
/// Propagates simulator errors.
pub fn realize_prefix_envelope_run(
    inst: &ThresholdInstance,
    config: Config,
    engine: EngineKind,
    sink: Option<&mut dyn Sink>,
) -> Result<dgr_core::DegreesRun, SimError> {
    let n = inst.len();
    // Sorted-by-ρ assignment: the prefix of the ρ-sorted order maps onto
    // the first path positions (assignment order is driver bookkeeping —
    // the nodes themselves never see it).
    let mut rho_sorted = inst.rho.clone();
    rho_sorted.sort_unstable_by(|a, b| b.cmp(a));
    let d0 = rho_sorted.first().copied().unwrap_or(0);
    let prefix = (d0 + 1).min(n);
    let mask: Vec<bool> = (0..n).map(|i| i < prefix).collect();
    dgr_core::realize_degrees(
        &rho_sorted,
        Some(&mask),
        config,
        dgr_core::distributed::proto::Flavor::Envelope,
        engine,
        SortBackend::Bitonic,
        sink,
    )
}

/// The paper-exact Algorithm 6 phase 1 on the batched executor.
///
/// # Errors
///
/// Propagates simulator errors.
#[deprecated(note = "use `dgr::Realization` (or the `realize_prefix_envelope_run` engine room)")]
pub fn realize_prefix_envelope_batched(
    inst: &ThresholdInstance,
    config: Config,
) -> Result<dgr_core::DriverOutput, SimError> {
    realize_prefix_envelope_run(inst, config, EngineKind::Batched, None).map(|run| run.output)
}

#[cfg(all(test, feature = "threaded"))]
// The unit tests double as coverage of the deprecated delegating shims.
#[allow(deprecated)]
mod tests {
    use super::*;

    #[test]
    fn ncc1_driver_smoke() {
        let inst = ThresholdInstance::new(vec![2, 2, 1, 1, 1]);
        let out = realize_ncc1(&inst, Config::ncc1(55)).unwrap();
        assert!(out.report.satisfied);
        assert!(out.explicit_neighbors.is_empty());
    }

    #[test]
    fn batched_and_threaded_realize_the_same_overlay() {
        for rho in [
            vec![2, 2, 1, 1, 1],
            vec![4, 3, 2, 2, 1, 1, 1, 1],
            vec![3; 9],
        ] {
            let inst = ThresholdInstance::new(rho);
            let threaded = realize_ncc1(&inst, Config::ncc1(77)).unwrap();
            let batched = realize_ncc1_batched(&inst, Config::ncc1(77)).unwrap();
            assert!(batched.report.satisfied);
            assert_eq!(
                threaded.graph.edge_list(),
                batched.graph.edge_list(),
                "engines disagree on the realized overlay"
            );
        }
    }

    #[test]
    fn batched_ncc1_scales_past_the_threaded_engine() {
        // 2k nodes, fully certified (the hub check is n-1 max-flows, so
        // the six-digit-scale structural checks live in tests/scale.rs).
        let n = 2_000;
        let inst = ThresholdInstance::new(vec![3; n]);
        let out = realize_ncc1_batched(&inst, Config::ncc1(88)).unwrap();
        assert!(out.report.satisfied);
        assert!(out.metrics.is_clean());
        assert!(out.metrics.rounds <= 2 * 13);
    }

    #[test]
    #[should_panic(expected = "NCC1")]
    fn ncc1_driver_rejects_ncc0_config() {
        let inst = ThresholdInstance::new(vec![1, 1]);
        let _ = realize_ncc1(&inst, Config::ncc0(1));
    }
}
