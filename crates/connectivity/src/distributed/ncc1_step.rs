//! Theorem 17 on the **batched engine**: the NCC1 star construction as a
//! step-function protocol.
//!
//! Same algorithm as [`ncc1`](super::ncc1), different aggregation
//! machinery: instead of building a `PathCtx` (which is direct-style), the
//! protocol aggregates `(ρ, ID)` over the **rank tree** — the binary-heap
//! ordering of the globally known sorted ID list, where rank `r`'s parent
//! is rank `(r-1)/2`. Every node computes its own rank locally (NCC1 makes
//! the sorted list common knowledge), so the tree needs zero rounds to
//! build; the up-aggregation and down-broadcast each take
//! `⌊log2 n⌋` rounds with at most 2 messages per node per round.
//!
//! The choice of the hub `w` (smallest-ID maximizer of `ρ`) and of each
//! node's edge set `X_v` (w plus the first `ρ(v)−1` other IDs of the
//! sorted list) is identical to the direct-style implementation, so both
//! engines realize the *same overlay graph* — which the driver tests
//! assert.

use super::ThresholdOutcome;
use dgr_ncc::{tags, NodeId, NodeProtocol, NodeSeed, RoundCtx, Status, WireMsg};
use std::sync::Arc;

/// Up-aggregation payload: (best ρ so far, its smallest ID).
const TAG_AGG_UP: u16 = tags::USER_BASE + 40;
/// Down-broadcast payload: the global (max ρ, hub ID).
const TAG_AGG_DOWN: u16 = tags::USER_BASE + 41;

/// Depth of rank `r` in the binary-heap rank tree.
fn depth(rank: usize) -> u32 {
    usize::BITS - 1 - (rank + 1).leading_zeros()
}

/// Rounds the protocol takes on `n` nodes: one up pass and one down pass
/// over the rank tree (0 for `n = 1`).
pub fn rounds_for(n: usize) -> u64 {
    2 * depth(n - 1) as u64
}

/// The NCC1 star construction at one node.
#[derive(Debug)]
pub struct Ncc1Star {
    /// This node's requirement `ρ(v)`.
    rho: usize,
    /// The globally known sorted ID list.
    all_ids: Arc<Vec<NodeId>>,
    /// My rank in the sorted list.
    rank: usize,
    /// Deepest rank's depth (the up phase takes this many rounds).
    max_depth: u32,
    /// Running aggregate: smallest ID among the largest-ρ nodes seen.
    best: (u64, NodeId),
    /// The global result, once known.
    global: Option<(u64, NodeId)>,
}

impl Ncc1Star {
    /// Builds the protocol for one node with requirement `rho`.
    ///
    /// # Panics
    ///
    /// Panics under NCC0 (the construction needs the global ID list).
    pub fn new(seed: &NodeSeed<'_>, rho: usize) -> Self {
        let all_ids = Arc::clone(seed.all_ids());
        let rank = all_ids
            .binary_search(&seed.id)
            .expect("own ID missing from the global list");
        // The rank tree spans the *participants* (the global list), which
        // under a masked run is smaller than the network's n.
        let max_depth = depth(all_ids.len() - 1);
        Ncc1Star {
            rho,
            rank,
            max_depth,
            best: (rho as u64, seed.id),
            all_ids,
            global: None,
        }
    }

    /// Folds one candidate into the running (max ρ, min ID) aggregate.
    fn fold(&mut self, rho: u64, id: NodeId) {
        if rho > self.best.0 || (rho == self.best.0 && id < self.best.1) {
            self.best = (rho, id);
        }
    }

    /// Child ranks of `rank` that exist in the participant rank tree.
    fn children(&self) -> impl Iterator<Item = usize> {
        let r = self.rank;
        let participants = self.all_ids.len();
        [2 * r + 1, 2 * r + 2]
            .into_iter()
            .filter(move |&c| c < participants)
    }

    /// The final outcome once the hub is known.
    fn outcome(&self, my_id: NodeId, w: NodeId) -> ThresholdOutcome {
        let mut outcome = ThresholdOutcome {
            rho: self.rho,
            neighbors: Vec::new(),
        };
        if my_id != w {
            // X_v: w plus the first ρ(v)-1 other IDs from the global list
            // (the same deterministic choice as the direct-style twin).
            outcome.neighbors.push(w);
            outcome.neighbors.extend(
                self.all_ids
                    .iter()
                    .copied()
                    .filter(|&x| x != my_id && x != w)
                    .take(self.rho.saturating_sub(1)),
            );
        }
        outcome
    }
}

impl NodeProtocol for Ncc1Star {
    type Output = ThresholdOutcome;

    fn step(&mut self, ctx: &mut RoundCtx<'_>) -> Status<ThresholdOutcome> {
        let round = ctx.round();
        let d = depth(self.rank);

        // Fold in whatever arrived: child aggregates during the up phase,
        // the global result during the down phase.
        for env in ctx.inbox() {
            match env.msg.tag {
                TAG_AGG_UP => {
                    let (rho, id) = (env.word(), env.addr());
                    self.fold(rho, id);
                }
                TAG_AGG_DOWN => {
                    self.global = Some((env.word(), env.addr()));
                }
                _ => {}
            }
        }

        // Up phase: depth-d nodes send their aggregate at round
        // `max_depth - d`; the root just finishes aggregating.
        if self.rank > 0 && round == (self.max_depth - d) as u64 {
            let parent = self.all_ids[(self.rank - 1) / 2];
            let (rho, id) = self.best;
            ctx.send(parent, WireMsg::addr_word(TAG_AGG_UP, id, rho));
            return Status::Continue;
        }

        // The root turns its aggregate into the global result.
        if self.rank == 0 && round == self.max_depth as u64 {
            self.global = Some(self.best);
        }

        // Down phase: on learning the global result, forward it to the
        // children (if any) in this node's designated round, then retire.
        if let Some((max_rho, w)) = self.global {
            if round == (self.max_depth + d) as u64 {
                let mut has_children = false;
                for c in self.children() {
                    has_children = true;
                    let child = self.all_ids[c];
                    ctx.send(child, WireMsg::addr_word(TAG_AGG_DOWN, w, max_rho));
                }
                if has_children {
                    // Participate in the round that carries the forwards;
                    // the outcome is emitted on the next step.
                    return Status::Continue;
                }
            }
            return Status::Done(self.outcome(ctx.id(), w));
        }

        Status::Continue
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dgr_ncc::{Config, Network};
    use std::collections::HashMap;

    fn run(rho: Vec<usize>, seed: u64) -> dgr_ncc::RunResult<ThresholdOutcome> {
        let net = Network::new(rho.len(), Config::ncc1(seed));
        let by_id: HashMap<NodeId, usize> = net
            .ids_in_path_order()
            .iter()
            .copied()
            .zip(rho.iter().copied())
            .collect();
        net.run_protocol(|s| Ncc1Star::new(s, by_id[&s.id]))
            .unwrap()
    }

    #[test]
    fn hub_is_smallest_id_maximizer() {
        let rho = vec![2, 4, 4, 1, 3];
        let result = run(rho.clone(), 31);
        assert!(result.metrics.is_clean());
        // Reconstruct the expected hub.
        let order = result.gk_order();
        let max = 4;
        let w = order
            .iter()
            .zip(&rho)
            .filter(|(_, &r)| r == max)
            .map(|(&id, _)| id)
            .min()
            .unwrap();
        // Every non-hub node's first neighbor is the hub; the hub itself
        // outputs no edges.
        for (id, out) in &result.outputs {
            if *id == w {
                assert!(out.neighbors.is_empty());
            } else {
                assert_eq!(out.neighbors[0], w);
                assert_eq!(out.neighbors.len(), rho_of(&order, &rho, *id).min(4));
            }
        }
    }

    fn rho_of(order: &[NodeId], rho: &[usize], id: NodeId) -> usize {
        rho[order.iter().position(|&x| x == id).unwrap()]
    }

    #[test]
    fn rounds_are_logarithmic_and_independent_of_delta() {
        let small = run(vec![2; 32], 62);
        let large = run(vec![20; 32], 62);
        assert_eq!(small.metrics.rounds, large.metrics.rounds);
        assert_eq!(small.metrics.rounds, rounds_for(32));
    }

    #[test]
    fn masked_run_spans_only_participants() {
        // 20 network slots, 13 participants: the rank tree must be sized
        // from the participant list, not the full network.
        let n = 20;
        let net = Network::new(n, Config::ncc1(41));
        let mask: Vec<bool> = (0..n).map(|i| i % 3 != 1).collect();
        let order = net.ids_in_path_order().to_vec();
        let rho: HashMap<NodeId, usize> = order
            .iter()
            .enumerate()
            .map(|(i, &id)| (id, 1 + i % 3))
            .collect();
        let result = net
            .run_protocol_masked(&mask, |s| Ncc1Star::new(s, rho[&s.id]))
            .unwrap();
        assert!(result.metrics.is_clean());
        assert_eq!(result.outputs.len(), 13);
        // Hub: smallest-ID participant among the rho-maximizers.
        let max = result.outputs.iter().map(|(id, _)| rho[id]).max().unwrap();
        let w = result
            .outputs
            .iter()
            .filter(|(id, _)| rho[id] == max)
            .map(|(id, _)| *id)
            .min()
            .unwrap();
        for (id, out) in &result.outputs {
            if *id == w {
                assert!(out.neighbors.is_empty());
            } else {
                assert_eq!(out.neighbors[0], w);
                // Edges only to participants.
                assert!(out
                    .neighbors
                    .iter()
                    .all(|x| result.outputs.iter().any(|(p, _)| p == x)));
            }
        }
    }

    #[test]
    fn single_node_realizes_trivially() {
        let result = run(vec![1], 1);
        // A single node cannot need edges (ρ < n is enforced upstream; we
        // pass 1 here to exercise the degenerate tree).
        assert!(result.outputs[0].1.neighbors.is_empty());
    }
}
