//! The **paper-exact** Algorithm 6 as one batched protocol: phase 1 via
//! the masked prefix envelope recursion, the phase-2 head-ward pipeline,
//! and the staggered explicitness acknowledgements — composed end to end.
//!
//! [`Ncc0Threshold`](super::ncc0_step::Ncc0Threshold) substitutes a
//! cyclic token pipeline for phase 1 (see `ncc0.rs` for why that
//! deviation is the *default*: the paper's Theorem 13 envelope has
//! multigraph semantics, so a prefix node can end up with fewer
//! *distinct* neighbors than its requirement). This protocol instead
//! follows the paper to the letter and then **closes that gap
//! explicitly**:
//!
//! 1. establish, sort by `ρ` non-increasing, broadcast `d₀` and `x₁` —
//!    identical to the default driver;
//! 2. **phase 1, paper-exact**: the prefix `x₁ … x_{d₀+1}` of the sorted
//!    path becomes a sub-path (everyone else holds a non-member view),
//!    the full context is re-established on it, and the Theorem 13
//!    upper-envelope realization runs *on the sub-network* as a
//!    [`DegreesCore`] whose control aggregations (δ, N, the error flag)
//!    ride the **full-network** tree — so all `n` nodes, prefix or not,
//!    stay in lockstep with the recursion's data-dependent phase loop;
//! 3. **distinctness patch**: phase-1 edges are made explicit right away
//!    (staggered acknowledgements), so every prefix node holds its
//!    complete two-sided list; the maximum shortfall (requirement minus
//!    distinct phase-1 neighbors) is then aggregated, and when positive,
//!    each short node injects that many tokens into the prefix ring — a
//!    token hops until it finds a node that is not yet a neighbor of its
//!    origin (a pigeonhole argument over `ρ ≤ n-1` guarantees one within
//!    the ring, and complete lists make the freshness check exact);
//! 4. **phase 2**: every node past the prefix announces itself to its
//!    `ρ` sorted predecessors through the head-ward token pipeline —
//!    exactly the default driver's stage;
//! 5. **explicitness**: the patch and pipeline edge holders acknowledge
//!    the other endpoint by staggered sends, making every neighbor list
//!    complete and symmetric.
//!
//! Run it under a queueing capacity policy (the staggered
//! acknowledgements rely on receive-side queueing). The protocol is a
//! plain [`NodeProtocol`], so the threaded oracle runs it bit-identically
//! (`crates/connectivity/tests/ncc0_exact.rs`).
//!
//! [`NodeProtocol`]: dgr_ncc::NodeProtocol
//! [`DegreesCore`]: dgr_core::distributed::proto::DegreesCore

use super::ncc0::pipeline_rounds;
use super::ncc0_step::PipelineStep;
use super::ThresholdOutcome;
use dgr_core::distributed::proto::{DegreesCore, Flavor};
use dgr_ncc::{tags, NodeId, NodeProtocol, RoundCtx, Status, WireMsg};
use dgr_primitives::proto::ops::{AggBcastStep, BroadcastAddrStep};
use dgr_primitives::proto::sort::SortStep;
use dgr_primitives::proto::stagger::StaggerStep;
use dgr_primitives::proto::step::{AggOp, Poll, Step};
use dgr_primitives::proto::EstablishCtx;
use dgr_primitives::sort::{Order, SortBackend, SortedPath};
use dgr_primitives::vpath::VPath;
use dgr_primitives::{stagger, PathCtx};
use std::collections::HashSet;
use std::collections::VecDeque;

/// The distinctness patch: tokens walk the prefix ring until they find a
/// node that is not yet adjacent to their origin, at most `batch`
/// forwards per round.
///
/// Rounds: exactly `patch_rounds(..)` — every node of the epoch must use
/// the same budget (non-members idle through it).
#[derive(Debug)]
struct RingPatchStep {
    next_hop: Option<NodeId>,
    rounds: u64,
    batch: usize,
    t: u64,
    queue: VecDeque<(NodeId, u64)>,
    known: HashSet<NodeId>,
    my_id: NodeId,
    accepted: Vec<NodeId>,
}

/// Round budget of the patch ring: worst-case token travel (a token
/// skips at most `d0` occupied nodes) plus the per-edge traffic bound
/// (each of the `≤ d0+1` upstream origins injects at most
/// `max_shortfall` tokens), plus drain slack.
fn patch_rounds(d0: usize, max_shortfall: u64, batch: usize) -> u64 {
    let travel = d0 as u64 + 2;
    let traffic = ((d0 as u64 + 1) * max_shortfall).div_ceil(batch as u64);
    travel + traffic + 10
}

impl RingPatchStep {
    fn new(
        next_hop: Option<NodeId>,
        inject: u64,
        known: HashSet<NodeId>,
        rounds: u64,
        batch: usize,
        hops: u64,
        my_id: NodeId,
    ) -> Self {
        let mut queue = VecDeque::new();
        for _ in 0..inject {
            queue.push_back((my_id, hops));
        }
        RingPatchStep {
            next_hop,
            rounds,
            batch,
            t: 0,
            queue,
            known,
            my_id,
            accepted: Vec::new(),
        }
    }
}

impl Step for RingPatchStep {
    type Out = Vec<NodeId>;

    fn poll(&mut self, ctx: &mut RoundCtx<'_>) -> Poll<Vec<NodeId>> {
        if self.t > 0 {
            for env in ctx.inbox().iter().filter(|e| e.msg.tag == tags::TOKEN) {
                let origin = env.addr();
                let hops = env.word();
                if origin != self.my_id && !self.known.contains(&origin) {
                    // Fresh for this origin: the edge lands here.
                    self.known.insert(origin);
                    self.accepted.push(origin);
                } else if hops > 1 {
                    self.queue.push_back((origin, hops - 1));
                }
            }
        }
        if self.t == self.rounds {
            debug_assert!(self.queue.is_empty(), "patch ring budget too small");
            return Poll::Ready(std::mem::take(&mut self.accepted));
        }
        if let Some(next) = self.next_hop {
            for _ in 0..self.batch.min(self.queue.len()) {
                let (origin, hops) = self.queue.pop_front().unwrap();
                ctx.send(next, WireMsg::addr_word(tags::TOKEN, origin, hops));
            }
        }
        self.t += 1;
        Poll::Pending
    }
}

enum Stage {
    Establish(EstablishCtx),
    Sort(SortStep),
    D0(AggBcastStep),
    X1(BroadcastAddrStep),
    SubEstablish(EstablishCtx),
    Core(Box<DegreesCore>),
    /// Explicitness for the phase-1 envelope edges, run *before* the
    /// shortfall aggregation so every prefix node judges its deficiency
    /// (and the patch ring judges freshness) from a complete list.
    AcksPhase1(StaggerStep),
    ShortfallMax(AggBcastStep),
    Patch(RingPatchStep),
    Phase2(PipelineStep),
    Acks(StaggerStep),
}

/// The composed paper-exact Algorithm 6 state machine at one node.
/// `rho ≥ 1` is this node's requirement; every node runs the same
/// protocol.
pub struct Ncc0Exact {
    rho: usize,
    sort: SortBackend,
    stage: Stage,
    ctx: Option<PathCtx>,
    sp: Option<SortedPath>,
    d0: usize,
    x1: NodeId,
    outcome: ThresholdOutcome,
    /// One-sided edges this node holds (it must ack the other endpoint).
    one_sided: Vec<NodeId>,
}

impl Ncc0Exact {
    /// Builds the protocol for one node (bitonic Theorem 3 backend for
    /// the ρ sort; the recursion's internal re-sorts are always bitonic —
    /// sub-path sorts have non-member participants).
    pub fn new(rho: usize) -> Self {
        Self::with_sort(rho, SortBackend::Bitonic)
    }

    /// Builds the protocol with an explicit backend for the outer ρ sort.
    pub fn with_sort(rho: usize, sort: SortBackend) -> Self {
        Ncc0Exact {
            rho,
            sort,
            stage: Stage::Establish(EstablishCtx::new()),
            ctx: None,
            sp: None,
            d0: 0,
            x1: 0,
            outcome: ThresholdOutcome {
                rho,
                neighbors: Vec::new(),
            },
            one_sided: Vec::new(),
        }
    }

    fn ctx(&self) -> &PathCtx {
        self.ctx.as_ref().expect("stage before establish completed")
    }

    fn sp(&self) -> &SortedPath {
        self.sp.as_ref().expect("stage before sort completed")
    }

    fn prefix_len(&self) -> usize {
        (self.d0 + 1).min(self.ctx().vp.len)
    }

    fn in_prefix(&self) -> bool {
        self.sp().rank < self.prefix_len()
    }

    /// This node's view of the prefix sub-path (non-member past it).
    fn prefix_vp(&self) -> VPath {
        let prefix = self.prefix_len();
        let sp = self.sp();
        if sp.rank < prefix {
            VPath {
                member: true,
                pred: sp.vp.pred,
                succ: (sp.rank + 1 < prefix)
                    .then(|| sp.vp.succ.expect("prefix rank without a sorted successor")),
                len: prefix,
            }
        } else {
            VPath::non_member(prefix)
        }
    }

    /// The cyclic next hop on the prefix ring (the wrap edge addresses
    /// `x₁`, whose ID was broadcast).
    fn next_cyclic(&self) -> Option<NodeId> {
        if !self.in_prefix() {
            return None;
        }
        if self.sp().rank + 1 < self.prefix_len() {
            self.sp().vp.succ
        } else {
            Some(self.x1)
        }
    }
}

impl NodeProtocol for Ncc0Exact {
    type Output = ThresholdOutcome;

    fn step(&mut self, rctx: &mut RoundCtx<'_>) -> Status<ThresholdOutcome> {
        // Narrate the composition for the event stream: macro phases
        // (`setup`/`phase1`/`patch`/`phase2`/`acks` — the paper's
        // structure, `patch` only when the distinctness gap is positive)
        // plus the fine-grained stage labels. Marks are observational
        // only; every node marks and the engines deduplicate.
        if rctx.round() == 0 {
            rctx.mark_phase("setup");
            rctx.mark_stage("establish");
        }
        loop {
            match &mut self.stage {
                Stage::Establish(s) => match s.poll(rctx) {
                    Poll::Pending => return Status::Continue,
                    Poll::Ready(ctx) => {
                        if ctx.vp.len == 1 {
                            return Status::Done(std::mem::take(&mut self.outcome));
                        }
                        rctx.mark_stage("sort");
                        self.stage = Stage::Sort(SortStep::on_ctx(
                            &ctx,
                            self.rho as u64,
                            Order::Descending,
                            rctx.id(),
                            self.sort,
                        ));
                        self.ctx = Some(ctx);
                    }
                },
                Stage::Sort(s) => match s.poll(rctx) {
                    Poll::Pending => return Status::Continue,
                    Poll::Ready(sp) => {
                        self.sp = Some(sp);
                        let ctx = self.ctx();
                        rctx.mark_stage("d0");
                        self.stage = Stage::D0(AggBcastStep::new(
                            ctx.vp,
                            ctx.tree.clone(),
                            self.rho as u64,
                            AggOp::Max,
                        ));
                    }
                },
                Stage::D0(s) => match s.poll(rctx) {
                    Poll::Pending => return Status::Continue,
                    Poll::Ready(d0) => {
                        self.d0 = d0 as usize;
                        let ctx = self.ctx();
                        let mine = (self.sp().rank == 0).then(|| rctx.id());
                        rctx.mark_stage("x1");
                        self.stage =
                            Stage::X1(BroadcastAddrStep::new(ctx.vp, ctx.tree.clone(), mine));
                    }
                },
                Stage::X1(s) => match s.poll(rctx) {
                    Poll::Pending => return Status::Continue,
                    Poll::Ready(x1) => {
                        self.x1 = x1;
                        // Phase 1, paper-exact: re-establish the full
                        // context on the prefix sub-path.
                        rctx.mark_phase("phase1");
                        rctx.mark_stage("sub-establish");
                        self.stage = Stage::SubEstablish(EstablishCtx::on(self.prefix_vp()));
                    }
                },
                Stage::SubEstablish(s) => match s.poll(rctx) {
                    Poll::Pending => return Status::Continue,
                    Poll::Ready(sub) => {
                        rctx.mark_stage("envelope-core");
                        let degree = if self.in_prefix() { self.rho } else { 0 };
                        let ctx = self.ctx();
                        self.stage = Stage::Core(Box::new(DegreesCore::new(
                            degree,
                            Flavor::Envelope,
                            SortBackend::Bitonic,
                            sub,
                            ctx.vp,
                            ctx.tree.clone(),
                            rctx.id(),
                        )));
                    }
                },
                Stage::Core(s) => match s.poll(rctx) {
                    Poll::Pending => return Status::Continue,
                    Poll::Ready(out) => {
                        let out = out.expect("the prefix envelope cannot refuse");
                        // Envelope edges are one-sided at the recipient:
                        // ack them immediately so the shortfall (and the
                        // patch ring's freshness checks) see complete,
                        // two-sided neighbor lists. Fan-in per node is
                        // bounded by its own multicast fan-out ≤ d₀.
                        self.outcome.neighbors.extend(out.neighbors.iter().copied());
                        let (spread, drain) = stagger::plan(self.d0 + 1, rctx.capacity());
                        let replies = out
                            .neighbors
                            .iter()
                            .map(|&origin| (origin, WireMsg::signal(tags::EDGE_ACK)))
                            .collect();
                        rctx.mark_stage("acks-phase1");
                        self.stage = Stage::AcksPhase1(StaggerStep::new(replies, spread, drain));
                    }
                },
                Stage::AcksPhase1(s) => match s.poll(rctx) {
                    Poll::Pending => return Status::Continue,
                    Poll::Ready(acks) => {
                        self.outcome.neighbors.extend(
                            acks.iter()
                                .filter(|(_, msg)| msg.tag == tags::EDGE_ACK)
                                .map(|(src, _)| *src),
                        );
                        let shortfall = if self.in_prefix() {
                            let distinct: HashSet<NodeId> =
                                self.outcome.neighbors.iter().copied().collect();
                            (self.rho.saturating_sub(distinct.len())) as u64
                        } else {
                            0
                        };
                        let ctx = self.ctx();
                        rctx.mark_stage("shortfall");
                        self.stage = Stage::ShortfallMax(AggBcastStep::new(
                            ctx.vp,
                            ctx.tree.clone(),
                            shortfall,
                            AggOp::Max,
                        ));
                    }
                },
                Stage::ShortfallMax(s) => match s.poll(rctx) {
                    Poll::Pending => return Status::Continue,
                    Poll::Ready(max_shortfall) => {
                        let b = (rctx.capacity() / 2).max(1);
                        if max_shortfall == 0 {
                            // No distinctness gap this run (the common
                            // case): skip straight to phase 2.
                            rctx.mark_phase("phase2");
                            rctx.mark_stage("phase2");
                            self.stage = Stage::Phase2(self.phase2_stage(rctx, b));
                            continue;
                        }
                        let known: HashSet<NodeId> = self
                            .outcome
                            .neighbors
                            .iter()
                            .copied()
                            .chain(std::iter::once(rctx.id()))
                            .collect();
                        let my_shortfall = if self.in_prefix() {
                            (self.rho.saturating_sub(known.len() - 1)) as u64
                        } else {
                            0
                        };
                        let rounds = patch_rounds(self.d0, max_shortfall, b);
                        let hops = self.prefix_len() as u64;
                        rctx.mark_phase("patch");
                        rctx.mark_stage("patch");
                        self.stage = Stage::Patch(RingPatchStep::new(
                            self.next_cyclic(),
                            my_shortfall,
                            known,
                            rounds,
                            b,
                            hops,
                            rctx.id(),
                        ));
                    }
                },
                Stage::Patch(s) => match s.poll(rctx) {
                    Poll::Pending => return Status::Continue,
                    Poll::Ready(accepted) => {
                        self.one_sided.extend(accepted.iter().copied());
                        self.outcome.neighbors.extend(accepted.iter().copied());
                        let b = (rctx.capacity() / 2).max(1);
                        rctx.mark_phase("phase2");
                        rctx.mark_stage("phase2");
                        self.stage = Stage::Phase2(self.phase2_stage(rctx, b));
                    }
                },
                Stage::Phase2(s) => match s.poll(rctx) {
                    Poll::Pending => return Status::Continue,
                    Poll::Ready(received) => {
                        self.one_sided.extend(received.iter().copied());
                        self.outcome.neighbors.extend(received.iter().copied());
                        // Explicitness for the patch + phase-2 edges
                        // (phase 1 was acked before the shortfall).
                        // Fan-in per node is at most ~2·d₀ (phase-2
                        // injections + patch injections).
                        let (spread, drain) = stagger::plan(2 * self.d0 + 2, rctx.capacity());
                        let replies = self
                            .one_sided
                            .iter()
                            .map(|&origin| (origin, WireMsg::signal(tags::EDGE_ACK)))
                            .collect();
                        rctx.mark_phase("acks");
                        rctx.mark_stage("acks");
                        self.stage = Stage::Acks(StaggerStep::new(replies, spread, drain));
                    }
                },
                Stage::Acks(s) => match s.poll(rctx) {
                    Poll::Pending => return Status::Continue,
                    Poll::Ready(acks) => {
                        self.outcome.neighbors.extend(
                            acks.iter()
                                .filter(|(_, msg)| msg.tag == tags::EDGE_ACK)
                                .map(|(src, _)| *src),
                        );
                        return Status::Done(std::mem::take(&mut self.outcome));
                    }
                },
            }
        }
    }
}

impl Ncc0Exact {
    /// Phase 2 of Algorithm 6: the head-ward pipeline over the whole
    /// sorted path; ranks past the prefix inject `ttl = ρ`.
    fn phase2_stage(&self, rctx: &RoundCtx<'_>, b: usize) -> PipelineStep {
        let inject = (!self.in_prefix()).then_some(self.rho);
        let rounds = pipeline_rounds(self.d0, b);
        PipelineStep::new(self.sp().vp.pred, inject, rounds, b, rctx.id())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dgr_ncc::{Config, Network};
    use dgr_primitives::proto::step::StepProtocol;

    /// Drives the distinctness patch directly on a hand-built ring (NCC1,
    /// so the ring links are addressable without an establishment phase):
    /// a token must *skip* the origin's existing neighbors and land on
    /// the first fresh node, and multiple tokens from one origin must
    /// land on distinct nodes.
    #[test]
    fn patch_tokens_skip_known_neighbors() {
        let n = 6;
        let net = Network::new(n, Config::ncc1(3).with_queueing());
        let mut sorted = net.ids_in_path_order().to_vec();
        sorted.sort_unstable();
        let ring = sorted.clone();
        let origin = ring[0];
        let (known1, known2) = (ring[1], ring[2]);
        let rounds = patch_rounds(n - 1, 2, 2);
        let result = net
            .run_protocol(|seed| {
                let me = seed.id;
                let idx = ring.iter().position(|&x| x == me).unwrap();
                let next = ring[(idx + 1) % ring.len()];
                // The head is short two distinct neighbors; ring[1] and
                // ring[2] already hold a (one-sided) edge to it, so its
                // tokens must skip past them (freshness is judged by the
                // *recipient*, which is the endpoint that stores envelope
                // edges).
                let (inject, known) = if me == origin {
                    (2, HashSet::new())
                } else if me == known1 || me == known2 {
                    (0, std::iter::once(origin).collect())
                } else {
                    (0, HashSet::new())
                };
                StepProtocol::new(RingPatchStep::new(
                    Some(next),
                    inject,
                    known,
                    rounds,
                    2,
                    ring.len() as u64 - 1,
                    me,
                ))
            })
            .unwrap();
        assert!(result.metrics.is_clean());
        for (id, accepted) in &result.outputs {
            if *id == ring[3] || *id == ring[4] {
                assert_eq!(accepted, &vec![origin], "token should land at {id}");
            } else {
                assert!(accepted.is_empty(), "unexpected acceptance at {id}");
            }
        }
    }

    /// The budget formula covers the worst case the module doc argues.
    #[test]
    fn patch_budget_grows_with_shortfall() {
        assert!(patch_rounds(8, 0, 4) >= 10);
        assert!(patch_rounds(8, 3, 4) > patch_rounds(8, 1, 4));
    }
}
