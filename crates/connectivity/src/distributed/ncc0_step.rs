//! Algorithm 6 / Theorem 18 on the **batched engine**: the NCC0 explicit
//! threshold construction as a step-function protocol.
//!
//! The same construction as the direct-style [`ncc0`](super::ncc0) —
//! sort by `ρ`, broadcast `d₀` and `x₁`, the cyclic prefix pipeline, the
//! head-ward phase-2 pipeline, the staggered explicitness replies — with
//! each phase a chained [`Step`] sub-protocol, so both engines realize the
//! same overlay in the same rounds
//! (`crates/connectivity/tests/batched_ncc0.rs`). Run it under a queueing
//! capacity policy; the staggered replies rely on receive-side queueing.
//!
//! [`Step`]: dgr_primitives::proto::Step

use super::ncc0::pipeline_rounds;
use super::ThresholdOutcome;
use dgr_ncc::{tags, NodeId, NodeProtocol, RoundCtx, Status, WireMsg};
use dgr_primitives::proto::ops::{AggBcastStep, BroadcastAddrStep};
use dgr_primitives::proto::sort::SortStep;
use dgr_primitives::proto::stagger::StaggerStep;
use dgr_primitives::proto::step::{AggOp, Poll, Step};
use dgr_primitives::proto::EstablishCtx;
use dgr_primitives::sort::{Order, SortedPath};
use dgr_primitives::{stagger, PathCtx};
use std::collections::VecDeque;

/// The token pipeline of Algorithm 6 as a [`Step`]: an injected token
/// `(origin, ttl)` hops along `next_hop` links, each relay recording the
/// origin and forwarding with `ttl - 1` while positive, at most `batch`
/// forwards per round.
///
/// Rounds: exactly `pipeline_rounds(ttl_max, batch)` — every participant
/// of the epoch must pass the same `rounds`.
#[derive(Debug)]
pub struct PipelineStep {
    next_hop: Option<NodeId>,
    rounds: u64,
    batch: usize,
    t: u64,
    queue: VecDeque<(NodeId, u64)>,
    received: Vec<NodeId>,
}

impl PipelineStep {
    /// Builds the step; `inject` starts a token `(my_id, ttl)`.
    pub fn new(
        next_hop: Option<NodeId>,
        inject: Option<usize>,
        rounds: u64,
        batch: usize,
        my_id: NodeId,
    ) -> Self {
        let mut queue = VecDeque::new();
        if let Some(ttl) = inject {
            if ttl > 0 {
                queue.push_back((my_id, ttl as u64));
            }
        }
        PipelineStep {
            next_hop,
            rounds,
            batch,
            t: 0,
            queue,
            received: Vec::new(),
        }
    }
}

impl Step for PipelineStep {
    type Out = Vec<NodeId>;

    fn poll(&mut self, ctx: &mut RoundCtx<'_>) -> Poll<Vec<NodeId>> {
        if self.t > 0 {
            for env in ctx.inbox().iter().filter(|e| e.msg.tag == tags::EDGE) {
                let origin = env.addr();
                let ttl = env.word();
                self.received.push(origin);
                if ttl > 1 {
                    self.queue.push_back((origin, ttl - 1));
                }
            }
        }
        if self.t == self.rounds {
            debug_assert!(self.queue.is_empty(), "pipeline round budget too small");
            return Poll::Ready(std::mem::take(&mut self.received));
        }
        if let Some(next) = self.next_hop {
            for _ in 0..self.batch.min(self.queue.len()) {
                let (origin, ttl) = self.queue.pop_front().unwrap();
                ctx.send(next, WireMsg::addr_word(tags::EDGE, origin, ttl));
            }
        }
        self.t += 1;
        Poll::Pending
    }
}

enum Stage {
    Establish(EstablishCtx),
    Sort(SortStep),
    D0(AggBcastStep),
    X1(BroadcastAddrStep),
    Phase1(PipelineStep),
    Phase2(PipelineStep),
    Acks(StaggerStep),
}

/// The Algorithm 6 state machine at one node. `rho ≥ 1` is this node's
/// requirement; every node runs the same protocol.
pub struct Ncc0Threshold {
    rho: usize,
    sort: dgr_primitives::sort::SortBackend,
    stage: Stage,
    ctx: Option<PathCtx>,
    sp: Option<SortedPath>,
    d0: usize,
    outcome: ThresholdOutcome,
    phase1: Vec<NodeId>,
}

impl Ncc0Threshold {
    /// Builds the protocol for one node (bitonic Theorem 3 backend).
    pub fn new(rho: usize) -> Self {
        Self::with_sort(rho, dgr_primitives::sort::SortBackend::Bitonic)
    }

    /// Builds the protocol with an explicit backend for the ρ sort.
    pub fn with_sort(rho: usize, sort: dgr_primitives::sort::SortBackend) -> Self {
        Ncc0Threshold {
            rho,
            sort,
            stage: Stage::Establish(EstablishCtx::new()),
            ctx: None,
            sp: None,
            d0: 0,
            outcome: ThresholdOutcome {
                rho,
                neighbors: Vec::new(),
            },
            phase1: Vec::new(),
        }
    }

    fn ctx(&self) -> &PathCtx {
        self.ctx.as_ref().expect("stage before establish completed")
    }

    fn rank(&self) -> usize {
        self.sp.as_ref().expect("stage before sort completed").rank
    }
}

impl NodeProtocol for Ncc0Threshold {
    type Output = ThresholdOutcome;

    fn step(&mut self, rctx: &mut RoundCtx<'_>) -> Status<ThresholdOutcome> {
        loop {
            match &mut self.stage {
                Stage::Establish(s) => match s.poll(rctx) {
                    Poll::Pending => return Status::Continue,
                    Poll::Ready(ctx) => {
                        if ctx.vp.len == 1 {
                            return Status::Done(std::mem::take(&mut self.outcome));
                        }
                        self.stage = Stage::Sort(SortStep::on_ctx(
                            &ctx,
                            self.rho as u64,
                            Order::Descending,
                            rctx.id(),
                            self.sort,
                        ));
                        self.ctx = Some(ctx);
                    }
                },
                Stage::Sort(s) => match s.poll(rctx) {
                    Poll::Pending => return Status::Continue,
                    Poll::Ready(sp) => {
                        self.sp = Some(sp);
                        let ctx = self.ctx();
                        self.stage = Stage::D0(AggBcastStep::new(
                            ctx.vp,
                            ctx.tree.clone(),
                            self.rho as u64,
                            AggOp::Max,
                        ));
                    }
                },
                Stage::D0(s) => match s.poll(rctx) {
                    Poll::Pending => return Status::Continue,
                    Poll::Ready(d0) => {
                        self.d0 = d0 as usize;
                        let ctx = self.ctx();
                        let mine = (self.rank() == 0).then(|| rctx.id());
                        self.stage =
                            Stage::X1(BroadcastAddrStep::new(ctx.vp, ctx.tree.clone(), mine));
                    }
                },
                Stage::X1(s) => match s.poll(rctx) {
                    Poll::Pending => return Status::Continue,
                    Poll::Ready(x1) => {
                        // Phase 1: cyclic pipeline around the prefix
                        // x₁ … x_{d₀+1}; the wrap hop addresses x₁.
                        let n = self.ctx().vp.len;
                        let prefix_len = (self.d0 + 1).min(n);
                        let rank = self.rank();
                        let in_prefix = rank < prefix_len;
                        let b = (rctx.capacity() / 2).max(1);
                        let sp = self.sp.as_ref().unwrap();
                        let next_cyclic = if in_prefix {
                            if rank + 1 < prefix_len {
                                sp.vp.succ
                            } else {
                                Some(x1)
                            }
                        } else {
                            None
                        };
                        let inject = in_prefix.then(|| self.rho.min(prefix_len - 1));
                        let rounds = pipeline_rounds(self.d0, b);
                        self.stage = Stage::Phase1(PipelineStep::new(
                            next_cyclic,
                            inject,
                            rounds,
                            b,
                            rctx.id(),
                        ));
                    }
                },
                Stage::Phase1(s) => match s.poll(rctx) {
                    Poll::Pending => return Status::Continue,
                    Poll::Ready(received) => {
                        self.outcome.neighbors.extend(received.iter().copied());
                        self.phase1 = received;
                        // Phase 2: head-ward pipeline on the whole sorted
                        // path; ranks past the prefix inject ttl = ρ.
                        let n = self.ctx().vp.len;
                        let prefix_len = (self.d0 + 1).min(n);
                        let in_prefix = self.rank() < prefix_len;
                        let b = (rctx.capacity() / 2).max(1);
                        let inject = (!in_prefix).then_some(self.rho);
                        let rounds = pipeline_rounds(self.d0, b);
                        let pred = self.sp.as_ref().unwrap().vp.pred;
                        self.stage =
                            Stage::Phase2(PipelineStep::new(pred, inject, rounds, b, rctx.id()));
                    }
                },
                Stage::Phase2(s) => match s.poll(rctx) {
                    Poll::Pending => return Status::Continue,
                    Poll::Ready(received) => {
                        self.outcome.neighbors.extend(received.iter().copied());
                        // Explicitness: every token recipient answers with
                        // its own ID. Fan-in per initiator ≤ d₀.
                        let (spread, drain) = stagger::plan(self.d0, rctx.capacity());
                        let replies = self
                            .phase1
                            .iter()
                            .chain(received.iter())
                            .map(|&origin| (origin, WireMsg::signal(tags::EDGE_ACK)))
                            .collect();
                        self.stage = Stage::Acks(StaggerStep::new(replies, spread, drain));
                    }
                },
                Stage::Acks(s) => match s.poll(rctx) {
                    Poll::Pending => return Status::Continue,
                    Poll::Ready(acks) => {
                        self.outcome.neighbors.extend(
                            acks.iter()
                                .filter(|(_, msg)| msg.tag == tags::EDGE_ACK)
                                .map(|(src, _)| *src),
                        );
                        return Status::Done(std::mem::take(&mut self.outcome));
                    }
                },
            }
        }
    }
}
