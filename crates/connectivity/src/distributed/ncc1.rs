//! Theorem 17: `O~(1)`-round *implicit* threshold realization in NCC1.
//!
//! 1. Find the maximum-`ρ` node `w` (data aggregation) and broadcast its
//!    address.
//! 2. Every node `v ≠ w` locally picks `X_v ∋ w` of size `ρ(v)` from the
//!    globally known ID list and outputs `X_v × {v}` — zero additional
//!    rounds, since NCC1 nodes already know every address.
//!
//! Correctness: `(v,w)` plus `(v, x, w)` for the other `x ∈ X_v` are
//! `ρ(v)` edge-disjoint `v`–`w` paths (every `x` also connected to `w`),
//! and Menger lifts `Conn(v₁, v₂) ≥ min(ρ(v₁), ρ(v₂))` to all pairs.
//! Edges: `Σ_{v≠w} ρ(v) ≤ Σρ ≤ 2·OPT`.

#[cfg(feature = "threaded")]
use {
    super::ThresholdOutcome,
    dgr_ncc::NodeHandle,
    dgr_primitives::{ops, PathCtx},
};

/// Runs the NCC1 star construction at one node. `rho` is this node's
/// requirement; every node must call simultaneously. Requires the NCC1
/// model (panics otherwise, via [`NodeHandle::all_ids`]).
#[cfg(feature = "threaded")]
pub fn realize(h: &mut NodeHandle, rho: usize) -> ThresholdOutcome {
    // Aggregation infrastructure: the path context (O(log n) rounds; in
    // NCC1 the knowledge path is available too, and this is the cheapest
    // O~(1) aggregation structure we have).
    let ctx = PathCtx::establish(h);
    let max_rho = ops::aggregate_broadcast(h, &ctx.vp, &ctx.tree, rho as u64, u64::max);
    // w = the smallest-ID node among the maximizers (broadcast_addr picks
    // the minimum, making the choice consistent everywhere).
    let w = ops::broadcast_addr(
        h,
        &ctx.vp,
        &ctx.tree,
        (rho as u64 == max_rho).then(|| h.id()),
    );

    let mut outcome = ThresholdOutcome {
        rho,
        neighbors: Vec::new(),
    };
    if h.id() != w {
        // X_v: w plus the first ρ(v)-1 other IDs from the global list.
        outcome.neighbors.push(w);
        outcome.neighbors.extend(
            h.all_ids()
                .iter()
                .copied()
                .filter(|&x| x != h.id() && x != w)
                .take(rho.saturating_sub(1)),
        );
        debug_assert_eq!(outcome.neighbors.len(), rho.max(1).min(h.n() - 1));
    }
    outcome
}

#[cfg(all(test, feature = "threaded"))]
// The unit tests double as coverage of the deprecated delegating shims.
#[allow(deprecated)]
mod tests {
    use crate::driver::realize_ncc1;
    use crate::ThresholdInstance;
    use dgr_ncc::Config;

    #[test]
    fn star_realization_meets_thresholds_and_2approx() {
        for rho in [
            vec![1usize, 1, 1, 1, 1],
            vec![3, 3, 3, 3],
            vec![4, 3, 2, 2, 1, 1, 1, 1],
        ] {
            let inst = ThresholdInstance::new(rho.clone());
            let out = realize_ncc1(&inst, Config::ncc1(61)).unwrap();
            assert!(out.report.satisfied, "{rho:?}: {:?}", out.report);
            assert!(
                out.graph.edge_count() <= inst.sum(),
                "{rho:?}: {} edges > Σρ",
                out.graph.edge_count()
            );
            assert!(out.metrics.is_clean());
        }
    }

    #[test]
    fn rounds_are_polylog_constant_in_rho() {
        // O~(1): round count must not depend on Δ = max ρ.
        let small = ThresholdInstance::new(vec![2; 32]);
        let large = ThresholdInstance::new(vec![20; 32]);
        let r1 = realize_ncc1(&small, Config::ncc1(62))
            .unwrap()
            .metrics
            .rounds;
        let r2 = realize_ncc1(&large, Config::ncc1(62))
            .unwrap()
            .metrics
            .rounds;
        assert_eq!(r1, r2, "rounds depend on Δ");
    }
}
