//! Distributed threshold realization (Section 6).
//!
//! [`ncc1`] and [`ncc0`] are direct-style (threaded-oracle) algorithms;
//! [`ncc1_step`] and [`ncc0_step`] are the same constructions as
//! step-function protocols for the batched engine — same overlays,
//! six-digit-node scale.

pub mod ncc0;
pub mod ncc0_exact;
pub mod ncc0_step;
pub mod ncc1;
pub mod ncc1_step;

use dgr_ncc::NodeId;

/// One node's realized edge set for a threshold realization.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ThresholdOutcome {
    /// This node's requirement `ρ(v)`.
    pub rho: usize,
    /// Neighbors this node knows about. For the explicit NCC0 algorithm
    /// both endpoints of every edge list each other; for the implicit
    /// NCC1 algorithm only the edge-adding endpoint does.
    pub neighbors: Vec<NodeId>,
}
