//! Algorithm 6 / Theorem 18: `O~(Δ)`-round *explicit* threshold
//! realization in NCC0 (hence also NCC1).
//!
//! 1. Sort by `ρ` non-increasing; broadcast `d₀ = ρ(x₁)` and `x₁`'s
//!    address.
//! 2. **Phase 1** over the prefix `x₁ … x_{d₀+1}`: rank `i` connects to
//!    the next `ρ(x_i)` ranks *cyclically* (so `x₁`, with
//!    `ρ(x₁) = d₀ =` prefix−1, connects to the entire prefix). The
//!    announcements travel as a hop-by-hop **token pipeline** around the
//!    prefix cycle (the wrap edge is addressable because `x₁`'s ID was
//!    broadcast).
//! 3. **Phase 2**: every later node `x_i` announces its ID to its
//!    `ρ(x_i)` sorted predecessors — the same token pipeline, running
//!    head-ward on the whole sorted path. Because `ρ` is sorted, node
//!    `x_j` relays at most `ρ(x_j) ≤ Δ` tokens, giving `O(Δ + Δ/cap)`
//!    rounds.
//! 4. Recipients reply with their own IDs by staggered sends
//!    (explicitness).
//!
//! **Deviation from the paper** (documented in `DESIGN.md` §4): the paper
//! realizes the prefix degrees via the Theorem 13 upper envelope, whose
//! multigraph semantics can leave a node with fewer *distinct* neighbors
//! than its requirement (a real gap — our test suite caught it). The
//! cyclic construction gives every prefix node `ρ` distinct neighbors by
//! construction, preserving the theorem's correctness argument: `x₁` is
//! adjacent to the whole prefix, each `x_i` has `ρ(x_i)` distinct
//! neighbors all adjacent to `x₁`, so `(x_i, x₁)` plus `(x_i, w, x₁)`
//! give `ρ(x_i)` edge-disjoint paths; induction over phase 2 and
//! Menger's theorem complete it. Edges ≤ `Σρ ≤ 2·OPT` as before.

#[cfg(feature = "threaded")]
use {
    super::ThresholdOutcome,
    dgr_ncc::{tags, Msg, NodeHandle, NodeId},
    dgr_primitives::sort::{self, Order},
    dgr_primitives::{ops, stagger, PathCtx},
    std::collections::VecDeque,
};

/// Number of rounds of a token pipeline with maximum ttl `ttl_max` at
/// forwarding batch `b`: travel distance plus drain slack. (Input rate to
/// any node is at most its predecessor's batch `b`, matching its own
/// forwarding rate, so queues never build up beyond the local injection —
/// travel + `ttl_max/b` + slack covers the worst case.)
pub(crate) fn pipeline_rounds(ttl_max: usize, b: usize) -> u64 {
    ttl_max as u64 + (ttl_max as u64).div_ceil(b as u64) + 10
}

/// Runs a token pipeline epoch: `inject` starts a token `(my ID, ttl)`;
/// every received token's origin is recorded and the token is forwarded
/// to `next_hop` with `ttl - 1` while positive. All nodes must use the
/// same `rounds`.
#[cfg(feature = "threaded")]
fn token_pipeline(
    h: &mut NodeHandle,
    next_hop: Option<NodeId>,
    inject: Option<usize>,
    rounds: u64,
    batch: usize,
) -> Vec<NodeId> {
    let mut queue: VecDeque<(NodeId, u64)> = VecDeque::new();
    if let Some(ttl) = inject {
        if ttl > 0 {
            queue.push_back((h.id(), ttl as u64));
        }
    }
    let mut received = Vec::new();
    for _ in 0..rounds {
        let mut out = Vec::new();
        if let Some(next) = next_hop {
            for _ in 0..batch.min(queue.len()) {
                let (origin, ttl) = queue.pop_front().unwrap();
                out.push((next, Msg::addr_words(tags::EDGE, origin, vec![ttl])));
            }
        }
        let inbox = h.step(out);
        for env in inbox.iter().filter(|e| e.msg.tag == tags::EDGE) {
            let origin = env.addr();
            let ttl = env.word();
            received.push(origin);
            if ttl > 1 {
                queue.push_back((origin, ttl - 1));
            }
        }
    }
    debug_assert!(queue.is_empty(), "pipeline round budget too small");
    received
}

/// Runs Algorithm 6 at one node. `rho ≥ 1` is this node's requirement;
/// every node must call simultaneously. Use a queueing configuration (the
/// explicitness replies rely on receive-side queueing).
#[cfg(feature = "threaded")]
pub fn realize(h: &mut NodeHandle, rho: usize) -> ThresholdOutcome {
    let ctx = PathCtx::establish(h);
    let n = ctx.vp.len;
    let mut outcome = ThresholdOutcome {
        rho,
        neighbors: Vec::new(),
    };
    if n == 1 {
        return outcome;
    }

    // Step 1: sort by ρ; broadcast d₀ and x₁'s address.
    let sp = sort::sort_at(
        h,
        &ctx.vp,
        &ctx.contacts,
        ctx.position,
        rho as u64,
        Order::Descending,
    );
    let rank = sp.rank;
    let d0 = ops::aggregate_broadcast(h, &ctx.vp, &ctx.tree, rho as u64, u64::max) as usize;
    let x1 = ops::broadcast_addr(h, &ctx.vp, &ctx.tree, (rank == 0).then(|| h.id()));
    let prefix_len = (d0 + 1).min(n);
    let in_prefix = rank < prefix_len;
    let b = (h.capacity() / 2).max(1);

    // Phase 1: cyclic pipeline around the prefix. Rank i's token visits
    // ranks i+1 … i+ρ (mod prefix); the wrap hop at the prefix tail goes
    // to x₁ (whose address everyone now knows).
    let next_cyclic = if in_prefix {
        if rank + 1 < prefix_len {
            sp.vp.succ
        } else {
            Some(x1)
        }
    } else {
        None
    };
    let inject = in_prefix.then(|| rho.min(prefix_len - 1));
    let rounds = pipeline_rounds(d0, b);
    let phase1 = token_pipeline(h, next_cyclic, inject, rounds, b);
    outcome.neighbors.extend(phase1.iter().copied());

    // Phase 2: head-ward pipeline on the whole sorted path; rank i ≥
    // prefix injects ttl = ρ (its ρ sorted predecessors).
    let inject = (!in_prefix).then_some(rho);
    let rounds = pipeline_rounds(d0, b);
    let phase2 = token_pipeline(h, sp.vp.pred, inject, rounds, b);
    outcome.neighbors.extend(phase2.iter().copied());

    // Explicitness: every token recipient answers with its own ID so the
    // initiator learns the edge too. Fan-in per initiator ≤ d₀.
    let (spread, drain) = stagger::plan(d0, h.capacity());
    let replies = phase1
        .iter()
        .chain(phase2.iter())
        .map(|&origin| (origin, Msg::signal(tags::EDGE_ACK)))
        .collect();
    let acks = stagger::staggered_send(h, replies, spread, drain);
    outcome.neighbors.extend(
        acks.iter()
            .filter(|e| e.msg.tag == tags::EDGE_ACK)
            .map(|e| e.src),
    );

    outcome
}

#[cfg(all(test, feature = "threaded"))]
// The unit tests double as coverage of the deprecated delegating shims.
#[allow(deprecated)]
mod tests {
    use crate::driver::realize_ncc0;
    use crate::{sequential, ThresholdInstance};
    use dgr_ncc::Config;

    #[test]
    fn explicit_realization_meets_thresholds() {
        for rho in [
            vec![1usize, 1, 1, 1],
            vec![2, 2, 2, 2, 2],
            vec![3, 2, 2, 1, 1, 1],
            vec![4, 4, 3, 2, 2, 1, 1, 1, 1, 1],
        ] {
            let inst = ThresholdInstance::new(rho.clone());
            let out = realize_ncc0(&inst, Config::ncc0(71).with_queueing()).unwrap();
            assert!(out.report.satisfied, "{rho:?}: {:?}", out.report);
            assert!(
                out.graph.edge_count() <= inst.sum(),
                "{rho:?}: {} edges, Σρ = {}",
                out.graph.edge_count(),
                inst.sum()
            );
            // 2-approximation against the universal lower bound.
            assert!(out.graph.edge_count() <= 2 * sequential::edge_lower_bound(&inst));
            assert!(out.metrics.undelivered == 0);
        }
    }

    #[test]
    fn explicitness_both_endpoints_list_every_edge() {
        let inst = ThresholdInstance::new(vec![3, 2, 2, 1, 1, 1, 1, 1]);
        let out = realize_ncc0(&inst, Config::ncc0(72).with_queueing()).unwrap();
        // assemble_explicit (inside the driver) already asserts symmetry;
        // double-check degree consistency here.
        for &id in &out.path_order {
            let mut listed = out.explicit_neighbors[&id].clone();
            listed.sort_unstable();
            listed.dedup();
            let mut actual = out.graph.neighbors_of(id);
            actual.sort_unstable();
            assert_eq!(listed, actual, "node {id}");
        }
    }

    #[test]
    fn uniform_high_rho() {
        // Everyone wants connectivity 5 on n = 12.
        let inst = ThresholdInstance::new(vec![5; 12]);
        let out = realize_ncc0(&inst, Config::ncc0(73).with_queueing()).unwrap();
        assert!(out.report.satisfied, "{:?}", out.report);
    }

    #[test]
    fn all_max_rho() {
        // Everyone wants n-1: the realization must be (close to) complete.
        let n = 8;
        let inst = ThresholdInstance::new(vec![n - 1; n]);
        let out = realize_ncc0(&inst, Config::ncc0(74).with_queueing()).unwrap();
        assert!(out.report.satisfied, "{:?}", out.report);
        assert_eq!(out.graph.edge_count(), n * (n - 1) / 2);
    }

    #[test]
    fn the_multigraph_corner_from_the_paper() {
        // The tiered profile that breaks the paper's Theorem-13-based
        // phase 1 (a prefix node ends with fewer distinct neighbors than
        // its requirement under multigraph envelopes). The cyclic phase 1
        // must satisfy it.
        let mut rho = vec![1usize; 48];
        for r in rho.iter_mut().take(4) {
            *r = 6;
        }
        for r in rho.iter_mut().take(20).skip(4) {
            *r = 3;
        }
        let inst = ThresholdInstance::new(rho);
        let out = realize_ncc0(&inst, Config::ncc0(31).with_queueing()).unwrap();
        assert!(out.report.satisfied, "{:?}", out.report);
    }
}
