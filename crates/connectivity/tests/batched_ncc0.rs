//! Driver-level differential tests for the batched Algorithm 6 (NCC0
//! explicit threshold realization): both engines must realize the same
//! certified overlay in the same number of rounds.

use dgr_connectivity::{
    realize_threshold_run, ThresholdAlgo, ThresholdInstance, ThresholdRealization,
};
use dgr_ncc::{EngineKind, SimError};
use dgr_primitives::sort::SortBackend;

// White-box shorthands over the `realize_threshold_run` engine room.
fn realize_ncc0(
    inst: &ThresholdInstance,
    c: dgr_ncc::Config,
) -> Result<ThresholdRealization, SimError> {
    realize_threshold_run(
        inst,
        c,
        ThresholdAlgo::Ncc0Pipeline,
        EngineKind::Threaded,
        SortBackend::Bitonic,
        true,
        None,
    )
    .map(|run| run.output)
}
fn realize_ncc0_batched(
    inst: &ThresholdInstance,
    c: dgr_ncc::Config,
) -> Result<ThresholdRealization, SimError> {
    realize_threshold_run(
        inst,
        c,
        ThresholdAlgo::Ncc0Pipeline,
        EngineKind::Batched,
        SortBackend::Bitonic,
        true,
        None,
    )
    .map(|run| run.output)
}
use dgr_ncc::Config;

#[test]
fn batched_ncc0_matches_threaded() {
    for rho in [
        vec![1usize, 1, 1, 1],
        vec![2, 2, 2, 2, 2],
        vec![3, 2, 2, 1, 1, 1],
        vec![4, 4, 3, 2, 2, 1, 1, 1, 1, 1],
        vec![5; 12],
    ] {
        let inst = ThresholdInstance::new(rho.clone());
        let config = Config::ncc0(71).with_queueing();
        let threaded = realize_ncc0(&inst, config.clone()).unwrap();
        let batched = realize_ncc0_batched(&inst, config).unwrap();
        assert_eq!(
            threaded.graph.edge_list(),
            batched.graph.edge_list(),
            "{rho:?}: engines realize different overlays"
        );
        assert_eq!(threaded.metrics.rounds, batched.metrics.rounds, "{rho:?}");
        assert_eq!(
            threaded.metrics.messages, batched.metrics.messages,
            "{rho:?}"
        );
        assert!(batched.report.satisfied, "{rho:?}: {:?}", batched.report);
        assert_eq!(batched.metrics.undelivered, 0);
    }
}

#[test]
fn batched_ncc0_survives_the_multigraph_corner() {
    // The tiered profile that broke the paper's Theorem-13-based phase 1;
    // the cyclic construction must satisfy it on the batched engine too.
    let mut rho = vec![1usize; 48];
    for r in rho.iter_mut().take(4) {
        *r = 6;
    }
    for r in rho.iter_mut().take(20).skip(4) {
        *r = 3;
    }
    let inst = ThresholdInstance::new(rho);
    let out = realize_ncc0_batched(&inst, Config::ncc0(31).with_queueing()).unwrap();
    assert!(out.report.satisfied, "{:?}", out.report);
}

#[test]
fn batched_ncc0_all_max_rho_is_complete() {
    let n = 8;
    let inst = ThresholdInstance::new(vec![n - 1; n]);
    let out = realize_ncc0_batched(&inst, Config::ncc0(74).with_queueing()).unwrap();
    assert!(out.report.satisfied);
    assert_eq!(out.graph.edge_count(), n * (n - 1) / 2);
}

#[test]
fn paper_exact_prefix_envelope_realizes_the_prefix_degrees() {
    use dgr_connectivity::realize_prefix_envelope_run;
    // The tiered profile from the paper's multigraph corner: d₀ = 6, so
    // the prefix is the 7 highest-ρ nodes realized as a sub-network.
    let mut rho = vec![1usize; 48];
    for r in rho.iter_mut().take(4) {
        *r = 6;
    }
    for r in rho.iter_mut().take(20).skip(4) {
        *r = 3;
    }
    let inst = ThresholdInstance::new(rho.clone());
    let out = realize_prefix_envelope_run(&inst, Config::ncc0(41), EngineKind::Batched, None)
        .unwrap()
        .output;
    let g = out.expect_realized();
    // Exactly the d₀ + 1 prefix nodes participated.
    assert_eq!(g.path_order.len(), 7);
    assert!(g.metrics.is_clean());
    // Theorem 13 over the sub-network: every prefix node's (multiset)
    // degree covers its requirement, within the 2Σρ budget.
    let mut sorted = rho;
    sorted.sort_unstable_by(|a, b| b.cmp(a));
    let mut envelope_sum = 0;
    for (i, &id) in g.path_order.iter().enumerate() {
        let d_prime = g.multi_degrees[&id];
        assert!(
            d_prime >= sorted[i],
            "prefix rank {i}: envelope {d_prime} < ρ {}",
            sorted[i]
        );
        envelope_sum += d_prime;
    }
    let prefix_sum: usize = sorted[..7].iter().sum();
    assert!(envelope_sum <= 2 * prefix_sum);
    // The sub-network run pays sub-network round budgets: its per-phase
    // primitives run on a 7-node path (log₂ 7 ≈ 3 levels), not the
    // 48-node one.
    assert!(g.metrics.rounds < 400, "rounds = {}", g.metrics.rounds);
}
