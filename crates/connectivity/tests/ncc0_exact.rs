//! Differential + guarantee tests for the composed paper-exact
//! Algorithm 6 ([`dgr_connectivity::distributed::ncc0_exact`]).
//!
//! * Both engines run the same state machine: transcripts (rounds,
//!   messages, words) and overlays must be bit-identical.
//! * The composition must deliver `realize_ncc0_batched`'s guarantees:
//!   max-flow-certified thresholds and full explicit symmetry —
//!   including on instances where the raw prefix envelope under-delivers
//!   distinct neighbors and the distinctness patch has to fire.

use dgr_connectivity::{
    realize_threshold_run, ThresholdAlgo, ThresholdInstance, ThresholdRealization,
};
use dgr_ncc::{Config, EngineKind};
use dgr_primitives::sort::SortBackend;

fn run(inst: &ThresholdInstance, seed: u64, engine: EngineKind) -> ThresholdRealization {
    realize_threshold_run(
        inst,
        Config::ncc0(seed).with_queueing(),
        ThresholdAlgo::Ncc0Exact,
        engine,
        SortBackend::Bitonic,
        true,
        None,
    )
    .unwrap()
    .output
}

#[test]
fn composed_alg6_satisfies_thresholds() {
    for rho in [
        vec![1, 1],
        vec![2, 2, 1, 1, 1],
        vec![4, 3, 2, 2, 1, 1, 1, 1],
        vec![3; 9],
        vec![6, 6, 5, 4, 4, 3, 3, 2, 2, 1, 1, 1, 1],
        vec![1; 12],
    ] {
        let inst = ThresholdInstance::new(rho.clone());
        let out = run(&inst, 55, EngineKind::Batched);
        assert!(
            out.report.satisfied,
            "rho={rho:?}: {:?}",
            out.report.first_violation
        );
        assert!(out.metrics.undelivered == 0, "rho={rho:?}");
        // Explicit: every node's list covers at least its requirement in
        // distinct neighbors.
        for (&id, &r) in &out.rho {
            let mut nbs = out.explicit_neighbors[&id].clone();
            nbs.sort_unstable();
            nbs.dedup();
            assert!(
                nbs.len() >= r,
                "node {id} wanted {r} distinct neighbors, got {}",
                nbs.len()
            );
        }
    }
}

#[test]
fn composed_alg6_is_engine_invariant() {
    for (rho, seed) in [
        (vec![2, 2, 1, 1, 1], 7u64),
        (vec![4, 3, 2, 2, 1, 1, 1, 1], 8),
        (vec![3; 9], 9),
        (vec![5, 4, 4, 3, 2, 2, 1, 1, 1, 1, 1], 10),
    ] {
        let inst = ThresholdInstance::new(rho.clone());
        let batched = run(&inst, seed, EngineKind::Batched);
        let threaded = run(&inst, seed, EngineKind::Threaded);
        assert_eq!(
            batched.metrics.rounds, threaded.metrics.rounds,
            "rho={rho:?}: engines disagree on rounds"
        );
        assert_eq!(
            batched.metrics.messages, threaded.metrics.messages,
            "rho={rho:?}"
        );
        assert_eq!(batched.metrics.words, threaded.metrics.words, "rho={rho:?}");
        assert_eq!(
            batched.graph.edge_list(),
            threaded.graph.edge_list(),
            "rho={rho:?}: engines disagree on the realized overlay"
        );
    }
}

#[test]
fn composed_alg6_matches_pipeline_guarantees() {
    // The composed protocol and the default cyclic-pipeline substitute
    // realize different overlays, but both must certify the same
    // instance and stay within the 2x edge bound.
    for rho in [
        vec![3, 3, 2, 2, 1, 1],
        vec![4; 8],
        vec![5, 4, 3, 2, 1, 1, 1, 1, 1],
    ] {
        let inst = ThresholdInstance::new(rho.clone());
        let exact = run(&inst, 21, EngineKind::Batched);
        let pipeline = realize_threshold_run(
            &inst,
            Config::ncc0(21).with_queueing(),
            ThresholdAlgo::Ncc0Pipeline,
            EngineKind::Batched,
            SortBackend::Bitonic,
            true,
            None,
        )
        .unwrap()
        .output;
        assert!(exact.report.satisfied, "exact failed on rho={rho:?}");
        assert!(pipeline.report.satisfied, "pipeline failed on rho={rho:?}");
        let bound = inst.sum(); // Σρ ≤ 2·OPT
        assert!(exact.graph.edge_count() <= bound, "rho={rho:?}");
    }
}

#[test]
fn composed_alg6_sweeps_random_instances() {
    // Seeded pseudo-random instances; every one must certify. This is
    // the sweep that exercises the distinctness patch: envelope
    // duplicate edges appear on skewed multi-phase prefixes.
    let mut state = 0x12345678u64;
    let mut next = move || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (state >> 33) as usize
    };
    for trial in 0..12 {
        let n = 6 + next() % 18;
        let rho: Vec<usize> = (0..n).map(|_| 1 + next() % (n - 1)).collect();
        let inst = ThresholdInstance::new(rho.clone());
        let out = run(&inst, 100 + trial, EngineKind::Batched);
        assert!(
            out.report.satisfied,
            "trial {trial} rho={rho:?}: {:?}",
            out.report.first_violation
        );
    }
}
