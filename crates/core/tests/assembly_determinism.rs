//! Differential determinism tests for the assembly/verification surface.
//!
//! The driver-output maps (`multi_degrees`, `requested`,
//! `explicit_neighbors`) and the claim map inside
//! [`dgr_core::verify::assemble_explicit`] moved from `HashMap` to
//! `BTreeMap` so that everything downstream of an iteration — `Graph`
//! adjacency-list order, blame messages, duplicate accounting — is a
//! function of the claims alone, never of a per-process hash seed. These
//! tests pin that property differentially: the same logical input, fed in
//! scrambled construction orders and across repeated runs, must reproduce
//! bit-identical outputs.

use dgr_core::distributed::proto::Flavor;
use dgr_core::driver::{realize_degrees, DriverOutput, RealizedOutput};
use dgr_core::verify::{assemble_explicit, degrees_match};
use dgr_graph::Graph;
use dgr_ncc::{Config, EngineKind, NodeId};
use dgr_primitives::sort::SortBackend;
use std::collections::BTreeMap;

/// Batched-engine realization, pinned to the bitonic sort backend.
fn realize_batched(degrees: &[usize], config: Config, flavor: Flavor) -> DriverOutput {
    realize_degrees(
        degrees,
        None,
        config,
        flavor,
        EngineKind::Batched,
        SortBackend::Bitonic,
        None,
    )
    .map(|run| run.output)
    .unwrap()
}

/// Everything order-sensitive that assembly produces, flattened for
/// comparison. `neighbor_lists` keeps the *adjacency order* (not a sorted
/// view): it is exactly the artifact hash-order used to scramble.
#[derive(Debug, PartialEq, Eq)]
struct AssemblyFingerprint {
    edge_list: Vec<(NodeId, NodeId)>,
    neighbor_lists: Vec<(NodeId, Vec<NodeId>)>,
    multi_degrees: Vec<(NodeId, usize)>,
    duplicate_edges: usize,
}

fn fingerprint(graph: &Graph, multi: &BTreeMap<NodeId, usize>, dups: usize) -> AssemblyFingerprint {
    AssemblyFingerprint {
        edge_list: graph.edge_list(),
        neighbor_lists: graph
            .ids()
            .iter()
            .map(|&id| (id, graph.neighbors_of(id)))
            .collect(),
        multi_degrees: multi.iter().map(|(&k, &v)| (k, v)).collect(),
        duplicate_edges: dups,
    }
}

fn realized_fingerprint(out: &RealizedOutput) -> AssemblyFingerprint {
    fingerprint(&out.graph, &out.multi_degrees, out.duplicate_edges)
}

/// A small symmetric claim set over sparse 64-bit IDs: a 4-cycle plus a
/// chord and a pendant, the kind of overlay explicit realizations emit.
fn claim_set() -> (Vec<NodeId>, Vec<(NodeId, Vec<NodeId>)>) {
    let nodes = vec![3, 11, 400, 7_000, 52_001];
    let lists = vec![
        (3, vec![11, 400, 7_000]),
        (11, vec![3, 400]),
        (400, vec![7_000, 3, 11]),
        (7_000, vec![400, 3, 52_001]),
        (52_001, vec![7_000]),
    ];
    (nodes, lists)
}

#[test]
fn explicit_assembly_ignores_claim_construction_order() {
    let (nodes, lists) = claim_set();
    let forward: BTreeMap<NodeId, Vec<NodeId>> = lists.iter().cloned().collect();
    let reversed: BTreeMap<NodeId, Vec<NodeId>> = lists.iter().rev().cloned().collect();
    let a = assemble_explicit(&nodes, &forward).unwrap();
    let b = assemble_explicit(&nodes, &reversed).unwrap();
    let fa = fingerprint(&a.graph, &a.multi_degrees, a.duplicate_edges);
    let fb = fingerprint(&b.graph, &b.multi_degrees, b.duplicate_edges);
    assert_eq!(fa, fb, "assembly depends on map construction order");
    // The adjacency order itself must be canonical (claims sorted by
    // (min, max) endpoint), not merely stable: pin it explicitly.
    assert_eq!(
        fa.neighbor_lists[0],
        (3, vec![11, 400, 7_000]),
        "adjacency push order is not the sorted claim order"
    );
}

#[test]
fn asymmetry_blame_is_the_smallest_offending_edge() {
    // Two asymmetric claims; the reported one must be the (min, max)
    // smallest regardless of construction order, because the claim map
    // iterates in key order.
    let nodes = vec![1, 2, 9];
    for build_order in [
        [(9, vec![2]), (1, vec![2]), (2, vec![])],
        [(1, vec![2]), (2, vec![]), (9, vec![2])],
    ] {
        let lists: BTreeMap<NodeId, Vec<NodeId>> = build_order.into_iter().collect();
        let err = assemble_explicit(&nodes, &lists).unwrap_err();
        assert!(
            err.contains("(1, 2)"),
            "blame should name the smallest asymmetric edge, got: {err}"
        );
    }
}

#[test]
fn degree_mismatch_blame_is_the_smallest_node_id() {
    let g = Graph::from_edges([1, 2, 3], [(1, 2)]).unwrap();
    // Two mismatches (nodes 2 and 3); blame must land on node 2.
    let requested: BTreeMap<NodeId, usize> = [(1, 1), (2, 5), (3, 5)].into();
    let err = degrees_match(&g, &requested).unwrap_err();
    assert!(
        err.starts_with("node 2:"),
        "blame should be the first mismatch in ID order, got: {err}"
    );
}

#[test]
fn repeated_runs_reassemble_bit_identically() {
    // Same seed, same sequence, run twice end to end: every order-bearing
    // artifact of the driver output must match exactly — including the
    // raw adjacency order that pre-migration flowed through a HashMap.
    let degrees = vec![3, 3, 2, 2, 2, 1, 1, 1, 1, 2];
    for seed in [7, 41] {
        let a = realize_batched(&degrees, Config::ncc0(seed), Flavor::Implicit)
            .expect_realized()
            .clone();
        let b = realize_batched(&degrees, Config::ncc0(seed), Flavor::Implicit)
            .expect_realized()
            .clone();
        assert_eq!(
            realized_fingerprint(&a),
            realized_fingerprint(&b),
            "implicit driver output differs across identical runs (seed {seed})"
        );
        assert_eq!(a.path_order, b.path_order);
        assert_eq!(a.metrics.rounds, b.metrics.rounds);
    }
}

#[test]
fn explicit_driver_neighbor_lists_are_reproducible() {
    let degrees = vec![2, 2, 2, 1, 1];
    let a = realize_batched(&degrees, Config::ncc0(23), Flavor::Explicit)
        .expect_realized()
        .clone();
    let b = realize_batched(&degrees, Config::ncc0(23), Flavor::Explicit)
        .expect_realized()
        .clone();
    assert_eq!(realized_fingerprint(&a), realized_fingerprint(&b));
    // The per-node claimed lists are maps now; their iteration must agree
    // entry for entry (keys *and* claimed-neighbor order).
    let av: Vec<_> = a.explicit_neighbors.iter().collect();
    let bv: Vec<_> = b.explicit_neighbors.iter().collect();
    assert_eq!(av, bv, "explicit neighbor claims differ across runs");
}
