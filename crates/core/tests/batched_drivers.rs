//! Driver-level differential tests: the batched realization drivers must
//! realize exactly the overlay the threaded (direct-style) drivers
//! realize, in the same number of rounds — plus a property sweep over
//! random degree sequences.

use dgr_core::distributed::proto::Flavor;
use dgr_core::driver::{realize_degrees, DriverOutput};
use dgr_ncc::{Config, EngineKind, SimError};
use dgr_primitives::sort::SortBackend;
use proptest::prelude::*;

// White-box shorthands over the `realize_degrees` engine room, pinned to
// the (engine, flavor) plane each differential compares.
fn realize(
    degrees: &[usize],
    config: Config,
    flavor: Flavor,
    engine: EngineKind,
) -> Result<DriverOutput, SimError> {
    realize_degrees(
        degrees,
        None,
        config,
        flavor,
        engine,
        SortBackend::Bitonic,
        None,
    )
    .map(|run| run.output)
}

fn realize_implicit(d: &[usize], c: Config) -> Result<DriverOutput, SimError> {
    realize(d, c, Flavor::Implicit, EngineKind::Threaded)
}
fn realize_implicit_batched(d: &[usize], c: Config) -> Result<DriverOutput, SimError> {
    realize(d, c, Flavor::Implicit, EngineKind::Batched)
}
fn realize_approx(d: &[usize], c: Config) -> Result<DriverOutput, SimError> {
    realize(d, c, Flavor::Envelope, EngineKind::Threaded)
}
fn realize_approx_batched(d: &[usize], c: Config) -> Result<DriverOutput, SimError> {
    realize(d, c, Flavor::Envelope, EngineKind::Batched)
}
fn realize_explicit(d: &[usize], c: Config) -> Result<DriverOutput, SimError> {
    realize(d, c, Flavor::Explicit, EngineKind::Threaded)
}
fn realize_explicit_batched(d: &[usize], c: Config) -> Result<DriverOutput, SimError> {
    realize(d, c, Flavor::Explicit, EngineKind::Batched)
}
fn realize_masked_threaded(
    d: &[usize],
    mask: &[bool],
    c: Config,
    flavor: Flavor,
) -> Result<DriverOutput, SimError> {
    realize_degrees(
        d,
        Some(mask),
        c,
        flavor,
        EngineKind::Threaded,
        SortBackend::Bitonic,
        None,
    )
    .map(|run| run.output)
}
fn realize_masked_batched(
    d: &[usize],
    mask: &[bool],
    c: Config,
    flavor: Flavor,
) -> Result<DriverOutput, SimError> {
    realize_degrees(
        d,
        Some(mask),
        c,
        flavor,
        EngineKind::Batched,
        SortBackend::Bitonic,
        None,
    )
    .map(|run| run.output)
}

/// Asserts both drivers agree in verdict, overlay, phases and budget.
fn assert_drivers_agree(threaded: &DriverOutput, batched: &DriverOutput, what: &str) {
    match (threaded, batched) {
        (
            DriverOutput::Unrealizable { metrics: mt },
            DriverOutput::Unrealizable { metrics: mb },
        ) => {
            assert_eq!(mt.rounds, mb.rounds, "{what}: refusal rounds diverge");
            assert_eq!(mt.messages, mb.messages, "{what}: refusal messages diverge");
        }
        (DriverOutput::Realized(t), DriverOutput::Realized(b)) => {
            assert_eq!(
                t.graph.edge_list(),
                b.graph.edge_list(),
                "{what}: engines realize different overlays"
            );
            assert_eq!(t.phases, b.phases, "{what}: phase counts diverge");
            assert_eq!(t.metrics.rounds, b.metrics.rounds, "{what}: rounds diverge");
            assert_eq!(
                t.metrics.messages, b.metrics.messages,
                "{what}: messages diverge"
            );
            assert_eq!(t.metrics.words, b.metrics.words, "{what}: words diverge");
        }
        _ => panic!("{what}: drivers disagree about realizability"),
    }
}

#[test]
fn implicit_batched_matches_threaded() {
    for degrees in [
        vec![2, 2, 2],
        vec![4, 4, 4, 4, 4],
        vec![5, 1, 1, 1, 1, 1],
        vec![3, 3, 2, 2, 1, 1],
        vec![0, 0, 0],
        vec![6; 32],
        vec![3, 3, 1, 1],       // non-graphic
        vec![5, 5, 4, 3, 2, 1], // non-graphic
    ] {
        let threaded = realize_implicit(&degrees, Config::ncc0(7)).unwrap();
        let batched = realize_implicit_batched(&degrees, Config::ncc0(7)).unwrap();
        assert_drivers_agree(&threaded, &batched, &format!("implicit {degrees:?}"));
    }
}

#[test]
fn approx_batched_matches_threaded() {
    for degrees in [
        vec![3, 3, 1, 0],
        vec![4, 4, 4, 1, 1],
        vec![5, 5, 4, 3, 2, 1],
        vec![3, 2, 2, 2, 1], // graphic input: exact realization
    ] {
        let threaded = realize_approx(&degrees, Config::ncc0(13)).unwrap();
        let batched = realize_approx_batched(&degrees, Config::ncc0(13)).unwrap();
        assert_drivers_agree(&threaded, &batched, &format!("approx {degrees:?}"));
    }
}

#[test]
fn explicit_batched_matches_threaded() {
    for degrees in [
        vec![4, 3, 3, 2, 2, 2, 1, 1],
        vec![2, 2, 1, 1],
        vec![3, 3, 1, 1], // non-graphic
    ] {
        let config = Config::ncc0(31).with_queueing();
        let threaded = realize_explicit(&degrees, config.clone()).unwrap();
        let batched = realize_explicit_batched(&degrees, config).unwrap();
        assert_drivers_agree(&threaded, &batched, &format!("explicit {degrees:?}"));
    }
}

#[test]
fn explicit_batched_star_fan_in_is_paced() {
    // Δ = n-1 at the hub: the staggered hand-off must keep delivery under
    // capacity on the batched engine too.
    let n = 48;
    let mut degrees = vec![1usize; n];
    degrees[0] = n - 1;
    let out = realize_explicit_batched(&degrees, Config::ncc0(35).with_queueing()).unwrap();
    let g = out.expect_realized();
    assert!(g.metrics.max_received_per_round <= g.metrics.capacity);
    assert_eq!(g.graph.degree_sequence()[0], n - 1);
    assert_eq!(g.metrics.undelivered, 0);
}

/// `realize_on`-over-a-prefix, both engines: a masked sub-network run
/// (only the first `k` path positions participate; `G_k` links across the
/// rest) must produce identical overlays, rounds and messages on the
/// batched executor and the thread-per-node oracle — the differential
/// guarantee behind Algorithm 6's paper-exact prefix recursion.
#[test]
fn masked_prefix_realization_matches_threaded() {
    for (n, prefix, seed) in [(12usize, 5usize, 61u64), (20, 8, 62), (16, 16, 63)] {
        // A clique profile over the prefix (the extreme Algorithm 6
        // shape: ρ(x₁) = d₀ = prefix - 1), graphic by construction so
        // both flavors realize it exactly.
        let degrees: Vec<usize> = (0..n)
            .map(|i| if i < prefix { prefix - 1 } else { 0 })
            .collect();
        let mask: Vec<bool> = (0..n).map(|i| i < prefix).collect();
        for flavor in [Flavor::Implicit, Flavor::Envelope] {
            let config = Config::ncc0(seed);
            let threaded =
                realize_masked_threaded(&degrees, &mask, config.clone(), flavor).unwrap();
            let batched = realize_masked_batched(&degrees, &mask, config, flavor).unwrap();
            assert_drivers_agree(
                &threaded,
                &batched,
                &format!("masked n={n} prefix={prefix} {flavor:?}"),
            );
            // The realization stays inside the prefix sub-network.
            if let DriverOutput::Realized(b) = &batched {
                assert_eq!(b.path_order.len(), prefix);
                assert!(b.metrics.is_clean(), "masked run must be strict-clean");
                for (i, &id) in b.path_order.iter().enumerate() {
                    assert!(
                        b.multi_degrees[&id] >= degrees[i],
                        "prefix rank {i} got {} < requested {}",
                        b.multi_degrees[&id],
                        degrees[i]
                    );
                }
            }
        }
    }
}

/// A masked run's sub-network is a real sub-network: round budgets derive
/// from the participant count (every primitive runs on a 6-node virtual
/// path, log₂ 6 ≈ 3 doubling levels), so a 6-of-64 masked realization
/// must cost strictly fewer rounds than the full-network one — per phase
/// the gap is the `O(log² k)` vs `O(log² n)` sort alone.
#[test]
fn masked_runs_pay_subnetwork_round_budgets() {
    let n = 64;
    let prefix = 6;
    let degrees: Vec<usize> = (0..n).map(|i| usize::from(i < prefix)).collect();
    let mask: Vec<bool> = (0..n).map(|i| i < prefix).collect();
    let masked =
        realize_masked_batched(&degrees, &mask, Config::ncc0(77), Flavor::Implicit).unwrap();
    let full = realize_implicit_batched(&vec![1usize; n], Config::ncc0(77)).unwrap();
    // (Not a 2x bound: both runs pay the same *number* of phases for an
    // all-ones sequence, so the constant parts of a phase dilute the
    // per-primitive log-factor savings.)
    assert!(
        masked.metrics().rounds + 20 < full.metrics().rounds,
        "masked {} rounds vs full {}",
        masked.metrics().rounds,
        full.metrics().rounds
    );
    assert!(
        masked.metrics().messages < full.metrics().messages,
        "masked {} messages vs full {}",
        masked.metrics().messages,
        full.metrics().messages
    );
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// Random degree sequences (graphic or not): both engines must agree
    /// on the verdict and, when realized, on the exact overlay.
    #[test]
    fn implicit_sweep_engines_agree(degrees in prop::collection::vec(0usize..9, 4..20), seed in 0u64..1000) {
        let threaded = realize_implicit(&degrees, Config::ncc0(seed)).unwrap();
        let batched = realize_implicit_batched(&degrees, Config::ncc0(seed)).unwrap();
        assert_drivers_agree(&threaded, &batched, &format!("sweep {degrees:?} seed {seed}"));
        // When realized, the overlay's degrees are exactly the request.
        if let DriverOutput::Realized(b) = &batched {
            let mut want = degrees.clone();
            want.sort_unstable_by(|a, b| b.cmp(a));
            prop_assert_eq!(b.graph.degree_sequence(), want);
        }
    }

    /// The envelope realization: always succeeds (absent oversized
    /// degrees) with the Theorem 13 bounds, identically on both engines.
    #[test]
    fn approx_sweep_engines_agree(degrees in prop::collection::vec(0usize..7, 4..16), seed in 0u64..1000) {
        let threaded = realize_approx(&degrees, Config::ncc0(seed)).unwrap();
        let batched = realize_approx_batched(&degrees, Config::ncc0(seed)).unwrap();
        assert_drivers_agree(&threaded, &batched, &format!("approx sweep {degrees:?}"));
        if let DriverOutput::Realized(b) = &batched {
            let sum: usize = degrees.iter().sum();
            let envelope_sum: usize = b.multi_degrees.values().sum();
            prop_assert!(envelope_sum <= 2 * sum.max(1), "Σd' = {} > 2Σd", envelope_sum);
        }
    }
}
