//! Driver-level differential tests: the batched realization drivers must
//! realize exactly the overlay the threaded (direct-style) drivers
//! realize, in the same number of rounds — plus a property sweep over
//! random degree sequences.

use dgr_core::driver::{
    realize_approx, realize_approx_batched, realize_explicit, realize_explicit_batched,
    realize_implicit, realize_implicit_batched, DriverOutput,
};
use dgr_ncc::Config;
use proptest::prelude::*;

/// Asserts both drivers agree in verdict, overlay, phases and budget.
fn assert_drivers_agree(threaded: &DriverOutput, batched: &DriverOutput, what: &str) {
    match (threaded, batched) {
        (
            DriverOutput::Unrealizable { metrics: mt },
            DriverOutput::Unrealizable { metrics: mb },
        ) => {
            assert_eq!(mt.rounds, mb.rounds, "{what}: refusal rounds diverge");
            assert_eq!(mt.messages, mb.messages, "{what}: refusal messages diverge");
        }
        (DriverOutput::Realized(t), DriverOutput::Realized(b)) => {
            assert_eq!(
                t.graph.edge_list(),
                b.graph.edge_list(),
                "{what}: engines realize different overlays"
            );
            assert_eq!(t.phases, b.phases, "{what}: phase counts diverge");
            assert_eq!(t.metrics.rounds, b.metrics.rounds, "{what}: rounds diverge");
            assert_eq!(
                t.metrics.messages, b.metrics.messages,
                "{what}: messages diverge"
            );
            assert_eq!(t.metrics.words, b.metrics.words, "{what}: words diverge");
        }
        _ => panic!("{what}: drivers disagree about realizability"),
    }
}

#[test]
fn implicit_batched_matches_threaded() {
    for degrees in [
        vec![2, 2, 2],
        vec![4, 4, 4, 4, 4],
        vec![5, 1, 1, 1, 1, 1],
        vec![3, 3, 2, 2, 1, 1],
        vec![0, 0, 0],
        vec![6; 32],
        vec![3, 3, 1, 1],       // non-graphic
        vec![5, 5, 4, 3, 2, 1], // non-graphic
    ] {
        let threaded = realize_implicit(&degrees, Config::ncc0(7)).unwrap();
        let batched = realize_implicit_batched(&degrees, Config::ncc0(7)).unwrap();
        assert_drivers_agree(&threaded, &batched, &format!("implicit {degrees:?}"));
    }
}

#[test]
fn approx_batched_matches_threaded() {
    for degrees in [
        vec![3, 3, 1, 0],
        vec![4, 4, 4, 1, 1],
        vec![5, 5, 4, 3, 2, 1],
        vec![3, 2, 2, 2, 1], // graphic input: exact realization
    ] {
        let threaded = realize_approx(&degrees, Config::ncc0(13)).unwrap();
        let batched = realize_approx_batched(&degrees, Config::ncc0(13)).unwrap();
        assert_drivers_agree(&threaded, &batched, &format!("approx {degrees:?}"));
    }
}

#[test]
fn explicit_batched_matches_threaded() {
    for degrees in [
        vec![4, 3, 3, 2, 2, 2, 1, 1],
        vec![2, 2, 1, 1],
        vec![3, 3, 1, 1], // non-graphic
    ] {
        let config = Config::ncc0(31).with_queueing();
        let threaded = realize_explicit(&degrees, config.clone()).unwrap();
        let batched = realize_explicit_batched(&degrees, config).unwrap();
        assert_drivers_agree(&threaded, &batched, &format!("explicit {degrees:?}"));
    }
}

#[test]
fn explicit_batched_star_fan_in_is_paced() {
    // Δ = n-1 at the hub: the staggered hand-off must keep delivery under
    // capacity on the batched engine too.
    let n = 48;
    let mut degrees = vec![1usize; n];
    degrees[0] = n - 1;
    let out = realize_explicit_batched(&degrees, Config::ncc0(35).with_queueing()).unwrap();
    let g = out.expect_realized();
    assert!(g.metrics.max_received_per_round <= g.metrics.capacity);
    assert_eq!(g.graph.degree_sequence()[0], n - 1);
    assert_eq!(g.metrics.undelivered, 0);
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// Random degree sequences (graphic or not): both engines must agree
    /// on the verdict and, when realized, on the exact overlay.
    #[test]
    fn implicit_sweep_engines_agree(degrees in prop::collection::vec(0usize..9, 4..20), seed in 0u64..1000) {
        let threaded = realize_implicit(&degrees, Config::ncc0(seed)).unwrap();
        let batched = realize_implicit_batched(&degrees, Config::ncc0(seed)).unwrap();
        assert_drivers_agree(&threaded, &batched, &format!("sweep {degrees:?} seed {seed}"));
        // When realized, the overlay's degrees are exactly the request.
        if let DriverOutput::Realized(b) = &batched {
            let mut want = degrees.clone();
            want.sort_unstable_by(|a, b| b.cmp(a));
            prop_assert_eq!(b.graph.degree_sequence(), want);
        }
    }

    /// The envelope realization: always succeeds (absent oversized
    /// degrees) with the Theorem 13 bounds, identically on both engines.
    #[test]
    fn approx_sweep_engines_agree(degrees in prop::collection::vec(0usize..7, 4..16), seed in 0u64..1000) {
        let threaded = realize_approx(&degrees, Config::ncc0(seed)).unwrap();
        let batched = realize_approx_batched(&degrees, Config::ncc0(seed)).unwrap();
        assert_drivers_agree(&threaded, &batched, &format!("approx sweep {degrees:?}"));
        if let DriverOutput::Realized(b) = &batched {
            let sum: usize = degrees.iter().sum();
            let envelope_sum: usize = b.multi_degrees.values().sum();
            prop_assert!(envelope_sum <= 2 * sum.max(1), "Σd' = {} > 2Σd", envelope_sum);
        }
    }
}
