//! The [`DegreeSequence`] input object and its invariants.

/// Errors from sequential realization routines.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RealizeError {
    /// The sequence is not graphic (no simple graph realizes it).
    NotGraphic,
    /// A degree exceeds `n - 1` (impossible in any simple graph).
    DegreeTooLarge { index: usize, degree: usize },
    /// The degree sum is odd (violates the handshaking lemma).
    OddSum,
}

impl std::fmt::Display for RealizeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RealizeError::NotGraphic => write!(f, "sequence is not graphic"),
            RealizeError::DegreeTooLarge { index, degree } => {
                write!(f, "degree {degree} at index {index} exceeds n-1")
            }
            RealizeError::OddSum => write!(f, "degree sum is odd"),
        }
    }
}

impl std::error::Error for RealizeError {}

/// A degree sequence `D = (d_1, …, d_n)`, in arbitrary order.
///
/// The distributed algorithms receive degrees one-per-node; the sequential
/// routines normalize to non-increasing order internally.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DegreeSequence {
    degrees: Vec<usize>,
}

impl DegreeSequence {
    /// Wraps a list of degrees.
    pub fn new(degrees: impl Into<Vec<usize>>) -> Self {
        DegreeSequence {
            degrees: degrees.into(),
        }
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.degrees.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.degrees.is_empty()
    }

    /// The degrees in their given order.
    pub fn degrees(&self) -> &[usize] {
        &self.degrees
    }

    /// The degrees sorted non-increasingly (the paper's canonical order).
    pub fn sorted_desc(&self) -> Vec<usize> {
        let mut d = self.degrees.clone();
        d.sort_unstable_by(|a, b| b.cmp(a));
        d
    }

    /// Sum of degrees.
    pub fn sum(&self) -> usize {
        self.degrees.iter().sum()
    }

    /// Maximum degree `Δ` (0 for the empty sequence).
    pub fn max_degree(&self) -> usize {
        self.degrees.iter().copied().max().unwrap_or(0)
    }

    /// Number of edges `m = Σd/2` in any realization.
    pub fn edge_count(&self) -> usize {
        self.sum() / 2
    }

    /// Is the degree sum even (handshaking-lemma necessary condition)?
    pub fn has_even_sum(&self) -> bool {
        self.sum().is_multiple_of(2)
    }

    /// Does every degree fit in a simple graph (`d_i ≤ n-1`)?
    pub fn degrees_fit(&self) -> bool {
        let n = self.len();
        self.degrees.iter().all(|&d| d < n.max(1))
    }

    /// Is the sequence realizable as a *tree*? Per Section 5 of the paper
    /// (and \[19\]): iff all degrees are positive and `Σd = 2(n-1)`.
    /// Single nodes (n = 1, d = 0) count as trivial trees.
    pub fn is_tree_realizable(&self) -> bool {
        let n = self.len();
        if n == 0 {
            return false;
        }
        if n == 1 {
            return self.degrees[0] == 0;
        }
        self.degrees.iter().all(|&d| d >= 1) && self.sum() == 2 * (n - 1)
    }

    /// Is the sequence graphic? (Erdős–Gallai; see
    /// [`crate::erdos_gallai::is_graphic`].)
    pub fn is_graphic(&self) -> bool {
        crate::erdos_gallai::is_graphic(&self.degrees)
    }

    /// Validates the cheap necessary conditions, returning the specific
    /// failure.
    pub fn quick_check(&self) -> Result<(), RealizeError> {
        if let Some((index, &degree)) = self
            .degrees
            .iter()
            .enumerate()
            .find(|(_, &d)| d >= self.len().max(1))
        {
            return Err(RealizeError::DegreeTooLarge { index, degree });
        }
        if !self.has_even_sum() {
            return Err(RealizeError::OddSum);
        }
        Ok(())
    }
}

impl From<Vec<usize>> for DegreeSequence {
    fn from(v: Vec<usize>) -> Self {
        DegreeSequence::new(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats() {
        let d = DegreeSequence::new(vec![3, 1, 2, 2]);
        assert_eq!(d.len(), 4);
        assert_eq!(d.sum(), 8);
        assert_eq!(d.max_degree(), 3);
        assert_eq!(d.edge_count(), 4);
        assert!(d.has_even_sum());
        assert_eq!(d.sorted_desc(), vec![3, 2, 2, 1]);
    }

    #[test]
    fn quick_check_failures() {
        assert_eq!(
            DegreeSequence::new(vec![4, 1, 1]).quick_check(),
            Err(RealizeError::DegreeTooLarge {
                index: 0,
                degree: 4
            })
        );
        assert_eq!(
            DegreeSequence::new(vec![1, 1, 1]).quick_check(),
            Err(RealizeError::OddSum)
        );
        assert!(DegreeSequence::new(vec![1, 1]).quick_check().is_ok());
    }

    #[test]
    fn tree_realizability() {
        assert!(DegreeSequence::new(vec![1, 1]).is_tree_realizable());
        assert!(DegreeSequence::new(vec![2, 1, 1]).is_tree_realizable());
        assert!(DegreeSequence::new(vec![3, 1, 1, 1]).is_tree_realizable());
        // Right sum, but a zero degree.
        assert!(!DegreeSequence::new(vec![3, 2, 1, 0]).is_tree_realizable());
        // Cycle: sum 2n, not 2(n-1).
        assert!(!DegreeSequence::new(vec![2, 2, 2]).is_tree_realizable());
        assert!(DegreeSequence::new(vec![0]).is_tree_realizable());
        assert!(!DegreeSequence::new(Vec::<usize>::new()).is_tree_realizable());
    }
}
